//! Golden-file and determinism tests for PR 5's span instrumentation,
//! pinned on the paper's Figure 1 example (groundness of append) under the
//! default depth-first scheduler.
//!
//! Wall-clock times vary run to run, so the golden file freezes only the
//! *structure*: the distinct collapsed stacks of the folded export (one
//! `frame;frame;…` path per line, no counts) and the span-name rollup with
//! its deterministic span counts. Any change to the instrumentation points,
//! nesting, or frame naming shows up as a diff here. Bless an intentional
//! change with `UPDATE_GOLDEN=1 cargo test --test span_golden`.

use std::path::PathBuf;
use std::sync::Arc;
use tablog_core::groundness::GroundnessAnalyzer;
use tablog_trace::{folded_frames, folded_stacks, MetricsRegistry, MetricsReport};

const FIGURE1: &str = "\
app([], Ys, Ys).
app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
";

fn profile_figure1() -> MetricsReport {
    let registry = Arc::new(MetricsRegistry::new());
    let mut an = GroundnessAnalyzer::new();
    an.profile = true;
    an.options.trace = Some(registry.clone());
    an.options.record_spans = true;
    an.analyze_source(FIGURE1).expect("figure 1 analyzes");
    registry.snapshot()
}

/// The structural fingerprint of a profiled run: folded frames (paths
/// without counts) plus the per-name span counts.
fn fingerprint(report: &MetricsReport) -> String {
    let mut out = String::from("frames:\n");
    for frame in folded_frames(&folded_stacks(&report.spans)) {
        out.push_str("  ");
        out.push_str(&frame);
        out.push('\n');
    }
    out.push_str("by_name:\n");
    for (name, r) in report.spans.rollup_by_name() {
        out.push_str(&format!("  {name} {}\n", r.count));
    }
    out
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/figure1_spans.folded")
}

#[test]
fn figure1_span_structure_matches_golden_file() {
    let got = fingerprint(&profile_figure1());
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want =
        std::fs::read_to_string(&path).expect("golden file exists (UPDATE_GOLDEN=1 to create)");
    assert_eq!(
        got, want,
        "span structure drifted from the golden file; \
         re-bless with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn span_structure_is_deterministic_across_runs() {
    assert_eq!(
        fingerprint(&profile_figure1()),
        fingerprint(&profile_figure1())
    );
}

#[test]
fn span_tree_rollup_nests_engine_under_analysis_phase() {
    let report = profile_figure1();
    let tree = &report.spans;
    assert!(!tree.is_empty());

    // The analyzer's phase spans and the engine's own spans all land in
    // one tree, with the evaluation nested under the "analysis" phase.
    let by_name = tree.rollup_by_name();
    let names: Vec<&str> = by_name.iter().map(|(n, _)| n.as_str()).collect();
    for want in ["analysis", "collection", "evaluate", "dispatch"] {
        assert!(names.contains(&want), "missing span {want} in {names:?}");
    }
    let folded = folded_stacks(tree);
    assert!(
        folded.contains("analysis;evaluate;"),
        "engine spans should nest under the analysis phase:\n{folded}"
    );

    // Self-time partitions total time: every node's children fit inside it.
    for (i, n) in tree.nodes.iter().enumerate() {
        let child_total: u64 = tree
            .nodes
            .iter()
            .filter(|c| c.parent == Some(i))
            .map(|c| c.total_ns)
            .sum();
        assert!(
            n.self_ns == n.total_ns.saturating_sub(child_total),
            "self/total mismatch at node {i}"
        );
    }
}

#[test]
fn spans_disabled_leaves_the_report_span_free() {
    let registry = Arc::new(MetricsRegistry::new());
    let mut an = GroundnessAnalyzer::new();
    an.profile = true;
    an.options.trace = Some(registry.clone());
    an.analyze_source(FIGURE1).expect("figure 1 analyzes");
    assert!(registry.snapshot().spans.is_empty());
}
