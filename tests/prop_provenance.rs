//! Property tests for answer provenance: on randomly generated Datalog
//! programs, every justification tree the engine produces must be
//! well-formed — leaves are facts or builtin-supported clauses, every
//! clause reference resolves in the loaded database, and the derivation
//! forest round-trips through its JSON encoding.

use proptest::prelude::*;
use tablog_engine::{Engine, EngineOptions, Forest, JustNode, LoadMode};
use tablog_term::{atom, structure, var, Bindings, Functor, Term, Var};

/// A compact description of a random Datalog program over binary
/// predicates p0..p2 and constants c0..c3 (chain rules, as in the
/// engine's semantics property tests).
#[derive(Clone, Debug)]
struct DatalogProgram {
    facts: Vec<(usize, Vec<usize>)>,
    rules: Vec<(usize, Vec<usize>)>,
}

fn pred_name(i: usize) -> String {
    format!("p{i}")
}

fn constant(i: usize) -> Term {
    atom(&format!("c{i}"))
}

fn arb_program() -> impl Strategy<Value = DatalogProgram> {
    let fact = (0usize..3, prop::collection::vec(0usize..4, 2..3));
    let rule = (0usize..3, prop::collection::vec(0usize..3, 1..4));
    (
        prop::collection::vec(fact, 1..8),
        prop::collection::vec(rule, 0..6),
    )
        .prop_map(|(mut facts, rules)| {
            for p in 0..3 {
                facts.push((p, vec![p, (p + 1) % 4]));
            }
            DatalogProgram { facts, rules }
        })
}

fn load(prog: &DatalogProgram, record: bool) -> Engine {
    let mut db = tablog_engine::Database::new(LoadMode::Dynamic);
    for (p, args) in &prog.facts {
        let head = structure(&pred_name(*p), args.iter().map(|&c| constant(c)).collect());
        db.assert_clause(head, Vec::new()).expect("loads");
    }
    for (hp, body) in &prog.rules {
        let n = body.len();
        let head = structure(&pred_name(*hp), vec![var(Var(0)), var(Var(n as u32))]);
        let goals: Vec<Term> = body
            .iter()
            .enumerate()
            .map(|(i, bp)| {
                structure(
                    &pred_name(*bp),
                    vec![var(Var(i as u32)), var(Var((i + 1) as u32))],
                )
            })
            .collect();
        db.assert_clause(head, goals).expect("loads");
    }
    for i in 0..3 {
        db.set_tabled(Functor::new(&pred_name(i), 2), true);
    }
    let opts = EngineOptions {
        record_provenance: record,
        ..Default::default()
    };
    Engine::new(db, opts)
}

/// Asserts the well-formedness invariants on one justification node and
/// everything below it.
fn check_node(engine: &Engine, n: &JustNode) {
    // Every clause the node cites must resolve in the loaded database.
    for c in &n.clauses {
        assert!(
            engine.db().clause(c.pred, c.index).is_some(),
            "clause {c} does not resolve"
        );
    }
    if n.children.is_empty() {
        assert!(
            n.status.is_grounded_leaf(),
            "leaf {} has non-grounded status {:?}",
            n.answer,
            n.status
        );
    } else {
        // An internal node was derived via at least one clause.
        assert!(
            !n.clauses.is_empty(),
            "internal node {} cites no clauses",
            n.answer
        );
    }
    for c in &n.children {
        check_node(engine, c);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every justification tree is well-formed: leaves are facts or
    /// builtin-supported, and all cited clauses resolve.
    #[test]
    fn justification_trees_are_well_formed(prog in arb_program()) {
        let engine = load(&prog, true);
        for i in 0..3 {
            let goal = format!("{}(X, Y)", pred_name(i));
            let ex = engine.explain(&goal, 64).expect("explains");
            for t in &ex.trees {
                check_node(&engine, t);
            }
        }
    }

    /// Justification trees agree with the answer set: there is exactly one
    /// tree per distinct answer of the open call (answers duplicated
    /// across subgoal tables are explained once).
    #[test]
    fn one_tree_per_distinct_answer(prog in arb_program()) {
        let engine = load(&prog, true);
        for i in 0..3 {
            let f = Functor::new(&pred_name(i), 2);
            let mut b = Bindings::new();
            let (x, y) = (b.fresh_var(), b.fresh_var());
            let goal = structure(&pred_name(i), vec![var(x), var(y)]);
            let eval = engine.evaluate(&[goal], &[var(x), var(y)], &b).expect("evaluates");
            // All answers here are ground, so rendered terms identify them.
            let distinct: std::collections::HashSet<String> = eval
                .subgoals_of(f)
                .iter()
                .flat_map(|v| v.answers())
                .map(|a| tablog_syntax::term_to_string(&a))
                .collect();
            let ex = engine.explain(&format!("{}(X, Y)", pred_name(i)), 64).expect("explains");
            prop_assert_eq!(ex.trees.len(), distinct.len(), "pred p{}", i);
        }
    }

    /// The derivation forest round-trips through its JSON encoding.
    #[test]
    fn forest_round_trips_through_json(prog in arb_program()) {
        let engine = load(&prog, true);
        let mut b = Bindings::new();
        let (x, y) = (b.fresh_var(), b.fresh_var());
        let goal = structure("p0", vec![var(x), var(y)]);
        let eval = engine.evaluate(&[goal], &[var(x), var(y)], &b).expect("evaluates");
        let forest = eval.forest();
        let back = Forest::from_json(&forest.to_json()).expect("forest JSON parses");
        prop_assert_eq!(forest, back);
    }

    /// With provenance disabled, explain still works but reports
    /// unrecorded trees — and the tables carry no provenance bytes
    /// difference beyond the recorded trails themselves.
    #[test]
    fn disabled_provenance_keeps_answer_sets_identical(prog in arb_program()) {
        let on = load(&prog, true);
        let off = load(&prog, false);
        for i in 0..3 {
            let f = Functor::new(&pred_name(i), 2);
            let collect = |e: &Engine| -> Vec<String> {
                let mut b = Bindings::new();
                let (x, y) = (b.fresh_var(), b.fresh_var());
                let goal = structure(&pred_name(i), vec![var(x), var(y)]);
                let eval = e.evaluate(&[goal], &[var(x), var(y)], &b).expect("evaluates");
                let mut rows: Vec<String> = eval
                    .root_answers()
                    .iter()
                    .map(|r| {
                        r.iter()
                            .map(tablog_syntax::term_to_string)
                            .collect::<Vec<_>>()
                            .join(",")
                    })
                    .collect();
                rows.sort();
                rows
            };
            prop_assert_eq!(collect(&on), collect(&off), "pred {}", f);
        }
    }
}
