//! The benchmark reconstructions are not just analysis fodder: several of
//! them are runnable programs. Executing their `main/1` goals on the
//! tabled engine checks both the engine (arithmetic, negation, deep
//! recursion) and the reconstructions themselves.

use tablog_engine::{Engine, EngineOptions, LoadMode};

fn run_main(bench: &str, max_steps: usize) -> tablog_engine::Solutions {
    let b = tablog_suite::logic_benchmark(bench).expect("benchmark exists");
    let opts = EngineOptions {
        max_steps: Some(max_steps),
        ..Default::default()
    };
    let engine = Engine::from_source_with(b.source, LoadMode::Dynamic, opts).expect("loads");
    engine.solve("main(Result)").expect("solves")
}

#[test]
fn qsort_main_sorts_its_input() {
    let s = run_main("qsort", 2_000_000);
    assert!(!s.is_empty());
    let first = &s.rows()[0][0];
    let printed = tablog_syntax::term_to_string(first);
    assert!(printed.starts_with("[2,6,11,17"), "{printed}");
}

#[test]
fn plan_finds_a_blocks_world_plan() {
    // The full Sussman-anomaly search space is large without cut; the
    // `simple` instance exercises the same planner cheaply.
    let b = tablog_suite::logic_benchmark("plan").expect("benchmark exists");
    let opts = EngineOptions {
        max_steps: Some(2_000_000),
        ..Default::default()
    };
    let engine = Engine::from_source_with(b.source, LoadMode::Dynamic, opts).expect("loads");
    let s = engine.solve("plan_test(simple, Plan)").expect("solves");
    assert!(!s.is_empty());
    let printed = tablog_syntax::term_to_string(&s.rows()[0][0]);
    assert!(printed.contains("move("), "{printed}");
}

#[test]
fn pg_main_packs_the_bins() {
    let s = run_main("pg", 2_000_000);
    assert!(!s.is_empty());
    let printed = tablog_syntax::term_to_string(&s.rows()[0][0]);
    assert!(printed.contains("bin("), "{printed}");
}

#[test]
fn gabriel_main_counts_matches() {
    let s = run_main("gabriel", 2_000_000);
    assert!(!s.is_empty());
    // The count is a non-negative integer.
    assert!(matches!(s.rows()[0][0], tablog_term::Term::Int(n) if n >= 0));
}

#[test]
fn press_main_solves_the_linear_equation() {
    // x + 3 = 5 has two derivations: isolation gives x = 5 - 3 and the
    // polynomial method gives x = -(-2)/1; both must be answers.
    let s = run_main("press1", 2_000_000);
    assert!(!s.is_empty());
    let printed: Vec<String> = s
        .rows()
        .iter()
        .map(|r| tablog_syntax::term_to_string(&r[0]))
        .collect();
    assert!(printed.iter().any(|p| p.contains("5-3")), "{printed:?}");
    assert!(printed.iter().any(|p| p.contains("-2")), "{printed:?}");
}

#[test]
fn peep_main_optimizes_sample_one() {
    let s = run_main("peep", 4_000_000);
    assert!(!s.is_empty());
    let printed = tablog_syntax::term_to_string(&s.rows()[0][0]);
    // move(r1,r1) eliminated; constants folded: loadi(3),addi(4) -> loadi(7).
    assert!(!printed.contains("move(r1,r1)"), "{printed}");
    assert!(printed.contains("loadi(7)"), "{printed}");
    assert!(printed.contains("halt"), "{printed}");
}

#[test]
fn read_main_parses_its_sample_clause() {
    let s = run_main("read", 4_000_000);
    assert!(!s.is_empty());
    let printed = tablog_syntax::term_to_string(&s.rows()[0][0]);
    // "foo(a,X) :- bar(X)."  parses to an infix_term clause skeleton.
    assert!(printed.contains("infix_term"), "{printed}");
    assert!(printed.contains("compound(foo"), "{printed}");
}

#[test]
fn cs_main_cuts_the_small_instance() {
    let s = run_main("cs", 4_000_000);
    assert!(!s.is_empty());
    let printed = tablog_syntax::term_to_string(&s.rows()[0][0]);
    assert!(printed.contains("pattern("), "{printed}");
}

#[test]
fn disj_main_schedules_within_horizon() {
    let s = run_main("disj", 4_000_000);
    assert!(!s.is_empty());
    let printed = tablog_syntax::term_to_string(&s.rows()[0][0]);
    assert!(printed.contains("start("), "{printed}");
}
