//! Golden-file tests for `tablog explain` on the paper's Figure 1 example,
//! plus determinism of the DOT derivation-forest export.
//!
//! The golden file freezes the exact justification-tree rendering: any
//! change to provenance recording, tree construction, or text layout shows
//! up as a diff here. Bless an intentional change with
//! `UPDATE_GOLDEN=1 cargo test --test explain_golden`.

use std::path::PathBuf;
use std::process::Command;

fn tablog(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_tablog"))
        .args(args)
        .output()
        .expect("spawn tablog");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn figure1() -> String {
    format!("{}/examples/figure1.pl", env!("CARGO_MANIFEST_DIR"))
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/figure1_explain.txt")
}

#[test]
fn figure1_explain_matches_golden_file() {
    let (out, err, ok) = tablog(&["explain", &figure1(), "gp_ap(X, Y, Z)"]);
    assert!(ok, "{err}");
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &out).expect("write golden");
        return;
    }
    let want =
        std::fs::read_to_string(&path).expect("golden file exists (UPDATE_GOLDEN=1 to create)");
    assert_eq!(
        out, want,
        "justification rendering drifted from the golden file; \
         re-bless with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn figure1_explain_roots_are_answers_and_leaves_are_grounded() {
    let (out, err, ok) = tablog(&["explain", &figure1(), "gp_ap(X, Y, Z)", "--json"]);
    assert!(ok, "{err}");
    let v = tablog_trace::json::parse(out.trim()).expect("explain --json is valid JSON");
    let trees = v
        .get("justifications")
        .and_then(|j| j.as_arr())
        .expect("justifications array");
    // The open call's success set is the 4 rows of (X /\ Y) <-> Z.
    assert_eq!(trees.len(), 4, "{out}");
    fn walk(
        n: &tablog_trace::json::JsonValue,
        check: &mut impl FnMut(&tablog_trace::json::JsonValue),
    ) {
        check(n);
        for c in n.get("children").and_then(|c| c.as_arr()).unwrap_or(&[]) {
            walk(c, check);
        }
    }
    for t in trees {
        assert!(
            t.get("answer")
                .and_then(|a| a.as_str())
                .expect("answer field")
                .starts_with("gp_ap("),
            "{out}"
        );
        walk(t, &mut |n| {
            let leaf = n
                .get("children")
                .and_then(|c| c.as_arr())
                .is_none_or(|c| c.is_empty());
            if leaf {
                let status = n.get("status").and_then(|s| s.as_str()).expect("status");
                assert!(
                    status == "fact" || status == "builtin",
                    "leaf {n:?} is not grounded"
                );
            }
        });
    }
}

#[test]
fn figure1_explain_is_deterministic() {
    let a = tablog(&["explain", &figure1(), "gp_ap(X, Y, Z)"]);
    let b = tablog(&["explain", &figure1(), "gp_ap(X, Y, Z)"]);
    assert!(a.2 && b.2);
    assert_eq!(a.0, b.0);
}

#[test]
fn dot_export_is_deterministic_across_runs() {
    let (a, err, ok) = tablog(&["forest", &figure1(), "gp_ap(X, Y, Z)"]);
    assert!(ok, "{err}");
    let (b, _, ok2) = tablog(&["forest", &figure1(), "gp_ap(X, Y, Z)"]);
    assert!(ok2);
    assert_eq!(a, b, "DOT export must be byte-identical across runs");
    assert!(a.starts_with("digraph forest {"), "{a}");
    assert!(a.contains("gp_ap("), "{a}");
}
