//! Property tests for the tabled engine: on randomly generated Datalog
//! programs, the SLG forest must compute exactly the minimal model that
//! naive bottom-up evaluation computes — completeness and soundness of
//! tabling in one oracle check.

use proptest::prelude::*;
use std::collections::HashSet;
use tablog_engine::{Engine, EngineOptions, LoadMode, Scheduling};
use tablog_magic::{BottomUp, Rule};
use tablog_term::{atom, structure, var, Bindings, Functor, Term, Var};

/// A compact description of a random Datalog program over unary/binary
/// predicates p0..p2 and constants c0..c3.
#[derive(Clone, Debug)]
struct DatalogProgram {
    facts: Vec<(usize, Vec<usize>)>,
    rules: Vec<(usize, Vec<usize>)>, // head pred, body preds (vars chained)
}

fn pred_name(i: usize) -> String {
    format!("p{i}")
}

fn constant(i: usize) -> Term {
    atom(&format!("c{i}"))
}

impl DatalogProgram {
    /// Renders as engine source with every predicate tabled.
    fn to_rules(&self) -> Vec<Rule> {
        let mut out = Vec::new();
        for (p, args) in &self.facts {
            let head = structure(&pred_name(*p), args.iter().map(|&c| constant(c)).collect());
            out.push(Rule::new(head, Vec::new()));
        }
        for (hp, body) in &self.rules {
            // Chain rule: hp(X0, Xn) :- b1(X0, X1), b2(X1, X2), …
            let n = body.len();
            let head = structure(&pred_name(*hp), vec![var(Var(0)), var(Var(n as u32))]);
            let goals: Vec<Term> = body
                .iter()
                .enumerate()
                .map(|(i, bp)| {
                    structure(
                        &pred_name(*bp),
                        vec![var(Var(i as u32)), var(Var((i + 1) as u32))],
                    )
                })
                .collect();
            out.push(Rule::new(head, goals));
        }
        out
    }
}

fn arb_program() -> impl Strategy<Value = DatalogProgram> {
    let fact = (0usize..3, prop::collection::vec(0usize..4, 2..3));
    let rule = (0usize..3, prop::collection::vec(0usize..3, 1..4));
    (
        prop::collection::vec(fact, 1..8),
        prop::collection::vec(rule, 0..6),
    )
        .prop_map(|(mut facts, rules)| {
            // Every predicate gets at least one fact so that rule bodies
            // never reference an entirely undefined relation (which the
            // bottom-up oracle rejects as an unknown predicate).
            for p in 0..3 {
                facts.push((p, vec![p, (p + 1) % 4]));
            }
            DatalogProgram { facts, rules }
        })
}

/// All tuples of `p{i}` according to the bottom-up oracle.
fn oracle(prog: &DatalogProgram) -> HashSet<(usize, Vec<Term>)> {
    let mut e = BottomUp::new(prog.to_rules());
    e.run().expect("bottom-up evaluates");
    let mut out = HashSet::new();
    for i in 0..3 {
        let f = Functor::new(&pred_name(i), 2);
        for t in e.relation(f) {
            out.insert((i, t.clone()));
        }
    }
    out
}

/// All tuples of `p{i}` according to the tabled engine with given options.
fn tabled(prog: &DatalogProgram, opts: EngineOptions) -> HashSet<(usize, Vec<Term>)> {
    let mut db = tablog_engine::Database::new(LoadMode::Dynamic);
    for r in prog.to_rules() {
        db.assert_clause(r.head, r.body).expect("loads");
    }
    db.table_all();
    for i in 0..3 {
        db.set_tabled(Functor::new(&pred_name(i), 2), true);
    }
    let engine = Engine::new(db, opts);
    let mut out = HashSet::new();
    for i in 0..3 {
        let f = Functor::new(&pred_name(i), 2);
        if !engine.db().is_defined(f) {
            continue;
        }
        let mut b = Bindings::new();
        let x = b.fresh_var();
        let y = b.fresh_var();
        let goal = structure(&pred_name(i), vec![var(x), var(y)]);
        let eval = engine
            .evaluate(&[goal], &[var(x), var(y)], &b)
            .expect("evaluates");
        for row in eval.root_answers() {
            out.insert((i, row));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tabled evaluation computes exactly the minimal model.
    #[test]
    fn tabled_equals_minimal_model(prog in arb_program()) {
        let expect = oracle(&prog);
        let got = tabled(&prog, EngineOptions::default());
        prop_assert_eq!(got, expect);
    }

    /// Scheduling strategy does not change the answer set.
    #[test]
    fn scheduling_is_semantics_preserving(prog in arb_program()) {
        let df = tabled(&prog, EngineOptions::default());
        let o = EngineOptions {
            scheduling: Scheduling::BreadthFirst,
            ..Default::default()
        };
        let bf = tabled(&prog, o);
        prop_assert_eq!(df, bf);
    }

    /// Forward subsumption does not change the answer set.
    #[test]
    fn subsumption_is_semantics_preserving(prog in arb_program()) {
        let plain = tabled(&prog, EngineOptions::default());
        let o = EngineOptions {
            forward_subsumption: true,
            ..Default::default()
        };
        let fs = tabled(&prog, o);
        prop_assert_eq!(plain, fs);
    }

    /// Compiled (indexed) clause access does not change the answer set.
    #[test]
    fn indexing_is_semantics_preserving(prog in arb_program()) {
        let expect = oracle(&prog);
        let mut db = tablog_engine::Database::new(LoadMode::Compiled);
        for r in prog.to_rules() {
            db.assert_clause(r.head, r.body).expect("loads");
        }
        for i in 0..3 {
            db.set_tabled(Functor::new(&pred_name(i), 2), true);
        }
        db.build_indexes();
        let engine = Engine::new(db, EngineOptions::default());
        let mut got = HashSet::new();
        for i in 0..3 {
            let f = Functor::new(&pred_name(i), 2);
            if !engine.db().is_defined(f) {
                continue;
            }
            let mut b = Bindings::new();
            let x = b.fresh_var();
            let y = b.fresh_var();
            let goal = structure(&pred_name(i), vec![var(x), var(y)]);
            let eval = engine.evaluate(&[goal], &[var(x), var(y)], &b).expect("evaluates");
            for row in eval.root_answers() {
                got.insert((i, row));
            }
        }
        prop_assert_eq!(got, expect);
    }

    /// Specific (partially bound) queries return exactly the matching
    /// subset of the open query's answers.
    #[test]
    fn specific_calls_are_restrictions(prog in arb_program(), c in 0usize..4) {
        let all = tabled(&prog, EngineOptions::default());
        let mut db = tablog_engine::Database::new(LoadMode::Dynamic);
        for r in prog.to_rules() {
            db.assert_clause(r.head, r.body).expect("loads");
        }
        for i in 0..3 {
            db.set_tabled(Functor::new(&pred_name(i), 2), true);
        }
        let engine = Engine::new(db, EngineOptions::default());
        for i in 0..3 {
            if !engine.db().is_defined(Functor::new(&pred_name(i), 2)) {
                continue;
            }
            let mut b = Bindings::new();
            let y = b.fresh_var();
            let goal = structure(&pred_name(i), vec![constant(c), var(y)]);
            let eval = engine.evaluate(&[goal], &[var(y)], &b).expect("evaluates");
            let got: HashSet<Term> =
                eval.root_answers().into_iter().map(|r| r[0].clone()).collect();
            let expect: HashSet<Term> = all
                .iter()
                .filter(|(p, row)| *p == i && row[0] == constant(c))
                .map(|(_, row)| row[1].clone())
                .collect();
            prop_assert_eq!(got, expect, "pred p{}", i);
        }
    }
}
