//! Property tests pitting the two Prop-domain representations against
//! each other: enumerative truth tables (the paper's choice) and ROBDDs
//! (the alternative the paper cites). Every operation must agree.

use proptest::prelude::*;
use tablog_bdd::{Bdd, BddManager};
use tablog_core::prop::PropTable;

const NVARS: usize = 4;

/// A random boolean-formula AST, to interpret into both representations.
#[derive(Clone, Debug)]
enum Formula {
    Var(usize),
    Not(Box<Formula>),
    And(Box<Formula>, Box<Formula>),
    Or(Box<Formula>, Box<Formula>),
    Iff(Box<Formula>, Box<Formula>),
}

fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = (0..NVARS).prop_map(Formula::Var);
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| Formula::Not(Box::new(f))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Formula::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Formula::Iff(Box::new(a), Box::new(b))),
        ]
    })
}

fn to_bdd(m: &mut BddManager, f: &Formula) -> Bdd {
    match f {
        Formula::Var(v) => m.var(*v as u32),
        Formula::Not(a) => {
            let x = to_bdd(m, a);
            m.not(x)
        }
        Formula::And(a, b) => {
            let x = to_bdd(m, a);
            let y = to_bdd(m, b);
            m.and(x, y)
        }
        Formula::Or(a, b) => {
            let x = to_bdd(m, a);
            let y = to_bdd(m, b);
            m.or(x, y)
        }
        Formula::Iff(a, b) => {
            let x = to_bdd(m, a);
            let y = to_bdd(m, b);
            m.iff(x, y)
        }
    }
}

fn eval(f: &Formula, row: &[bool]) -> bool {
    match f {
        Formula::Var(v) => row[*v],
        Formula::Not(a) => !eval(a, row),
        Formula::And(a, b) => eval(a, row) && eval(b, row),
        Formula::Or(a, b) => eval(a, row) || eval(b, row),
        Formula::Iff(a, b) => eval(a, row) == eval(b, row),
    }
}

fn to_table(f: &Formula) -> PropTable {
    let rows: Vec<Vec<bool>> = (0..(1usize << NVARS))
        .map(|r| (0..NVARS).map(|i| r & (1 << i) != 0).collect())
        .filter(|row: &Vec<bool>| eval(f, row))
        .collect();
    PropTable::from_rows(NVARS, &rows)
}

proptest! {
    /// Truth-table and BDD interpretations of the same formula agree.
    #[test]
    fn representations_agree(f in arb_formula()) {
        let table = to_table(&f);
        let mut m = BddManager::new();
        let bdd = to_bdd(&mut m, &f);
        prop_assert_eq!(m.sat_count(bdd, NVARS as u32) as usize, table.count());
        prop_assert_eq!(PropTable::from_bdd(&m, bdd, NVARS), table);
    }

    /// Conversion between the representations is a bijection on functions.
    #[test]
    fn conversion_roundtrip(f in arb_formula()) {
        let table = to_table(&f);
        let mut m = BddManager::new();
        let via = table.to_bdd(&mut m);
        prop_assert_eq!(PropTable::from_bdd(&m, via, NVARS), table);
    }

    /// Existential quantification commutes with conversion.
    #[test]
    fn exists_commutes(f in arb_formula(), v in 0usize..NVARS) {
        let table = to_table(&f).exists(v);
        let mut m = BddManager::new();
        let bdd = to_bdd(&mut m, &f);
        let e = m.exists(v as u32, bdd);
        prop_assert_eq!(PropTable::from_bdd(&m, e, NVARS), table);
    }

    /// The `iff` constraint (the analysis workhorse) agrees across
    /// representations.
    #[test]
    fn iff_constraint_agrees(f in arb_formula(), x in 0usize..NVARS,
                             ys in prop::collection::vec(0usize..NVARS, 0..3)) {
        let table = to_table(&f).constrain_iff(x, &ys);
        let mut m = BddManager::new();
        let bdd = to_bdd(&mut m, &f);
        let yconj = m.var_conj(&ys.iter().map(|&y| y as u32).collect::<Vec<_>>());
        let xv = m.var(x as u32);
        let c = m.iff(xv, yconj);
        let combined = m.and(bdd, c);
        prop_assert_eq!(PropTable::from_bdd(&m, combined, NVARS), table);
    }

    /// De Morgan on BDDs, checked via truth tables.
    #[test]
    fn de_morgan(a in arb_formula(), b in arb_formula()) {
        let mut m = BddManager::new();
        let x = to_bdd(&mut m, &a);
        let y = to_bdd(&mut m, &b);
        let and = m.and(x, y);
        let lhs = m.not(and);
        let nx = m.not(x);
        let ny = m.not(y);
        let rhs = m.or(nx, ny);
        prop_assert_eq!(lhs, rhs);
    }

    /// Hash consing: semantically equal formulas get the identical node.
    #[test]
    fn canonical_nodes(f in arb_formula()) {
        let mut m = BddManager::new();
        let x = to_bdd(&mut m, &f);
        let dn = m.not(x);
        let ddn = m.not(dn);
        prop_assert_eq!(x, ddn);
    }
}
