//! Property tests for the reader/writer pair: whatever the writer prints,
//! the reader must parse back to a variant of the original term.

use proptest::prelude::*;
use tablog_syntax::{parse_term, term_to_string};
use tablog_term::{atom, int, is_variant, structure, var, Bindings, Term, Var};

fn arb_printable_term(nvars: u32) -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (0..nvars).prop_map(|v| var(Var(v))),
        prop_oneof![
            Just("a"),
            Just("foo"),
            Just("bar_baz"),
            Just("[]"),
            Just("hello world"), // needs quoting
            Just("Weird"),       // needs quoting (uppercase start)
            Just("+"),           // symbolic
        ]
        .prop_map(atom),
        (-100i64..100).prop_map(int),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            // Ordinary compounds.
            (
                prop_oneof![Just("f"), Just("g"), Just("wrap")],
                prop::collection::vec(inner.clone(), 1..4)
            )
                .prop_map(|(name, args)| structure(name, args)),
            // Operators.
            (inner.clone(), inner.clone()).prop_map(|(a, b)| structure("+", vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| structure("*", vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| structure("=", vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| structure(",", vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| structure(";", vec![a, b])),
            inner.clone().prop_map(|a| structure("-", vec![a])),
            // Lists.
            (inner.clone(), inner).prop_map(|(a, b)| structure(".", vec![a, b])),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// print ∘ parse = identity up to variable renaming.
    #[test]
    fn writer_reader_roundtrip(t in arb_printable_term(3)) {
        let printed = term_to_string(&t);
        let mut b = Bindings::new();
        let (back, _) = parse_term(&printed, &mut b)
            .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        prop_assert!(
            is_variant(&t, &back),
            "{t:?} printed as {printed:?} reparsed as {back:?}"
        );
    }

    /// Printing is deterministic.
    #[test]
    fn printing_is_deterministic(t in arb_printable_term(3)) {
        prop_assert_eq!(term_to_string(&t), term_to_string(&t));
    }

    /// Whole clauses round-trip through program syntax.
    #[test]
    fn clause_roundtrip(head in arb_printable_term(3), body in arb_printable_term(3)) {
        let clause = structure(":-", vec![head, body]);
        let printed = format!("{}.", term_to_string(&clause));
        let prog = tablog_syntax::parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        prop_assert_eq!(prog.clauses.len(), 1);
    }
}
