//! Golden-file and determinism tests for the engine's JSON-lines event
//! trace, pinned on the paper's Figure 1 example (groundness of append).
//!
//! The golden file freezes the exact event stream: any change to the
//! engine's scheduling, instrumentation points, or JSON rendering shows up
//! as a diff here. Bless an intentional change with
//! `UPDATE_GOLDEN=1 cargo test --test trace_golden`.

use std::path::PathBuf;
use std::sync::Arc;
use tablog_core::groundness::GroundnessAnalyzer;
use tablog_trace::{json, JsonLinesSink, SharedBuf};

const FIGURE1: &str = "\
app([], Ys, Ys).
app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
";

fn trace_figure1() -> String {
    let buf = SharedBuf::new();
    let mut an = GroundnessAnalyzer::new();
    an.options.trace = Some(Arc::new(JsonLinesSink::new(buf.clone())));
    an.analyze_source(FIGURE1).expect("figure 1 analyzes");
    buf.contents()
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/figure1_groundness.jsonl")
}

#[test]
fn figure1_trace_matches_golden_file() {
    let got = trace_figure1();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want =
        std::fs::read_to_string(&path).expect("golden file exists (UPDATE_GOLDEN=1 to create)");
    assert_eq!(
        got, want,
        "event stream drifted from the golden trace; \
         re-bless with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn trace_stream_is_deterministic_across_runs() {
    assert_eq!(trace_figure1(), trace_figure1());
}

/// Killing an evaluation mid-flight (step budget) must still leave a
/// complete, parseable JSONL file behind: the truncated run returns
/// normally with its partial tables, and the sink flushes when the last
/// reference is dropped.
#[test]
fn killed_evaluation_leaves_a_parseable_flushed_trace() {
    use tablog_engine::{Engine, EngineOptions, LoadMode, TruncationReason};

    let dir = std::env::temp_dir().join("tablog-trace-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("killed.jsonl");
    let file = std::fs::File::create(&path).expect("create trace file");
    let sink = Arc::new(JsonLinesSink::new(std::io::BufWriter::new(file)));

    let opts = EngineOptions {
        trace: Some(sink.clone() as Arc<_>),
        max_steps: Some(10),
        record_spans: true,
        ..EngineOptions::default()
    };
    let engine = Engine::from_source_with(
        ":- table path/2.\n\
         path(X, Y) :- edge(X, Y).\n\
         path(X, Y) :- edge(X, Z), path(Z, Y).\n\
         edge(a, b). edge(b, c). edge(c, d). edge(d, a).\n",
        LoadMode::Dynamic,
        opts,
    )
    .expect("program loads");
    let mut b = tablog_term::Bindings::new();
    let (g, _) = tablog_syntax::parse_term("path(a, X)", &mut b).unwrap();
    let eval = engine
        .evaluate(&[g], &[], &b)
        .expect("a tripped budget is a truncated evaluation, not an error");
    assert!(
        matches!(
            eval.truncation().map(|t| t.reason),
            Some(TruncationReason::Steps(10))
        ),
        "the 10-step budget is far too small for this closure"
    );
    drop(eval);

    // Drop every reference so the BufWriter's tail is flushed to disk.
    drop(engine);
    drop(sink);

    let text = std::fs::read_to_string(&path).expect("trace file written");
    assert!(!text.is_empty(), "events before the kill must be flushed");
    let mut enters = 0usize;
    for line in text.lines() {
        let v = json::parse(line).unwrap_or_else(|e| panic!("bad JSON line {line:?}: {e}"));
        assert!(
            v.get("event").is_some() || v.get("span").is_some(),
            "unrecognized line {line}"
        );
        if v.get("span").and_then(|s| s.as_str()) == Some("enter") {
            enters += 1;
        }
    }
    assert!(text.contains("\"event\":\"new_subgoal\""), "{text}");
    assert!(enters > 0, "span enters should be recorded before the kill");
}

#[test]
fn every_trace_line_is_valid_json_with_schema_keys() {
    let got = trace_figure1();
    assert!(!got.is_empty());
    for line in got.lines() {
        let v = json::parse(line).unwrap_or_else(|e| panic!("bad JSON line {line:?}: {e}"));
        let kind = v.get("event").and_then(|e| e.as_str()).expect("event key");
        assert!(
            [
                "new_subgoal",
                "clause_resolution",
                "answer_insert",
                "duplicate_answer",
                "answer_return",
                "call_abstracted",
                "answer_widened",
                "subsumed_call",
                "subgoal_complete",
            ]
            .contains(&kind),
            "unknown event kind {kind}"
        );
        assert!(
            v.get("pred").and_then(|p| p.as_str()).is_some(),
            "pred key in {line}"
        );
    }
}
