//! Integration tests: run every analyzer over the full benchmark suite and
//! cross-check the implementations against each other — the tabled engine
//! vs. the hand-coded direct analyzer vs. the magic-sets bottom-up route.

use tablog_core::depthk::DepthKAnalyzer;
use tablog_core::direct::DirectAnalyzer;
use tablog_core::groundness::{transform_program, EntryPoint, GroundnessAnalyzer, IffMode};
use tablog_core::strictness::StrictnessAnalyzer;
use tablog_magic::BottomUp;
use tablog_suite::{depthk_benchmarks, fun_benchmarks, logic_benchmarks};
use tablog_syntax::parse_program;

#[test]
fn groundness_completes_on_every_table1_benchmark() {
    for b in logic_benchmarks() {
        let report = GroundnessAnalyzer::new()
            .analyze_source(b.source)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert!(report.predicates().count() > 0, "{}", b.name);
        assert!(report.table_bytes() > 0, "{}", b.name);
    }
}

#[test]
fn tabled_and_direct_groundness_agree_on_open_calls() {
    for b in logic_benchmarks() {
        let tabled = GroundnessAnalyzer::new().analyze_source(b.source).unwrap();
        let direct = DirectAnalyzer::new().analyze_source(b.source).unwrap();
        for p in tabled.predicates() {
            let d = direct
                .output_groundness(&p.name, p.arity)
                .unwrap_or_else(|| panic!("{}: {} missing in direct", b.name, p.name));
            assert_eq!(p.prop, d.prop, "{}: {}/{}", b.name, p.name, p.arity);
        }
    }
}

#[test]
fn goal_directed_tabled_and_direct_agree() {
    for b in logic_benchmarks() {
        let program = parse_program(b.source).unwrap();
        let entry = EntryPoint::parse(b.entry).unwrap();
        let tabled = GroundnessAnalyzer::new()
            .analyze_with_entries(&program, std::slice::from_ref(&entry))
            .unwrap();
        let direct = DirectAnalyzer::new()
            .analyze_with_entries(&program, std::slice::from_ref(&entry))
            .unwrap();
        for p in tabled.predicates() {
            if p.success_rows.is_empty() {
                continue; // unreachable from the entry
            }
            let d = direct
                .output_groundness(&p.name, p.arity)
                .unwrap_or_else(|| panic!("{}: {} missing in direct", b.name, p.name));
            assert_eq!(
                p.definitely_ground, d.definitely_ground,
                "{}: {}/{}",
                b.name, p.name, p.arity
            );
        }
    }
}

#[test]
fn iff_fact_mode_matches_builtin_mode_on_suite() {
    for b in logic_benchmarks() {
        let builtin = GroundnessAnalyzer::new().analyze_source(b.source).unwrap();
        let mut facts_analyzer = GroundnessAnalyzer::new();
        facts_analyzer.iff_mode = IffMode::Facts;
        let facts = facts_analyzer.analyze_source(b.source).unwrap();
        for p in builtin.predicates() {
            let q = facts.output_groundness(&p.name, p.arity).unwrap();
            assert_eq!(p.prop, q.prop, "{}: {}/{}", b.name, p.name, p.arity);
        }
    }
}

#[test]
fn magic_bottom_up_matches_tabled_success_sets() {
    // The bottom-up route grounds everything, so compare expanded rows.
    for b in logic_benchmarks() {
        let program = parse_program(b.source).unwrap();
        let (rules, preds) = transform_program(&program, IffMode::Builtin).unwrap();
        let mut eval = BottomUp::new(rules);
        eval.run().unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let tabled = GroundnessAnalyzer::new().analyze_source(b.source).unwrap();
        for &(name, arity) in preds.keys() {
            let pname = tablog_term::sym_name(name);
            let t = tabled.output_groundness(&pname, arity).unwrap();
            let f = tablog_term::Functor {
                name: tablog_term::intern(&format!("gp${pname}")),
                arity,
            };
            let rel = eval.relation(f);
            // Expand the tabled rows (free vars -> both values) and compare
            // as sets of boolean tuples.
            let mut tabled_rows: Vec<Vec<bool>> = t.prop.rows();
            tabled_rows.sort();
            let mut magic_rows: Vec<Vec<bool>> = rel
                .iter()
                .map(|tuple| {
                    tuple
                        .iter()
                        .map(|v| *v == tablog_term::atom("true"))
                        .collect()
                })
                .collect();
            magic_rows.sort();
            magic_rows.dedup();
            assert_eq!(tabled_rows, magic_rows, "{}: {}/{}", b.name, pname, arity);
        }
    }
}

#[test]
fn strictness_completes_on_every_table3_benchmark() {
    for b in fun_benchmarks() {
        let report = StrictnessAnalyzer::new()
            .analyze_source(b.source)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert!(report.functions().count() > 0, "{}", b.name);
    }
}

#[test]
fn strictness_spot_checks_on_suite() {
    use tablog_core::strictness::Demand;
    let ms = StrictnessAnalyzer::new()
        .analyze_source(tablog_suite::fun_benchmark("mergesort").unwrap().source)
        .unwrap();
    // merge fully demands both lists under full demand.
    let merge = ms.strictness("merge").unwrap();
    assert_eq!(merge.under_e, vec![Demand::E, Demand::E]);
    // msort is strict in its list.
    assert!(ms.strictness("msort").unwrap().is_strict(0));

    let qs = StrictnessAnalyzer::new()
        .analyze_source(tablog_suite::fun_benchmark("quicksort").unwrap().source)
        .unwrap();
    assert!(qs.strictness("qsort").unwrap().is_strict(0));
    // below/above are strict in the pivot and the list.
    assert!(qs.strictness("below").unwrap().is_strict(1));
}

#[test]
fn depthk_completes_on_every_table4_benchmark() {
    // Goal-directed with k = 1, as the benchmark harness runs it: open
    // calls over `read`'s dozens of character-code constants make the
    // depth-2 abstract domain combinatorially expensive.
    for b in depthk_benchmarks() {
        let program = parse_program(b.source).unwrap();
        let entry = EntryPoint::parse(b.entry).unwrap();
        let report = DepthKAnalyzer::new(1)
            .analyze_with_entries(&program, &[entry])
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert!(report.predicates().count() > 0, "{}", b.name);
        // Soundness spot check: the entry instantiation is respected.
        for p in report.predicates() {
            for row in &p.answers {
                assert_eq!(row.len(), p.arity, "{}: {}", b.name, p.name);
            }
        }
    }
}
