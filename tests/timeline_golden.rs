//! Golden-file and determinism tests for the Chrome-trace timeline export,
//! pinned on the paper's Figure 1 example (`examples/figure1.pl`, the
//! Prop-abstracted append) under the default depth-first scheduler — the
//! same program and goal the `tablog timeline` CI artifact uses.
//!
//! Timestamps vary run to run, so the golden file freezes the export's
//! *structural projection*: every event's phase, name, predicate
//! attribution, and counter values, in emission order, with `ts` stripped.
//! Spans nest deterministically and the counter series is exact (worklist
//! depths, table counts, answer counts, table bytes), so any change to the
//! instrumentation points, the sampling cadence, or the exporter's frame
//! layout shows up as a diff here. Bless an intentional change with
//! `UPDATE_GOLDEN=1 cargo test --test timeline_golden`.

use std::path::PathBuf;
use std::sync::Arc;
use tablog_engine::{Engine, EngineOptions, LoadMode, MetricsRegistry, Scheduling};
use tablog_trace::json::{parse, JsonValue};
use tablog_trace::{chrome_trace, chrome_trace_with_flows, CHROME_COUNTER_TRACKS};

const GOAL: &str = "gp_ap(X, Y, Z)";

fn figure1_source() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/figure1.pl");
    std::fs::read_to_string(path).expect("examples/figure1.pl exists")
}

/// Runs Figure 1 with spans and counters recording and exports the
/// Chrome-trace document, exactly as `tablog timeline --counters` does.
fn figure1_trace() -> String {
    let registry = Arc::new(MetricsRegistry::new());
    let opts = EngineOptions {
        trace: Some(registry.clone() as Arc<dyn tablog_trace::TraceSink>),
        record_spans: true,
        record_counters: true,
        ..Default::default()
    };
    let engine = Engine::from_source_with(&figure1_source(), LoadMode::Dynamic, opts)
        .expect("figure 1 loads");
    let mut b = tablog_term::Bindings::new();
    let (g, _) = tablog_syntax::parse_term(GOAL, &mut b).expect("goal parses");
    engine.evaluate(&[g], &[], &b).expect("figure 1 evaluates");
    chrome_trace(&registry.spans().snapshot(), &registry.counters().samples())
}

/// The timestamp-free projection of a trace document: one line per event
/// in emission order, carrying everything deterministic (phase, name,
/// predicate attribution, counter values).
fn fingerprint(doc: &str) -> String {
    let v = parse(doc).expect("chrome trace parses");
    let events = v
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .expect("traceEvents array");
    let mut out = String::new();
    for e in events {
        let str_of = |key: &str| e.get(key).and_then(JsonValue::as_str).map(str::to_owned);
        let ph = str_of("ph").expect("every event has ph");
        let name = str_of("name").expect("every event has name");
        out.push_str(&format!("{ph} {name}"));
        if let Some(args) = e.get("args") {
            for key in ["pred", "value", "expands", "returns"] {
                if let Some(val) = args.get(key) {
                    match (val.as_str(), val.as_f64()) {
                        (Some(s), _) => out.push_str(&format!(" {key}={s}")),
                        (None, Some(n)) => out.push_str(&format!(" {key}={n}")),
                        _ => {}
                    }
                }
            }
        }
        out.push('\n');
    }
    out
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/figure1_timeline.txt")
}

#[test]
fn figure1_timeline_structure_matches_golden_file() {
    let got = fingerprint(&figure1_trace());
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want =
        std::fs::read_to_string(&path).expect("golden file exists (UPDATE_GOLDEN=1 to create)");
    assert_eq!(
        got, want,
        "timeline structure drifted from the golden file; \
         re-bless with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn timeline_structure_is_deterministic_across_runs() {
    assert_eq!(fingerprint(&figure1_trace()), fingerprint(&figure1_trace()));
}

// ---- PR 10: the two-worker parallel layout ------------------------------

/// Runs Figure 1 under the parallel scheduler with two workers and exports
/// the trace exactly as `tablog timeline --scheduler parallel` does.
///
/// Figure 1 has a single tabled SCC, which the first-touch claim hands to
/// worker 0 (ties prefer the caller), so the run exchanges no messages and
/// every worker's event stream is deterministic — making it the one
/// parallel configuration whose layout a golden file can pin.
fn figure1_parallel_trace() -> String {
    let registry = Arc::new(MetricsRegistry::new());
    let opts = EngineOptions {
        trace: Some(registry.clone() as Arc<dyn tablog_trace::TraceSink>),
        record_spans: true,
        record_counters: true,
        scheduling: Scheduling::Parallel,
        threads: 2,
        ..Default::default()
    };
    let engine = Engine::from_source_with(&figure1_source(), LoadMode::Dynamic, opts)
        .expect("figure 1 loads");
    let mut b = tablog_term::Bindings::new();
    let (g, _) = tablog_syntax::parse_term(GOAL, &mut b).expect("goal parses");
    let eval = engine.evaluate(&[g], &[], &b).expect("figure 1 evaluates");
    let flows = eval
        .parallel_report()
        .map_or(&[][..], |p| p.flows.as_slice());
    chrome_trace_with_flows(
        &registry.spans().snapshot(),
        &registry.counters().samples(),
        flows,
    )
}

/// The lane-grouped timestamp-free projection of a parallel trace: one
/// section per `tid` in ascending order, opened by the lane's
/// `thread_name`, followed by that lane's span/counter events in emission
/// order. Grouping by lane removes the only racy axis (cross-lane event
/// interleaving in the shared sink); within a lane each worker is single-
/// threaded, so its sequence is exact.
fn lane_fingerprint(doc: &str) -> String {
    let v = parse(doc).expect("chrome trace parses");
    let events = v
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .expect("traceEvents array");
    let tid_of = |e: &JsonValue| e.get("tid").and_then(JsonValue::as_f64).unwrap_or(0.0) as i64;
    let mut tids: Vec<i64> = events.iter().map(tid_of).collect();
    tids.sort_unstable();
    tids.dedup();
    let mut out = String::new();
    let mut flow_count = 0usize;
    for tid in tids {
        let mut header = format!("lane {tid}");
        for e in events.iter().filter(|e| tid_of(e) == tid) {
            let ph = e.get("ph").and_then(JsonValue::as_str).unwrap_or("");
            if ph == "M" && e.get("name").and_then(JsonValue::as_str) == Some("thread_name") {
                let name = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(JsonValue::as_str)
                    .unwrap_or("?");
                header.push_str(&format!(" {name}"));
            }
        }
        out.push_str(&header);
        out.push('\n');
        for e in events.iter().filter(|e| tid_of(e) == tid) {
            let str_of = |key: &str| e.get(key).and_then(JsonValue::as_str).map(str::to_owned);
            let ph = str_of("ph").expect("every event has ph");
            if ph == "s" || ph == "f" {
                flow_count += 1;
                continue;
            }
            if ph == "M" {
                continue;
            }
            let name = str_of("name").expect("every event has name");
            out.push_str(&format!("  {ph} {name}"));
            if let Some(args) = e.get("args") {
                for key in ["pred", "value", "expands", "returns"] {
                    if let Some(val) = args.get(key) {
                        match (val.as_str(), val.as_f64()) {
                            (Some(s), _) => out.push_str(&format!(" {key}={s}")),
                            (None, Some(n)) => out.push_str(&format!(" {key}={n}")),
                            _ => {}
                        }
                    }
                }
            }
            out.push('\n');
        }
    }
    out.push_str(&format!("flows {flow_count}\n"));
    out
}

fn parallel_golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/figure1_parallel_timeline.txt")
}

#[test]
fn figure1_two_worker_timeline_layout_matches_golden_file() {
    let got = lane_fingerprint(&figure1_parallel_trace());
    let path = parallel_golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want =
        std::fs::read_to_string(&path).expect("golden file exists (UPDATE_GOLDEN=1 to create)");
    assert_eq!(
        got, want,
        "parallel timeline layout drifted from the golden file; \
         re-bless with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn parallel_timeline_layout_is_deterministic_across_runs() {
    assert_eq!(
        lane_fingerprint(&figure1_parallel_trace()),
        lane_fingerprint(&figure1_parallel_trace())
    );
}

#[test]
fn timeline_is_valid_chrome_trace_with_all_counter_tracks() {
    let doc = figure1_trace();
    let v = parse(&doc).expect("chrome trace parses");
    assert_eq!(
        v.get("displayTimeUnit").and_then(JsonValue::as_str),
        Some("ms")
    );
    let events = v
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .expect("traceEvents array")
        .to_vec();
    let ph = |e: &JsonValue| e.get("ph").and_then(JsonValue::as_str).unwrap().to_owned();

    // Duration events balance and nest.
    let mut depth = 0i64;
    for e in &events {
        match ph(e).as_str() {
            "B" => depth += 1,
            "E" => {
                depth -= 1;
                assert!(depth >= 0, "E without matching B");
            }
            _ => {}
        }
    }
    assert_eq!(depth, 0, "unbalanced B/E events");
    assert!(events.iter().any(|e| ph(e) == "B"), "no span events at all");

    // All four counter tracks are present with monotone timestamps.
    let counter_names: Vec<String> = events
        .iter()
        .filter(|e| ph(e) == "C")
        .map(|e| {
            e.get("name")
                .and_then(JsonValue::as_str)
                .unwrap()
                .to_owned()
        })
        .collect();
    assert!(counter_names.len() >= CHROME_COUNTER_TRACKS.len());
    for want in CHROME_COUNTER_TRACKS {
        assert!(
            counter_names.iter().any(|n| n == want),
            "missing counter track {want}"
        );
    }
    let ts: Vec<f64> = events
        .iter()
        .filter_map(|e| e.get("ts").and_then(JsonValue::as_f64))
        .collect();
    assert!(ts.iter().all(|t| *t >= 0.0));
    assert_eq!(
        ts.iter().copied().fold(f64::INFINITY, f64::min),
        0.0,
        "timestamps must be normalized to the earliest observation"
    );
}
