//! End-to-end tests of the `tablog` command-line tool.

use std::io::Write;
use std::process::Command;

fn tablog(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_tablog"))
        .args(args)
        .output()
        .expect("spawn tablog");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn temp_file(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("tablog-cli-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create");
    f.write_all(contents.as_bytes()).expect("write");
    path
}

const GRAPH: &str = "
    :- table path/2.
    path(X, Y) :- path(X, Z), edge(Z, Y).
    path(X, Y) :- edge(X, Y).
    edge(a, b). edge(b, c).
";

#[test]
fn query_prints_solutions() {
    let f = temp_file("graph.pl", GRAPH);
    let (out, err, ok) = tablog(&["query", f.to_str().unwrap(), "path(a, X)"]);
    assert!(ok, "{err}");
    assert!(out.contains("X = b") && out.contains("X = c"), "{out}");
}

#[test]
fn query_failing_goal_says_no() {
    let f = temp_file("graph2.pl", GRAPH);
    let (out, _, ok) = tablog(&["query", f.to_str().unwrap(), "path(c, a)"]);
    assert!(ok);
    assert_eq!(out.trim(), "no");
}

#[test]
fn tables_dump_shows_subgoals() {
    let f = temp_file("graph3.pl", GRAPH);
    let (out, _, ok) = tablog(&["tables", f.to_str().unwrap(), "path(a, X)"]);
    assert!(ok);
    assert!(out.contains("path(a,A)"), "{out}");
    assert!(out.contains("answers"), "{out}");
}

#[test]
fn ground_reports_groundness() {
    let f = temp_file(
        "app.pl",
        "app([], Y, Y).\napp([X|Xs], Y, [X|Z]) :- app(Xs, Y, Z).",
    );
    let (out, err, ok) = tablog(&["ground", f.to_str().unwrap()]);
    assert!(ok, "{err}");
    assert!(out.contains("app/3"), "{out}");
}

#[test]
fn ground_with_entry_and_direct_agree_in_output_format() {
    let f = temp_file(
        "qs.pl",
        tablog_suite::logic_benchmark("qsort").unwrap().source,
    );
    let (out1, _, ok1) = tablog(&["ground", f.to_str().unwrap(), "--entry", "qsort(g, f)"]);
    let (out2, _, ok2) = tablog(&[
        "ground",
        f.to_str().unwrap(),
        "--entry",
        "qsort(g, f)",
        "--direct",
    ]);
    assert!(ok1 && ok2);
    assert!(out1.contains("qsort/2"), "{out1}");
    assert!(out2.contains("qsort/2"), "{out2}");
    // Both report quicksort's arguments as ground on success.
    assert!(out1.contains("ground=[true, true]"), "{out1}");
    assert!(out2.contains("ground=[true, true]"), "{out2}");
}

#[test]
fn depthk_prints_abstract_answers() {
    let f = temp_file("nat.pl", "nat(0).\nnat(s(X)) :- nat(X).");
    let (out, err, ok) = tablog(&["depthk", f.to_str().unwrap(), "--k", "1"]);
    assert!(ok, "{err}");
    assert!(out.contains("nat/1"), "{out}");
    assert!(out.contains("ground=[true]"), "{out}");
}

#[test]
fn strict_prints_summaries() {
    let f = temp_file(
        "ap.eq",
        "ap(nil, ys) = ys;\nap(x : xs, ys) = x : ap(xs, ys);",
    );
    let (out, err, ok) = tablog(&["strict", f.to_str().unwrap()]);
    assert!(ok, "{err}");
    assert!(out.contains("ap: e->ee d->dn"), "{out}");
}

#[test]
fn modes_prints_signatures() {
    let f = temp_file(
        "qs2.pl",
        tablog_suite::logic_benchmark("qsort").unwrap().source,
    );
    let (out, err, ok) = tablog(&["modes", f.to_str().unwrap(), "--entry", "qsort(g, f)"]);
    assert!(ok, "{err}");
    assert!(out.contains("qsort(+, -)"), "{out}");
    assert!(out.contains("append(+, +, -)"), "{out}");
}

#[test]
fn modes_without_entry_is_an_error() {
    let f = temp_file("qs3.pl", "p(a).");
    let (_, err, ok) = tablog(&["modes", f.to_str().unwrap()]);
    assert!(!ok);
    assert!(err.contains("--entry"), "{err}");
}

#[test]
fn types_prints_schemes() {
    let f = temp_file(
        "typed.eq",
        "ap(nil, ys) = ys;\nap(x : xs, ys) = x : ap(xs, ys);\nlen(nil) = 0;\nlen(x : xs) = 1 + len(xs);",
    );
    let (out, err, ok) = tablog(&["types", f.to_str().unwrap()]);
    assert!(ok, "{err}");
    assert!(out.contains("ap : (list(A), list(A)) -> list(A)"), "{out}");
    assert!(out.contains("len : (list(A)) -> int"), "{out}");
}

#[test]
fn types_rejects_ill_typed_programs() {
    let f = temp_file("bad.eq", "f(x) = if x == 0 then 1 else nil;");
    let (_, err, ok) = tablog(&["types", f.to_str().unwrap()]);
    assert!(!ok);
    assert!(err.contains("type error"), "{err}");
}

#[test]
fn run_evaluates_functional_main() {
    let f = temp_file(
        "go.eq",
        "ap(nil, ys) = ys;\nap(x : xs, ys) = x : ap(xs, ys);\nmain = ap([1], [2, 3]);",
    );
    let (out, err, ok) = tablog(&["run", f.to_str().unwrap()]);
    assert!(ok, "{err}");
    assert_eq!(out.trim(), "[1,2,3]");
}

#[test]
fn missing_file_fails_cleanly() {
    let (_, err, ok) = tablog(&["query", "/nonexistent.pl", "x"]);
    assert!(!ok);
    assert!(err.contains("cannot read"), "{err}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let (_, err, ok) = tablog(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("usage"), "{err}");
}

fn repo_example(name: &str) -> String {
    format!("{}/examples/{}", env!("CARGO_MANIFEST_DIR"), name)
}

#[test]
fn stats_prints_per_predicate_table() {
    let (out, err, ok) = tablog(&["stats", &repo_example("figure1.pl"), "gp_ap(X, Y, Z)"]);
    assert!(ok, "{err}");
    assert!(out.contains("gp_ap/3"), "{out}");
    assert!(out.contains("subgoals"), "{out}");
    assert!(out.contains("total"), "{out}");
    assert!(out.contains("phases:"), "{out}");
}

#[test]
fn stats_json_is_valid_and_has_required_fields() {
    let (out, err, ok) = tablog(&[
        "stats",
        &repo_example("figure1.pl"),
        "gp_ap(X, Y, Z)",
        "--json",
    ]);
    assert!(ok, "{err}");
    let v = tablog_trace::json::parse(out.trim()).expect("stats --json emits valid JSON");
    let row = v
        .get("predicates")
        .and_then(|p| p.get("gp_ap/3"))
        .expect("per-predicate row for gp_ap/3");
    for field in [
        "subgoals",
        "answers",
        "duplicate_answers",
        "clause_resolutions",
        "table_bytes",
    ] {
        let n = row.get(field).and_then(|f| f.as_f64());
        assert!(n.is_some(), "missing {field} in {out}");
    }
    assert!(
        row.get("subgoals").unwrap().as_f64().unwrap() >= 1.0,
        "{out}"
    );
    assert!(
        row.get("table_bytes").unwrap().as_f64().unwrap() > 0.0,
        "{out}"
    );
    assert!(v.get("totals").is_some(), "{out}");
    assert!(
        v.get("phases_us").and_then(|p| p.get("evaluate")).is_some(),
        "{out}"
    );
}

#[test]
fn stats_json_embeds_engine_options() {
    let (out, err, ok) = tablog(&[
        "stats",
        &repo_example("figure1.pl"),
        "gp_ap(X, Y, Z)",
        "--json",
    ]);
    assert!(ok, "{err}");
    let v = tablog_trace::json::parse(out.trim()).expect("valid JSON");
    let opts = v.get("options").expect("options object in stats --json");
    for key in [
        "scheduling",
        "forward_subsumption",
        "call_abstraction",
        "answer_widening",
        "record_provenance",
    ] {
        assert!(
            opts.get(key).and_then(|o| o.as_str()).is_some(),
            "missing option {key} in {out}"
        );
    }
    assert_eq!(
        opts.get("record_provenance").unwrap().as_str(),
        Some("off"),
        "{out}"
    );
}

#[test]
fn explain_prints_justification_trees() {
    let (out, err, ok) = tablog(&["explain", &repo_example("figure1.pl"), "gp_ap(X, Y, Z)"]);
    assert!(ok, "{err}");
    assert!(out.contains("gp_ap("), "{out}");
    assert!(out.contains("via gp_ap/3#"), "{out}");
    assert!(out.contains("[builtin]") || out.contains("[fact]"), "{out}");
}

#[test]
fn explain_json_round_trips_through_trace_parser() {
    let (out, err, ok) = tablog(&[
        "explain",
        &repo_example("figure1.pl"),
        "gp_ap(X, Y, Z)",
        "--json",
    ]);
    assert!(ok, "{err}");
    let v = tablog_trace::json::parse(out.trim()).expect("explain --json is valid JSON");
    assert_eq!(v.get("goal").unwrap().as_str(), Some("gp_ap(X, Y, Z)"));
    let trees = v.get("justifications").unwrap().as_arr().unwrap();
    assert!(!trees.is_empty(), "{out}");
    for t in trees {
        assert!(t.get("status").and_then(|s| s.as_str()).is_some(), "{out}");
        assert!(t.get("clauses").and_then(|c| c.as_arr()).is_some(), "{out}");
    }
}

#[test]
fn explain_analysis_flag_routes_through_analyzer() {
    let f = temp_file(
        "app_explain.pl",
        "app([], Y, Y).\napp([X|Xs], Y, [X|Z]) :- app(Xs, Y, Z).",
    );
    let (out, err, ok) = tablog(&[
        "explain",
        f.to_str().unwrap(),
        "app(g, g, Z)",
        "--analysis",
        "ground",
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("goal: app(g, g, Z)"), "{out}");
    assert!(out.contains("abstract: 'gp$app'("), "{out}");
    let (_, err2, ok2) = tablog(&[
        "explain",
        f.to_str().unwrap(),
        "app(g, g, Z)",
        "--analysis",
        "frobnicate",
    ]);
    assert!(!ok2);
    assert!(err2.contains("unknown --analysis"), "{err2}");
}

#[test]
fn forest_dot_flag_writes_dot_file() {
    let dot = std::env::temp_dir()
        .join("tablog-cli-tests")
        .join("figure1_forest.dot");
    std::fs::create_dir_all(dot.parent().unwrap()).expect("mkdir");
    let (out, err, ok) = tablog(&[
        "forest",
        &repo_example("figure1.pl"),
        "gp_ap(X, Y, Z)",
        "--dot",
        dot.to_str().unwrap(),
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("wrote"), "{out}");
    let text = std::fs::read_to_string(&dot).expect("dot file written");
    assert!(text.starts_with("digraph forest {"), "{text}");
    assert!(text.contains("gp_ap("), "{text}");
}

#[test]
fn forest_json_parses_as_forest() {
    let (out, err, ok) = tablog(&[
        "forest",
        &repo_example("figure1.pl"),
        "gp_ap(X, Y, Z)",
        "--json",
    ]);
    assert!(ok, "{err}");
    let forest = tablog_trace::Forest::from_json(out.trim()).expect("forest JSON parses");
    assert!(!forest.subgoals.is_empty());
}

#[test]
fn profile_flag_appends_metrics_to_analyses() {
    let f = temp_file(
        "app_prof.pl",
        "app([], Y, Y).\napp([X|Xs], Y, [X|Z]) :- app(Xs, Y, Z).",
    );
    let (out, err, ok) = tablog(&["ground", f.to_str().unwrap(), "--profile"]);
    assert!(ok, "{err}");
    assert!(out.contains("gp$app/3"), "{out}");
    assert!(out.contains("phases:"), "{out}");
    // Without the flag there is no metrics table.
    let (plain, _, ok2) = tablog(&["ground", f.to_str().unwrap()]);
    assert!(ok2);
    assert!(!plain.contains("gp$app/3"), "{plain}");
}

#[test]
fn trace_flag_writes_json_lines() {
    let f = temp_file("graph_trace.pl", GRAPH);
    let trace = std::env::temp_dir()
        .join("tablog-cli-tests")
        .join("trace_out.jsonl");
    let (_, err, ok) = tablog(&[
        "query",
        f.to_str().unwrap(),
        "path(a, X)",
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert!(ok, "{err}");
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    assert!(!text.is_empty());
    for line in text.lines() {
        tablog_trace::json::parse(line).expect("trace line is valid JSON");
    }
    assert!(text.contains("\"event\":\"new_subgoal\""), "{text}");
    assert!(text.contains("\"event\":\"answer_insert\""), "{text}");
}

#[test]
fn tables_top_reports_heap_attribution() {
    let f = temp_file("graph_top.pl", GRAPH);
    let (out, err, ok) = tablog(&["tables", f.to_str().unwrap(), "path(a, X)", "--top", "3"]);
    assert!(ok, "{err}");
    assert!(out.contains("attributed bytes"), "{out}");
    // GRAPH's left recursion makes only 2 tables, so --top 3 caps at 2.
    assert!(out.contains("top 2 by bytes"), "{out}");
    assert!(out.contains("top 2 by answers"), "{out}");
    assert!(out.contains("path(a,A)"), "{out}");
}

#[test]
fn tables_json_attribution_sums_to_total() {
    let f = temp_file("graph_tabjson.pl", GRAPH);
    let (out, err, ok) = tablog(&["tables", f.to_str().unwrap(), "path(a, X)", "--json"]);
    assert!(ok, "{err}");
    let v = tablog_trace::json::parse(out.trim()).expect("valid JSON");
    let total = v
        .get("total_bytes")
        .and_then(|t| t.as_f64())
        .expect("total_bytes");
    let tables = v
        .get("tables")
        .and_then(|t| t.as_arr())
        .expect("tables array");
    assert!(!tables.is_empty());
    let mut sum = 0.0;
    for row in tables {
        let part = |key: &str| row.get(key).and_then(|x| x.as_f64()).expect(key);
        // Attributed components sum per row and across the report.
        assert_eq!(
            part("bytes"),
            part("term_bytes") + part("entry_bytes") + part("prov_bytes"),
            "{out}"
        );
        sum += part("bytes");
    }
    assert_eq!(sum, total, "{out}");
}

#[test]
fn profile_reports_spans_and_sccs() {
    let f = temp_file("graph_prof.pl", GRAPH);
    let (out, err, ok) = tablog(&["profile", f.to_str().unwrap(), "path(a, X)"]);
    assert!(ok, "{err}");
    assert!(out.contains("spans:"), "{out}");
    assert!(out.contains("evaluate"), "{out}");
    assert!(out.contains("dispatch"), "{out}");
    assert!(out.contains("by scc:"), "{out}");
    assert!(out.contains("path/2"), "{out}");
}

#[test]
fn profile_json_embeds_span_tree_and_sccs() {
    let f = temp_file("graph_profjson.pl", GRAPH);
    let (out, err, ok) = tablog(&["profile", f.to_str().unwrap(), "path(a, X)", "--json"]);
    assert!(ok, "{err}");
    let v = tablog_trace::json::parse(out.trim()).expect("valid JSON");
    let spans = v.get("spans").expect("spans object");
    assert!(
        spans.get("count").and_then(|c| c.as_f64()).unwrap_or(0.0) > 0.0,
        "{out}"
    );
    assert!(
        spans
            .get("by_name")
            .and_then(|n| n.get("evaluate"))
            .is_some(),
        "{out}"
    );
    let sccs = v.get("sccs").and_then(|s| s.as_arr()).expect("sccs array");
    assert!(
        sccs.iter().any(|s| {
            s.get("scc")
                .and_then(|l| l.as_str())
                .is_some_and(|l| l.contains("path/2"))
        }),
        "{out}"
    );
    let engine = v.get("engine").expect("engine snapshot");
    assert!(
        engine.get("steps").and_then(|s| s.as_f64()).unwrap_or(0.0) > 0.0,
        "{out}"
    );
}

#[test]
fn profile_folded_writes_collapsed_stacks() {
    let f = temp_file("graph_folded.pl", GRAPH);
    let folded = std::env::temp_dir()
        .join("tablog-cli-tests")
        .join("profile_out.folded");
    let (_, err, ok) = tablog(&[
        "profile",
        f.to_str().unwrap(),
        "path(a, X)",
        "--folded",
        folded.to_str().unwrap(),
    ]);
    assert!(ok, "{err}");
    let text = std::fs::read_to_string(&folded).expect("folded file written");
    assert!(!text.is_empty());
    for line in text.lines() {
        // `frame;frame;… count` — count is a bare integer, frames nonempty.
        let (stack, count) = line.rsplit_once(' ').expect("stack and count");
        assert!(count.parse::<u64>().is_ok(), "bad count in {line:?}");
        assert!(
            stack.split(';').all(|fr| !fr.is_empty()),
            "bad stack in {line:?}"
        );
    }
    assert!(text.lines().any(|l| l.starts_with("evaluate")), "{text}");
    assert!(text.contains("dispatch:path/2"), "{text}");
}

#[test]
fn stats_json_embeds_engine_counters() {
    let (out, err, ok) = tablog(&[
        "stats",
        &repo_example("figure1.pl"),
        "gp_ap(X, Y, Z)",
        "--json",
    ]);
    assert!(ok, "{err}");
    let v = tablog_trace::json::parse(out.trim()).expect("valid JSON");
    let engine = v.get("engine").expect("engine object in stats --json");
    assert_eq!(
        engine.get("scheduler").and_then(|s| s.as_str()),
        Some("depth_first"),
        "{out}"
    );
    for key in [
        "steps",
        "clause_resolutions",
        "subgoals",
        "answers",
        "table_bytes",
    ] {
        assert!(
            engine.get(key).and_then(|x| x.as_f64()).unwrap_or(-1.0) >= 0.0,
            "missing engine counter {key} in {out}"
        );
    }
    assert!(
        engine.get("steps").and_then(|x| x.as_f64()).unwrap() > 0.0,
        "{out}"
    );
}

const BENCH_OLD: &str = r#"{"table1":[{"program":"fig1","total_us":10000,"table_bytes":1000}],
 "table2":[],"table3":[],"table4":[],"host":{"num_cpus":4}}"#;

#[test]
fn bench_diff_exits_nonzero_on_regression() {
    let old = temp_file("bench_old.json", BENCH_OLD);
    let new = temp_file(
        "bench_new_regressed.json",
        r#"{"table1":[{"program":"fig1","total_us":30000,"table_bytes":1200}],
         "table2":[],"table3":[],"table4":[],"host":{"num_cpus":4}}"#,
    );
    let (_, err, ok) = tablog(&[
        "bench-diff",
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        "--max-time-regress",
        "25",
        "--max-bytes-regress",
        "5",
    ]);
    assert!(!ok, "regressed input must fail the gate: {err}");
    assert!(err.contains("table_bytes"), "{err}");
    assert!(err.contains("total_us"), "{err}");
}

#[test]
fn bench_diff_passes_on_identical_documents() {
    let old = temp_file("bench_same.json", BENCH_OLD);
    let (out, err, ok) = tablog(&["bench-diff", old.to_str().unwrap(), old.to_str().unwrap()]);
    assert!(ok, "{err}");
    assert!(out.contains("bench-diff passed"), "{out}");
}

#[test]
fn bench_diff_demotes_time_regressions_across_hosts() {
    let old = temp_file("bench_host_old.json", BENCH_OLD);
    let new = temp_file(
        "bench_host_new.json",
        r#"{"table1":[{"program":"fig1","total_us":30000,"table_bytes":1000}],
         "table2":[],"table3":[],"table4":[],"host":{"num_cpus":16}}"#,
    );
    let (out, err, ok) = tablog(&["bench-diff", old.to_str().unwrap(), new.to_str().unwrap()]);
    assert!(ok, "time-only regression across hosts must not fail: {err}");
    assert!(err.contains("cpu counts differ"), "{err}");
    assert!(out.contains("bench-diff passed"), "{out}");
}

#[test]
fn timeline_emits_valid_chrome_trace_on_stdout() {
    let (out, err, ok) = tablog(&[
        "timeline",
        &repo_example("figure1.pl"),
        "gp_ap(X, Y, Z)",
        "--counters",
    ]);
    assert!(ok, "{err}");
    let v = tablog_trace::json::parse(out.trim()).expect("timeline emits valid JSON");
    assert_eq!(
        v.get("displayTimeUnit").and_then(|u| u.as_str()),
        Some("ms"),
        "{out}"
    );
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    let phase = |e: &tablog_trace::json::JsonValue| {
        e.get("ph")
            .and_then(|p| p.as_str())
            .unwrap_or("")
            .to_owned()
    };
    assert!(events.iter().any(|e| phase(e) == "B"), "no span events");
    // All four counter tracks appear when --counters is on.
    for want in tablog_trace::CHROME_COUNTER_TRACKS {
        assert!(
            events.iter().any(|e| {
                phase(e) == "C" && e.get("name").and_then(|n| n.as_str()) == Some(want)
            }),
            "missing counter track {want}"
        );
    }
}

#[test]
fn timeline_without_counters_has_spans_but_no_counter_events() {
    let f = temp_file("graph_timeline.pl", GRAPH);
    let (out, err, ok) = tablog(&["timeline", f.to_str().unwrap(), "path(a, X)"]);
    assert!(ok, "{err}");
    let v = tablog_trace::json::parse(out.trim()).expect("valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    let phase = |e: &tablog_trace::json::JsonValue| {
        e.get("ph")
            .and_then(|p| p.as_str())
            .unwrap_or("")
            .to_owned()
    };
    assert!(events.iter().any(|e| phase(e) == "B"), "{out}");
    assert!(!events.iter().any(|e| phase(e) == "C"), "{out}");
}

#[test]
fn timeline_out_flag_writes_trace_file() {
    let trace = std::env::temp_dir()
        .join("tablog-cli-tests")
        .join("figure1.trace.json");
    std::fs::create_dir_all(trace.parent().unwrap()).expect("mkdir");
    let (out, err, ok) = tablog(&[
        "timeline",
        &repo_example("figure1.pl"),
        "gp_ap(X, Y, Z)",
        "--counters",
        "--out",
        trace.to_str().unwrap(),
    ]);
    assert!(ok, "{err}");
    assert!(out.is_empty(), "--out keeps stdout clean: {out}");
    assert!(err.contains("wrote"), "{err}");
    assert!(err.contains("counter samples"), "{err}");
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    tablog_trace::json::parse(&text).expect("written trace is valid JSON");
}

#[test]
fn tables_top_rejects_zero_and_non_numeric_values() {
    let f = temp_file("graph_badtop.pl", GRAPH);
    let (_, err, ok) = tablog(&["tables", f.to_str().unwrap(), "path(a, X)", "--top", "0"]);
    assert!(!ok, "--top 0 must be rejected");
    assert!(err.contains("bad --top value 0"), "{err}");
    assert!(err.contains("at least 1"), "{err}");
    let (_, err2, ok2) = tablog(&["tables", f.to_str().unwrap(), "path(a, X)", "--top", "abc"]);
    assert!(!ok2, "--top abc must be rejected");
    assert!(err2.contains("bad --top value abc"), "{err2}");
    assert!(err2.contains("positive integer"), "{err2}");
}

#[test]
fn bench_diff_fails_on_peak_heap_regression() {
    let old = temp_file(
        "bench_heap_old.json",
        r#"{"table1":[{"program":"fig1","total_us":10000,"table_bytes":1000,
         "peak_heap_bytes":10485760,"heap_allocated_bytes":41943040}],
         "table2":[],"table3":[],"table4":[],"host":{"num_cpus":4}}"#,
    );
    let new = temp_file(
        "bench_heap_new.json",
        r#"{"table1":[{"program":"fig1","total_us":10000,"table_bytes":1000,
         "peak_heap_bytes":12582912,"heap_allocated_bytes":41943040}],
         "table2":[],"table3":[],"table4":[],"host":{"num_cpus":4}}"#,
    );
    let (_, err, ok) = tablog(&[
        "bench-diff",
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        "--max-heap-regress",
        "5",
    ]);
    assert!(!ok, "peak-heap regression must fail the gate: {err}");
    assert!(err.contains("peak_heap_bytes"), "{err}");
}

#[test]
fn trace_file_is_parseable_when_evaluation_dies_early() {
    // The goal body hits an undefined predicate mid-evaluation, so the
    // engine aborts with an error after some events have already been
    // buffered. The JSONL sink must still flush everything written up to
    // the abort, leaving a parseable (if truncated) trace behind.
    let f = temp_file(
        "aborting.pl",
        ":- table path/2.\n\
         path(X, Y) :- edge(X, Y).\n\
         path(X, Y) :- edge(X, Z), path(Z, Y).\n\
         edge(a, b). edge(b, c).\n\
         bad(X) :- path(a, X), nosuch(X).\n",
    );
    let trace = std::env::temp_dir()
        .join("tablog-cli-tests")
        .join("trace_killed.jsonl");
    let (_, err, ok) = tablog(&[
        "query",
        f.to_str().unwrap(),
        "bad(Q)",
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert!(!ok, "undefined predicate should be reported: {err}");
    assert!(err.contains("unknown predicate"), "{err}");
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    assert!(!text.is_empty(), "events before the abort must be flushed");
    for line in text.lines() {
        tablog_trace::json::parse(line).expect("trace line is valid JSON");
    }
    assert!(text.contains("\"event\":\"new_subgoal\""), "{text}");
}

const NUMBERS: &str = ":- table num/1.\nnum(z).\nnum(s(X)) :- num(X).";

#[test]
fn watch_step_budget_reports_partial_answers_with_exit_zero() {
    let f = temp_file("watch_nums.pl", NUMBERS);
    let (out, err, ok) = tablog(&["watch", f.to_str().unwrap(), "num(N)", "--max-steps", "200"]);
    assert!(ok, "a tripped budget is graceful, not a failure: {err}");
    assert!(out.contains("N = z"), "partial answers printed: {out}");
    assert!(out.contains("truncated: step budget of 200"), "{out}");
    assert!(out.contains("sound partial result"), "{out}");
    // The live view streamed at least the final snapshot to stderr.
    assert!(err.contains("watch:"), "{err}");
}

#[test]
fn watch_json_round_trips_truncation_per_budget_kind() {
    let f = temp_file("watch_json.pl", NUMBERS);
    for (flag, value, reason) in [
        ("--max-steps", "200", "steps"),
        ("--deadline", "100", "deadline"),
        ("--max-table-bytes", "2048", "table_bytes"),
    ] {
        let (out, err, ok) = tablog(&[
            "watch",
            f.to_str().unwrap(),
            "num(N)",
            flag,
            value,
            "--json",
        ]);
        assert!(ok, "{flag}: {err}");
        let v = tablog_trace::json::parse(out.trim())
            .unwrap_or_else(|e| panic!("{flag}: bad JSON {e}: {out}"));
        assert_eq!(
            v.get("complete").cloned(),
            Some(tablog_trace::json::JsonValue::Bool(false)),
            "{flag}: {out}"
        );
        let count = v.get("count").and_then(|c| c.as_f64()).expect("count");
        assert!(count > 0.0, "{flag}: partial answers in {out}");
        let answers = v.get("answers").and_then(|a| a.as_arr()).expect("answers");
        assert_eq!(answers.len() as f64, count, "{flag}: {out}");
        let t = v.get("truncation").expect("truncation object");
        assert_eq!(
            t.get("reason").and_then(|r| r.as_str()),
            Some(reason),
            "{flag}: {out}"
        );
        assert_eq!(
            t.get("limit").and_then(|l| l.as_f64()),
            Some(value.parse::<f64>().unwrap()),
            "{flag}: {out}"
        );
        let snap = t.get("snapshot").expect("truncation snapshot");
        assert!(
            snap.get("steps").and_then(|s| s.as_f64()).unwrap_or(0.0) > 0.0,
            "{flag}: {out}"
        );
        // The health block mirrors the final snapshot.
        let health = v.get("health").expect("health object");
        assert!(
            health.get("table_bytes").and_then(|b| b.as_f64()).is_some(),
            "{flag}: {out}"
        );
    }
}

#[test]
fn watch_completed_run_reports_complete() {
    let f = temp_file("watch_done.pl", GRAPH);
    let (out, err, ok) = tablog(&[
        "watch",
        f.to_str().unwrap(),
        "path(a, X)",
        "--max-steps",
        "100000",
        "--json",
    ]);
    assert!(ok, "{err}");
    let v = tablog_trace::json::parse(out.trim()).expect("valid JSON");
    assert_eq!(
        v.get("complete").cloned(),
        Some(tablog_trace::json::JsonValue::Bool(true)),
        "{out}"
    );
    assert_eq!(
        v.get("truncation").cloned(),
        Some(tablog_trace::json::JsonValue::Null),
        "{out}"
    );
    assert_eq!(v.get("count").and_then(|c| c.as_f64()), Some(2.0), "{out}");
}

#[test]
fn watch_metrics_flag_writes_valid_openmetrics() {
    let f = temp_file("watch_metrics.pl", NUMBERS);
    let prom = std::env::temp_dir()
        .join("tablog-cli-tests")
        .join("watch.prom");
    let (_, err, ok) = tablog(&[
        "watch",
        f.to_str().unwrap(),
        "num(N)",
        "--max-steps",
        "500",
        "--interval",
        "1",
        "--metrics",
        prom.to_str().unwrap(),
    ]);
    assert!(ok, "{err}");
    assert!(err.contains("wrote"), "{err}");
    let text = std::fs::read_to_string(&prom).expect("metrics file written");
    tablog_trace::validate_openmetrics(&text)
        .unwrap_or_else(|e| panic!("invalid OpenMetrics: {e}\n{text}"));
    assert!(text.contains("tablog_steps_total"), "{text}");
    assert!(text.ends_with("# EOF\n"), "{text}");
}

#[test]
fn unwritable_output_paths_fail_naming_the_path() {
    let f = temp_file("unwritable.pl", GRAPH);
    let file = f.to_str().unwrap();
    let bad = "/nonexistent-dir/tablog-out";
    for args in [
        vec![
            "watch",
            file,
            "path(a, X)",
            "--max-steps",
            "50",
            "--metrics",
            bad,
        ],
        vec!["timeline", file, "path(a, X)", "--out", bad],
        vec!["profile", file, "path(a, X)", "--folded", bad],
        vec!["forest", file, "path(a, X)", "--dot", bad],
        vec!["query", file, "path(a, X)", "--trace", bad],
    ] {
        let (_, err, ok) = tablog(&args);
        assert!(!ok, "{args:?} must fail");
        assert!(err.contains("cannot write"), "{args:?}: {err}");
        assert!(err.contains(bad), "{args:?} must name the path: {err}");
    }
}

#[test]
fn progress_flag_is_silent_when_stderr_is_not_a_tty() {
    let f = temp_file("progress.pl", GRAPH);
    let (plain, _, ok1) = tablog(&["query", f.to_str().unwrap(), "path(a, X)"]);
    let (with_flag, err, ok2) = tablog(&["query", f.to_str().unwrap(), "path(a, X)", "--progress"]);
    assert!(ok1 && ok2, "{err}");
    assert_eq!(plain, with_flag, "--progress must not change stdout");
    assert!(
        err.is_empty(),
        "--progress writes nothing when stderr is piped: {err:?}"
    );
}

// ---- PR 8: parallel scheduler CLI surface -------------------------------

#[test]
fn threads_rejects_zero_and_non_numeric_values() {
    let f = temp_file("graph_badthreads.pl", GRAPH);
    let file = f.to_str().unwrap();
    let (_, err, ok) = tablog(&[
        "query",
        file,
        "path(a, X)",
        "--scheduler",
        "parallel",
        "--threads",
        "0",
    ]);
    assert!(!ok, "--threads 0 must be rejected");
    assert!(err.contains("bad --threads value 0"), "{err}");
    assert!(err.contains("at least 1"), "{err}");
    let (_, err2, ok2) = tablog(&[
        "query",
        file,
        "path(a, X)",
        "--scheduler",
        "parallel",
        "--threads",
        "two",
    ]);
    assert!(!ok2, "--threads two must be rejected");
    assert!(err2.contains("bad --threads value two"), "{err2}");
    assert!(err2.contains("positive integer"), "{err2}");
    let (_, err3, ok3) = tablog(&["query", file, "path(a, X)", "--threads"]);
    assert!(!ok3, "a bare --threads must be rejected");
    assert!(err3.contains("--threads requires a worker count"), "{err3}");
}

#[test]
fn scheduler_rejects_unknown_strategy_naming_all_values() {
    let f = temp_file("graph_badsched.pl", GRAPH);
    let (_, err, ok) = tablog(&[
        "query",
        f.to_str().unwrap(),
        "path(a, X)",
        "--scheduler",
        "local",
    ]);
    assert!(!ok, "an unknown scheduler must be rejected");
    for name in ["depth_first", "breadth_first", "batched", "parallel"] {
        assert!(err.contains(name), "error must list {name}: {err}");
    }
}

#[test]
fn help_lists_every_scheduler_value_and_threads_flag() {
    let (out, _, ok) = tablog(&["help"]);
    assert!(ok);
    for name in ["depth-first", "breadth-first", "batched", "parallel"] {
        assert!(out.contains(name), "help must list {name}: {out}");
    }
    assert!(out.contains("--threads"), "help must list --threads: {out}");
}

#[test]
fn query_parallel_scheduler_matches_sequential_answers() {
    let f = temp_file("graph_par.pl", GRAPH);
    let file = f.to_str().unwrap();
    let (seq, _, ok1) = tablog(&["query", file, "path(X, Y)"]);
    let (par, err, ok2) = tablog(&[
        "query",
        file,
        "path(X, Y)",
        "--scheduler",
        "parallel",
        "--threads",
        "4",
    ]);
    assert!(ok1 && ok2, "{err}");
    let sort = |s: &str| {
        let mut v: Vec<&str> = s.lines().collect();
        v.sort_unstable();
        v.join("\n")
    };
    assert_eq!(sort(&seq), sort(&par), "parallel answers must match");
}

#[test]
fn stats_json_reports_parallel_scheduler_and_threads() {
    let f = temp_file("graph_parstats.pl", GRAPH);
    let (out, err, ok) = tablog(&[
        "stats",
        f.to_str().unwrap(),
        "path(a, X)",
        "--json",
        "--scheduler",
        "parallel",
        "--threads",
        "2",
    ]);
    assert!(ok, "{err}");
    let v = tablog_trace::json::parse(out.trim()).expect("valid JSON");
    let engine = v.get("engine").expect("engine object in stats --json");
    assert_eq!(
        engine.get("scheduler").and_then(|s| s.as_str()),
        Some("parallel"),
        "{out}"
    );
    assert!(
        out.contains("\"threads\":\"2\"") || out.contains("\"threads\": \"2\""),
        "options header must record the worker count: {out}"
    );
}

// ---- PR 10: parallel observatory ----------------------------------------

/// Independent SCCs feeding a `join` layer: enough parallel structure that
/// a 4-worker run reliably crosses worker boundaries.
const PAR_CROSS: &str = "
:- table path/2.
:- table rpath/2.
:- table apath/2.
:- table join/2.
path(X, Y) :- path(X, Z), edge(Z, Y).
path(X, Y) :- edge(X, Y).
rpath(X, Y) :- edge(Y, X).
rpath(X, Y) :- rpath(X, Z), edge(Y, Z).
apath(X, Y) :- path(X, Y).
apath(X, Y) :- rpath(X, Y).
join(X, Y) :- path(X, Z), rpath(Y, Z).
join(X, Y) :- apath(X, Y), path(Y, X).
edge(a, b). edge(b, c). edge(c, d). edge(d, a).
edge(b, d). edge(d, b). edge(a, c).
";

#[test]
fn threads_without_parallel_scheduler_is_an_error() {
    let f = temp_file("graph_seqthreads.pl", GRAPH);
    let file = f.to_str().unwrap();
    let (_, err, ok) = tablog(&["query", file, "path(a, X)", "--threads", "2"]);
    assert!(
        !ok,
        "--threads without --scheduler parallel must be rejected"
    );
    assert!(
        err.contains("--threads requires --scheduler parallel"),
        "{err}"
    );
    // Naming the scheduler explicitly as sequential is equally an error.
    let (_, err2, ok2) = tablog(&[
        "query",
        file,
        "path(a, X)",
        "--scheduler",
        "batched",
        "--threads",
        "2",
    ]);
    assert!(
        !ok2,
        "--threads with a sequential scheduler must be rejected"
    );
    assert!(
        err2.contains("--threads requires --scheduler parallel"),
        "{err2}"
    );
}

#[test]
fn workers_prints_load_table_and_scc_ownership() {
    let f = temp_file("workers_cross.pl", PAR_CROSS);
    let (out, err, ok) = tablog(&[
        "workers",
        f.to_str().unwrap(),
        "join(X, Y)",
        "--threads",
        "2",
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("parallel run: 2 workers"), "{out}");
    assert!(out.contains("imbalance"), "{out}");
    assert!(out.contains("busy(ms)"), "{out}");
    assert!(out.contains("scc ownership:"), "{out}");
    assert!(out.contains("path/2"), "{out}");
}

#[test]
fn workers_json_embeds_load_report() {
    let f = temp_file("workers_json.pl", PAR_CROSS);
    let (out, err, ok) = tablog(&[
        "workers",
        f.to_str().unwrap(),
        "join(X, Y)",
        "--threads",
        "2",
        "--json",
    ]);
    assert!(ok, "{err}");
    let v = tablog_trace::json::parse(out.trim()).expect("workers --json emits valid JSON");
    assert_eq!(
        v.get("threads").and_then(|t| t.as_f64()),
        Some(2.0),
        "{out}"
    );
    assert_eq!(
        v.get("pending_at_exit").and_then(|p| p.as_f64()),
        Some(0.0),
        "completed run must drain its credits: {out}"
    );
    let workers = v
        .get("workers")
        .and_then(|w| w.as_arr())
        .expect("workers array");
    assert_eq!(workers.len(), 2, "{out}");
    for w in workers {
        for key in [
            "busy_ns",
            "idle_ns",
            "recv_wait_ns",
            "dispatches",
            "msgs_sent",
        ] {
            assert!(
                w.get(key).and_then(|x| x.as_f64()).is_some(),
                "missing {key} in {out}"
            );
        }
    }
    assert!(v.get("sccs").and_then(|s| s.as_arr()).is_some(), "{out}");
    assert!(v.get("edges").and_then(|e| e.as_arr()).is_some(), "{out}");
    assert!(
        v.get("imbalance").and_then(|i| i.as_f64()).unwrap_or(0.0) >= 1.0,
        "{out}"
    );
}

#[test]
fn workers_metrics_flag_writes_per_worker_openmetrics() {
    let f = temp_file("workers_metrics.pl", PAR_CROSS);
    let prom = std::env::temp_dir()
        .join("tablog-cli-tests")
        .join("workers.prom");
    let (_, err, ok) = tablog(&[
        "workers",
        f.to_str().unwrap(),
        "join(X, Y)",
        "--threads",
        "2",
        "--metrics",
        prom.to_str().unwrap(),
    ]);
    assert!(ok, "{err}");
    assert!(err.contains("wrote"), "{err}");
    let text = std::fs::read_to_string(&prom).expect("metrics file written");
    tablog_trace::validate_openmetrics(&text)
        .unwrap_or_else(|e| panic!("invalid OpenMetrics: {e}\n{text}"));
    assert!(
        text.contains("tablog_worker_msgs_sent{worker=\"0\"}"),
        "{text}"
    );
    assert!(
        text.contains("tablog_worker_tables{worker=\"1\"}"),
        "{text}"
    );
    assert!(text.ends_with("# EOF\n"), "{text}");
}

#[test]
fn stats_json_parallel_embeds_load_attribution() {
    let f = temp_file("stats_par_report.pl", PAR_CROSS);
    let (out, err, ok) = tablog(&[
        "stats",
        f.to_str().unwrap(),
        "join(X, Y)",
        "--json",
        "--scheduler",
        "parallel",
        "--threads",
        "2",
    ]);
    assert!(ok, "{err}");
    let v = tablog_trace::json::parse(out.trim()).expect("valid JSON");
    let par = v.get("parallel").expect("parallel object in stats --json");
    assert_eq!(
        par.get("threads").and_then(|t| t.as_f64()),
        Some(2.0),
        "{out}"
    );
    assert!(
        par.get("workers")
            .and_then(|w| w.as_arr())
            .is_some_and(|w| w.len() == 2),
        "{out}"
    );
    // Sequential runs must not grow the key.
    let (seq, _, ok2) = tablog(&["stats", f.to_str().unwrap(), "join(X, Y)", "--json"]);
    assert!(ok2);
    let vs = tablog_trace::json::parse(seq.trim()).expect("valid JSON");
    assert!(vs.get("parallel").is_none(), "{seq}");
}

#[test]
fn timeline_parallel_emits_worker_lanes_and_flow_events() {
    let f = temp_file("timeline_par.pl", PAR_CROSS);
    let (out, err, ok) = tablog(&[
        "timeline",
        f.to_str().unwrap(),
        "join(X, Y)",
        "--scheduler",
        "parallel",
        "--threads",
        "4",
        "--counters",
    ]);
    assert!(ok, "{err}");
    let v = tablog_trace::json::parse(out.trim()).expect("valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    let with = |ph: &str, f: &dyn Fn(&tablog_trace::json::JsonValue) -> bool| {
        events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some(ph))
            .filter(|e| f(e))
            .count()
    };
    // Every worker gets a named lane.
    for w in 0..4 {
        let name = format!("worker_{w}");
        assert!(
            with("M", &|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())
                    == Some(&name)
            }) > 0,
            "missing thread_name lane for {name}: {err}"
        );
    }
    // Spans land on worker lanes (tid >= 2), not only the engine lane.
    assert!(
        with("B", &|e| {
            e.get("tid").and_then(|t| t.as_f64()).unwrap_or(0.0) >= 2.0
        }) > 0,
        "no spans attributed to worker lanes"
    );
    // Cross-worker traffic shows up as matched flow start/finish pairs.
    let starts = with("s", &|_| true);
    let finishes = with("f", &|_| true);
    assert_eq!(starts, finishes, "unmatched flow events");
    assert!(starts > 0, "no flow events on a cross-SCC 4-worker run");
    // Per-worker counter tracks ride along with --counters.
    assert!(
        with("C", &|e| {
            e.get("name")
                .and_then(|n| n.as_str())
                .is_some_and(|n| n.starts_with("worker") && n.ends_with(".msgs_sent"))
        }) > 0,
        "missing per-worker msgs_sent counter track"
    );
}

#[test]
fn provenance_downgrade_from_parallel_warns_on_stderr() {
    let f = temp_file("forest_par.pl", GRAPH);
    let (out, err, ok) = tablog(&[
        "forest",
        f.to_str().unwrap(),
        "path(a, X)",
        "--scheduler",
        "parallel",
        "--threads",
        "2",
        "--json",
    ]);
    assert!(ok, "{err}");
    assert!(
        err.contains("--record-provenance forces sequential evaluation"),
        "downgrade must be loud: {err}"
    );
    // The forest itself is still produced by the sequential fallback.
    tablog_trace::Forest::from_json(out.trim()).expect("forest JSON parses");
}

#[test]
fn profile_folded_parallel_prefixes_worker_frames() {
    let f = temp_file("graph_parfolded.pl", GRAPH);
    let folded = std::env::temp_dir()
        .join("tablog-cli-tests")
        .join("profile_par.folded");
    let (_, err, ok) = tablog(&[
        "profile",
        f.to_str().unwrap(),
        "path(a, X)",
        "--scheduler",
        "parallel",
        "--threads",
        "2",
        "--folded",
        folded.to_str().unwrap(),
    ]);
    assert!(ok, "{err}");
    let text = std::fs::read_to_string(&folded).expect("folded file written");
    assert!(
        text.lines().any(|l| l.starts_with("worker_0")),
        "parallel stacks must be rooted in a worker frame: {text}"
    );
    // Engine work is attributed under some worker's frame.
    assert!(
        text.lines()
            .any(|l| l.starts_with("worker_") && l.contains("dispatch:path/2")),
        "{text}"
    );
    // The single-thread sequential layout is untouched: no worker frames.
    let seq_out = std::env::temp_dir()
        .join("tablog-cli-tests")
        .join("profile_seq_check.folded");
    let (_, err2, ok2) = tablog(&[
        "profile",
        f.to_str().unwrap(),
        "path(a, X)",
        "--folded",
        seq_out.to_str().unwrap(),
    ]);
    assert!(ok2, "{err2}");
    let seq_text = std::fs::read_to_string(&seq_out).expect("folded file written");
    assert!(
        !seq_text.contains("worker_"),
        "sequential stacks must not grow worker frames: {seq_text}"
    );
    assert!(
        seq_text.lines().any(|l| l.starts_with("evaluate")),
        "{seq_text}"
    );
}
