//! Property tests over random logic programs: the three groundness
//! implementations (tabled declarative, hand-coded direct, magic/bottom-up
//! expansion) must compute identical Prop formulas, and the analysis must
//! over-approximate the concrete success set.

use proptest::prelude::*;
use std::collections::HashSet;
use tablog_core::direct::DirectAnalyzer;
use tablog_core::groundness::{transform_program, GroundnessAnalyzer, IffMode};
use tablog_engine::{Engine, EngineOptions, LoadMode};
use tablog_magic::BottomUp;
use tablog_syntax::parse_program;

/// Generates a small random logic program as source text: facts with
/// constants/structures, rules chaining body literals with shared
/// variables, plus occasional `=`/`is` builtins.
fn arb_logic_program() -> impl Strategy<Value = String> {
    let fact_arg = prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("f(a)".to_string()),
        Just("g(a, b)".to_string()),
        Just("X".to_string()),
        Just("f(X)".to_string()),
    ];
    let fact = (0usize..3, fact_arg.clone(), fact_arg)
        .prop_map(|(p, a1, a2)| format!("q{p}({a1}, {a2})."));
    let body_lit = prop_oneof![
        (0usize..3, 0usize..3, 0usize..3).prop_map(|(p, v1, v2)| format!("q{p}(V{v1}, V{v2})")),
        (0usize..3).prop_map(|v| format!("V{v} = f(a)")),
        (0usize..3, 0usize..3).prop_map(|(v1, v2)| format!("V{v1} = V{v2}")),
    ];
    let rule = (
        0usize..3,
        0usize..3,
        0usize..3,
        prop::collection::vec(body_lit, 1..4),
    )
        .prop_map(|(p, v1, v2, body)| format!("q{p}(V{v1}, V{v2}) :- {}.", body.join(", ")));
    (
        prop::collection::vec(fact, 1..5),
        prop::collection::vec(rule, 0..4),
    )
        .prop_map(|(mut facts, rules)| {
            // Keep every predicate defined.
            for p in 0..3 {
                facts.push(format!("q{p}(a, b)."));
            }
            facts.extend(rules);
            facts.join("\n")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tabled and direct analyzers compute the same output formulas.
    #[test]
    fn tabled_and_direct_agree(src in arb_logic_program()) {
        let tabled = GroundnessAnalyzer::new().analyze_source(&src).unwrap();
        let direct = DirectAnalyzer::new().analyze_source(&src).unwrap();
        for p in tabled.predicates() {
            let d = direct.output_groundness(&p.name, p.arity).unwrap();
            prop_assert_eq!(&p.prop, &d.prop, "{}/{} in\n{}", p.name, p.arity, src);
        }
    }

    /// Bottom-up evaluation of the abstract program grounds out to the
    /// same success sets.
    #[test]
    fn bottom_up_expansion_agrees(src in arb_logic_program()) {
        let program = parse_program(&src).unwrap();
        let (rules, preds) = transform_program(&program, IffMode::Builtin).unwrap();
        let mut eval = BottomUp::new(rules);
        eval.run().unwrap();
        let tabled = GroundnessAnalyzer::new().analyze_source(&src).unwrap();
        for &(name, arity) in preds.keys() {
            let pname = tablog_term::sym_name(name);
            let t = tabled.output_groundness(&pname, arity).unwrap();
            let f = tablog_term::Functor {
                name: tablog_term::intern(&format!("gp${pname}")),
                arity,
            };
            let mut magic_rows: Vec<Vec<bool>> = eval
                .relation(f)
                .iter()
                .map(|tuple| tuple.iter().map(|v| *v == tablog_term::atom("true")).collect())
                .collect();
            magic_rows.sort();
            magic_rows.dedup();
            let mut tabled_rows = t.prop.rows();
            tabled_rows.sort();
            prop_assert_eq!(tabled_rows, magic_rows, "{}/{} in\n{}", pname, arity, src);
        }
    }

    /// Soundness: whenever the concrete program derives a ground fact, the
    /// analysis admits the all-true row for that predicate.
    #[test]
    fn analysis_over_approximates_concrete(src in arb_logic_program()) {
        let opts = EngineOptions {
            // Kept small: random programs can grow term depth every step, and
            // node size grows with depth, so a large budget can exhaust memory.
            max_steps: Some(400),
            // Random facts like q0(X, f(X)) called as q0(A, A) would otherwise
            // bind X = f(X); the resulting cyclic term never canonicalizes.
            occur_check: true,
            ..Default::default()
        };
        let engine = Engine::from_source_with(&src, LoadMode::Dynamic, opts);
        let engine = match engine { Ok(e) => e, Err(_) => return Ok(()) };
        let report = GroundnessAnalyzer::new().analyze_source(&src).unwrap();
        for p in 0..3usize {
            let name = format!("q{p}");
            let sols = match engine.solve(&format!("q{p}(GX, GY)")) {
                Ok(s) => s,
                Err(_) => continue, // evaluation error: skip concrete check
            };
            // A step-budget truncation still yields genuine derivations (a
            // prefix of the concrete model), so the coverage check below
            // stays sound on the rows we did get.
            let concrete_rows: HashSet<Vec<bool>> = sols
                .rows()
                .iter()
                .map(|r| r.iter().map(tablog_term::Term::is_ground).collect())
                .collect();
            let g = report.output_groundness(&name, 2).unwrap();
            let abstract_rows: HashSet<Vec<bool>> = g.prop.rows().into_iter().collect();
            for row in concrete_rows {
                prop_assert!(
                    abstract_rows.contains(&row),
                    "{name}: concrete groundness {row:?} missing from analysis in\n{src}"
                );
            }
        }
    }
}
