//! Property tests for the depth-k analysis: on random terminating logic
//! programs, every concretely derivable fact must be covered by some
//! abstract answer (soundness of the abstraction), at every depth k.

use proptest::prelude::*;
use tablog_core::depthk::DepthKAnalyzer;
use tablog_engine::abs_unify;
use tablog_engine::{Engine, EngineOptions, LoadMode};
use tablog_term::{Bindings, Term};

/// Random programs built from ground facts over nested terms plus chain
/// rules — Datalog-with-structures, guaranteed terminating concretely.
fn arb_program() -> impl Strategy<Value = String> {
    let ground_arg = prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("f(a)".to_string()),
        Just("f(f(b))".to_string()),
        Just("g(a, f(b))".to_string()),
    ];
    let fact = (0usize..3, ground_arg.clone(), ground_arg)
        .prop_map(|(p, x, y)| format!("r{p}({x}, {y})."));
    let rule = (0usize..3, 0usize..3, prop::collection::vec(0usize..3, 1..3)).prop_map(
        |(hp, wrap, body)| {
            let lits: Vec<String> = body
                .iter()
                .enumerate()
                .map(|(i, bp)| format!("r{bp}(V{i}, V{})", i + 1))
                .collect();
            let head_arg = match wrap {
                0 => "V0".to_string(),
                1 => "f(V0)".to_string(),
                _ => format!("g(V0, V{})", body.len()),
            };
            format!("r{hp}({head_arg}, V{}) :- {}.", body.len(), lits.join(", "))
        },
    );
    (
        prop::collection::vec(fact, 1..4),
        prop::collection::vec(rule, 0..3),
    )
        .prop_map(|(mut facts, rules)| {
            for p in 0..3 {
                facts.push(format!("r{p}(a, b)."));
            }
            facts.extend(rules);
            facts.join("\n")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every concrete answer abstractly unifies with some depth-k answer.
    #[test]
    fn depthk_covers_concrete_model(src in arb_program(), k in 1usize..3) {
        // Concrete evaluation (tabled, with a step budget in case a rule
        // builds unboundedly deep terms).
        let opts = EngineOptions {
            // Kept small: runaway rules grow term depth with every step,
            // and term operations recurse over depth.
            max_steps: Some(3_000),
            ..Default::default()
        };
        let engine = Engine::from_source_with(&src, LoadMode::Dynamic, opts).unwrap();
        let mut concrete: Vec<(usize, Vec<Term>)> = Vec::new();
        let mut diverged = false;
        for p in 0..3usize {
            let mut db_goal = Bindings::new();
            let x = db_goal.fresh_var();
            let y = db_goal.fresh_var();
            let goal = tablog_term::structure(
                &format!("r{p}"),
                vec![tablog_term::var(x), tablog_term::var(y)],
            );
            match engine.evaluate(
                std::slice::from_ref(&goal),
                &[tablog_term::var(x), tablog_term::var(y)],
                &db_goal,
            ) {
                Ok(eval) if eval.is_truncated() => {
                    diverged = true; // concrete divergence: nothing to check
                }
                Ok(eval) => {
                    for row in eval.root_answers() {
                        concrete.push((p, row));
                    }
                }
                Err(_) => {
                    diverged = true; // evaluation error: nothing to check
                }
            }
        }
        if diverged {
            return Ok(());
        }

        let report = DepthKAnalyzer::new(k).analyze_source(&src).unwrap();
        for (p, row) in concrete {
            let name = format!("r{p}");
            let abs = report.result(&name, 2).unwrap();
            let covered = abs.answers.iter().any(|ans| {
                let mut b = Bindings::new();
                // Rename the abstract answer apart from the ground row.
                let nv = ans
                    .iter()
                    .flat_map(|t| t.vars())
                    .map(|v| v.index() + 1)
                    .max()
                    .unwrap_or(0);
                b.fresh_block(nv);
                ans.iter()
                    .zip(row.iter())
                    .all(|(a, c)| abs_unify(&mut b, a, c))
            });
            prop_assert!(
                covered,
                "k={k}: concrete {name}({:?}) not covered by abstract answers {:?}\nin\n{src}",
                row, abs.answers
            );
        }
    }
}
