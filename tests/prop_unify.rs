//! Property tests for unification and variant canonicalization — the
//! operations everything else rests on.

use proptest::prelude::*;
use tablog_term::{
    atom, canonical_key, canonicalize, int, is_variant, structure, unify, unify_occurs, var,
    Bindings, Term, Var,
};

/// A strategy for arbitrary terms over a small signature with variables
/// drawn from `0..nvars`.
fn arb_term(nvars: u32) -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (0..nvars).prop_map(|v| var(Var(v))),
        prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(atom),
        (-3i64..4).prop_map(int),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        (
            prop_oneof![Just("f"), Just("g"), Just("h")],
            prop::collection::vec(inner, 1..3),
        )
            .prop_map(|(name, args)| structure(name, args))
    })
}

proptest! {
    /// A unifier found by `unify` really does make the terms equal.
    #[test]
    fn unify_produces_a_unifier(t1 in arb_term(4), t2 in arb_term(4)) {
        let mut b = Bindings::new();
        b.fresh_block(4);
        if unify(&mut b, &t1, &t2) {
            // Without the occur check, X = f(X) can succeed; resolving such
            // a cyclic binding diverges, so the equality claim is restricted
            // to finite (acyclic) unifiers.
            if !b.is_cyclic(&t1) && !b.is_cyclic(&t2) {
                prop_assert_eq!(b.resolve(&t1), b.resolve(&t2));
            }
        }
    }

    /// Unification is symmetric in success/failure.
    #[test]
    fn unify_is_symmetric(t1 in arb_term(4), t2 in arb_term(4)) {
        let mut b1 = Bindings::new();
        b1.fresh_block(4);
        let mut b2 = Bindings::new();
        b2.fresh_block(4);
        prop_assert_eq!(unify(&mut b1, &t1, &t2), unify(&mut b2, &t2, &t1));
    }

    /// With the occur check on, the computed unifier is idempotent: applying
    /// it twice changes nothing.
    #[test]
    fn occurs_unifier_is_idempotent(t1 in arb_term(4), t2 in arb_term(4)) {
        let mut b = Bindings::new();
        b.fresh_block(4);
        if unify_occurs(&mut b, &t1, &t2) {
            let once = b.resolve(&t1);
            let twice = b.resolve(&once);
            prop_assert_eq!(once, twice);
        }
    }

    /// A term unifies with itself without new bindings being observable.
    #[test]
    fn unify_reflexive(t in arb_term(4)) {
        let mut b = Bindings::new();
        b.fresh_block(4);
        prop_assert!(unify(&mut b, &t, &t));
        prop_assert_eq!(b.resolve(&t), b.resolve(&t));
    }

    /// Failed unification under a mark leaves no trace after undo.
    #[test]
    fn undo_restores_after_failure(t1 in arb_term(4), t2 in arb_term(4)) {
        let mut b = Bindings::new();
        b.fresh_block(4);
        let before: Vec<Term> = (0..4).map(|i| b.resolve(&var(Var(i)))).collect();
        let m = b.mark();
        let _ = unify(&mut b, &t1, &t2);
        b.undo_to(m);
        let after: Vec<Term> = (0..4).map(|i| b.resolve(&var(Var(i)))).collect();
        prop_assert_eq!(before, after);
    }

    /// Canonicalization is idempotent and variant-invariant under renaming.
    #[test]
    fn canonicalization_idempotent(t in arb_term(4)) {
        let c1 = canonical_key(&t);
        let c2 = canonical_key(&c1.term());
        prop_assert_eq!(&c1, &c2);
        // Renaming by an offset yields a variant.
        let shifted = t.map_vars(&mut |v| var(Var(v.0 + 17)));
        prop_assert!(is_variant(&t, &shifted));
        prop_assert_eq!(canonical_key(&shifted), c1);
    }

    /// Instantiating a canonical tuple and re-canonicalizing round-trips.
    #[test]
    fn canonical_instantiate_roundtrip(ts in prop::collection::vec(arb_term(4), 1..4)) {
        let empty = Bindings::new();
        let c = canonicalize(&empty, &ts);
        let mut b = Bindings::new();
        b.fresh_block(9); // occupy some variables first
        let inst = c.instantiate(&mut b);
        let c2 = canonicalize(&b, &inst);
        prop_assert_eq!(c, c2);
    }

    /// Variants agree on size, depth and groundness.
    #[test]
    fn variants_share_structure(t in arb_term(4)) {
        let shifted = t.map_vars(&mut |v| var(Var(v.0 + 5)));
        prop_assert_eq!(t.size(), shifted.size());
        prop_assert_eq!(t.depth(), shifted.depth());
        prop_assert_eq!(t.is_ground(), shifted.is_ground());
    }

    /// Abstract unification is an over-approximation of concrete
    /// unification on γ-free terms: whenever concrete unification succeeds,
    /// abstract unification succeeds too.
    #[test]
    fn abs_unify_over_approximates(t1 in arb_term(4), t2 in arb_term(4)) {
        let mut bc = Bindings::new();
        bc.fresh_block(4);
        let concrete = unify_occurs(&mut bc, &t1, &t2);
        let mut ba = Bindings::new();
        ba.fresh_block(4);
        let abstracted = tablog_engine::abs_unify(&mut ba, &t1, &t2);
        if concrete {
            prop_assert!(abstracted);
        }
    }
}
