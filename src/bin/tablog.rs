//! The `tablog` command-line tool: query tabled logic programs and run the
//! PLDI'96 analyses on program files.
//!
//! ```text
//! tablog query  FILE.pl GOAL            evaluate GOAL against FILE
//! tablog tables FILE.pl GOAL [--top N]  …and dump the call/answer tables;
//!                                       with --top (or --json), a per-table
//!                                       heap attribution report instead
//! tablog stats  FILE.pl GOAL            per-predicate engine statistics
//! tablog profile FILE.pl GOAL [--folded OUT]
//!                                       span-instrumented evaluation: self/
//!                                       total time per span name, predicate
//!                                       and SCC; --folded writes collapsed
//!                                       stacks for flamegraph.pl / inferno
//! tablog timeline FILE.pl GOAL [--out trace.json] [--counters]
//!                                       Chrome-trace/Perfetto timeline of
//!                                       the evaluation; --counters adds
//!                                       worklist/tables/answers/table_bytes
//!                                       counter tracks
//! tablog workers FILE.pl GOAL [--metrics OUT.prom]
//!                                       evaluate under --scheduler parallel
//!                                       and report per-worker load, SCC
//!                                       ownership, and the message matrix;
//!                                       --metrics writes worker-labeled
//!                                       gauges as OpenMetrics text
//! tablog watch FILE.pl GOAL [--interval MS] [--metrics OUT.prom]
//!             [--max-steps N] [--deadline MS] [--max-table-bytes B]
//!                                       evaluate under resource budgets,
//!                                       streaming health snapshots to
//!                                       stderr; a tripped budget reports
//!                                       the partial answers instead of
//!                                       failing. --metrics writes the
//!                                       snapshot series as OpenMetrics text
//! tablog bench-diff OLD.json NEW.json [--max-time-regress PCT]
//!                   [--max-bytes-regress PCT] [--max-heap-regress PCT]
//!                                       compare two paper_tables --json
//!                                       documents; exit 1 on regression
//! tablog explain FILE GOAL [--depth N] [--analysis A]
//!                                       justification trees for GOAL's
//!                                       answers (A: ground|depthk|strict|
//!                                       direct routes through an analyzer)
//! tablog forest FILE.pl GOAL [--dot OUT]
//!                                       derivation forest as DOT (or JSON
//!                                       with --json)
//! tablog ground FILE.pl [--entry SPEC] [--direct]
//!                                       Prop groundness analysis
//! tablog depthk FILE.pl [--k N] [--entry SPEC]
//!                                       depth-k groundness analysis
//! tablog modes  FILE.pl --entry SPEC    mode inference (+ / - / ?)
//! tablog strict FILE.eq                 strictness analysis
//! tablog types  FILE.eq                 Hindley-Milner type analysis
//! tablog run    FILE.eq [FUNCTION]      evaluate a functional program
//! ```
//!
//! Global flags (any command):
//!
//! * `--profile` — collect per-predicate engine metrics and phase timings;
//!   printed after the command's normal output.
//! * `--json` — render `stats` / `--profile` reports as JSON instead of a
//!   fixed-width table.
//! * `--trace FILE` — append every engine event to `FILE` as JSON lines.
//! * `--scheduler S` — SLG scheduling strategy for engine-backed commands:
//!   `depth-first` (default), `breadth-first`, `batched`, or `parallel`
//!   (one query evaluated across several worker threads; see `--threads`).
//! * `--domain D` — Prop-domain backend for the groundness analyses:
//!   `table` (default; enumerative truth tables) or `bdd` (hash-consed
//!   BDDs). Both compute identical results; they trade memory/time
//!   differently. Recorded in `stats`/`--profile` reports either way.
//! * `--threads N` — worker-thread count for `--scheduler parallel` and
//!   the `workers` command (default: one per available core). An error
//!   with any sequential strategy.
//! * `--jobs N` — for the analysis commands (`ground`, `depthk`), analyze
//!   multiple input files on up to `N` worker threads; output stays in
//!   input order.
//! * `--progress` — live single-line status on stderr (steps, answers,
//!   tables, table bytes), rewritten in place; automatically off when
//!   stderr is not a terminal.

use std::fs::File;
use std::io::{BufWriter, IsTerminal, Write};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tablog_core::depthk::DepthKAnalyzer;
use tablog_core::direct::DirectAnalyzer;
use tablog_core::groundness::{EntryPoint, GroundnessAnalyzer};
use tablog_core::strictness::StrictnessAnalyzer;
use tablog_domain::DomainKind;
use tablog_engine::{
    Engine, EngineOptions, HealthConfig, HealthSnapshot, HealthTrack, JsonLinesSink, LoadMode,
    MetricsRegistry, MetricsReport, MultiSink, Scheduling, TraceSink,
};
use tablog_syntax::term_to_string;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("tablog: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage: tablog <query|tables|stats|profile|timeline|workers|watch|bench-diff|explain|forest|ground|depthk|modes|strict|types|run> FILE [ARGS…]\n\
     tables  FILE GOAL [--top N]  (--top/--json: per-table heap attribution)\n\
     profile FILE GOAL [--folded OUT]  (span timings; collapsed stacks)\n\
     timeline FILE GOAL [--out trace.json] [--counters]\n\
                                  (Chrome-trace/Perfetto timeline of the run;\n\
                                   --counters adds counter time-series tracks)\n\
     workers FILE GOAL [--metrics OUT.prom]\n\
                                  (parallel run: per-worker load, SCC owners,\n\
                                   message matrix; --metrics writes worker-\n\
                                   labeled gauges as OpenMetrics text)\n\
     watch   FILE GOAL [--interval MS] [--metrics OUT.prom] [--max-steps N]\n\
                       [--deadline MS] [--max-table-bytes B]\n\
                                  (budgeted evaluation with live health\n\
                                   snapshots; partial answers on a trip)\n\
     bench-diff OLD.json NEW.json [--max-time-regress PCT] [--max-bytes-regress PCT]\n\
                                  [--max-heap-regress PCT]\n\
     explain FILE GOAL [--depth N] [--analysis ground|depthk|strict|direct]\n\
     forest  FILE GOAL [--dot OUT]\n\
     ground|depthk accept multiple FILEs; --jobs N analyzes them concurrently\n\
     global flags: --profile  --json  --trace FILE  --scheduler S  --threads N\n\
                   --jobs N  --progress  --domain D\n\
     --scheduler: depth-first (default) | breadth-first | batched | parallel\n\
     --threads N: workers for --scheduler parallel (default: one per core)\n\
     --domain: table (default) | bdd  (Prop backend for groundness analyses)\n\
     see `tablog help` or the crate documentation"
        .to_owned()
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

/// Writes a command's output artifact (`--out`, `--folded`, `--dot`,
/// `--metrics`, …), failing with a CLI-friendly error naming the path.
fn write_output(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("cannot write {path}: {e}"))
}

/// The `FILE GOAL` positional pair shared by the engine-backed subcommands
/// (query, tables, stats, profile, explain, forest, timeline): reads the
/// program source and hands back the goal string.
fn file_goal(args: &[String]) -> Result<(String, &str), String> {
    let file = args.get(1).ok_or_else(usage)?;
    let goal = args.get(2).ok_or_else(usage)?;
    Ok((read_file(file)?, goal))
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// The engine's whole-evaluation counters, for embedding in reports.
fn engine_snapshot(
    eval: &tablog_engine::Evaluation,
    domain: DomainKind,
) -> tablog_trace::EngineSnapshot {
    let s = eval.stats();
    tablog_trace::EngineSnapshot {
        scheduler: eval.scheduler().to_string(),
        domain: domain.name().to_owned(),
        steps: s.steps as u64,
        clause_resolutions: s.clause_resolutions as u64,
        subgoals: s.subgoals as u64,
        answers: s.answers as u64,
        duplicate_answers: s.duplicate_answers as u64,
        table_bytes: s.table_bytes as u64,
    }
}

/// A `--progress` status line: one stderr line rewritten in place on every
/// health snapshot, erased when the run finishes. Only constructed when
/// stderr is a terminal, so piped/captured runs stay byte-clean.
struct ProgressSink;

impl ProgressSink {
    fn clear() {
        eprint!("\r\x1b[2K");
        let _ = std::io::stderr().flush();
    }
}

impl TraceSink for ProgressSink {
    fn event(&self, _e: &tablog_trace::TraceEvent) {}

    fn health(&self, s: &HealthSnapshot) {
        eprint!(
            "\r\x1b[2K{} steps | {} answers ({:.0}/s) | {}/{} tables | {} KiB | worklist {}{}",
            s.steps,
            s.answers,
            s.answer_rate,
            s.completed_tables,
            s.tables,
            s.table_bytes / 1024,
            s.worklist,
            if s.stalled { " | STALLED" } else { "" }
        );
        let _ = std::io::stderr().flush();
    }

    fn flush(&self) {
        Self::clear();
    }
}

/// `watch`'s live view: one stderr line per health snapshot, scrolling —
/// observable under pipes and `watch`-style supervision alike.
struct WatchLineSink;

impl TraceSink for WatchLineSink {
    fn event(&self, _e: &tablog_trace::TraceEvent) {}

    fn health(&self, s: &HealthSnapshot) {
        eprintln!(
            "watch: {} steps | {} answers ({:.0}/s) | {}/{} tables | {} KiB | worklist {}{}",
            s.steps,
            s.answers,
            s.answer_rate,
            s.completed_tables,
            s.tables,
            s.table_bytes / 1024,
            s.worklist,
            if s.stalled { " | STALLED" } else { "" }
        );
    }
}

/// Observability and execution settings pulled from the global flags.
struct Obs {
    profile: bool,
    json: bool,
    /// JSON-lines event sink when `--trace FILE` was given.
    sink: Option<Arc<dyn TraceSink>>,
    /// Live status line when `--progress` was given and stderr is a tty.
    progress: Option<Arc<dyn TraceSink>>,
    /// Snapshot cadence driving the `--progress` line.
    health: Option<HealthConfig>,
    /// SLG scheduling strategy for engine-backed commands.
    scheduling: Scheduling,
    /// Worker threads for `--scheduler parallel` (0 = one per core).
    threads: usize,
    /// Worker threads for multi-file analysis commands.
    jobs: usize,
    /// Prop-domain backend for the groundness analyses.
    domain: DomainKind,
}

impl Obs {
    /// The engine-facing trace sink: the `--trace` file writer, the
    /// metrics registry, the `--progress` line — fanned out as needed.
    fn engine_sink(&self, registry: Option<&Arc<MetricsRegistry>>) -> Option<Arc<dyn TraceSink>> {
        let mut sinks: Vec<Arc<dyn TraceSink>> = Vec::new();
        if let Some(t) = &self.sink {
            sinks.push(t.clone());
        }
        if let Some(r) = registry {
            sinks.push(r.clone());
        }
        if let Some(p) = &self.progress {
            sinks.push(p.clone());
        }
        match sinks.len() {
            0 => None,
            1 => sinks.pop(),
            _ => {
                let mut m = MultiSink::new();
                for s in sinks {
                    m = m.with(s);
                }
                Some(Arc::new(m) as Arc<dyn TraceSink>)
            }
        }
    }

    fn print_metrics(&self, metrics: Option<&MetricsReport>) {
        if let Some(m) = metrics {
            if self.json {
                println!("{}", m.to_json());
            } else {
                print!("{}", m.render_text());
            }
        }
    }
}

/// Splits the global observability flags off the argument list.
fn extract_obs(args: &[String]) -> Result<(Vec<String>, Obs), String> {
    let mut rest = Vec::new();
    let mut profile = false;
    let mut json = false;
    let mut progress = false;
    let mut trace_path: Option<String> = None;
    let mut scheduling = Scheduling::default();
    let mut threads = 0usize;
    let mut threads_explicit = false;
    let mut jobs = 1usize;
    let mut domain = DomainKind::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--profile" => profile = true,
            "--json" => json = true,
            "--progress" => progress = true,
            "--trace" => {
                let p = it.next().ok_or("--trace requires a file path")?;
                trace_path = Some(p.clone());
            }
            "--scheduler" => {
                let s = it.next().ok_or("--scheduler requires a strategy name")?;
                scheduling = s.parse()?;
            }
            "--domain" => {
                let d = it.next().ok_or("--domain requires a backend name")?;
                domain = d.parse()?;
            }
            "--threads" => {
                let n = it.next().ok_or("--threads requires a worker count")?;
                threads_explicit = true;
                threads = match n.parse::<usize>() {
                    Ok(0) => return Err(format!("bad --threads value {n} (must be at least 1)")),
                    Ok(v) => v,
                    Err(_) => {
                        return Err(format!(
                            "bad --threads value {n} (expected a positive integer)"
                        ))
                    }
                };
            }
            "--jobs" => {
                let n = it.next().ok_or("--jobs requires a thread count")?;
                jobs = n
                    .parse::<usize>()
                    .map_err(|_| format!("bad --jobs value {n}"))?
                    .max(1);
            }
            _ => rest.push(a.clone()),
        }
    }
    // A worker count on a sequential run would be silently meaningless;
    // refuse it rather than let the user believe they ran parallel. The
    // `workers` subcommand implies the parallel strategy, so it is exempt.
    if threads_explicit
        && scheduling != Scheduling::Parallel
        && rest.first().map(String::as_str) != Some("workers")
    {
        return Err("--threads requires --scheduler parallel".to_owned());
    }
    let sink = match trace_path {
        Some(p) => {
            let f = File::create(&p).map_err(|e| format!("cannot write {p}: {e}"))?;
            Some(Arc::new(JsonLinesSink::new(BufWriter::new(f))) as Arc<dyn TraceSink>)
        }
        None => None,
    };
    // `--progress` is a no-op when stderr is piped or captured: no sink is
    // attached and no health cadence is enabled, so output stays identical
    // to a run without the flag.
    let tty = progress && std::io::stderr().is_terminal();
    Ok((
        rest,
        Obs {
            profile,
            json,
            sink,
            progress: tty.then(|| Arc::new(ProgressSink) as Arc<dyn TraceSink>),
            health: tty.then(|| HealthConfig::every_ms(100)),
            scheduling,
            threads,
            jobs,
            domain,
        },
    ))
}

/// Positional (non-flag) arguments: skips `--flag value` pairs for the
/// value-taking flags and bare `--flags` for the rest.
fn positional(args: &[String]) -> Vec<&String> {
    const VALUED: [&str; 16] = [
        "--entry",
        "--k",
        "--depth",
        "--dot",
        "--analysis",
        "--top",
        "--folded",
        "--out",
        "--max-time-regress",
        "--max-bytes-regress",
        "--max-heap-regress",
        "--interval",
        "--metrics",
        "--max-steps",
        "--deadline",
        "--max-table-bytes",
    ];
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if VALUED.contains(&a.as_str()) {
            it.next();
        } else if !a.starts_with("--") {
            out.push(a);
        }
    }
    out
}

fn run(args: &[String]) -> Result<(), String> {
    let (args, obs) = extract_obs(args)?;
    let result = dispatch(&args, &obs);
    if let Some(p) = &obs.progress {
        p.flush(); // erase the status line before any final output
    }
    if let Some(s) = &obs.sink {
        s.flush();
    }
    result
}

fn dispatch(args: &[String], obs: &Obs) -> Result<(), String> {
    let cmd = args.first().ok_or_else(usage)?;
    match cmd.as_str() {
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        "query" | "tables" => {
            let (src, goal) = file_goal(args)?;
            let registry = obs.profile.then(|| Arc::new(MetricsRegistry::new()));
            let opts = EngineOptions {
                trace: obs.engine_sink(registry.as_ref()),
                scheduling: obs.scheduling,
                threads: obs.threads,
                domain: obs.domain,
                health: obs.health,
                ..Default::default()
            };
            let engine = Engine::from_source_with(&src, LoadMode::Dynamic, opts)
                .map_err(|e| e.to_string())?;
            if cmd == "query" {
                let sols = engine.solve(goal).map_err(|e| e.to_string())?;
                if sols.is_empty() {
                    println!("no");
                } else {
                    for row in sols.to_strings() {
                        println!("{row}");
                    }
                }
            } else {
                let top: Option<usize> = flag_value(args, "--top")
                    .map(|v| match v.parse::<usize>() {
                        Ok(0) => Err(format!("bad --top value {v} (must be at least 1)")),
                        Ok(n) => Ok(n),
                        Err(_) => Err(format!("bad --top value {v} (expected a positive integer)")),
                    })
                    .transpose()?;
                let mut b = tablog_term::Bindings::new();
                let (t, _) = tablog_syntax::parse_term(goal, &mut b).map_err(|e| e.to_string())?;
                let eval = engine.evaluate(&[t], &[], &b).map_err(|e| e.to_string())?;
                if obs.json {
                    println!("{}", eval.table_report().to_json());
                } else if let Some(n) = top {
                    print!("{}", eval.table_report().render_text(n));
                } else {
                    for view in eval.subgoals() {
                        println!(
                            "{}  [{} answers, {} bytes]",
                            term_to_string(&view.call_term()),
                            view.num_answers(),
                            view.table_bytes()
                        );
                        for a in view.answers() {
                            println!("    {}", term_to_string(&a));
                        }
                    }
                    println!("{:?}", eval.stats());
                }
            }
            if let Some(r) = registry {
                obs.print_metrics(Some(&r.snapshot()));
            }
            Ok(())
        }
        "stats" => {
            let (src, goal) = file_goal(args)?;
            let registry = Arc::new(MetricsRegistry::new());
            let opts = EngineOptions {
                trace: obs.engine_sink(Some(&registry)),
                scheduling: obs.scheduling,
                threads: obs.threads,
                domain: obs.domain,
                health: obs.health,
                ..Default::default()
            };
            let t0 = Instant::now();
            let engine = Engine::from_source_with(&src, LoadMode::Dynamic, opts)
                .map_err(|e| e.to_string())?;
            registry.record_phase("load", t0.elapsed());
            let mut b = tablog_term::Bindings::new();
            let (t, _) = tablog_syntax::parse_term(goal, &mut b).map_err(|e| e.to_string())?;
            let t1 = Instant::now();
            let eval = engine.evaluate(&[t], &[], &b).map_err(|e| e.to_string())?;
            registry.record_phase("evaluate", t1.elapsed());
            let mut report = registry.snapshot();
            report.options = engine.options().describe();
            report.engine = Some(engine_snapshot(&eval, obs.domain));
            if obs.json {
                // A parallel run stacks its load-balance report into the
                // same document, so one `stats --json` capture explains
                // both what was computed and who computed it.
                let doc = report.to_json();
                match eval.parallel_report() {
                    Some(p) => println!("{},\"parallel\":{}}}", &doc[..doc.len() - 1], p.to_json()),
                    None => println!("{doc}"),
                }
            } else {
                print!("{}", report.render_text());
                if let Some(p) = eval.parallel_report() {
                    print!("{}", p.render_text());
                }
            }
            Ok(())
        }
        "workers" => {
            let (src, goal) = file_goal(args)?;
            let metrics_path = flag_value(args, "--metrics");
            let registry = Arc::new(MetricsRegistry::new());
            let opts = EngineOptions {
                trace: obs.engine_sink(Some(&registry)),
                scheduling: Scheduling::Parallel,
                threads: obs.threads,
                domain: obs.domain,
                record_counters: metrics_path.is_some(),
                health: obs.health,
                ..Default::default()
            };
            let engine = Engine::from_source_with(&src, LoadMode::Dynamic, opts)
                .map_err(|e| e.to_string())?;
            let mut b = tablog_term::Bindings::new();
            let (t, _) = tablog_syntax::parse_term(goal, &mut b).map_err(|e| e.to_string())?;
            let eval = engine.evaluate(&[t], &[], &b).map_err(|e| e.to_string())?;
            let report = eval.parallel_report().ok_or(
                "workers: the evaluation produced no parallel report \
                 (the run fell back to sequential)",
            )?;
            if let Some(path) = metrics_path {
                let doc = tablog_trace::openmetrics_workers(&registry.counters().samples());
                write_output(path, &doc)?;
                eprintln!("wrote {path}: per-worker gauges as OpenMetrics text");
            }
            if obs.json {
                println!("{}", report.to_json());
            } else {
                print!("{}", report.render_text());
            }
            Ok(())
        }
        "profile" => {
            let (src, goal) = file_goal(args)?;
            let registry = Arc::new(MetricsRegistry::new());
            let opts = EngineOptions {
                trace: obs.engine_sink(Some(&registry)),
                scheduling: obs.scheduling,
                threads: obs.threads,
                domain: obs.domain,
                record_spans: true,
                health: obs.health,
                ..Default::default()
            };
            let t0 = Instant::now();
            let engine = Engine::from_source_with(&src, LoadMode::Dynamic, opts)
                .map_err(|e| e.to_string())?;
            registry.record_phase("load", t0.elapsed());
            let mut b = tablog_term::Bindings::new();
            let (t, _) = tablog_syntax::parse_term(goal, &mut b).map_err(|e| e.to_string())?;
            let t1 = Instant::now();
            let eval = engine.evaluate(&[t], &[], &b).map_err(|e| e.to_string())?;
            registry.record_phase("evaluate", t1.elapsed());
            let mut report = registry.snapshot();
            report.options = engine.options().describe();
            report.engine = Some(engine_snapshot(&eval, obs.domain));

            // Predicate -> SCC label, for the per-SCC span rollup. SCCs come
            // out reverse-topological, so the index orders callees first.
            let sccs = engine.db().predicate_sccs();
            let mut scc_of = std::collections::HashMap::new();
            for (i, scc) in sccs.iter().enumerate() {
                let members: Vec<String> = scc.iter().map(ToString::to_string).collect();
                let label = format!("scc{i:03} [{}]", members.join(" "));
                for m in members {
                    scc_of.insert(m, label.clone());
                }
            }
            let by_scc = report.spans.rollup_by_group(&|p| scc_of.get(p).cloned());

            if let Some(path) = flag_value(args, "--folded") {
                let folded = tablog_trace::folded_stacks(&report.spans);
                write_output(path, &folded)?;
                eprintln!(
                    "wrote {path}: {} collapsed stacks ({} spans)",
                    folded.lines().count(),
                    report.spans.len()
                );
            }
            if obs.json {
                let sccs_json: Vec<String> = by_scc
                    .iter()
                    .map(|(label, r)| {
                        format!(
                            "{{\"scc\":\"{}\",\"count\":{},\"total_ns\":{},\"self_ns\":{}}}",
                            tablog_trace::json::escape(label),
                            r.count,
                            r.total_ns,
                            r.self_ns
                        )
                    })
                    .collect();
                let doc = report.to_json();
                println!(
                    "{},\"sccs\":[{}]}}",
                    &doc[..doc.len() - 1],
                    sccs_json.join(",")
                );
            } else {
                print!("{}", report.render_text());
                if !by_scc.is_empty() {
                    println!("by scc:");
                    for (label, r) in &by_scc {
                        println!(
                            "  {label}  count={} total={}ns self={}ns",
                            r.count, r.total_ns, r.self_ns
                        );
                    }
                }
            }
            Ok(())
        }
        "bench-diff" => {
            let old_path = args.get(1).ok_or_else(usage)?;
            let new_path = args.get(2).ok_or_else(usage)?;
            let pct = |name: &str, default: f64| -> Result<f64, String> {
                flag_value(args, name)
                    .map(|v| {
                        v.parse::<f64>()
                            .map_err(|_| format!("bad {name} value {v}"))
                    })
                    .transpose()
                    .map(|v| v.unwrap_or(default))
            };
            let max_time = pct("--max-time-regress", 25.0)?;
            let max_bytes = pct("--max-bytes-regress", 5.0)?;
            let max_heap = pct("--max-heap-regress", 5.0)?;
            let parse = |path: &str| -> Result<tablog_trace::json::JsonValue, String> {
                let text = read_file(path)?;
                tablog_trace::json::parse(&text).map_err(|e| format!("{path}: bad JSON: {e}"))
            };
            let old = parse(old_path)?;
            let new = parse(new_path)?;
            let diff = tablog_bench::bench_diff(&old, &new, max_time, max_bytes, max_heap);
            for w in &diff.warnings {
                eprintln!("warning: {w}");
            }
            for f in &diff.failures {
                eprintln!("FAIL: {f}");
            }
            if diff.is_regression() {
                return Err(format!(
                    "bench-diff: {} regression(s) beyond thresholds \
                     (time {max_time}%, bytes {max_bytes}%, heap {max_heap}%)",
                    diff.failures.len()
                ));
            }
            println!(
                "bench-diff passed: no regressions beyond thresholds \
                 (time {max_time}%, bytes {max_bytes}%, heap {max_heap}%), {} warning(s)",
                diff.warnings.len()
            );
            Ok(())
        }
        "timeline" => {
            let (src, goal) = file_goal(args)?;
            let counters = args.iter().any(|a| a == "--counters");
            let registry = Arc::new(MetricsRegistry::new());
            let opts = EngineOptions {
                trace: obs.engine_sink(Some(&registry)),
                scheduling: obs.scheduling,
                threads: obs.threads,
                domain: obs.domain,
                record_spans: true,
                record_counters: counters,
                health: obs.health,
                ..Default::default()
            };
            let engine = Engine::from_source_with(&src, LoadMode::Dynamic, opts)
                .map_err(|e| e.to_string())?;
            let mut b = tablog_term::Bindings::new();
            let (t, _) = tablog_syntax::parse_term(goal, &mut b).map_err(|e| e.to_string())?;
            let eval = engine.evaluate(&[t], &[], &b).map_err(|e| e.to_string())?;
            let tree = registry.spans().snapshot();
            let samples = registry.counters().samples();
            if counters && samples.is_empty() {
                // Silently writing a counter-free trace after the user asked
                // for counter tracks would hide a broken recording pipeline.
                return Err(
                    "timeline --counters recorded no counter samples: the engine ran \
                     without counter recording (this is a bug in the sink wiring)"
                        .to_string(),
                );
            }
            // A parallel run's cross-worker messages become flow arrows
            // between the worker lanes; sequential runs have none.
            let flows = eval
                .parallel_report()
                .map_or(&[] as &[_], |p| p.flows.as_slice());
            let doc = tablog_trace::chrome_trace_with_flows(&tree, &samples, flows);
            match flag_value(args, "--out") {
                Some(path) => {
                    write_output(path, &doc)?;
                    eprintln!(
                        "wrote {path}: {} spans, {} counter samples, {} message flows — \
                         load in https://ui.perfetto.dev or chrome://tracing",
                        tree.nodes.len(),
                        samples.len(),
                        flows.len()
                    );
                }
                None => println!("{doc}"),
            }
            Ok(())
        }
        "watch" => {
            let (src, goal) = file_goal(args)?;
            let interval: u64 = flag_value(args, "--interval")
                .map(|v| {
                    v.parse()
                        .map_err(|_| format!("bad --interval value {v} (milliseconds)"))
                })
                .transpose()?
                .unwrap_or(250);
            let max_steps: Option<usize> = flag_value(args, "--max-steps")
                .map(|v| v.parse().map_err(|_| format!("bad --max-steps value {v}")))
                .transpose()?;
            let deadline: Option<Duration> = flag_value(args, "--deadline")
                .map(|v| {
                    v.parse::<u64>()
                        .map_err(|_| format!("bad --deadline value {v} (milliseconds)"))
                })
                .transpose()?
                .map(Duration::from_millis);
            let max_table_bytes: Option<usize> = flag_value(args, "--max-table-bytes")
                .map(|v| {
                    v.parse()
                        .map_err(|_| format!("bad --max-table-bytes value {v}"))
                })
                .transpose()?;

            // The track keeps the snapshot series for --metrics; the line
            // sink streams each snapshot to stderr as it is taken.
            let track = Arc::new(HealthTrack::new());
            let mut fan = MultiSink::new()
                .with(track.clone() as Arc<dyn TraceSink>)
                .with(Arc::new(WatchLineSink) as Arc<dyn TraceSink>);
            if let Some(extra) = obs.engine_sink(None) {
                fan = fan.with(extra);
            }
            let opts = EngineOptions {
                trace: Some(Arc::new(fan) as Arc<dyn TraceSink>),
                scheduling: obs.scheduling,
                threads: obs.threads,
                domain: obs.domain,
                health: Some(HealthConfig::every_ms(interval)),
                max_steps,
                deadline,
                max_table_bytes,
                ..Default::default()
            };
            let engine = Engine::from_source_with(&src, LoadMode::Dynamic, opts)
                .map_err(|e| e.to_string())?;
            // A tripped budget is not a failure: the run ends gracefully
            // with the answers derived so far and exit code 0.
            let sols = engine.solve(goal).map_err(|e| e.to_string())?;
            if let Some(path) = flag_value(args, "--metrics") {
                let doc = tablog_trace::openmetrics_series(&track.samples());
                write_output(path, &doc)?;
                eprintln!(
                    "wrote {path}: {} snapshots as OpenMetrics text",
                    track.len()
                );
            }
            if obs.json {
                let answers: Vec<String> = sols
                    .to_strings()
                    .iter()
                    .map(|a| format!("\"{}\"", tablog_trace::json::escape(a)))
                    .collect();
                let truncation = sols
                    .truncation()
                    .map_or_else(|| "null".to_string(), |t| t.to_json());
                let health = track
                    .last()
                    .map_or_else(|| "null".to_string(), |s| s.to_json());
                println!(
                    "{{\"count\":{},\"complete\":{},\"answers\":[{}],\"truncation\":{},\"health\":{}}}",
                    sols.len(),
                    !sols.is_truncated(),
                    answers.join(","),
                    truncation,
                    health
                );
            } else {
                for row in sols.to_strings() {
                    println!("{row}");
                }
                match sols.truncation() {
                    Some(t) => println!(
                        "truncated: {} — the {} answer(s) above are a sound partial result",
                        t.reason,
                        sols.len()
                    ),
                    None => println!("complete: {} answer(s)", sols.len()),
                }
            }
            Ok(())
        }
        "explain" => {
            let (src, goal) = file_goal(args)?;
            let depth: usize = flag_value(args, "--depth")
                .map(|v| v.parse().map_err(|_| "bad --depth value".to_string()))
                .transpose()?
                .unwrap_or(32);
            let emit = |text: String, json: String| {
                if obs.json {
                    println!("{json}");
                } else {
                    print!("{text}");
                }
            };
            match flag_value(args, "--analysis") {
                None => {
                    let opts = EngineOptions {
                        trace: obs.engine_sink(None),
                        scheduling: obs.scheduling,
                        threads: obs.threads,
                        domain: obs.domain,
                        health: obs.health,
                        ..Default::default()
                    };
                    let engine = Engine::from_source_with(&src, LoadMode::Dynamic, opts)
                        .map_err(|e| e.to_string())?;
                    let ex = engine.explain(goal, depth).map_err(|e| e.to_string())?;
                    emit(ex.render_text(), ex.to_json());
                }
                Some("ground") => {
                    let program = tablog_syntax::parse_program(&src).map_err(|e| e.to_string())?;
                    let mut an = GroundnessAnalyzer::new();
                    an.options.domain = obs.domain;
                    let ex = an
                        .explain(&program, goal, depth)
                        .map_err(|e| e.to_string())?;
                    emit(ex.render_text(), ex.to_json());
                }
                Some("depthk") => {
                    let program = tablog_syntax::parse_program(&src).map_err(|e| e.to_string())?;
                    let k: usize = flag_value(args, "--k")
                        .map(|v| v.parse().map_err(|_| "bad --k value".to_string()))
                        .transpose()?
                        .unwrap_or(2);
                    let ex = DepthKAnalyzer::new(k)
                        .explain(&program, goal, depth)
                        .map_err(|e| e.to_string())?;
                    emit(ex.render_text(), ex.to_json());
                }
                Some("strict") => {
                    let prog =
                        tablog_funlang::parse_fun_program(&src).map_err(|e| e.to_string())?;
                    let ex = StrictnessAnalyzer::new()
                        .explain(&prog, goal, depth)
                        .map_err(|e| e.to_string())?;
                    emit(ex.render_text(), ex.to_json());
                }
                Some("direct") => {
                    let program = tablog_syntax::parse_program(&src).map_err(|e| e.to_string())?;
                    let mut an = DirectAnalyzer::new();
                    an.domain = obs.domain;
                    let ex = an.explain(&program, goal).map_err(|e| e.to_string())?;
                    emit(ex.render_text(), ex.to_json());
                }
                Some(other) => {
                    return Err(format!(
                        "unknown --analysis {other} (expected ground, depthk, strict or direct)"
                    ))
                }
            }
            Ok(())
        }
        "forest" => {
            let (src, goal) = file_goal(args)?;
            let opts = EngineOptions {
                record_provenance: true,
                trace: obs.engine_sink(None),
                scheduling: obs.scheduling,
                threads: obs.threads,
                domain: obs.domain,
                health: obs.health,
                ..Default::default()
            };
            let engine = Engine::from_source_with(&src, LoadMode::Dynamic, opts)
                .map_err(|e| e.to_string())?;
            let mut b = tablog_term::Bindings::new();
            let (t, _) = tablog_syntax::parse_term(goal, &mut b).map_err(|e| e.to_string())?;
            let eval = engine.evaluate(&[t], &[], &b).map_err(|e| e.to_string())?;
            let forest = eval.forest();
            match flag_value(args, "--dot") {
                Some(path) => {
                    write_output(path, &forest.to_dot())?;
                    println!(
                        "wrote {path}: {} subgoals, {} answers",
                        forest.subgoals.len(),
                        forest
                            .subgoals
                            .iter()
                            .map(|s| s.answers.len())
                            .sum::<usize>()
                    );
                }
                None => {
                    if obs.json {
                        println!("{}", forest.to_json());
                    } else {
                        print!("{}", forest.to_dot());
                    }
                }
            }
            Ok(())
        }
        "ground" => {
            let files = positional(&args[1..]);
            if files.is_empty() {
                return Err(usage());
            }
            let entries: Vec<EntryPoint> = match flag_value(args, "--entry") {
                Some(spec) => vec![EntryPoint::parse(spec).map_err(|e| e.to_string())?],
                None => Vec::new(),
            };
            if args.iter().any(|a| a == "--direct") {
                let outputs = tablog_core::analyze_many(obs.jobs, &files, |file| {
                    let src = read_file(file)?;
                    let program = tablog_syntax::parse_program(&src).map_err(|e| e.to_string())?;
                    let mut an = DirectAnalyzer::new();
                    an.profile = obs.profile;
                    an.domain = obs.domain;
                    an.analyze_with_entries(&program, &entries)
                        .map_err(|e| format!("{file}: {e}"))
                });
                for (file, result) in files.iter().zip(outputs) {
                    let report = result?;
                    if files.len() > 1 {
                        println!("== {file} ==");
                    }
                    for p in report.predicates() {
                        println!(
                            "{}/{}: ground={:?} models={}",
                            p.name,
                            p.arity,
                            p.definitely_ground,
                            p.prop.count()
                        );
                    }
                    println!(
                        "pairs={} iterations={} total={:?}",
                        report.pairs,
                        report.iterations,
                        report.timings.total()
                    );
                    if report.domain == DomainKind::Bdd {
                        println!(
                            "domain=bdd bdd_nodes={} domain_bytes={}B",
                            report.bdd_nodes, report.domain_bytes
                        );
                    }
                    obs.print_metrics(report.metrics.as_ref());
                }
            } else {
                let outputs = tablog_core::analyze_many(obs.jobs, &files, |file| {
                    let src = read_file(file)?;
                    let program = tablog_syntax::parse_program(&src).map_err(|e| e.to_string())?;
                    let mut an = GroundnessAnalyzer::new();
                    an.profile = obs.profile;
                    an.options.scheduling = obs.scheduling;
                    an.options.threads = obs.threads;
                    an.options.domain = obs.domain;
                    an.options.trace = obs.engine_sink(None);
                    an.options.health = obs.health;
                    an.analyze_with_entries(&program, &entries)
                        .map_err(|e| format!("{file}: {e}"))
                });
                for (file, result) in files.iter().zip(outputs) {
                    let report = result?;
                    if files.len() > 1 {
                        println!("== {file} ==");
                    }
                    for p in report.predicates() {
                        println!(
                            "{}/{}: ground={:?} answers={} calls={}",
                            p.name,
                            p.arity,
                            p.definitely_ground,
                            p.success_rows.len(),
                            p.call_patterns.len()
                        );
                    }
                    println!(
                        "total={:?} tables={}B",
                        report.timings.total(),
                        report.table_bytes()
                    );
                    if report.domain == DomainKind::Bdd {
                        println!(
                            "domain=bdd bdd_nodes={} domain_bytes={}B",
                            report.bdd_nodes, report.domain_bytes
                        );
                    }
                    obs.print_metrics(report.metrics.as_ref());
                }
            }
            Ok(())
        }
        "depthk" => {
            let files = positional(&args[1..]);
            if files.is_empty() {
                return Err(usage());
            }
            let k: usize = flag_value(args, "--k")
                .map(|v| v.parse().map_err(|_| "bad --k value".to_string()))
                .transpose()?
                .unwrap_or(2);
            let entries: Vec<EntryPoint> = match flag_value(args, "--entry") {
                Some(spec) => vec![EntryPoint::parse(spec).map_err(|e| e.to_string())?],
                None => Vec::new(),
            };
            let outputs = tablog_core::analyze_many(obs.jobs, &files, |file| {
                let src = read_file(file)?;
                let program = tablog_syntax::parse_program(&src).map_err(|e| e.to_string())?;
                let mut an = DepthKAnalyzer::new(k);
                an.profile = obs.profile;
                an.options.scheduling = obs.scheduling;
                an.options.threads = obs.threads;
                an.options.trace = obs.engine_sink(None);
                an.options.health = obs.health;
                an.analyze_with_entries(&program, &entries)
                    .map_err(|e| format!("{file}: {e}"))
            });
            for (file, result) in files.iter().zip(outputs) {
                let report = result?;
                if files.len() > 1 {
                    println!("== {file} ==");
                }
                for p in report.predicates() {
                    println!("{}/{}: ground={:?}", p.name, p.arity, p.definitely_ground);
                    for row in p.answers.iter().take(8) {
                        let rendered: Vec<String> = row.iter().map(term_to_string).collect();
                        println!("    ({})", rendered.join(", "));
                    }
                    if p.answers.len() > 8 {
                        println!("    … {} more", p.answers.len() - 8);
                    }
                }
                println!(
                    "total={:?} tables={}B",
                    report.timings.total(),
                    report.table_bytes()
                );
                obs.print_metrics(report.metrics.as_ref());
            }
            Ok(())
        }
        "modes" => {
            let file = args.get(1).ok_or_else(usage)?;
            let src = read_file(file)?;
            let program = tablog_syntax::parse_program(&src).map_err(|e| e.to_string())?;
            let entries: Vec<EntryPoint> = match flag_value(args, "--entry") {
                Some(spec) => vec![EntryPoint::parse(spec).map_err(|e| e.to_string())?],
                None => return Err("modes requires --entry 'pred(g, f, …)'".to_string()),
            };
            let report =
                tablog_core::modes::infer_modes(&program, &entries).map_err(|e| e.to_string())?;
            for p in report.predicates() {
                println!("{}", p.render());
            }
            Ok(())
        }
        "types" => {
            let file = args.get(1).ok_or_else(usage)?;
            let src = read_file(file)?;
            let prog = tablog_funlang::parse_fun_program(&src).map_err(|e| e.to_string())?;
            let report = tablog_core::types::infer_types(&prog).map_err(|e| e.to_string())?;
            for s in report.schemes() {
                println!("{}", s.render());
            }
            Ok(())
        }
        "strict" => {
            let file = args.get(1).ok_or_else(usage)?;
            let src = read_file(file)?;
            let mut an = StrictnessAnalyzer::new();
            an.profile = obs.profile;
            an.options.scheduling = obs.scheduling;
            an.options.threads = obs.threads;
            an.options.trace = obs.engine_sink(None);
            an.options.health = obs.health;
            let report = an.analyze_source(&src).map_err(|e| e.to_string())?;
            for f in report.functions() {
                println!("{}", f.summary());
            }
            println!(
                "total={:?} tables={}B",
                report.timings.total(),
                report.table_bytes()
            );
            obs.print_metrics(report.metrics.as_ref());
            Ok(())
        }
        "run" => {
            let file = args.get(1).ok_or_else(usage)?;
            let entry = args.get(2).map(String::as_str).unwrap_or("main");
            let src = read_file(file)?;
            let prog = tablog_funlang::parse_fun_program(&src).map_err(|e| e.to_string())?;
            let out =
                tablog_funlang::eval_call(&prog, entry, 10_000_000).map_err(|e| e.to_string())?;
            println!("{out}");
            Ok(())
        }
        other => Err(format!("unknown command {other}\n{}", usage())),
    }
}
