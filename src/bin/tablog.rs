//! The `tablog` command-line tool: query tabled logic programs and run the
//! PLDI'96 analyses on program files.
//!
//! ```text
//! tablog query  FILE.pl GOAL            evaluate GOAL against FILE
//! tablog tables FILE.pl GOAL            …and dump the call/answer tables
//! tablog ground FILE.pl [--entry SPEC] [--direct]
//!                                       Prop groundness analysis
//! tablog depthk FILE.pl [--k N] [--entry SPEC]
//!                                       depth-k groundness analysis
//! tablog modes  FILE.pl --entry SPEC    mode inference (+ / - / ?)
//! tablog strict FILE.eq                 strictness analysis
//! tablog types  FILE.eq                 Hindley-Milner type analysis
//! tablog run    FILE.eq [FUNCTION]      evaluate a functional program
//! ```

use std::process::ExitCode;
use tablog_core::depthk::DepthKAnalyzer;
use tablog_core::direct::DirectAnalyzer;
use tablog_core::groundness::{EntryPoint, GroundnessAnalyzer};
use tablog_core::strictness::StrictnessAnalyzer;
use tablog_engine::Engine;
use tablog_syntax::term_to_string;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("tablog: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage: tablog <query|tables|ground|depthk|modes|strict|types|run> FILE [ARGS…]\n\
     see `tablog help` or the crate documentation"
        .to_owned()
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or_else(usage)?;
    match cmd.as_str() {
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        "query" | "tables" => {
            let file = args.get(1).ok_or_else(usage)?;
            let goal = args.get(2).ok_or_else(usage)?;
            let src = read_file(file)?;
            let engine = Engine::from_source(&src).map_err(|e| e.to_string())?;
            if cmd == "query" {
                let sols = engine.solve(goal).map_err(|e| e.to_string())?;
                if sols.is_empty() {
                    println!("no");
                } else {
                    for row in sols.to_strings() {
                        println!("{row}");
                    }
                }
            } else {
                let mut b = tablog_term::Bindings::new();
                let (t, _) =
                    tablog_syntax::parse_term(goal, &mut b).map_err(|e| e.to_string())?;
                let eval =
                    engine.evaluate(&[t], &[], &b).map_err(|e| e.to_string())?;
                for view in eval.subgoals() {
                    println!(
                        "{}  [{} answers, {} bytes]",
                        term_to_string(&view.call_term()),
                        view.num_answers(),
                        view.table_bytes()
                    );
                    for a in view.answers() {
                        println!("    {}", term_to_string(&a));
                    }
                }
                println!("{:?}", eval.stats());
            }
            Ok(())
        }
        "ground" => {
            let file = args.get(1).ok_or_else(usage)?;
            let src = read_file(file)?;
            let program = tablog_syntax::parse_program(&src).map_err(|e| e.to_string())?;
            let entries: Vec<EntryPoint> = match flag_value(args, "--entry") {
                Some(spec) => vec![EntryPoint::parse(spec).map_err(|e| e.to_string())?],
                None => Vec::new(),
            };
            if args.iter().any(|a| a == "--direct") {
                let report = DirectAnalyzer::new()
                    .analyze_with_entries(&program, &entries)
                    .map_err(|e| e.to_string())?;
                for p in report.predicates() {
                    println!(
                        "{}/{}: ground={:?} models={}",
                        p.name,
                        p.arity,
                        p.definitely_ground,
                        p.prop.count()
                    );
                }
                println!(
                    "pairs={} iterations={} total={:?}",
                    report.pairs,
                    report.iterations,
                    report.timings.total()
                );
            } else {
                let report = GroundnessAnalyzer::new()
                    .analyze_with_entries(&program, &entries)
                    .map_err(|e| e.to_string())?;
                for p in report.predicates() {
                    println!(
                        "{}/{}: ground={:?} answers={} calls={}",
                        p.name,
                        p.arity,
                        p.definitely_ground,
                        p.success_rows.len(),
                        p.call_patterns.len()
                    );
                }
                println!(
                    "total={:?} tables={}B",
                    report.timings.total(),
                    report.table_bytes()
                );
            }
            Ok(())
        }
        "depthk" => {
            let file = args.get(1).ok_or_else(usage)?;
            let src = read_file(file)?;
            let program = tablog_syntax::parse_program(&src).map_err(|e| e.to_string())?;
            let k: usize = flag_value(args, "--k")
                .map(|v| v.parse().map_err(|_| "bad --k value".to_string()))
                .transpose()?
                .unwrap_or(2);
            let entries: Vec<EntryPoint> = match flag_value(args, "--entry") {
                Some(spec) => vec![EntryPoint::parse(spec).map_err(|e| e.to_string())?],
                None => Vec::new(),
            };
            let report = DepthKAnalyzer::new(k)
                .analyze_with_entries(&program, &entries)
                .map_err(|e| e.to_string())?;
            for p in report.predicates() {
                println!("{}/{}: ground={:?}", p.name, p.arity, p.definitely_ground);
                for row in p.answers.iter().take(8) {
                    let rendered: Vec<String> = row.iter().map(term_to_string).collect();
                    println!("    ({})", rendered.join(", "));
                }
                if p.answers.len() > 8 {
                    println!("    … {} more", p.answers.len() - 8);
                }
            }
            println!("total={:?} tables={}B", report.timings.total(), report.table_bytes());
            Ok(())
        }
        "modes" => {
            let file = args.get(1).ok_or_else(usage)?;
            let src = read_file(file)?;
            let program = tablog_syntax::parse_program(&src).map_err(|e| e.to_string())?;
            let entries: Vec<EntryPoint> = match flag_value(args, "--entry") {
                Some(spec) => vec![EntryPoint::parse(spec).map_err(|e| e.to_string())?],
                None => return Err("modes requires --entry 'pred(g, f, …)'".to_string()),
            };
            let report = tablog_core::modes::infer_modes(&program, &entries)
                .map_err(|e| e.to_string())?;
            for p in report.predicates() {
                println!("{}", p.render());
            }
            Ok(())
        }
        "types" => {
            let file = args.get(1).ok_or_else(usage)?;
            let src = read_file(file)?;
            let prog =
                tablog_funlang::parse_fun_program(&src).map_err(|e| e.to_string())?;
            let report =
                tablog_core::types::infer_types(&prog).map_err(|e| e.to_string())?;
            for s in report.schemes() {
                println!("{}", s.render());
            }
            Ok(())
        }
        "strict" => {
            let file = args.get(1).ok_or_else(usage)?;
            let src = read_file(file)?;
            let report = StrictnessAnalyzer::new()
                .analyze_source(&src)
                .map_err(|e| e.to_string())?;
            for f in report.functions() {
                println!("{}", f.summary());
            }
            println!("total={:?} tables={}B", report.timings.total(), report.table_bytes());
            Ok(())
        }
        "run" => {
            let file = args.get(1).ok_or_else(usage)?;
            let entry = args.get(2).map(String::as_str).unwrap_or("main");
            let src = read_file(file)?;
            let prog =
                tablog_funlang::parse_fun_program(&src).map_err(|e| e.to_string())?;
            let out = tablog_funlang::eval_call(&prog, entry, 10_000_000)
                .map_err(|e| e.to_string())?;
            println!("{out}");
            Ok(())
        }
        other => Err(format!("unknown command {other}\n{}", usage())),
    }
}
