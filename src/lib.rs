//! `tablog` — practical program analysis using a general-purpose tabled
//! logic programming system.
//!
//! This is the umbrella crate of the PLDI'96 reproduction (Dawson,
//! Ramakrishnan & Warren); it re-exports the workspace crates under one
//! roof and hosts the `tablog` command-line binary, the runnable examples,
//! and the cross-crate integration/property test suites. See the
//! repository `README.md` for a tour and `DESIGN.md` for the
//! paper-to-code map.
//!
//! ```
//! use tablog::engine::Engine;
//!
//! let e = Engine::from_source(
//!     ":- table r/2.
//!      r(X, Y) :- r(X, Z), e(Z, Y).
//!      r(X, Y) :- e(X, Y).
//!      e(1, 2). e(2, 1).",
//! )?;
//! assert_eq!(e.solve("r(1, W)")?.len(), 2);
//! # Ok::<(), tablog::engine::EngineError>(())
//! ```

/// Terms, unification, variant canonicalization.
pub use tablog_term as term;

/// Prolog reader and writer.
pub use tablog_syntax as syntax;

/// The tabled (SLG/OLDT) evaluation engine.
pub use tablog_engine as engine;

/// Magic-sets transformation and bottom-up evaluation.
pub use tablog_magic as magic;

/// Reduced ordered binary decision diagrams.
pub use tablog_bdd as bdd;

/// The mini lazy functional language.
pub use tablog_funlang as funlang;

/// Engine observability: trace events, sinks, per-predicate metrics.
pub use tablog_trace as trace;

/// The analyses: groundness, strictness, depth-k, modes, types.
pub use tablog_core as core;

/// The benchmark programs of the paper's evaluation.
pub use tablog_suite as suite;
