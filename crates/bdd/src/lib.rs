//! Reduced ordered binary decision diagrams (ROBDDs).
//!
//! The PLDI'96 paper represents Prop-domain boolean formulae *enumeratively*
//! (as truth tables) and notes that many contemporary implementations
//! ([10, 40] in the paper) used Bryant's BDDs instead, observing that its
//! enumerative representation was nevertheless competitive because the
//! tabled engine computes fixpoints incrementally. This crate provides the
//! BDD side of that comparison: a small, classic hash-consed ROBDD package
//! with the operations the Prop domain needs — conjunction, disjunction,
//! negation, biconditional, existential quantification, and variable
//! renaming — plus truth-table import/export so the two representations can
//! be checked against each other.
//!
//! # Example
//!
//! ```
//! use tablog_bdd::BddManager;
//!
//! let mut m = BddManager::new();
//! let (x, y) = (m.var(0), m.var(1));
//! let f = m.and(x, y);
//! let g = m.or(x, y);
//! assert!(m.implies_check(f, g));
//! assert_eq!(m.sat_count(f, 2), 1);
//! assert_eq!(m.sat_count(g, 2), 3);
//! ```

use std::collections::HashMap;
use std::fmt;

/// A handle to a BDD node inside a [`BddManager`]. Handles are only
/// meaningful for the manager that created them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Bdd(u32);

impl Bdd {
    /// The constant `false` function.
    pub const FALSE: Bdd = Bdd(0);
    /// The constant `true` function.
    pub const TRUE: Bdd = Bdd(1);

    /// `true` if this is one of the two constant nodes.
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Node {
    var: u32,
    lo: Bdd,
    hi: Bdd,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Op {
    And,
    Or,
    Xor,
}

/// An arena of hash-consed BDD nodes with memoized operations.
///
/// Variables are identified by `u32` indices; the variable order is the
/// numeric order.
#[derive(Clone, Debug, Default)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<Node, Bdd>,
    apply_cache: HashMap<(Op, Bdd, Bdd), Bdd>,
    not_cache: HashMap<Bdd, Bdd>,
}

impl BddManager {
    /// Creates a manager holding only the constants.
    pub fn new() -> Self {
        let mut m = BddManager::default();
        // Index 0 and 1 are reserved for the constants; the sentinel nodes
        // are never inspected.
        m.nodes.push(Node {
            var: u32::MAX,
            lo: Bdd::FALSE,
            hi: Bdd::FALSE,
        });
        m.nodes.push(Node {
            var: u32::MAX,
            lo: Bdd::TRUE,
            hi: Bdd::TRUE,
        });
        m
    }

    /// Number of live nodes (including the two constants).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn mk(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Bdd {
        if lo == hi {
            return lo;
        }
        let node = Node { var, lo, hi };
        if let Some(&id) = self.unique.get(&node) {
            return id;
        }
        let id = Bdd(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, id);
        id
    }

    fn node(&self, f: Bdd) -> Node {
        self.nodes[f.0 as usize]
    }

    /// The projection function of variable `v`.
    pub fn var(&mut self, v: u32) -> Bdd {
        self.mk(v, Bdd::FALSE, Bdd::TRUE)
    }

    /// The negation of variable `v`.
    pub fn nvar(&mut self, v: u32) -> Bdd {
        self.mk(v, Bdd::TRUE, Bdd::FALSE)
    }

    /// Logical negation.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        match f {
            Bdd::FALSE => Bdd::TRUE,
            Bdd::TRUE => Bdd::FALSE,
            _ => {
                if let Some(&r) = self.not_cache.get(&f) {
                    return r;
                }
                let n = self.node(f);
                let lo = self.not(n.lo);
                let hi = self.not(n.hi);
                let r = self.mk(n.var, lo, hi);
                self.not_cache.insert(f, r);
                r
            }
        }
    }

    fn apply(&mut self, op: Op, f: Bdd, g: Bdd) -> Bdd {
        // Terminal cases.
        match op {
            Op::And => {
                if f == Bdd::FALSE || g == Bdd::FALSE {
                    return Bdd::FALSE;
                }
                if f == Bdd::TRUE {
                    return g;
                }
                if g == Bdd::TRUE || f == g {
                    return f;
                }
            }
            Op::Or => {
                if f == Bdd::TRUE || g == Bdd::TRUE {
                    return Bdd::TRUE;
                }
                if f == Bdd::FALSE {
                    return g;
                }
                if g == Bdd::FALSE || f == g {
                    return f;
                }
            }
            Op::Xor => {
                if f == Bdd::FALSE {
                    return g;
                }
                if g == Bdd::FALSE {
                    return f;
                }
                if f == g {
                    return Bdd::FALSE;
                }
                if f == Bdd::TRUE {
                    return self.not(g);
                }
                if g == Bdd::TRUE {
                    return self.not(f);
                }
            }
        }
        // Commutative: normalize the cache key.
        let key = if f.0 <= g.0 { (op, f, g) } else { (op, g, f) };
        if let Some(&r) = self.apply_cache.get(&key) {
            return r;
        }
        let nf = self.node(f);
        let ng = self.node(g);
        let var = nf.var.min(ng.var);
        let (flo, fhi) = if nf.var == var {
            (nf.lo, nf.hi)
        } else {
            (f, f)
        };
        let (glo, ghi) = if ng.var == var {
            (ng.lo, ng.hi)
        } else {
            (g, g)
        };
        let lo = self.apply(op, flo, glo);
        let hi = self.apply(op, fhi, ghi);
        let r = self.mk(var, lo, hi);
        self.apply_cache.insert(key, r);
        r
    }

    /// Conjunction.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.apply(Op::And, f, g)
    }

    /// Disjunction.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.apply(Op::Or, f, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.apply(Op::Xor, f, g)
    }

    /// Biconditional `f ⇔ g` — the workhorse of the Prop domain.
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let x = self.xor(f, g);
        self.not(x)
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let nf = self.not(f);
        self.or(nf, g)
    }

    /// Conjunction of a set of variables — `v1 ∧ … ∧ vk`.
    pub fn var_conj(&mut self, vars: &[u32]) -> Bdd {
        let mut acc = Bdd::TRUE;
        for &v in vars {
            let x = self.var(v);
            acc = self.and(acc, x);
        }
        acc
    }

    /// Existential quantification of variable `v`: `∃v. f`.
    pub fn exists(&mut self, v: u32, f: Bdd) -> Bdd {
        let lo = self.restrict(v, false, f);
        let hi = self.restrict(v, true, f);
        self.or(lo, hi)
    }

    /// Universal quantification of variable `v`: `∀v. f`.
    pub fn forall(&mut self, v: u32, f: Bdd) -> Bdd {
        let lo = self.restrict(v, false, f);
        let hi = self.restrict(v, true, f);
        self.and(lo, hi)
    }

    /// Cofactor: `f` with `v` fixed to `value`.
    pub fn restrict(&mut self, v: u32, value: bool, f: Bdd) -> Bdd {
        if f.is_const() {
            return f;
        }
        let n = self.node(f);
        if n.var > v {
            return f;
        }
        if n.var == v {
            return if value { n.hi } else { n.lo };
        }
        let lo = self.restrict(v, value, n.lo);
        let hi = self.restrict(v, value, n.hi);
        self.mk(n.var, lo, hi)
    }

    /// Renames variables: every variable `v` in `f` becomes `map(v)`.
    /// The mapping must be injective on `f`'s support but need not preserve
    /// order (the result is rebuilt).
    pub fn rename(&mut self, f: Bdd, map: &dyn Fn(u32) -> u32) -> Bdd {
        if f.is_const() {
            return f;
        }
        let n = self.node(f);
        let lo = self.rename(n.lo, map);
        let hi = self.rename(n.hi, map);
        let v = map(n.var);
        // Rebuild respecting the order: ite(v, hi, lo).
        let pv = self.var(v);
        let t1 = self.and(pv, hi);
        let npv = self.not(pv);
        let t0 = self.and(npv, lo);
        self.or(t1, t0)
    }

    /// Evaluates `f` under a total assignment (index = variable).
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        let mut cur = f;
        loop {
            match cur {
                Bdd::FALSE => return false,
                Bdd::TRUE => return true,
                _ => {
                    let n = self.node(cur);
                    cur = if assignment[n.var as usize] {
                        n.hi
                    } else {
                        n.lo
                    };
                }
            }
        }
    }

    /// Number of satisfying assignments over variables `0..nvars`,
    /// saturating at `u128::MAX`. `2^k` counts overflow a `u64` as soon as
    /// `nvars >= 64`; the arithmetic here is checked so wide formulae
    /// saturate instead of silently wrapping in release builds.
    pub fn sat_count(&self, f: Bdd, nvars: u32) -> u128 {
        fn pow2(exp: u32) -> u128 {
            1u128.checked_shl(exp).unwrap_or(u128::MAX)
        }
        fn shl_sat(x: u128, exp: u32) -> u128 {
            x.checked_shl(exp)
                .filter(|&c| c >> exp == x)
                .unwrap_or(u128::MAX)
        }
        fn go(
            m: &BddManager,
            f: Bdd,
            from: u32,
            nvars: u32,
            memo: &mut HashMap<(Bdd, u32), u128>,
        ) -> u128 {
            match f {
                Bdd::FALSE => 0,
                Bdd::TRUE => pow2(nvars - from),
                _ => {
                    if let Some(&c) = memo.get(&(f, from)) {
                        return c;
                    }
                    let n = m.node(f);
                    let skipped = n.var - from;
                    let lo = go(m, n.lo, n.var + 1, nvars, memo);
                    let hi = go(m, n.hi, n.var + 1, nvars, memo);
                    let c = shl_sat(lo.saturating_add(hi), skipped);
                    memo.insert((f, from), c);
                    c
                }
            }
        }
        go(self, f, 0, nvars, &mut HashMap::new())
    }

    /// Estimated bytes of the manager's live state: the node arena plus the
    /// hash-consing and memo tables. Used for per-table byte attribution
    /// when the BDD backend is the active Prop domain.
    pub fn mem_bytes(&self) -> usize {
        use std::mem::size_of;
        self.nodes.len() * size_of::<Node>()
            + self.unique.capacity() * (size_of::<Node>() + size_of::<Bdd>())
            + self.apply_cache.capacity() * (size_of::<(Op, Bdd, Bdd)>() + size_of::<Bdd>())
            + self.not_cache.capacity() * (2 * size_of::<Bdd>())
    }

    /// `true` if `f → g` is a tautology.
    pub fn implies_check(&mut self, f: Bdd, g: Bdd) -> bool {
        self.implies(f, g) == Bdd::TRUE
    }

    /// Builds a BDD from a truth table over `nvars` variables;
    /// `bits[i]` is the function value at the assignment whose bit `j`
    /// (of `i`) gives variable `j`'s value.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != 1 << nvars`.
    pub fn from_truth_table(&mut self, bits: &[bool], nvars: u32) -> Bdd {
        assert_eq!(bits.len(), 1usize << nvars, "truth table size mismatch");
        let mut f = Bdd::FALSE;
        for (i, &bit) in bits.iter().enumerate() {
            if !bit {
                continue;
            }
            let mut row = Bdd::TRUE;
            for v in 0..nvars {
                let lit = if i & (1 << v) != 0 {
                    self.var(v)
                } else {
                    self.nvar(v)
                };
                row = self.and(row, lit);
            }
            f = self.or(f, row);
        }
        f
    }

    /// Exports `f` as a truth table over variables `0..nvars`
    /// (inverse of [`BddManager::from_truth_table`]).
    pub fn to_truth_table(&self, f: Bdd, nvars: u32) -> Vec<bool> {
        (0..(1usize << nvars))
            .map(|i| {
                let assignment: Vec<bool> = (0..nvars).map(|v| i & (1 << v) != 0).collect();
                self.eval(f, &assignment)
            })
            .collect()
    }

    /// The support of `f`: the variables it depends on, ascending.
    pub fn support(&self, f: Bdd) -> Vec<u32> {
        let mut vars = Vec::new();
        let mut stack = vec![f];
        let mut seen = std::collections::HashSet::new();
        while let Some(g) = stack.pop() {
            if g.is_const() || !seen.insert(g) {
                continue;
            }
            let n = self.node(g);
            vars.push(n.var);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        vars.sort_unstable();
        vars.dedup();
        vars
    }
}

impl fmt::Display for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Bdd::FALSE => f.write_str("⊥"),
            Bdd::TRUE => f.write_str("⊤"),
            Bdd(n) => write!(f, "bdd#{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_behave() {
        let mut m = BddManager::new();
        assert_eq!(m.and(Bdd::TRUE, Bdd::FALSE), Bdd::FALSE);
        assert_eq!(m.or(Bdd::TRUE, Bdd::FALSE), Bdd::TRUE);
        assert_eq!(m.not(Bdd::TRUE), Bdd::FALSE);
    }

    #[test]
    fn hash_consing_makes_equal_functions_identical() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let a = m.and(x, y);
        let b0 = m.not(x);
        let b1 = m.not(y);
        let b2 = m.or(b0, b1);
        let b = m.not(b2); // ¬(¬x ∨ ¬y) = x ∧ y
        assert_eq!(a, b);
    }

    #[test]
    fn xor_and_iff_are_complements() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let xo = m.xor(x, y);
        let eq = m.iff(x, y);
        assert_eq!(m.not(xo), eq);
    }

    #[test]
    fn sat_count_small_functions() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let z = m.var(2);
        let f = m.and(x, y);
        assert_eq!(m.sat_count(f, 3), 2); // z free
        let g = m.or(f, z);
        assert_eq!(m.sat_count(g, 3), 5);
        assert_eq!(m.sat_count(Bdd::TRUE, 3), 8);
        assert_eq!(m.sat_count(Bdd::FALSE, 3), 0);
    }

    #[test]
    fn prop_iff_constraint_truth_table() {
        // X ⇔ Y1 ∧ Y2: exactly the 4 rows of the paper's iff/3.
        let mut m = BddManager::new();
        let x = m.var(0);
        let ys = m.var_conj(&[1, 2]);
        let f = m.iff(x, ys);
        assert_eq!(m.sat_count(f, 3), 4);
        assert!(m.eval(f, &[true, true, true]));
        assert!(m.eval(f, &[false, false, true]));
        assert!(m.eval(f, &[false, true, false]));
        assert!(!m.eval(f, &[true, true, false]));
    }

    #[test]
    fn exists_projects_out() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.and(x, y);
        let e = m.exists(1, f);
        assert_eq!(e, x);
        let a = m.forall(1, f);
        assert_eq!(a, Bdd::FALSE);
    }

    #[test]
    fn restrict_cofactors() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.iff(x, y);
        assert_eq!(m.restrict(0, true, f), y);
        let ny = m.not(y);
        assert_eq!(m.restrict(0, false, f), ny);
    }

    #[test]
    fn rename_shifts_support() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.and(x, y);
        let g = m.rename(f, &|v| v + 5);
        assert_eq!(m.support(g), vec![5, 6]);
        let expect_a = m.var(5);
        let expect_b = m.var(6);
        let expect = m.and(expect_a, expect_b);
        assert_eq!(g, expect);
    }

    #[test]
    fn rename_can_invert_order() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let ny = m.nvar(1);
        let f = m.and(x, ny); // x ∧ ¬y
        let g = m.rename(f, &|v| 1 - v); // y ∧ ¬x
        let y = m.var(1);
        let nx = m.not(m.clone().var(0)); // avoid double borrow in test
        let _ = nx;
        let x0 = m.var(0);
        let nx0 = m.not(x0);
        let expect = m.and(y, nx0);
        assert_eq!(g, expect);
    }

    #[test]
    fn truth_table_round_trip() {
        let mut m = BddManager::new();
        // f(x0,x1,x2) = x0 ⇔ (x1 ∧ x2), via table.
        let bits: Vec<bool> = (0..8)
            .map(|i: usize| {
                let x0 = i & 1 != 0;
                let x1 = i & 2 != 0;
                let x2 = i & 4 != 0;
                x0 == (x1 && x2)
            })
            .collect();
        let f = m.from_truth_table(&bits, 3);
        assert_eq!(m.to_truth_table(f, 3), bits);
        // Must equal the directly constructed function.
        let x0 = m.var(0);
        let ys = m.var_conj(&[1, 2]);
        let g = m.iff(x0, ys);
        assert_eq!(f, g);
    }

    #[test]
    fn implication_check() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.and(x, y);
        let g = m.or(x, y);
        assert!(m.implies_check(f, g));
        assert!(!m.implies_check(g, f));
        assert!(m.implies_check(Bdd::FALSE, f));
        assert!(m.implies_check(f, Bdd::TRUE));
    }

    #[test]
    fn support_of_constants_is_empty() {
        let m = BddManager::new();
        assert!(m.support(Bdd::TRUE).is_empty());
        assert!(m.support(Bdd::FALSE).is_empty());
    }

    #[test]
    fn sat_count_survives_wide_formulae() {
        // Regression: the count used to be u64 with unchecked shifts, so
        // any universe of 64+ variables overflowed in release builds.
        let mut m = BddManager::new();
        assert_eq!(m.sat_count(Bdd::TRUE, 100), 1u128 << 100);
        assert_eq!(m.sat_count(Bdd::FALSE, 100), 0);
        let x = m.var(0);
        assert_eq!(m.sat_count(x, 100), 1u128 << 99);
        let y = m.var(90);
        let f = m.and(x, y);
        assert_eq!(m.sat_count(f, 100), 1u128 << 98);
        // Past 2^128 the count saturates instead of wrapping.
        assert_eq!(m.sat_count(Bdd::TRUE, 130), u128::MAX);
        assert_eq!(m.sat_count(x, 130), u128::MAX);
    }

    #[test]
    fn mem_bytes_grows_with_the_arena() {
        let mut m = BddManager::new();
        let empty = m.mem_bytes();
        let mut f = Bdd::TRUE;
        for v in 0..16 {
            let x = m.var(v);
            f = m.and(f, x);
        }
        assert!(f != Bdd::FALSE);
        assert!(m.mem_bytes() > empty);
    }

    #[test]
    fn node_count_stays_reasonable() {
        // Chain of conjunctions: the arena keeps dead intermediates (it is
        // append-only, no GC), so growth is quadratic in allocations but the
        // final function itself is a linear chain — far from exponential.
        let mut m = BddManager::new();
        let mut f = Bdd::TRUE;
        for v in 0..64 {
            let x = m.var(v);
            f = m.and(f, x);
        }
        assert!(m.num_nodes() < 3000, "{}", m.num_nodes());
        assert_eq!(m.sat_count(f, 64), 1);
        assert_eq!(m.support(f).len(), 64);
    }
}
