//! Pluggable abstract-domain layer for the Prop/Pos groundness analyses.
//!
//! The paper represents Pos formulae *enumeratively* (truth tables,
//! Section 3.1) and contrasts that choice with contemporary BDD-based
//! analysers ([10, 40] in the paper; Howe & King later showed the same
//! domain runs well over ROBDDs). This crate makes the comparison a
//! first-class citizen: the [`AbstractDomain`] trait captures exactly the
//! operations both the tabled analyzer and the hand-coded direct analyzer
//! need — top/bottom, meet/join, the `iff` constraint, projection/rename,
//! relation embedding, entailment — and two backends implement it:
//!
//! * [`TableDomain`] — the paper's enumerative [`PropTable`] bitsets
//!   (default; delegation is 1:1 so results are bit-for-bit identical to
//!   the pre-refactor code), and
//! * [`BddDomain`] — hash-consed ROBDDs over [`tablog_bdd::BddManager`],
//!   cross-checkable against the tables via truth-table export.
//!
//! [`DomainKind`] is the backend selector threaded through engine options
//! and the CLI (`--domain {table,bdd}`), and [`iff_rows`] is the shared
//! row enumerator behind the engine's `$iff/N` builtin, including the
//! [`MAX_IFF_FREE_VARS`] guard against pathological arities.

pub mod prop;

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;
use std::str::FromStr;

pub use prop::{PropTable, MAX_VARS};
use tablog_bdd::{Bdd, BddManager};

/// Which Prop-domain backend to run an analysis on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum DomainKind {
    /// Enumerative truth tables (the paper's representation; default).
    #[default]
    Table,
    /// Reduced ordered binary decision diagrams.
    Bdd,
}

impl DomainKind {
    /// Every selectable backend, in presentation order.
    pub const ALL: [DomainKind; 2] = [DomainKind::Table, DomainKind::Bdd];

    /// The stable lowercase name used by `--domain`, JSON documents and
    /// metrics labels.
    pub fn name(&self) -> &'static str {
        match self {
            DomainKind::Table => "table",
            DomainKind::Bdd => "bdd",
        }
    }
}

impl fmt::Display for DomainKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for DomainKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "table" => Ok(DomainKind::Table),
            "bdd" => Ok(DomainKind::Bdd),
            other => {
                let names: Vec<&str> = DomainKind::ALL.iter().map(|d| d.name()).collect();
                Err(format!(
                    "unknown domain '{other}' (expected one of: {})",
                    names.join(", ")
                ))
            }
        }
    }
}

/// How many *free* `Y` arguments the `$iff/N` builtin will enumerate.
///
/// The builtin materialises one row per assignment of the free `Y`s —
/// `2^k` rows for `k` free variables — so an unguarded wide call would
/// silently allocate gigabytes. Bound arguments and the head `X` (which is
/// computed, never enumerated) do not count against the cap. 2^16 rows is
/// ~a few MB of bindings: far beyond anything the Figure 1 transform emits
/// (clause bodies bound by [`MAX_VARS`]), yet cheap enough to stay honest.
pub const MAX_IFF_FREE_VARS: usize = 16;

/// One argument of an `$iff/N` call, as seen by the enumerator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IffArg {
    /// Bound to `true`.
    True,
    /// Bound to `false`.
    False,
    /// Unbound — to be enumerated (if a `Y`) or computed (the head).
    Free,
}

/// Error returned when an `$iff/N` call would enumerate more than
/// `2^`[`MAX_IFF_FREE_VARS`] rows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IffOverflow {
    /// Number of free `Y` arguments in the offending call.
    pub free: usize,
}

impl fmt::Display for IffOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} free variables would enumerate 2^{} rows (cap: {MAX_IFF_FREE_VARS} free variables)",
            self.free, self.free
        )
    }
}

/// Enumerates the satisfying rows of `x ⇔ y1 ∧ … ∧ yk` consistent with the
/// bound arguments. `vals[0]` is the head `x`; the rest are the `y`s.
///
/// This is the single source of truth for the engine's `$iff/N` builtin:
/// rows come back in *exactly* the historical order (ascending enumeration
/// mask over the free `y`s, earliest free `y` in the lowest bit), each row
/// full-length with bound positions fixed, head-inconsistent rows skipped,
/// and `row[0]` set to the conjunction of the `y`s. Returns
/// [`IffOverflow`] when more than [`MAX_IFF_FREE_VARS`] `y`s are free.
///
/// # Panics
///
/// Panics if `vals` is empty — `$iff` has at least the head argument.
pub fn iff_rows(vals: &[IffArg]) -> Result<Vec<Vec<bool>>, IffOverflow> {
    let k = vals.len() - 1;
    let free_ys: Vec<usize> = (1..=k).filter(|&i| vals[i] == IffArg::Free).collect();
    if free_ys.len() > MAX_IFF_FREE_VARS {
        return Err(IffOverflow {
            free: free_ys.len(),
        });
    }
    let mut out = Vec::new();
    for mask in 0u64..(1u64 << free_ys.len()) {
        let mut row = vec![true; vals.len()];
        for i in 1..=k {
            row[i] = match vals[i] {
                IffArg::True => true,
                IffArg::False => false,
                IffArg::Free => {
                    let pos = free_ys
                        .iter()
                        .position(|&j| j == i)
                        .expect("free var is indexed");
                    mask & (1 << pos) != 0
                }
            };
        }
        let and = row[1..].iter().all(|&v| v);
        match vals[0] {
            IffArg::True if !and => continue,
            IffArg::False if and => continue,
            _ => {}
        }
        row[0] = and;
        out.push(row);
    }
    Ok(out)
}

/// Size estimate for a backend's private state, for per-table byte
/// attribution. The enumerative backend owns nothing (its tables live in
/// the values themselves and are counted by the engine); the BDD backend
/// reports its manager arena.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DomainStats {
    /// Live BDD nodes (0 for the enumerative backend).
    pub nodes: usize,
    /// Estimated bytes of backend-private state.
    pub bytes: usize,
}

/// The operations the groundness analyses need from a Pos representation.
///
/// Methods take `&mut self` because the BDD backend owns a shared,
/// memoizing [`BddManager`]; the enumerative backend is stateless.
/// `Value`s are only meaningful for the backend instance that created
/// them, and — thanks to hash consing on the BDD side — `Eq`/`Hash` on a
/// `Value` coincide with semantic equality for both backends, so values
/// can key fixpoint tables directly.
pub trait AbstractDomain {
    /// A boolean function over `0..num_vars` variables.
    type Value: Clone + Eq + Hash + fmt::Debug;

    /// Which backend this is.
    fn kind(&self) -> DomainKind;

    /// The always-true function over `nvars` variables.
    fn top(&mut self, nvars: usize) -> Self::Value;

    /// The always-false function over `nvars` variables.
    fn bottom(&mut self, nvars: usize) -> Self::Value;

    /// Number of variables `v` ranges over.
    fn num_vars(&self, v: &Self::Value) -> usize;

    /// Conjunction (greatest lower bound).
    fn meet(&mut self, a: &Self::Value, b: &Self::Value) -> Self::Value;

    /// Disjunction (least upper bound — the Pos join).
    fn join(&mut self, a: &Self::Value, b: &Self::Value) -> Self::Value;

    /// Conjoins the constraint `x ⇔ y1 ∧ … ∧ yk`.
    fn constrain_iff(&mut self, v: &Self::Value, x: usize, ys: &[usize]) -> Self::Value;

    /// Conjoins `var = value`.
    fn constrain_value(&mut self, v: &Self::Value, var: usize, value: bool) -> Self::Value;

    /// Adds `extra` fresh, unconstrained variables after the current ones.
    fn extend(&mut self, v: &Self::Value, extra: usize) -> Self::Value;

    /// Restricts to `keep` (in order): existentially quantifies everything
    /// else and renumbers, so the result has `keep.len()` variables.
    /// Subsumes `rename`: passing a permutation reorders the variables.
    fn project(&mut self, v: &Self::Value, keep: &[usize]) -> Self::Value;

    /// Applies the variable permutation `perm` (old variable `i` becomes
    /// position `perm.iter().position(i)`); `perm` must mention every
    /// variable exactly once.
    fn rename(&mut self, v: &Self::Value, perm: &[usize]) -> Self::Value {
        debug_assert_eq!(perm.len(), self.num_vars(v), "rename is a permutation");
        self.project(v, perm)
    }

    /// Conjoins with `rel` (a function over `positions.len()` variables)
    /// embedded at `positions`.
    fn constrain_relation(
        &mut self,
        v: &Self::Value,
        positions: &[usize],
        rel: &Self::Value,
    ) -> Self::Value;

    /// `true` if `var` is true in every model *and* the value is
    /// satisfiable — "definitely ground".
    fn definitely(&mut self, v: &Self::Value, var: usize) -> bool;

    /// `true` if the value is unsatisfiable (bottom).
    fn is_empty(&mut self, v: &Self::Value) -> bool;

    /// Entailment: `a → b` is a tautology (subsumption check).
    fn leq(&mut self, a: &Self::Value, b: &Self::Value) -> bool;

    /// Builds a value from explicit satisfying rows (each of length
    /// `nvars`).
    fn lift_rows(&mut self, nvars: usize, rows: &[Vec<bool>]) -> Self::Value;

    /// Exports the value as an enumerative truth table — the common
    /// currency for cross-backend checks and reporting.
    fn to_table(&mut self, v: &Self::Value) -> PropTable;

    /// Human-readable rendering: the satisfying rows as `g`/`n` strings,
    /// sorted — e.g. `{ggg, gnn}`.
    fn render(&mut self, v: &Self::Value) -> String {
        let mut rows: Vec<String> = self
            .to_table(v)
            .rows()
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&b| if b { 'g' } else { 'n' })
                    .collect::<String>()
            })
            .collect();
        rows.sort();
        format!("{{{}}}", rows.join(", "))
    }

    /// JSON rendering: the sorted `g`/`n` row strings as a JSON array.
    fn render_json(&mut self, v: &Self::Value) -> String {
        let mut rows: Vec<String> = self
            .to_table(v)
            .rows()
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&b| if b { 'g' } else { 'n' })
                    .collect::<String>()
            })
            .collect();
        rows.sort();
        let quoted: Vec<String> = rows.iter().map(|r| format!("\"{r}\"")).collect();
        format!("[{}]", quoted.join(","))
    }

    /// Backend-private memory, for per-table byte attribution.
    fn stats(&self) -> DomainStats;
}

/// The paper's enumerative backend: pure delegation to [`PropTable`], so
/// every result is bit-for-bit what the pre-domain-layer code produced.
#[derive(Clone, Copy, Debug, Default)]
pub struct TableDomain;

impl AbstractDomain for TableDomain {
    type Value = PropTable;

    fn kind(&self) -> DomainKind {
        DomainKind::Table
    }

    fn top(&mut self, nvars: usize) -> PropTable {
        PropTable::top(nvars)
    }

    fn bottom(&mut self, nvars: usize) -> PropTable {
        PropTable::bottom(nvars)
    }

    fn num_vars(&self, v: &PropTable) -> usize {
        v.num_vars()
    }

    fn meet(&mut self, a: &PropTable, b: &PropTable) -> PropTable {
        a.and(b)
    }

    fn join(&mut self, a: &PropTable, b: &PropTable) -> PropTable {
        a.or(b)
    }

    fn constrain_iff(&mut self, v: &PropTable, x: usize, ys: &[usize]) -> PropTable {
        v.constrain_iff(x, ys)
    }

    fn constrain_value(&mut self, v: &PropTable, var: usize, value: bool) -> PropTable {
        v.constrain_value(var, value)
    }

    fn extend(&mut self, v: &PropTable, extra: usize) -> PropTable {
        v.extend(extra)
    }

    fn project(&mut self, v: &PropTable, keep: &[usize]) -> PropTable {
        v.project(keep)
    }

    fn constrain_relation(
        &mut self,
        v: &PropTable,
        positions: &[usize],
        rel: &PropTable,
    ) -> PropTable {
        v.constrain_relation(positions, rel)
    }

    fn definitely(&mut self, v: &PropTable, var: usize) -> bool {
        v.definitely(var)
    }

    fn is_empty(&mut self, v: &PropTable) -> bool {
        v.is_empty()
    }

    fn leq(&mut self, a: &PropTable, b: &PropTable) -> bool {
        a.subset_of(b)
    }

    fn lift_rows(&mut self, nvars: usize, rows: &[Vec<bool>]) -> PropTable {
        PropTable::from_rows(nvars, rows)
    }

    fn to_table(&mut self, v: &PropTable) -> PropTable {
        v.clone()
    }

    fn stats(&self) -> DomainStats {
        DomainStats::default()
    }
}

/// A Pos formula held by the BDD backend: the ROBDD root plus the width of
/// the variable universe it ranges over (BDDs do not record unconstrained
/// trailing variables, so the width must travel with the handle).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BddValue {
    /// The ROBDD root inside the owning [`BddDomain`]'s manager.
    pub f: Bdd,
    /// Number of variables the value ranges over.
    pub nvars: usize,
}

/// The ROBDD backend over a shared, hash-consing [`BddManager`].
#[derive(Clone, Debug, Default)]
pub struct BddDomain {
    m: BddManager,
}

impl BddDomain {
    /// A fresh backend with an empty manager.
    pub fn new() -> Self {
        BddDomain {
            m: BddManager::new(),
        }
    }

    /// The underlying manager (for diagnostics and truth-table export).
    pub fn manager(&self) -> &BddManager {
        &self.m
    }

    /// Total nodes allocated by the manager so far.
    pub fn num_nodes(&self) -> usize {
        self.m.num_nodes()
    }
}

impl AbstractDomain for BddDomain {
    type Value = BddValue;

    fn kind(&self) -> DomainKind {
        DomainKind::Bdd
    }

    fn top(&mut self, nvars: usize) -> BddValue {
        BddValue {
            f: Bdd::TRUE,
            nvars,
        }
    }

    fn bottom(&mut self, nvars: usize) -> BddValue {
        BddValue {
            f: Bdd::FALSE,
            nvars,
        }
    }

    fn num_vars(&self, v: &BddValue) -> usize {
        v.nvars
    }

    fn meet(&mut self, a: &BddValue, b: &BddValue) -> BddValue {
        debug_assert_eq!(a.nvars, b.nvars, "meet arity mismatch");
        BddValue {
            f: self.m.and(a.f, b.f),
            nvars: a.nvars,
        }
    }

    fn join(&mut self, a: &BddValue, b: &BddValue) -> BddValue {
        debug_assert_eq!(a.nvars, b.nvars, "join arity mismatch");
        BddValue {
            f: self.m.or(a.f, b.f),
            nvars: a.nvars,
        }
    }

    fn constrain_iff(&mut self, v: &BddValue, x: usize, ys: &[usize]) -> BddValue {
        let yv: Vec<u32> = ys.iter().map(|&y| y as u32).collect();
        let conj = self.m.var_conj(&yv);
        let xv = self.m.var(x as u32);
        let c = self.m.iff(xv, conj);
        BddValue {
            f: self.m.and(v.f, c),
            nvars: v.nvars,
        }
    }

    fn constrain_value(&mut self, v: &BddValue, var: usize, value: bool) -> BddValue {
        let lit = if value {
            self.m.var(var as u32)
        } else {
            self.m.nvar(var as u32)
        };
        BddValue {
            f: self.m.and(v.f, lit),
            nvars: v.nvars,
        }
    }

    fn extend(&mut self, v: &BddValue, extra: usize) -> BddValue {
        // Fresh variables are unconstrained; only the universe widens.
        BddValue {
            f: v.f,
            nvars: v.nvars + extra,
        }
    }

    fn project(&mut self, v: &BddValue, keep: &[usize]) -> BddValue {
        // `keep` may repeat variables (the enumerative project equates
        // duplicated columns), so a plain rename is not enough: bridge each
        // output to its source through temporaries above the current
        // universe, quantify the sources out, then shift the temporaries
        // down into place.
        let n = v.nvars;
        let mut g = v.f;
        for (new, &old) in keep.iter().enumerate() {
            let t = self.m.var((n + new) as u32);
            let o = self.m.var(old as u32);
            let c = self.m.iff(t, o);
            g = self.m.and(g, c);
        }
        for old in 0..n {
            g = self.m.exists(old as u32, g);
        }
        BddValue {
            f: self.m.rename(g, &|x| x - n as u32),
            nvars: keep.len(),
        }
    }

    fn constrain_relation(
        &mut self,
        v: &BddValue,
        positions: &[usize],
        rel: &BddValue,
    ) -> BddValue {
        debug_assert_eq!(
            positions.len(),
            rel.nvars,
            "position/relation arity mismatch"
        );
        // Variable-to-variable substitution: rel's variable i becomes
        // positions[i]. `rename` rebuilds bottom-up, which is sound even
        // when `positions` repeats a target.
        let embedded = self.m.rename(rel.f, &|i| positions[i as usize] as u32);
        BddValue {
            f: self.m.and(v.f, embedded),
            nvars: v.nvars,
        }
    }

    fn definitely(&mut self, v: &BddValue, var: usize) -> bool {
        if v.f == Bdd::FALSE {
            return false;
        }
        let x = self.m.var(var as u32);
        self.m.implies_check(v.f, x)
    }

    fn is_empty(&mut self, v: &BddValue) -> bool {
        v.f == Bdd::FALSE
    }

    fn leq(&mut self, a: &BddValue, b: &BddValue) -> bool {
        debug_assert_eq!(a.nvars, b.nvars, "leq arity mismatch");
        self.m.implies_check(a.f, b.f)
    }

    fn lift_rows(&mut self, nvars: usize, rows: &[Vec<bool>]) -> BddValue {
        let mut f = Bdd::FALSE;
        for row in rows {
            let mut conj = Bdd::TRUE;
            for (i, &b) in row.iter().enumerate() {
                let lit = if b {
                    self.m.var(i as u32)
                } else {
                    self.m.nvar(i as u32)
                };
                conj = self.m.and(conj, lit);
            }
            f = self.m.or(f, conj);
        }
        BddValue { f, nvars }
    }

    fn to_table(&mut self, v: &BddValue) -> PropTable {
        PropTable::from_bdd(&self.m, v.f, v.nvars)
    }

    fn stats(&self) -> DomainStats {
        DomainStats {
            nodes: self.m.num_nodes(),
            bytes: self.m.mem_bytes(),
        }
    }
}

/// Builds a value from the analyzer's partial success rows — `Some(b)`
/// pins a variable, `None` leaves it unconstrained. One row becomes one
/// cube; the value is their disjunction. Shared by both analyzers'
/// collection phases so the backends see identical inputs.
pub fn value_from_partial_rows<D: AbstractDomain>(
    d: &mut D,
    nvars: usize,
    rows: &[Vec<Option<bool>>],
) -> D::Value {
    let mut acc = d.bottom(nvars);
    for row in rows {
        let mut cube = d.top(nvars);
        for (i, val) in row.iter().enumerate() {
            if let Some(b) = val {
                cube = d.constrain_value(&cube, i, *b);
            }
        }
        acc = d.join(&acc, &cube);
    }
    acc
}

/// A type-erased map from keys to domain values *rendered as truth
/// tables*, for cross-backend differential checks.
pub fn tables_agree(a: &HashMap<String, PropTable>, b: &HashMap<String, PropTable>) -> bool {
    a.len() == b.len() && a.iter().all(|(k, v)| b.get(k) == Some(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_kind_round_trips_through_names() {
        for d in DomainKind::ALL {
            assert_eq!(d.name().parse::<DomainKind>().unwrap(), d);
        }
        let err = "robdd".parse::<DomainKind>().unwrap_err();
        for d in DomainKind::ALL {
            assert!(err.contains(d.name()), "{err} should mention {d}");
        }
        assert_eq!(DomainKind::default(), DomainKind::Table);
    }

    #[test]
    fn iff_rows_enumerates_the_full_table_when_all_free() {
        // $iff(X, Y1, Y2) fully free: 4 rows, mask order.
        let rows = iff_rows(&[IffArg::Free, IffArg::Free, IffArg::Free]).unwrap();
        assert_eq!(
            rows,
            vec![
                vec![false, false, false],
                vec![false, true, false],
                vec![false, false, true],
                vec![true, true, true],
            ]
        );
    }

    #[test]
    fn iff_rows_prunes_on_bound_head() {
        let rows = iff_rows(&[IffArg::True, IffArg::Free, IffArg::Free]).unwrap();
        assert_eq!(rows, vec![vec![true, true, true]]);
        let rows = iff_rows(&[IffArg::False, IffArg::Free]).unwrap();
        assert_eq!(rows, vec![vec![false, false]]);
    }

    #[test]
    fn iff_rows_respects_bound_ys() {
        let rows = iff_rows(&[IffArg::Free, IffArg::False, IffArg::Free]).unwrap();
        // Y1 pinned false: the head can never be true.
        assert_eq!(
            rows,
            vec![vec![false, false, false], vec![false, false, true]]
        );
    }

    #[test]
    fn iff_rows_overflows_past_the_cap() {
        let mut vals = vec![IffArg::Free; MAX_IFF_FREE_VARS + 2];
        let err = iff_rows(&vals).unwrap_err();
        assert_eq!(err.free, MAX_IFF_FREE_VARS + 1);
        assert!(err.to_string().contains("cap"));
        // Bound arguments do not count against the cap.
        for v in vals.iter_mut().skip(1) {
            *v = IffArg::True;
        }
        assert!(iff_rows(&vals).is_ok());
    }

    /// Runs the same clause-evaluation-shaped op sequence on any backend
    /// and exports the result as a truth table.
    fn clause_shape<D: AbstractDomain>(d: &mut D) -> PropTable {
        let top = d.top(3);
        let v = d.constrain_iff(&top, 0, &[1, 2]);
        let v = d.extend(&v, 1);
        let v = d.constrain_iff(&v, 3, &[0]);
        let v = d.project(&v, &[3, 1]);
        d.to_table(&v)
    }

    #[test]
    fn backends_agree_on_a_clause_evaluation_shape() {
        // Mimic one direct-analyzer clause evaluation on both backends.
        assert_eq!(
            clause_shape(&mut TableDomain),
            clause_shape(&mut BddDomain::new())
        );
    }

    #[test]
    fn bdd_project_handles_duplicate_columns() {
        let mut td = TableDomain;
        let mut bd = BddDomain::new();
        let t = {
            let top = td.top(2);
            let v = td.constrain_value(&top, 0, true);
            td.project(&v, &[0, 0, 1])
        };
        let b = {
            let top = bd.top(2);
            let v = bd.constrain_value(&top, 0, true);
            let p = bd.project(&v, &[0, 0, 1]);
            bd.to_table(&p)
        };
        assert_eq!(t, b);
    }

    #[test]
    fn bdd_constrain_relation_handles_duplicate_positions() {
        let mut td = TableDomain;
        let mut bd = BddDomain::new();
        // rel over 2 vars: exactly one of them true (xor).
        let rows = vec![vec![true, false], vec![false, true]];
        let t = {
            let rel = td.lift_rows(2, &rows);
            let top = td.top(2);
            td.constrain_relation(&top, &[1, 1], &rel)
        };
        let b = {
            let rel = bd.lift_rows(2, &rows);
            let top = bd.top(2);
            let v = bd.constrain_relation(&top, &[1, 1], &rel);
            bd.to_table(&v)
        };
        // x⊕x is unsatisfiable: both backends must agree it is empty.
        assert!(t.is_empty());
        assert_eq!(t, b);
    }

    #[test]
    fn bdd_definitely_and_leq_match_tables() {
        let mut td = TableDomain;
        let mut bd = BddDomain::new();
        let tt = {
            let top = td.top(2);
            td.constrain_iff(&top, 0, &[1])
        };
        let bt = {
            let top = bd.top(2);
            bd.constrain_iff(&top, 0, &[1])
        };
        assert!(!td.definitely(&tt, 0) && !bd.definitely(&bt, 0));
        let tg = td.constrain_value(&tt, 1, true);
        let bg = bd.constrain_value(&bt, 1, true);
        assert!(td.definitely(&tg, 0) && bd.definitely(&bg, 0));
        assert!(td.leq(&tg, &tt) && bd.leq(&bg, &bt));
        assert!(!td.leq(&tt, &tg) && !bd.leq(&bt, &bg));
        let bot = td.bottom(2);
        assert!(!td.definitely(&bot, 0));
        let bbot = bd.bottom(2);
        assert!(!bd.definitely(&bbot, 0));
    }

    #[test]
    fn value_from_partial_rows_matches_on_both_backends() {
        let rows = vec![
            vec![Some(true), None, Some(false)],
            vec![Some(true), Some(true), Some(true)],
        ];
        let mut td = TableDomain;
        let mut bd = BddDomain::new();
        let t = value_from_partial_rows(&mut td, 3, &rows);
        let bv = value_from_partial_rows(&mut bd, 3, &rows);
        let b = bd.to_table(&bv);
        assert_eq!(t, b);
        assert_eq!(t.count(), 3); // gng, ggn (free middle) + ggg
    }

    #[test]
    fn render_is_sorted_rows() {
        let mut td = TableDomain;
        let top = td.top(2);
        let v = td.constrain_iff(&top, 0, &[1]);
        assert_eq!(td.render(&v), "{gg, nn}");
        assert_eq!(td.render_json(&v), "[\"gg\",\"nn\"]");
    }

    #[test]
    fn bdd_stats_report_manager_growth() {
        let mut bd = BddDomain::new();
        let base = bd.stats();
        let top = bd.top(4);
        let _ = bd.constrain_iff(&top, 0, &[1, 2, 3]);
        let grown = bd.stats();
        assert!(grown.nodes > base.nodes);
        assert!(grown.bytes > 0);
        assert_eq!(TableDomain.stats(), DomainStats::default());
    }
}
