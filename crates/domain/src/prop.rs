//! The Prop domain's enumerative representation: boolean functions as
//! truth-table bitsets.
//!
//! The paper (Section 3.1, following Codish & Demoen) represents a boolean
//! formula by its *success set* — the set of variable assignments satisfying
//! it. [`PropTable`] is that set as a bitset over `2^nvars` rows: row `r`
//! has variable `i` true iff bit `i` of `r` is set. The operations are the
//! ones Prop-domain groundness needs: conjunction, disjunction,
//! biconditional constraints `x ⇔ y1 ∧ … ∧ yk`, existential projection and
//! permutation — plus conversions to rows and to BDDs for cross-checking
//! the two representations.

use tablog_bdd::{Bdd, BddManager};

/// Maximum variable count; `2^MAX_VARS` bits is the table size.
pub const MAX_VARS: usize = 26;

/// A boolean function over `nvars` variables, represented by its truth
/// table (success set).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PropTable {
    nvars: usize,
    bits: Vec<u64>,
}

fn words(nvars: usize) -> usize {
    (1usize << nvars).div_ceil(64)
}

impl PropTable {
    /// The always-true function (full success set).
    ///
    /// # Panics
    ///
    /// Panics if `nvars > MAX_VARS`.
    pub fn top(nvars: usize) -> Self {
        assert!(nvars <= MAX_VARS, "PropTable over {nvars} variables");
        let n = 1usize << nvars;
        let mut bits = vec![u64::MAX; words(nvars)];
        // Clear the padding bits of the last word.
        let rem = n % 64;
        if rem != 0 {
            *bits.last_mut().expect("at least one word") = (1u64 << rem) - 1;
        }
        PropTable { nvars, bits }
    }

    /// The always-false function (empty success set).
    pub fn bottom(nvars: usize) -> Self {
        assert!(nvars <= MAX_VARS, "PropTable over {nvars} variables");
        PropTable {
            nvars,
            bits: vec![0; words(nvars)],
        }
    }

    /// Builds a table from explicit rows (each of length `nvars`).
    pub fn from_rows(nvars: usize, rows: &[Vec<bool>]) -> Self {
        let mut t = PropTable::bottom(nvars);
        for row in rows {
            let mut idx = 0usize;
            for (i, &b) in row.iter().enumerate() {
                if b {
                    idx |= 1 << i;
                }
            }
            t.set(idx);
        }
        t
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.nvars
    }

    fn get(&self, row: usize) -> bool {
        self.bits[row / 64] & (1 << (row % 64)) != 0
    }

    fn set(&mut self, row: usize) {
        self.bits[row / 64] |= 1 << (row % 64);
    }

    /// Number of satisfying rows.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no row satisfies.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// The satisfying rows, each as a `Vec<bool>` of length `nvars`.
    pub fn rows(&self) -> Vec<Vec<bool>> {
        (0..(1usize << self.nvars))
            .filter(|&r| self.get(r))
            .map(|r| (0..self.nvars).map(|i| r & (1 << i) != 0).collect())
            .collect()
    }

    /// Pointwise conjunction (set intersection).
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    pub fn and(&self, other: &PropTable) -> PropTable {
        assert_eq!(self.nvars, other.nvars, "PropTable arity mismatch");
        PropTable {
            nvars: self.nvars,
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Pointwise disjunction (set union) — the Prop LUB.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    pub fn or(&self, other: &PropTable) -> PropTable {
        assert_eq!(self.nvars, other.nvars, "PropTable arity mismatch");
        PropTable {
            nvars: self.nvars,
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    /// Keeps only rows satisfying `x ⇔ y1 ∧ … ∧ yk` — the constraint the
    /// paper writes `iff(X, Y1, …, Yk)`.
    pub fn constrain_iff(&self, x: usize, ys: &[usize]) -> PropTable {
        let mut out = PropTable::bottom(self.nvars);
        for r in 0..(1usize << self.nvars) {
            if !self.get(r) {
                continue;
            }
            let and = ys.iter().all(|&y| r & (1 << y) != 0);
            if (r & (1 << x) != 0) == and {
                out.set(r);
            }
        }
        out
    }

    /// Keeps only rows where variable `v` has the given value.
    pub fn constrain_value(&self, v: usize, value: bool) -> PropTable {
        let mut out = PropTable::bottom(self.nvars);
        for r in 0..(1usize << self.nvars) {
            if self.get(r) && ((r & (1 << v) != 0) == value) {
                out.set(r);
            }
        }
        out
    }

    /// Existentially quantifies variable `v`: the result no longer depends
    /// on `v` (both values allowed whenever either was).
    pub fn exists(&self, v: usize) -> PropTable {
        let mut out = PropTable::bottom(self.nvars);
        for r in 0..(1usize << self.nvars) {
            if self.get(r) {
                out.set(r | (1 << v));
                out.set(r & !(1 << v));
            }
        }
        out
    }

    /// Projects onto `keep` (in the given order): existentially quantifies
    /// everything else and renumbers; the result has `keep.len()` variables.
    pub fn project(&self, keep: &[usize]) -> PropTable {
        let mut out = PropTable::bottom(keep.len());
        for r in 0..(1usize << self.nvars) {
            if !self.get(r) {
                continue;
            }
            let mut idx = 0usize;
            for (new, &old) in keep.iter().enumerate() {
                if r & (1 << old) != 0 {
                    idx |= 1 << new;
                }
            }
            out.set(idx);
        }
        out
    }

    /// Adds `extra` fresh, unconstrained variables after the current ones.
    pub fn extend(&self, extra: usize) -> PropTable {
        let n = self.nvars + extra;
        assert!(n <= MAX_VARS, "PropTable over {n} variables");
        let mut out = PropTable::bottom(n);
        for r in 0..(1usize << n) {
            if self.get(r & ((1 << self.nvars) - 1)) {
                out.set(r);
            }
        }
        out
    }

    /// Keeps only rows whose projection onto `positions` (in order) is a
    /// satisfying row of `rel` — conjunction with a smaller-arity relation
    /// embedded at those positions.
    pub fn constrain_relation(&self, positions: &[usize], rel: &PropTable) -> PropTable {
        assert_eq!(
            positions.len(),
            rel.num_vars(),
            "position/relation arity mismatch"
        );
        let mut out = PropTable::bottom(self.nvars);
        for r in 0..(1usize << self.nvars) {
            if !self.get(r) {
                continue;
            }
            let mut idx = 0usize;
            for (new, &old) in positions.iter().enumerate() {
                if r & (1 << old) != 0 {
                    idx |= 1 << new;
                }
            }
            if rel.get(idx) {
                out.set(r);
            }
        }
        out
    }

    /// `true` if variable `v` is true in every satisfying row *and* the
    /// table is non-empty — "definitely ground" in the Prop reading.
    pub fn definitely(&self, v: usize) -> bool {
        !self.is_empty() && (0..(1usize << self.nvars)).all(|r| !self.get(r) || r & (1 << v) != 0)
    }

    /// `true` if `self`'s success set is contained in `other`'s.
    pub fn subset_of(&self, other: &PropTable) -> bool {
        assert_eq!(self.nvars, other.nvars, "PropTable arity mismatch");
        self.bits.iter().zip(&other.bits).all(|(a, b)| a & !b == 0)
    }

    /// Converts to a BDD over variables `0..nvars` in `m`.
    pub fn to_bdd(&self, m: &mut BddManager) -> Bdd {
        let bits: Vec<bool> = (0..(1usize << self.nvars)).map(|r| self.get(r)).collect();
        m.from_truth_table(&bits, self.nvars as u32)
    }

    /// Builds a table from a BDD over variables `0..nvars`.
    pub fn from_bdd(m: &BddManager, f: Bdd, nvars: usize) -> PropTable {
        let bits = m.to_truth_table(f, nvars as u32);
        let mut t = PropTable::bottom(nvars);
        for (r, &b) in bits.iter().enumerate() {
            if b {
                t.set(r);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_and_bottom_counts() {
        assert_eq!(PropTable::top(3).count(), 8);
        assert_eq!(PropTable::bottom(3).count(), 0);
        assert_eq!(PropTable::top(0).count(), 1);
        // 7 variables exercises the multi-bit path; 8 would not fit a word.
        assert_eq!(PropTable::top(7).count(), 128);
    }

    #[test]
    fn iff_constraint_is_the_papers_truth_table() {
        // X ⇔ Y ∧ Z over (X=0, Y=1, Z=2): 4 rows.
        let t = PropTable::top(3).constrain_iff(0, &[1, 2]);
        assert_eq!(t.count(), 4);
        let mut rows = t.rows();
        rows.sort();
        assert_eq!(
            rows,
            vec![
                vec![false, false, false],
                vec![false, false, true],
                vec![false, true, false],
                vec![true, true, true],
            ]
        );
    }

    #[test]
    fn iff_with_empty_body_pins_true() {
        let t = PropTable::top(2).constrain_iff(0, &[]);
        assert_eq!(t.count(), 2);
        assert!(t.definitely(0));
        assert!(!t.definitely(1));
    }

    #[test]
    fn and_or_are_set_ops() {
        let a = PropTable::top(2).constrain_value(0, true);
        let b = PropTable::top(2).constrain_value(1, true);
        assert_eq!(a.and(&b).count(), 1);
        assert_eq!(a.or(&b).count(), 3);
    }

    #[test]
    fn exists_forgets_a_variable() {
        let t = PropTable::top(2).constrain_value(0, true); // {10, 11}
        let e = t.exists(0);
        assert_eq!(e.count(), 4);
        let e1 = t.exists(1);
        assert_eq!(e1.count(), 2); // still constrains var 0
        assert!(e1.definitely(0));
    }

    #[test]
    fn project_reorders_and_drops() {
        // Table over (A,B,C) with constraint A ⇔ B.
        let t = PropTable::top(3).constrain_iff(0, &[1]);
        let p = t.project(&[1, 0]); // (B, A)
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.count(), 2);
        let mut rows = p.rows();
        rows.sort();
        assert_eq!(rows, vec![vec![false, false], vec![true, true]]);
    }

    #[test]
    fn extend_adds_free_variables() {
        let t = PropTable::top(1).constrain_value(0, true);
        let e = t.extend(2);
        assert_eq!(e.num_vars(), 3);
        assert_eq!(e.count(), 4);
        assert!(e.definitely(0));
    }

    #[test]
    fn definitely_on_empty_is_false() {
        assert!(!PropTable::bottom(2).definitely(0));
    }

    #[test]
    fn from_rows_round_trip() {
        let rows = vec![vec![true, false], vec![false, true]];
        let t = PropTable::from_rows(2, &rows);
        let mut got = t.rows();
        got.sort();
        let mut want = rows;
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn subset_check() {
        let small = PropTable::top(2).constrain_value(0, true);
        let big = PropTable::top(2);
        assert!(small.subset_of(&big));
        assert!(!big.subset_of(&small));
    }

    #[test]
    fn bdd_round_trip_agrees() {
        let t = PropTable::top(4)
            .constrain_iff(0, &[1, 2])
            .constrain_iff(3, &[0]);
        let mut m = BddManager::new();
        let f = t.to_bdd(&mut m);
        let back = PropTable::from_bdd(&m, f, 4);
        assert_eq!(t, back);
        assert_eq!(m.sat_count(f, 4), t.count() as u128);
    }
}
