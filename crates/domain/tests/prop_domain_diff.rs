//! Differential property test for the Prop-domain backends: random
//! sequences of [`AbstractDomain`] operations applied in lockstep to the
//! enumerative [`TableDomain`] and the BDD-backed [`BddDomain`] must agree
//! after every step (compared through the truth-table export, the common
//! currency of the two representations).
//!
//! Operation arguments are generated as raw seeds and normalised against
//! the *current* variable count at application time, so one generated
//! sequence stays well-formed as `extend`/`project` change the width.

use proptest::prelude::*;
use tablog_domain::prop::PropTable;
use tablog_domain::{AbstractDomain, BddDomain, TableDomain};

/// Width ceiling: wide enough to exercise shape changes, small enough that
/// the enumerative side stays O(2^n)-cheap.
const MAX_NVARS: usize = 7;

/// One abstract-domain operation, with index/row seeds normalised later.
#[derive(Clone, Debug)]
enum Op {
    /// `constrain_iff(x % nvars, ys % nvars)`.
    Iff { x: usize, ys: Vec<usize> },
    /// `constrain_value(var % nvars, value)`.
    Pin { var: usize, value: bool },
    /// `meet` with a value built from the seed rows.
    MeetRows { rows: Vec<u32> },
    /// `join` with a value built from the seed rows.
    JoinRows { rows: Vec<u32> },
    /// `extend(1)` (skipped at the width ceiling).
    Extend,
    /// `project` onto `keep % nvars` — duplicates allowed on purpose.
    Project { keep: Vec<usize> },
    /// `constrain_relation` at `positions % nvars` with a seed-row
    /// relation.
    Relation {
        positions: Vec<usize>,
        rows: Vec<u32>,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..16, prop::collection::vec(0usize..16, 0..4)).prop_map(|(x, ys)| Op::Iff { x, ys }),
        (0usize..16, 0u8..2).prop_map(|(var, value)| Op::Pin {
            var,
            value: value == 1
        }),
        prop::collection::vec(0u32..u32::MAX, 0..6).prop_map(|rows| Op::MeetRows { rows }),
        prop::collection::vec(0u32..u32::MAX, 0..6).prop_map(|rows| Op::JoinRows { rows }),
        Just(Op::Extend),
        prop::collection::vec(0usize..16, 1..6).prop_map(|keep| Op::Project { keep }),
        (
            prop::collection::vec(0usize..16, 1..4),
            prop::collection::vec(0u32..u32::MAX, 0..6)
        )
            .prop_map(|(positions, rows)| Op::Relation { positions, rows }),
    ]
}

/// Decodes row seeds into explicit rows over `nvars` variables: bit `i` of
/// the seed is column `i`.
fn decode_rows(nvars: usize, seeds: &[u32]) -> Vec<Vec<bool>> {
    seeds
        .iter()
        .map(|&s| (0..nvars).map(|i| s & (1 << i) != 0).collect())
        .collect()
}

/// Applies `ops` to both backends in lockstep, checking the exported truth
/// tables (plus emptiness, per-variable groundness, and entailment against
/// top) after every operation. Returns the final table pair.
fn run_lockstep(ops: &[Op]) -> Result<(), TestCaseError> {
    let mut td = TableDomain;
    let mut bd = BddDomain::new();
    let mut nvars = 4usize;
    let mut tv = td.top(nvars);
    let mut bv = bd.top(nvars);
    for op in ops {
        match op {
            Op::Iff { x, ys } => {
                let x = x % nvars;
                let ys: Vec<usize> = ys.iter().map(|y| y % nvars).collect();
                tv = td.constrain_iff(&tv, x, &ys);
                bv = bd.constrain_iff(&bv, x, &ys);
            }
            Op::Pin { var, value } => {
                tv = td.constrain_value(&tv, var % nvars, *value);
                bv = bd.constrain_value(&bv, var % nvars, *value);
            }
            Op::MeetRows { rows } => {
                let rs = decode_rows(nvars, rows);
                let t = td.lift_rows(nvars, &rs);
                let b = bd.lift_rows(nvars, &rs);
                tv = td.meet(&tv, &t);
                bv = bd.meet(&bv, &b);
            }
            Op::JoinRows { rows } => {
                let rs = decode_rows(nvars, rows);
                let t = td.lift_rows(nvars, &rs);
                let b = bd.lift_rows(nvars, &rs);
                tv = td.join(&tv, &t);
                bv = bd.join(&bv, &b);
            }
            Op::Extend => {
                if nvars < MAX_NVARS {
                    tv = td.extend(&tv, 1);
                    bv = bd.extend(&bv, 1);
                    nvars += 1;
                }
            }
            Op::Project { keep } => {
                let keep: Vec<usize> = keep.iter().take(MAX_NVARS).map(|k| k % nvars).collect();
                tv = td.project(&tv, &keep);
                bv = bd.project(&bv, &keep);
                nvars = keep.len();
            }
            Op::Relation { positions, rows } => {
                let positions: Vec<usize> =
                    positions.iter().take(nvars).map(|p| p % nvars).collect();
                let rs = decode_rows(positions.len(), rows);
                let rel_t = td.lift_rows(positions.len(), &rs);
                let rel_b = bd.lift_rows(positions.len(), &rs);
                tv = td.constrain_relation(&tv, &positions, &rel_t);
                bv = bd.constrain_relation(&bv, &positions, &rel_b);
            }
        }
        let exported = bd.to_table(&bv);
        prop_assert_eq!(&exported, &tv, "diverged after {:?}", op);
        prop_assert_eq!(bd.is_empty(&bv), td.is_empty(&tv));
        for var in 0..nvars {
            prop_assert_eq!(
                bd.definitely(&bv, var),
                td.definitely(&tv, var),
                "definitely({}) diverged after {:?}",
                var,
                op
            );
        }
        let t_top = td.top(nvars);
        let b_top = bd.top(nvars);
        prop_assert_eq!(td.leq(&tv, &t_top), bd.leq(&bv, &b_top));
    }
    // The renderings — the analyses' reporting path — agree too.
    prop_assert_eq!(td.render(&tv), bd.render(&bv));
    prop_assert_eq!(td.render_json(&tv), bd.render_json(&bv));
    Ok(())
}

proptest! {
    /// Random operation sequences keep the backends in agreement.
    #[test]
    fn backends_agree_on_random_op_sequences(
        ops in prop::collection::vec(arb_op(), 1..12)
    ) {
        run_lockstep(&ops)?;
    }

    /// Round-tripping a random relation through the BDD backend is the
    /// identity on truth tables.
    #[test]
    fn lift_rows_to_table_round_trips(rows in prop::collection::vec(0u32..u32::MAX, 0..10)) {
        let nvars = 5usize;
        let rs = decode_rows(nvars, &rows);
        let mut bd = BddDomain::new();
        let v = bd.lift_rows(nvars, &rs);
        prop_assert_eq!(bd.to_table(&v), PropTable::from_rows(nvars, &rs));
    }
}
