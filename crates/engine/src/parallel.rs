//! Intra-query parallel SLG: one derivation forest evaluated by several
//! worker threads (see DESIGN.md, "Parallel SLG").
//!
//! The unit of distribution is the predicate SCC. Call-graph SCCs
//! ([`Database::predicate_sccs`]) partition the tabled predicates so that
//! mutual recursion never crosses a partition boundary; each SCC is claimed
//! by exactly one worker the first time any worker calls into it (a
//! compare-and-swap against the least-loaded worker at that moment — the
//! load-balancing role a work-stealing deque plays in task-parallel
//! runtimes, applied at SCC granularity so everything *inside* an SCC stays
//! on one thread and the sequential machine's completion and negation logic
//! keep working unchanged).
//!
//! Each worker owns a full [`Machine`] — private arena, tables, consumers,
//! seen-node set, and a depth-first local worklist — so the hot paths take
//! no locks at all. The only cross-thread traffic is table sharding by
//! ownership: a call to a predicate owned elsewhere parks its consumer node
//! locally and sends the canonical call pattern to the owner; the owner
//! back-fills the answers it already has and forwards each later insert the
//! moment it happens, as materialized (`Arc`-backed, `Send`) terms over a
//! per-worker channel. Variant canonicalization is first-occurrence
//! renaming, so a term re-canonicalized into the receiving worker's arena
//! is the *same* variant — answer identity survives the wire.
//!
//! Termination is a pending-work count: every enqueued task and every sent
//! message increments it before becoming visible, every completed task or
//! handled message decrements it afterwards, and the 1→0 transition means
//! the forest is globally exhausted. Budgets check shared atomic totals at
//! the same dispatch boundary the sequential engine uses; a trip raises a
//! stop flag, every worker runs its local settle pass (plus delivery of
//! already-received remote answers), and the run comes back `Ok` with a
//! [`Truncation`] — exactly the sequential contract.
//!
//! After the workers join, their tables are merged into one fresh session
//! arena (worker 0 first, so the `$query` root keeps index 0). Per-table
//! byte accounting is substitution-factored *per table*, which makes it
//! independent of both insertion order and arena layout — the merged totals
//! are byte-identical to a sequential run's.

use crate::budget::{Truncation, TruncationReason};
use crate::database::Database;
use crate::error::EngineError;
use crate::machine::Machine;
use crate::options::EngineOptions;
use crate::session::Evaluation;
use crate::table::{SubgoalState, TableStats};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;
use tablog_term::{Bindings, Functor, Term, TermArena};
use tablog_trace::{now_ns, FlowEvent, HealthSnapshot, MsgKind, StallWatchdog, TraceEvent};

/// Cross-worker message. Terms are materialized (`Arc`-backed) so they are
/// `Send`; the receiver re-canonicalizes them into its own arena.
pub(crate) enum Msg {
    /// "Table this call for me": `call` is the canonical argument tuple of
    /// a call to `pred`, whose SCC the receiver owns. The receiver
    /// back-fills existing answers and forwards future ones to worker
    /// `from`, tagged with `token` (an index into the sender's
    /// `remote_waits`).
    Call {
        pred: Functor,
        call: Vec<Term>,
        from: usize,
        token: usize,
        /// `(flow id, send timestamp)` when flow tracing is on; stamped by
        /// [`ParCtx::send`], completed by the receiver into a [`FlowEvent`].
        flow: Option<(u64, u64)>,
    },
    /// One answer (canonical argument tuple) for the remote wait `token`
    /// registered by an earlier [`Msg::Call`], sent by worker `from`.
    Answer {
        token: usize,
        args: Vec<Term>,
        from: usize,
        /// Flow metadata, as on [`Msg::Call`].
        flow: Option<(u64, u64)>,
    },
}

/// Sentinel for an SCC no worker has claimed yet.
const UNOWNED: usize = usize::MAX;

/// State shared by every worker of one parallel run.
pub(crate) struct ParShared {
    /// Predicate → SCC index, from [`Database::predicate_sccs`].
    scc_of: HashMap<Functor, usize>,
    /// SCC index → owning worker ([`UNOWNED`] until first touch).
    scc_owner: Vec<AtomicUsize>,
    /// Approximate per-worker queue depth, read when claiming an SCC.
    load: Vec<AtomicUsize>,
    /// Enqueued-but-unfinished tasks plus in-flight messages, run-wide.
    pending: AtomicUsize,
    /// Set on the `pending` 1→0 transition: the forest is exhausted.
    done: AtomicBool,
    /// Set on a budget trip or an error: stop scheduling, settle, exit.
    stop: AtomicBool,
    /// First tripped budget (later trips keep the first reason).
    reason: Mutex<Option<TruncationReason>>,
    /// First evaluation error, propagated after the workers join.
    error: Mutex<Option<EngineError>>,
    /// Workers that have exited their loop (the monitor's stop signal).
    finished: AtomicUsize,
    /// Run-wide counters, published as deltas at dispatch boundaries —
    /// what budget checks and the health monitor read.
    steps: AtomicUsize,
    answers: AtomicUsize,
    duplicates: AtomicUsize,
    tables: AtomicUsize,
    table_bytes: AtomicUsize,
    /// Mints process-unique flow ids for traced cross-worker messages.
    flow_ids: AtomicU64,
    /// Absolute wall-clock cutoff shared by every worker, precomputed once
    /// so all workers agree on the deadline.
    deadline_ns: Option<u64>,
}

impl ParShared {
    /// Records a budget trip (first reason wins) and raises the stop flag.
    fn trip(&self, reason: TruncationReason) {
        self.reason.lock().unwrap().get_or_insert(reason);
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Records an error (first error wins) and raises the stop flag.
    fn fail(&self, e: EngineError) {
        self.error.lock().unwrap().get_or_insert(e);
        self.stop.store(true, Ordering::SeqCst);
    }

    /// The shared-total analog of the sequential machine's budget check,
    /// in the same fixed order (steps, table bytes, deadline).
    fn budget_tripped(&self, opts: &EngineOptions) -> Option<TruncationReason> {
        if let Some(limit) = opts.max_steps {
            if self.steps.load(Ordering::Relaxed) > limit {
                return Some(TruncationReason::Steps(limit));
            }
        }
        if let Some(limit) = opts.max_table_bytes {
            if self.table_bytes.load(Ordering::Relaxed) > limit {
                return Some(TruncationReason::TableBytes(limit));
            }
        }
        if let Some(cutoff) = self.deadline_ns {
            if now_ns() >= cutoff {
                let ms = opts.deadline.map_or(0, |d| d.as_millis() as u64);
                return Some(TruncationReason::DeadlineMs(ms));
            }
        }
        None
    }

    /// One health snapshot of the whole run, from the shared totals. The
    /// per-class worklist split is not tracked across workers; `worklist`
    /// reports the pending-work count (tasks plus in-flight messages).
    fn snapshot(&self, t_ns: u64, answer_rate: f64, stalled: bool) -> HealthSnapshot {
        HealthSnapshot {
            t_ns,
            steps: self.steps.load(Ordering::Relaxed),
            worklist: self.pending.load(Ordering::Relaxed),
            expands: 0,
            returns: 0,
            tables: self.tables.load(Ordering::Relaxed),
            completed_tables: 0,
            answers: self.answers.load(Ordering::Relaxed),
            duplicate_answers: self.duplicates.load(Ordering::Relaxed),
            table_bytes: self.table_bytes.load(Ordering::Relaxed),
            answer_rate,
            peak_heap_bytes: tablog_alloc::is_tracking().then(|| tablog_alloc::stats().peak_bytes),
            stalled,
        }
    }
}

/// One worker's handle on the parallel run: its identity, the shared
/// state, a sender per peer, and the worker-local message accounting the
/// [`ParallelReport`] is assembled from after the join.
///
/// The message counters are [`Cell`]s because sends happen behind a shared
/// borrow of the machine; they are strictly worker-local (the context
/// never leaves its thread), so no synchronization is involved. Counting
/// is always on in parallel mode — a few `Cell` adds per message — because
/// the bench columns (`msgs_sent`, `imbalance`, `idle_pct`) need it;
/// *flow* records, which take timestamps, stay gated behind span
/// recording.
pub(crate) struct ParCtx {
    pub(crate) me: usize,
    pub(crate) shared: Arc<ParShared>,
    senders: Vec<Sender<Msg>>,
    /// Whether sends stamp flow metadata (span recording + a sink).
    flows_on: bool,
    /// Messages sent, per destination worker, by kind.
    sent_calls: Vec<Cell<u64>>,
    sent_answers: Vec<Cell<u64>>,
    /// Messages received, per source worker, by kind, plus the
    /// re-canonicalized payload bytes (receiver-side accounting).
    recv_calls: Vec<Cell<u64>>,
    recv_answers: Vec<Cell<u64>>,
    recv_bytes: Vec<Cell<u64>>,
    /// Completed flow records: the receiver holds both endpoints'
    /// timestamps, so flows are recorded here, on the receiving side.
    flows: RefCell<Vec<FlowEvent>>,
}

impl ParCtx {
    fn new(me: usize, shared: Arc<ParShared>, senders: Vec<Sender<Msg>>, flows_on: bool) -> Self {
        let threads = senders.len();
        let zeros = || (0..threads).map(|_| Cell::new(0)).collect();
        ParCtx {
            me,
            shared,
            senders,
            flows_on,
            sent_calls: zeros(),
            sent_answers: zeros(),
            recv_calls: zeros(),
            recv_answers: zeros(),
            recv_bytes: zeros(),
            flows: RefCell::new(Vec::new()),
        }
    }

    /// Accounts one locally enqueued task (called from [`Machine::push`]).
    pub(crate) fn on_enqueue(&self) {
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        self.shared.load[self.me].fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one unit of pending work (task or message) fully processed;
    /// the 1→0 transition ends the run.
    fn finish_unit(&self) {
        if self.shared.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.shared.done.store(true, Ordering::SeqCst);
        }
    }

    /// Total messages this worker has sent so far (both kinds, all
    /// destinations) — the `msgs_sent` series of worker counter samples.
    pub(crate) fn msgs_sent_total(&self) -> u64 {
        self.sent_calls
            .iter()
            .chain(self.sent_answers.iter())
            .map(Cell::get)
            .sum()
    }

    /// Receiver-side accounting for one handled message: per-source
    /// counters, payload bytes, and — when the sender stamped flow
    /// metadata — the completed [`FlowEvent`].
    fn on_receive(&self, kind: MsgKind, from: usize, bytes: usize, flow: Option<(u64, u64)>) {
        let slot = match kind {
            MsgKind::Call => &self.recv_calls[from],
            MsgKind::Answer => &self.recv_answers[from],
        };
        slot.set(slot.get() + 1);
        self.recv_bytes[from].set(self.recv_bytes[from].get() + bytes as u64);
        if let Some((id, send_ns)) = flow {
            self.flows.borrow_mut().push(FlowEvent {
                id,
                kind,
                from,
                to: self.me,
                send_ns,
                recv_ns: now_ns(),
                bytes,
            });
        }
    }

    /// The worker owning `f`'s SCC, claiming it for the least-loaded worker
    /// (ties prefer the caller, for locality) on first touch. Predicates
    /// outside the SCC map — the synthetic `$query` root — evaluate
    /// locally.
    pub(crate) fn owner_of(&self, f: Functor) -> usize {
        let Some(&scc) = self.shared.scc_of.get(&f) else {
            return self.me;
        };
        let slot = &self.shared.scc_owner[scc];
        let cur = slot.load(Ordering::SeqCst);
        if cur != UNOWNED {
            return cur;
        }
        let mut best = self.me;
        let mut best_load = self.shared.load[self.me].load(Ordering::Relaxed);
        for (i, l) in self.shared.load.iter().enumerate() {
            let li = l.load(Ordering::Relaxed);
            if li < best_load {
                best = i;
                best_load = li;
            }
        }
        match slot.compare_exchange(UNOWNED, best, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => best,
            Err(actual) => actual,
        }
    }

    /// Sends `msg` to worker `to`, accounting it as pending work first so
    /// the done detector can never fire while a message is in flight. A
    /// send can only fail during shutdown (the receiver exited after a
    /// stop), in which case the message is moot and its unit is returned.
    ///
    /// This is the single choke point every cross-worker message passes
    /// through: it counts the send per (kind, destination) and, when flow
    /// tracing is on, stamps the message with a fresh flow id and the send
    /// timestamp.
    pub(crate) fn send(&self, to: usize, mut msg: Msg) {
        let (slot, flow) = match &mut msg {
            Msg::Call { flow, .. } => (&self.sent_calls[to], flow),
            Msg::Answer { flow, .. } => (&self.sent_answers[to], flow),
        };
        slot.set(slot.get() + 1);
        if self.flows_on {
            *flow = Some((
                self.shared.flow_ids.fetch_add(1, Ordering::Relaxed),
                now_ns(),
            ));
        }
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        self.shared.load[to].fetch_add(1, Ordering::Relaxed);
        if self.senders[to].send(msg).is_err() {
            self.finish_unit();
        }
    }
}

impl Machine<'_> {
    /// Handles one cross-worker message on this worker's machine.
    fn handle_msg(&mut self, msg: Msg) -> Result<(), EngineError> {
        match msg {
            Msg::Call {
                pred,
                call,
                from,
                token,
                flow,
            } => {
                // Re-canonicalize the wire terms into this arena: variant
                // canonical form is arena-independent, so this is exactly
                // the caller's call pattern. The subgoal lookup then dedups
                // repeated remote calls the same way local calls dedup.
                let empty = Bindings::new();
                let key = self.arena.canonicalize(&empty, &call);
                let bytes = self.arena.heap_bytes(&key);
                let me = self.par.as_ref().expect("message implies parallel");
                me.on_receive(MsgKind::Call, from, bytes, flow);
                let sid = self.find_or_create_subgoal(pred, key)?;
                // Back-fill, then register — both on this thread, so the
                // remote consumer sees every answer exactly once.
                for i in 0..self.subgoals[sid].answers.len() {
                    let args = self.arena.terms(&self.subgoals[sid].answers[i]);
                    let par = self.par.as_ref().expect("message implies parallel");
                    par.send(
                        from,
                        Msg::Answer {
                            token,
                            args,
                            from: par.me,
                            flow: None,
                        },
                    );
                }
                self.subgoals[sid].remote_consumers.push((from, token));
                Ok(())
            }
            Msg::Answer {
                token,
                args,
                from,
                flow,
            } => {
                // Intern the wire answer for byte accounting; the interning
                // is hash-consed, so the delivery below re-canonicalizing
                // the same tuple costs a lookup, not a second copy.
                let empty = Bindings::new();
                let ans = self.arena.canonicalize(&empty, &args);
                let bytes = self.arena.heap_bytes(&ans);
                let me = self.par.as_ref().expect("message implies parallel");
                me.on_receive(MsgKind::Answer, from, bytes, flow);
                let spans_on = self.spans.is_some();
                if spans_on {
                    let pred = self.remote_waits[token].0;
                    self.span_enter("answer_return", Some(pred));
                }
                let r = self.deliver_remote_answer(token, &args);
                if spans_on {
                    self.span_exit();
                }
                r
            }
        }
    }

    /// The remote analog of `return_answer`: resumes the parked consumer
    /// node with one answer that arrived from the owning worker.
    fn deliver_remote_answer(&mut self, token: usize, args: &[Term]) -> Result<(), EngineError> {
        let (pred, node) = {
            let (p, n) = &self.remote_waits[token];
            (*p, n.clone())
        };
        if let Some(sink) = self.trace {
            sink.event(&TraceEvent::AnswerReturn { pred });
        }
        let mut b = Bindings::new();
        let ts = self.arena.instantiate(&node.canon, &mut b);
        let (template, goals) = ts.split_at(node.split);
        let (g, rest) = goals
            .split_first()
            .expect("remote wait has a selected goal");
        // Intern the answer locally, then instantiate — fresh variables in
        // `b`, exactly like the local answer-return path.
        let empty = Bindings::new();
        let ans = self.arena.canonicalize(&empty, args);
        let ans_args = self.arena.instantiate(&ans, &mut b);
        let ok = g
            .args()
            .iter()
            .zip(ans_args.iter())
            .all(|(x, y)| self.unif(&mut b, x, y));
        if ok {
            let n = self.make_node(node.subgoal, node.split, &b, template, rest, None);
            self.push(crate::machine::Task::Expand(n));
        }
        Ok(())
    }
}

/// Per-worker load attribution for one parallel run: where the worker's
/// wall-clock went and how much table/message work it did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerLoad {
    /// Worker index (0-based; worker 0 seeds the `$query` root).
    pub worker: usize,
    /// Time spent executing worklist tasks and handling messages.
    pub busy_ns: u64,
    /// Wall-clock neither busy nor blocked receiving: loop overhead and
    /// spinning with an empty queue.
    pub idle_ns: u64,
    /// Time blocked in the bounded channel receive.
    pub recv_wait_ns: u64,
    /// Worklist tasks executed (this worker's share of `stats.steps`).
    pub dispatches: u64,
    /// Cross-worker messages sent (calls + answers, all destinations).
    pub msgs_sent: u64,
    /// Cross-worker messages received (calls + answers, all sources).
    pub msgs_received: u64,
    /// Call tables this worker owned at exit.
    pub tables: usize,
    /// Unique answers admitted into this worker's tables.
    pub answers: usize,
}

impl WorkerLoad {
    /// Total wall-clock the worker's loop was alive.
    pub fn wall_ns(&self) -> u64 {
        self.busy_ns + self.idle_ns + self.recv_wait_ns
    }
}

/// One SCC of the call graph and the worker that claimed it (or `None`
/// when no call ever touched the SCC, so it stayed unclaimed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SccOwner {
    /// SCC index, per [`Database::predicate_sccs`].
    pub scc: usize,
    /// Claiming worker, if any.
    pub owner: Option<usize>,
    /// Member predicates as `"name/arity"`, sorted.
    pub preds: Vec<String>,
}

/// Message traffic over one directed worker pair, combining the sender's
/// and the receiver's independent accounting. On a run that completes
/// (no budget trip), sent and received totals agree per edge — the
/// pending-work counter guarantees every in-flight message is handled
/// before the done flag can rise.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MsgEdge {
    /// Sending worker.
    pub from: usize,
    /// Receiving worker.
    pub to: usize,
    /// `Msg::Call`s counted at the send choke point.
    pub calls_sent: u64,
    /// `Msg::Answer`s counted at the send choke point.
    pub answers_sent: u64,
    /// `Msg::Call`s counted by the receiver.
    pub calls_received: u64,
    /// `Msg::Answer`s counted by the receiver.
    pub answers_received: u64,
    /// Re-canonicalized payload bytes, counted by the receiver.
    pub bytes_received: u64,
}

/// Load-balance and message-flow attribution for one parallel evaluation:
/// who owned which SCC, where each worker's time went, and what crossed
/// between workers. Attached to the [`Evaluation`] of every
/// `--scheduler parallel` run and surfaced by `tablog workers` and
/// `stats --json`.
#[derive(Clone, Debug, Default)]
pub struct ParallelReport {
    /// Worker count the run actually used (0 in `EngineOptions::threads`
    /// resolves to the core count before this is recorded).
    pub threads: usize,
    /// Per-worker load attribution, indexed by worker.
    pub workers: Vec<WorkerLoad>,
    /// SCC → owner map, indexed by SCC.
    pub sccs: Vec<SccOwner>,
    /// Directed worker pairs with any traffic, sorted by `(from, to)`.
    pub edges: Vec<MsgEdge>,
    /// Completed flow records (empty unless span recording was on).
    pub flows: Vec<FlowEvent>,
    /// The pending-work count observed after the workers joined: 0 for a
    /// run that completed; a truncated run may abandon queued units.
    pub pending_at_exit: usize,
}

impl ParallelReport {
    /// Load imbalance: the busiest worker's busy time over the mean busy
    /// time. 1.0 is a perfectly balanced run; `threads`-ish means one
    /// worker did everything. 1.0 when nothing was measured.
    pub fn imbalance(&self) -> f64 {
        let busy: Vec<u64> = self.workers.iter().map(|w| w.busy_ns).collect();
        let sum: u64 = busy.iter().sum();
        if busy.is_empty() || sum == 0 {
            return 1.0;
        }
        let mean = sum as f64 / busy.len() as f64;
        *busy.iter().max().expect("nonempty") as f64 / mean
    }

    /// Share of total worker wall-clock not spent busy, as a percentage —
    /// idle spinning plus receive waits.
    pub fn idle_pct(&self) -> f64 {
        let wall: u64 = self.workers.iter().map(|w| w.wall_ns()).sum();
        if wall == 0 {
            return 0.0;
        }
        let busy: u64 = self.workers.iter().map(|w| w.busy_ns).sum();
        (wall - busy.min(wall)) as f64 * 100.0 / wall as f64
    }

    /// Total cross-worker messages sent.
    pub fn msgs_sent_total(&self) -> u64 {
        self.workers.iter().map(|w| w.msgs_sent).sum()
    }

    /// Renders the report as a JSON object. Flow records are summarized by
    /// count (`flow_events`); the full records only ship in the Chrome
    /// trace, where they become `ph:"s"/"f"` arrows.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"threads\":{},\"imbalance\":{:.3},\"idle_pct\":{:.1},\
             \"msgs_sent\":{},\"pending_at_exit\":{},\"flow_events\":{}",
            self.threads,
            self.imbalance(),
            self.idle_pct(),
            self.msgs_sent_total(),
            self.pending_at_exit,
            self.flows.len()
        );
        s.push_str(",\"workers\":[");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"worker\":{},\"busy_ns\":{},\"idle_ns\":{},\"recv_wait_ns\":{},\
                 \"dispatches\":{},\"msgs_sent\":{},\"msgs_received\":{},\
                 \"tables\":{},\"answers\":{}}}",
                w.worker,
                w.busy_ns,
                w.idle_ns,
                w.recv_wait_ns,
                w.dispatches,
                w.msgs_sent,
                w.msgs_received,
                w.tables,
                w.answers
            );
        }
        s.push_str("],\"sccs\":[");
        for (i, o) in self.sccs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let owner = o.owner.map_or("null".to_string(), |w| w.to_string());
            let preds: Vec<String> = o
                .preds
                .iter()
                .map(|p| format!("\"{}\"", tablog_trace::json::escape(p)))
                .collect();
            let _ = write!(
                s,
                "{{\"scc\":{},\"owner\":{owner},\"preds\":[{}]}}",
                o.scc,
                preds.join(",")
            );
        }
        s.push_str("],\"edges\":[");
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"from\":{},\"to\":{},\"calls_sent\":{},\"answers_sent\":{},\
                 \"calls_received\":{},\"answers_received\":{},\"bytes_received\":{}}}",
                e.from,
                e.to,
                e.calls_sent,
                e.answers_sent,
                e.calls_received,
                e.answers_received,
                e.bytes_received
            );
        }
        s.push_str("]}");
        s
    }

    /// Renders the report as fixed-width text (the `tablog workers` view).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "parallel run: {} workers, imbalance {:.2}, idle {:.1}%, {} messages",
            self.threads,
            self.imbalance(),
            self.idle_pct(),
            self.msgs_sent_total()
        );
        let _ = writeln!(
            out,
            "{:<8} {:>10} {:>10} {:>10} {:>10} {:>6} {:>6} {:>7} {:>8}",
            "worker",
            "busy(ms)",
            "idle(ms)",
            "wait(ms)",
            "tasks",
            "sent",
            "recvd",
            "tables",
            "answers"
        );
        for w in &self.workers {
            let _ = writeln!(
                out,
                "{:<8} {:>10.3} {:>10.3} {:>10.3} {:>10} {:>6} {:>6} {:>7} {:>8}",
                w.worker,
                w.busy_ns as f64 / 1e6,
                w.idle_ns as f64 / 1e6,
                w.recv_wait_ns as f64 / 1e6,
                w.dispatches,
                w.msgs_sent,
                w.msgs_received,
                w.tables,
                w.answers
            );
        }
        if !self.sccs.is_empty() {
            let _ = writeln!(out, "scc ownership:");
            for o in &self.sccs {
                let owner = o
                    .owner
                    .map_or("unclaimed".to_string(), |w| format!("worker {w}"));
                let _ = writeln!(out, "  scc {}: {} — {}", o.scc, owner, o.preds.join(", "));
            }
        }
        if !self.edges.is_empty() {
            let _ = writeln!(out, "message matrix (from → to):");
            for e in &self.edges {
                let _ = writeln!(
                    out,
                    "  {} → {}: {} calls, {} answers, {} bytes",
                    e.from, e.to, e.calls_sent, e.answers_sent, e.bytes_received
                );
            }
        }
        out
    }
}

/// Where one worker's loop spent its wall-clock, accumulated inside
/// [`worker_loop`] (by `&mut` so the numbers survive an error exit).
#[derive(Clone, Copy, Default)]
struct WorkerTiming {
    busy_ns: u64,
    recv_wait_ns: u64,
    wall_ns: u64,
    dispatches: u64,
}

/// What one worker hands back besides its tables: timing, message
/// matrices, and flow records, merged into the [`ParallelReport`].
#[derive(Default)]
struct WorkerTelemetry {
    busy_ns: u64,
    recv_wait_ns: u64,
    wall_ns: u64,
    dispatches: u64,
    sent_calls: Vec<u64>,
    sent_answers: Vec<u64>,
    recv_calls: Vec<u64>,
    recv_answers: Vec<u64>,
    recv_bytes: Vec<u64>,
    flows: Vec<FlowEvent>,
}

impl ParCtx {
    /// Unwraps the worker-local accounting into plain data once the worker
    /// loop has exited and the context is back on one thread for good.
    fn into_telemetry(self, timing: WorkerTiming) -> WorkerTelemetry {
        let unwrap = |v: Vec<Cell<u64>>| v.into_iter().map(Cell::into_inner).collect();
        WorkerTelemetry {
            busy_ns: timing.busy_ns,
            recv_wait_ns: timing.recv_wait_ns,
            wall_ns: timing.wall_ns,
            dispatches: timing.dispatches,
            sent_calls: unwrap(self.sent_calls),
            sent_answers: unwrap(self.sent_answers),
            recv_calls: unwrap(self.recv_calls),
            recv_answers: unwrap(self.recv_answers),
            recv_bytes: unwrap(self.recv_bytes),
            flows: self.flows.into_inner(),
        }
    }
}

/// Counter values already published to the shared totals, per worker.
#[derive(Default)]
struct Published {
    steps: usize,
    answers: usize,
    duplicates: usize,
    tables: usize,
    table_bytes: usize,
}

/// Publishes this worker's counter growth since the last call.
fn publish(m: &Machine<'_>, shared: &ParShared, p: &mut Published) {
    let s = m.stats;
    if s.steps > p.steps {
        shared.steps.fetch_add(s.steps - p.steps, Ordering::Relaxed);
        p.steps = s.steps;
    }
    if s.answers > p.answers {
        shared
            .answers
            .fetch_add(s.answers - p.answers, Ordering::Relaxed);
        p.answers = s.answers;
    }
    if s.duplicate_answers > p.duplicates {
        shared
            .duplicates
            .fetch_add(s.duplicate_answers - p.duplicates, Ordering::Relaxed);
        p.duplicates = s.duplicate_answers;
    }
    if s.subgoals > p.tables {
        shared
            .tables
            .fetch_add(s.subgoals - p.tables, Ordering::Relaxed);
        p.tables = s.subgoals;
    }
    if s.table_bytes > p.table_bytes {
        shared
            .table_bytes
            .fetch_add(s.table_bytes - p.table_bytes, Ordering::Relaxed);
        p.table_bytes = s.table_bytes;
    }
}

/// One worker's main loop: drain incoming messages, run local tasks, idle
/// briefly when neither is available, exit on global completion or stop.
///
/// `timing` is accumulated in place (rather than returned) so the numbers
/// survive an error exit: busy time brackets message handling and task
/// dispatch, receive-wait time brackets the blocking receive, and the
/// remainder of the wall-clock is idle spinning.
fn worker_loop(
    m: &mut Machine<'_>,
    rx: &Receiver<Msg>,
    budgets_on: bool,
    timing: &mut WorkerTiming,
) -> Result<(), EngineError> {
    let shared = m.par.as_ref().expect("worker has a context").shared.clone();
    let me = m.par.as_ref().expect("worker has a context").me;
    let mut published = Published::default();
    let loop_start = now_ns();
    let finish = |timing: &mut WorkerTiming| {
        timing.wall_ns = now_ns().saturating_sub(loop_start);
    };
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        // Messages first: they are work other workers are waiting on.
        let mut handled = false;
        while let Ok(msg) = rx.try_recv() {
            let t0 = now_ns();
            let r = m.handle_msg(msg);
            timing.busy_ns += now_ns().saturating_sub(t0);
            if let Err(e) = r {
                finish(timing);
                return Err(e);
            }
            shared.load[me].fetch_sub(1, Ordering::Relaxed);
            finish_unit(&shared);
            handled = true;
            if shared.stop.load(Ordering::SeqCst) {
                break;
            }
        }
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        if let Some(task) = m.scheduler.pop() {
            shared.load[me].fetch_sub(1, Ordering::Relaxed);
            m.stats.steps += 1;
            // The sequential dispatch boundary, against shared totals: the
            // popped task is dropped unexecuted on a trip (it is counted),
            // preserving the budget-boundary convention.
            if budgets_on {
                publish(m, &shared, &mut published);
                if let Some(reason) = shared.budget_tripped(m.opts) {
                    shared.trip(reason);
                    finish_unit(&shared);
                    break;
                }
            }
            timing.dispatches += 1;
            let t0 = now_ns();
            let r = m.step(task);
            timing.busy_ns += now_ns().saturating_sub(t0);
            if let Err(e) = r {
                finish(timing);
                return Err(e);
            }
            finish_unit(&shared);
            if m.counters_on {
                m.sample_counters();
            }
            publish(m, &shared, &mut published);
            // A negation subcomputation tripped a budget mid-task: stop the
            // whole run, exactly as the sequential drain stops.
            if let Some(reason) = m.truncated {
                shared.trip(reason);
                break;
            }
            continue;
        }
        if shared.done.load(Ordering::SeqCst) {
            break;
        }
        if handled {
            continue;
        }
        let t_wait = now_ns();
        let received = rx.recv_timeout(Duration::from_millis(1));
        timing.recv_wait_ns += now_ns().saturating_sub(t_wait);
        match received {
            Ok(msg) => {
                let t0 = now_ns();
                let r = m.handle_msg(msg);
                timing.busy_ns += now_ns().saturating_sub(t0);
                if let Err(e) = r {
                    finish(timing);
                    return Err(e);
                }
                shared.load[me].fetch_sub(1, Ordering::Relaxed);
                finish_unit(&shared);
                publish(m, &shared, &mut published);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    publish(m, &shared, &mut published);
    // A budget-stopped run settles: deliver already-queued local returns,
    // then already-received remote answers, so answers derived before the
    // trip reach their consumers (and the root) — the parallel analog of
    // the sequential settle pass. Stops caused by an error skip this.
    if shared.stop.load(Ordering::SeqCst) && shared.error.lock().unwrap().is_none() {
        let t0 = now_ns();
        let settle = settle_worker(m, rx);
        timing.busy_ns += now_ns().saturating_sub(t0);
        settle?;
        publish(m, &shared, &mut published);
    }
    finish(timing);
    Ok(())
}

/// The parallel settle pass, split out of [`worker_loop`] so the whole
/// thing sits under one busy-time bracket.
fn settle_worker(m: &mut Machine<'_>, rx: &Receiver<Msg>) -> Result<(), EngineError> {
    m.settle()?;
    while let Ok(msg) = rx.try_recv() {
        if let Msg::Answer {
            token,
            args,
            from,
            flow,
        } = msg
        {
            // Same receiver-side accounting as the live path, so truncated
            // runs still balance their message matrices for answers that
            // made it across before the trip.
            let empty = Bindings::new();
            let ans = m.arena.canonicalize(&empty, &args);
            let bytes = m.arena.heap_bytes(&ans);
            if let Some(par) = m.par.as_ref() {
                par.on_receive(MsgKind::Answer, from, bytes, flow);
            }
            m.deliver_remote_answer(token, &args)?;
        }
    }
    // Expand exactly the pure inserts those deliveries scheduled
    // (continuations with no goals left), then drop the rest — the
    // same bound the sequential settle applies.
    let mut continuations = Vec::new();
    while let Some(task) = m.scheduler.pop() {
        continuations.push(task);
    }
    for task in continuations {
        if let crate::machine::Task::Expand(n) = task {
            if m.arena.tuple_len(&n.canon) == n.split {
                m.expand(n)?;
            }
        }
    }
    while m.scheduler.pop().is_some() {}
    Ok(())
}

/// Free-function version of [`ParCtx::finish_unit`] for when the context
/// sits behind the machine borrow.
fn finish_unit(shared: &ParShared) {
    if shared.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
        shared.done.store(true, Ordering::SeqCst);
    }
}

/// Evaluates `goals` across `opts.threads` workers (0 = one per core) and
/// merges the workers' tables into one [`Evaluation`]. The answer sets are
/// identical to a sequential run's; step counts and insertion order are
/// scheduling-dependent, as they already are across sequential strategies.
pub(crate) fn run_parallel(
    db: &Database,
    opts: &EngineOptions,
    goals: &[Term],
    template: &[Term],
    b0: &Bindings,
) -> Result<Evaluation, EngineError> {
    let threads = match opts.threads {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    };
    let mut scc_of = HashMap::new();
    for (i, scc) in db.predicate_sccs().iter().enumerate() {
        for f in scc {
            scc_of.insert(*f, i);
        }
    }
    let n_sccs = scc_of.values().max().map_or(0, |m| m + 1);
    let start_ns = now_ns();
    let budgets_on =
        opts.max_steps.is_some() || opts.deadline.is_some() || opts.max_table_bytes.is_some();
    let shared = Arc::new(ParShared {
        scc_of,
        scc_owner: (0..n_sccs).map(|_| AtomicUsize::new(UNOWNED)).collect(),
        load: (0..threads).map(|_| AtomicUsize::new(0)).collect(),
        pending: AtomicUsize::new(0),
        done: AtomicBool::new(false),
        stop: AtomicBool::new(false),
        reason: Mutex::new(None),
        error: Mutex::new(None),
        finished: AtomicUsize::new(0),
        steps: AtomicUsize::new(0),
        answers: AtomicUsize::new(0),
        duplicates: AtomicUsize::new(0),
        tables: AtomicUsize::new(0),
        table_bytes: AtomicUsize::new(0),
        flow_ids: AtomicU64::new(0),
        deadline_ns: opts
            .deadline
            .map(|d| start_ns.saturating_add(d.as_nanos() as u64)),
    });
    // Workers run with health reporting stripped: periodic snapshots under
    // parallelism are the run-wide monitor's job (below), not any single
    // worker's.
    let worker_opts = {
        let mut o = opts.clone();
        o.health = None;
        o
    };
    let mut txs = Vec::with_capacity(threads);
    let mut rxs = Vec::with_capacity(threads);
    for _ in 0..threads {
        let (tx, rx) = mpsc::channel();
        txs.push(tx);
        rxs.push(rx);
    }
    // Flow records take timestamps, so they stay gated exactly like spans;
    // message *counting* (plain `Cell` adds) is always on — the bench
    // columns need it and a run without it would be unexplainable anyway.
    let flows_on = opts.record_spans && opts.trace.is_some();
    type WorkerResult = (Vec<SubgoalState>, TermArena, TableStats, WorkerTelemetry);
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let worker_opts = &worker_opts;
        let mut handles = Vec::with_capacity(threads);
        for (me, rx) in rxs.into_iter().enumerate() {
            let ctx = ParCtx::new(me, shared.clone(), txs.clone(), flows_on);
            let shared = shared.clone();
            handles.push(scope.spawn(move || {
                let mut m = Machine::new(db, worker_opts);
                m.deadline_ns = shared.deadline_ns;
                m.par = Some(ctx);
                // Every worker roots its spans in a worker frame, so folded
                // stacks and flamegraphs attribute time per worker — and
                // tags the emitter so every span carries the worker id into
                // its own Chrome trace lane.
                if let Some(sp) = m.spans.as_mut() {
                    sp.set_worker(me);
                }
                m.span_enter(&format!("worker_{me}"), None);
                if me == 0 {
                    m.seed_root(goals, template, b0);
                }
                let mut timing = WorkerTiming::default();
                if let Err(e) = worker_loop(&mut m, &rx, budgets_on, &mut timing) {
                    shared.fail(e);
                }
                m.span_exit(); // worker_{me}
                shared.finished.fetch_add(1, Ordering::SeqCst);
                let telemetry = m
                    .par
                    .take()
                    .map(|ctx| ctx.into_telemetry(timing))
                    .unwrap_or_default();
                (
                    std::mem::take(&mut m.subgoals),
                    std::mem::take(&mut m.arena),
                    m.stats,
                    telemetry,
                )
            }));
        }
        drop(txs);
        // The run-wide health monitor: periodic snapshots from the shared
        // totals while any worker is still going.
        if let (Some(cfg), Some(sink)) = (opts.health, opts.trace.as_deref()) {
            let mut watchdog = StallWatchdog::new(cfg.stall_window);
            let mut last_ns = start_ns;
            let mut last_steps = 0usize;
            let mut last_answers = 0usize;
            let poll = Duration::from_millis(if cfg.every_ms > 0 {
                cfg.every_ms.min(10)
            } else {
                5
            });
            while shared.finished.load(Ordering::SeqCst) < threads {
                std::thread::sleep(poll);
                let t = now_ns();
                let steps = shared.steps.load(Ordering::Relaxed);
                let step_due = cfg.every_steps > 0 && steps - last_steps >= cfg.every_steps;
                let time_due = cfg.every_ms > 0
                    && t.saturating_sub(last_ns) >= cfg.every_ms.saturating_mul(1_000_000);
                if step_due || time_due {
                    let answers = shared.answers.load(Ordering::Relaxed);
                    let dt = t.saturating_sub(last_ns);
                    let rate = if dt > 0 {
                        (answers - last_answers) as f64 * 1e9 / dt as f64
                    } else {
                        0.0
                    };
                    let stalled =
                        watchdog.observe(answers, shared.table_bytes.load(Ordering::Relaxed));
                    sink.health(&shared.snapshot(t, rate, stalled));
                    last_ns = t;
                    last_steps = steps;
                    last_answers = answers;
                }
            }
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    if let Some(e) = shared.error.lock().unwrap().take() {
        return Err(e);
    }
    let reason = shared.reason.lock().unwrap().take();
    let report = build_report(threads, db, &shared, &results);
    Ok(merge(results, reason, opts, start_ns, report))
}

/// Assembles the [`ParallelReport`] from the joined workers' telemetry and
/// the shared SCC-ownership state. Sender- and receiver-side counts are
/// kept distinct per edge: on a clean run they agree, and a mismatch on a
/// truncated run shows exactly which messages the trip abandoned.
fn build_report(
    threads: usize,
    db: &Database,
    shared: &ParShared,
    results: &[(Vec<SubgoalState>, TermArena, TableStats, WorkerTelemetry)],
) -> ParallelReport {
    let mut workers = Vec::with_capacity(threads);
    for (w, (wsubs, _, wstats, tel)) in results.iter().enumerate() {
        workers.push(WorkerLoad {
            worker: w,
            busy_ns: tel.busy_ns,
            idle_ns: tel.wall_ns.saturating_sub(tel.busy_ns + tel.recv_wait_ns),
            recv_wait_ns: tel.recv_wait_ns,
            dispatches: tel.dispatches,
            msgs_sent: tel
                .sent_calls
                .iter()
                .chain(&tel.sent_answers)
                .copied()
                .sum(),
            msgs_received: tel
                .recv_calls
                .iter()
                .chain(&tel.recv_answers)
                .copied()
                .sum(),
            tables: wsubs.len(),
            answers: wstats.answers,
        });
    }
    let sccs = db
        .predicate_sccs()
        .iter()
        .enumerate()
        .map(|(i, scc)| {
            let owner = match shared.scc_owner[i].load(Ordering::SeqCst) {
                UNOWNED => None,
                w => Some(w),
            };
            let mut preds: Vec<String> = scc.iter().map(|f| f.to_string()).collect();
            preds.sort();
            SccOwner {
                scc: i,
                owner,
                preds,
            }
        })
        .collect();
    let mut edges = Vec::new();
    for from in 0..threads {
        for to in 0..threads {
            let sender = &results[from].3;
            let receiver = &results[to].3;
            let e = MsgEdge {
                from,
                to,
                calls_sent: sender.sent_calls[to],
                answers_sent: sender.sent_answers[to],
                calls_received: receiver.recv_calls[from],
                answers_received: receiver.recv_answers[from],
                bytes_received: receiver.recv_bytes[from],
            };
            if e.calls_sent
                | e.answers_sent
                | e.calls_received
                | e.answers_received
                | e.bytes_received
                != 0
            {
                edges.push(e);
            }
        }
    }
    let mut flows: Vec<FlowEvent> = results
        .iter()
        .flat_map(|r| r.3.flows.iter().copied())
        .collect();
    flows.sort_by_key(|f| f.id);
    ParallelReport {
        threads,
        workers,
        sccs,
        edges,
        flows,
        pending_at_exit: shared.pending.load(Ordering::SeqCst),
    }
}

/// Merges the workers' tables and counters into one evaluation with a
/// fresh session arena. Worker 0 goes first so the `$query` root lands at
/// index 0; re-canonicalization preserves variant identity, and per-table
/// substitution factoring makes the merged byte totals order- and
/// arena-independent (so they match a sequential run's exactly).
fn merge(
    results: Vec<(Vec<SubgoalState>, TermArena, TableStats, WorkerTelemetry)>,
    reason: Option<TruncationReason>,
    opts: &EngineOptions,
    start_ns: u64,
    report: ParallelReport,
) -> Evaluation {
    let mut arena = TermArena::new();
    let mut subgoals = Vec::new();
    let mut stats = TableStats::default();
    let empty = Bindings::new();
    for (wsubs, warena, wstats, _telemetry) in results {
        stats.steps += wstats.steps;
        stats.clause_resolutions += wstats.clause_resolutions;
        stats.subgoals += wstats.subgoals;
        stats.answers += wstats.answers;
        stats.duplicate_answers += wstats.duplicate_answers;
        for s in wsubs {
            let call = warena.terms(&s.call);
            let key = arena.canonicalize(&empty, &call);
            let mut ns = SubgoalState::new(s.functor, key, &arena);
            for a in &s.answers {
                let terms = warena.terms(a);
                let ca = arena.canonicalize(&empty, &terms);
                if ns.answer_ids.insert(ca.root_id()) {
                    ns.charge(&ca, &arena);
                    ns.add_entry_overhead();
                    ns.answers.push(ca);
                }
            }
            debug_assert_eq!(
                ns.table_bytes(),
                s.table_bytes(),
                "re-canonicalized table bytes drifted from the worker's accounting"
            );
            stats.table_bytes += ns.table_bytes();
            subgoals.push(ns);
        }
    }
    let truncated = reason.is_some();
    if !truncated {
        for s in &mut subgoals {
            s.complete = true;
            if let Some(sink) = opts.trace.as_deref() {
                sink.event(&TraceEvent::SubgoalComplete {
                    pred: s.functor,
                    answers: s.answers.len(),
                    bytes: s.table_bytes(),
                });
            }
        }
    }
    // The final snapshot: whole-run totals from the merged counters, the
    // rate over the whole run. Emitted whenever health reporting is on, and
    // stamped onto the truncation when a budget tripped — the sequential
    // contract.
    let truncation = if truncated || opts.health.is_some() {
        let t_ns = now_ns();
        let dt = t_ns.saturating_sub(start_ns);
        let rate = if dt > 0 {
            stats.answers as f64 * 1e9 / dt as f64
        } else {
            0.0
        };
        let snap = HealthSnapshot {
            t_ns,
            steps: stats.steps,
            worklist: 0,
            expands: 0,
            returns: 0,
            tables: subgoals.len(),
            completed_tables: if truncated { 0 } else { subgoals.len() },
            answers: stats.answers,
            duplicate_answers: stats.duplicate_answers,
            table_bytes: stats.table_bytes,
            answer_rate: rate,
            peak_heap_bytes: tablog_alloc::is_tracking().then(|| tablog_alloc::stats().peak_bytes),
            stalled: false,
        };
        if opts.health.is_some() {
            if let Some(sink) = opts.trace.as_deref() {
                sink.health(&snap);
            }
        }
        reason.map(|reason| Truncation {
            reason,
            snapshot: snap,
        })
    } else {
        None
    };
    Evaluation {
        subgoals,
        root: 0,
        stats,
        scheduler: "parallel",
        arena,
        truncation,
        parallel: Some(report),
    }
}
