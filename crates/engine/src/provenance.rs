//! Answer provenance records.
//!
//! When [`EngineOptions::record_provenance`](crate::EngineOptions::record_provenance)
//! is set, every answer inserted into a table carries an [`AnswerProv`]: the
//! program clauses resolved along the answer's *first* derivation branch
//! (later re-derivations are variant duplicates and keep the original
//! justification) and the table answers it consumed. Because an inserted
//! answer can only consume answers that entered their tables strictly
//! earlier, the provenance graph is acyclic by construction.
//!
//! The record types live here; the walk that materializes justification
//! trees from them is in [`crate::JustNode`]'s module, and goal-level
//! explanations in [`crate::Explanation`]'s.

use crate::database::Database;
use std::fmt;
use tablog_term::Functor;

/// Identity of a program clause: its predicate and its position within the
/// predicate in source order. Stable across evaluations of one database.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ClauseRef {
    /// The predicate the clause belongs to.
    pub pred: Functor,
    /// Clause position within the predicate, in source order.
    pub index: usize,
}

impl ClauseRef {
    /// Looks the clause up in `db`; `None` if the id does not resolve
    /// (e.g. the clause was retracted after evaluation).
    pub fn resolve<'d>(&self, db: &'d Database) -> Option<&'d crate::StoredClause> {
        db.clause(self.pred, self.index)
    }
}

impl fmt::Display for ClauseRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.pred, self.index)
    }
}

/// Identity of a table answer: subgoal index within the evaluation plus
/// answer index within that subgoal's table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AnswerRef {
    /// Subgoal index (position in
    /// [`Evaluation::subgoals`](crate::Evaluation::subgoals) order).
    pub subgoal: usize,
    /// Answer index within the subgoal's answer table.
    pub answer: usize,
}

/// The recorded derivation step of one table answer: the clauses resolved
/// and the table answers consumed along its first derivation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AnswerProv {
    /// Clauses resolved along the derivation branch; the first entry is
    /// the generator clause of the answer's own subgoal, later entries
    /// come from inlined SLD subderivations.
    pub clauses: Box<[ClauseRef]>,
    /// Table answers consumed, in consumption order.
    pub premises: Box<[AnswerRef]>,
}

impl AnswerProv {
    /// Heap bytes this record charges to the table-space accounting.
    pub fn heap_bytes(&self) -> usize {
        self.clauses.len() * std::mem::size_of::<ClauseRef>()
            + self.premises.len() * std::mem::size_of::<AnswerRef>()
    }
}

/// The derivation trail a forest node accumulates while its resolvent is
/// being reduced; becomes the inserted answer's [`AnswerProv`].
#[derive(Clone, Debug, Default)]
pub(crate) struct NodeProv {
    pub(crate) clauses: Vec<ClauseRef>,
    pub(crate) premises: Vec<AnswerRef>,
}

impl NodeProv {
    pub(crate) fn freeze(self) -> AnswerProv {
        AnswerProv {
            clauses: self.clauses.into_boxed_slice(),
            premises: self.premises.into_boxed_slice(),
        }
    }
}
