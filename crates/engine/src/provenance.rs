//! Answer provenance and justification trees.
//!
//! When [`EngineOptions::record_provenance`](crate::EngineOptions::record_provenance)
//! is set, every answer inserted into a table carries an [`AnswerProv`]: the
//! program clauses resolved along the answer's *first* derivation branch
//! (later re-derivations are variant duplicates and keep the original
//! justification) and the table answers it consumed. Because an inserted
//! answer can only consume answers that entered their tables strictly
//! earlier, the provenance graph is acyclic by construction; the walk in
//! [`Evaluation::justify`] still guards against cycles with the same
//! node-set discipline the derivation forest uses, so a corrupted or
//! hand-built graph cannot hang it.
//!
//! The walk materializes a [`JustNode`] tree: the root is the answer being
//! explained, children are the premises (consumed table answers), and
//! every leaf is either a program fact, a clause supported purely by
//! builtins, or a stop marker (cycle / depth limit / provenance not
//! recorded). Non-tabled (SLD) subderivations are inlined: their clause
//! ids appear on the consuming node's [`JustNode::clauses`] list rather
//! than as separate children, mirroring how the machine inlines SLD
//! resolution into the derivation node itself.

use crate::database::Database;
use crate::machine::{Engine, Evaluation};
use crate::EngineError;
use std::collections::HashSet;
use std::fmt;
use std::fmt::Write as _;
use tablog_term::{sym_name, Bindings, Functor, Term};
use tablog_trace::json::escape;
use tablog_trace::{Forest, ForestAnswer, ForestSubgoal};

/// Identity of a program clause: its predicate and its position within the
/// predicate in source order. Stable across evaluations of one database.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ClauseRef {
    /// The predicate the clause belongs to.
    pub pred: Functor,
    /// Clause position within the predicate, in source order.
    pub index: usize,
}

impl ClauseRef {
    /// Looks the clause up in `db`; `None` if the id does not resolve
    /// (e.g. the clause was retracted after evaluation).
    pub fn resolve<'d>(&self, db: &'d Database) -> Option<&'d crate::StoredClause> {
        db.clause(self.pred, self.index)
    }
}

impl fmt::Display for ClauseRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.pred, self.index)
    }
}

/// Identity of a table answer: subgoal index within the evaluation plus
/// answer index within that subgoal's table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AnswerRef {
    /// Subgoal index (position in [`Evaluation::subgoals`] order).
    pub subgoal: usize,
    /// Answer index within the subgoal's answer table.
    pub answer: usize,
}

/// The recorded derivation step of one table answer: the clauses resolved
/// and the table answers consumed along its first derivation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AnswerProv {
    /// Clauses resolved along the derivation branch; the first entry is
    /// the generator clause of the answer's own subgoal, later entries
    /// come from inlined SLD subderivations.
    pub clauses: Box<[ClauseRef]>,
    /// Table answers consumed, in consumption order.
    pub premises: Box<[AnswerRef]>,
}

impl AnswerProv {
    /// Heap bytes this record charges to the table-space accounting.
    pub fn heap_bytes(&self) -> usize {
        self.clauses.len() * std::mem::size_of::<ClauseRef>()
            + self.premises.len() * std::mem::size_of::<AnswerRef>()
    }
}

/// The derivation trail a forest node accumulates while its resolvent is
/// being reduced; becomes the inserted answer's [`AnswerProv`].
#[derive(Clone, Debug, Default)]
pub(crate) struct NodeProv {
    pub(crate) clauses: Vec<ClauseRef>,
    pub(crate) premises: Vec<AnswerRef>,
}

impl NodeProv {
    pub(crate) fn freeze(self) -> AnswerProv {
        AnswerProv {
            clauses: self.clauses.into_boxed_slice(),
            premises: self.premises.into_boxed_slice(),
        }
    }
}

/// Why a justification node has no children.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JustStatus {
    /// Supported by a program fact (a clause with an empty body).
    Fact,
    /// Supported by a clause whose body was discharged entirely by
    /// builtins (or by the query's own builtin goals).
    Builtin,
    /// An internal node: supported by a clause plus the child premises.
    Derived,
    /// Walk stopped: this answer already occurs on the path to the root.
    Cycle,
    /// Walk stopped at the depth limit; the answer has further premises.
    Truncated,
    /// No provenance was recorded for this answer (evaluation ran with
    /// `record_provenance` off, or the answer entered via a hook rewrite).
    Unrecorded,
}

impl JustStatus {
    /// The snake_case name used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            JustStatus::Fact => "fact",
            JustStatus::Builtin => "builtin",
            JustStatus::Derived => "derived",
            JustStatus::Cycle => "cycle",
            JustStatus::Truncated => "truncated",
            JustStatus::Unrecorded => "unrecorded",
        }
    }

    /// `true` for the two grounded leaf kinds (fact / builtin support).
    pub fn is_grounded_leaf(self) -> bool {
        matches!(self, JustStatus::Fact | JustStatus::Builtin)
    }
}

/// One node of a justification tree: a table answer together with the
/// clauses that support it and the justifications of its premises.
#[derive(Clone, Debug)]
pub struct JustNode {
    /// The answer's predicate.
    pub pred: Functor,
    /// Subgoal index in the evaluation.
    pub subgoal: usize,
    /// Answer index within the subgoal's table.
    pub answer_index: usize,
    /// The answer rendered as a term, `p(t1,…,tn)`.
    pub answer: String,
    /// Clause ids supporting this answer (first = generator clause).
    pub clauses: Vec<ClauseRef>,
    /// Leaf/internal classification.
    pub status: JustStatus,
    /// Justifications of the consumed premises.
    pub children: Vec<JustNode>,
}

impl JustNode {
    /// Depth-first iteration over the whole tree (self included).
    pub fn walk(&self, f: &mut impl FnMut(&JustNode)) {
        f(self);
        for c in &self.children {
            c.walk(f);
        }
    }

    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(JustNode::size).sum::<usize>()
    }

    /// Renders the tree as ASCII art, one node per line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, "", "");
        out
    }

    fn render_into(&self, out: &mut String, pad: &str, child_pad: &str) {
        let _ = write!(out, "{pad}{}", self.answer);
        if !self.clauses.is_empty() {
            let refs: Vec<String> = self.clauses.iter().map(ClauseRef::to_string).collect();
            let _ = write!(out, "  via {}", refs.join(", "));
        }
        match self.status {
            JustStatus::Derived => {}
            s => {
                let _ = write!(out, "  [{}]", s.name());
            }
        }
        out.push('\n');
        let n = self.children.len();
        for (i, c) in self.children.iter().enumerate() {
            let last = i + 1 == n;
            let branch = if last { "`- " } else { "|- " };
            let cont = if last { "   " } else { "|  " };
            c.render_into(
                out,
                &format!("{child_pad}{branch}"),
                &format!("{child_pad}{cont}"),
            );
        }
    }

    /// Renders the node (recursively) as one JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        let _ = write!(
            s,
            "{{\"answer\":\"{}\",\"pred\":\"{}\",\"subgoal\":{},\"answer_index\":{},\"status\":\"{}\"",
            escape(&self.answer),
            escape(&self.pred.to_string()),
            self.subgoal,
            self.answer_index,
            self.status.name()
        );
        s.push_str(",\"clauses\":[");
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\"", escape(&c.to_string()));
        }
        s.push_str("],\"children\":[");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&c.to_json());
        }
        s.push_str("]}");
        s
    }
}

/// A complete explanation of one goal: every matching answer's
/// justification tree. Produced by [`Engine::explain`].
#[derive(Clone, Debug)]
pub struct Explanation {
    /// The goal as given.
    pub goal: String,
    /// One justification per matching answer, in table order.
    pub trees: Vec<JustNode>,
}

impl Explanation {
    /// `true` if the goal had no matching answers.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Renders all justification trees, separated by blank lines.
    pub fn render_text(&self) -> String {
        if self.trees.is_empty() {
            return format!("no answers for {}\n", self.goal);
        }
        let mut out = String::new();
        for (i, t) in self.trees.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            out.push_str(&t.render_text());
        }
        out
    }

    /// Renders the explanation as one JSON object
    /// (`{"goal": …, "justifications": […]}`).
    pub fn to_json(&self) -> String {
        let mut s = format!("{{\"goal\":\"{}\",\"justifications\":[", escape(&self.goal));
        for (i, t) in self.trees.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&t.to_json());
        }
        s.push_str("]}");
        s
    }
}

impl Evaluation {
    /// The provenance of answer `answer` of subgoal `subgoal`, if it was
    /// recorded.
    pub fn provenance(&self, subgoal: usize, answer: usize) -> Option<&AnswerProv> {
        self.states().get(subgoal)?.provenance.get(answer)
    }

    /// `true` if this evaluation recorded provenance.
    pub fn has_provenance(&self) -> bool {
        self.states().iter().any(|s| !s.provenance.is_empty())
    }

    /// Builds the justification tree of one table answer.
    ///
    /// The walk is cycle-safe (an answer already on the path becomes a
    /// [`JustStatus::Cycle`] leaf) and depth-bounded: nodes at
    /// `max_depth` with further premises become [`JustStatus::Truncated`]
    /// leaves. `db` must be the database the evaluation ran against; it is
    /// used to classify leaves as facts vs. builtin-supported.
    pub fn justify(
        &self,
        db: &Database,
        subgoal: usize,
        answer: usize,
        max_depth: usize,
    ) -> JustNode {
        let mut path = HashSet::new();
        self.justify_walk(db, subgoal, answer, max_depth, &mut path)
    }

    fn justify_walk(
        &self,
        db: &Database,
        sid: usize,
        aidx: usize,
        depth: usize,
        path: &mut HashSet<(usize, usize)>,
    ) -> JustNode {
        let state = &self.states()[sid];
        let answer = render_answer(state.functor, &state.answers[aidx].terms());
        let mut node = JustNode {
            pred: state.functor,
            subgoal: sid,
            answer_index: aidx,
            answer,
            clauses: Vec::new(),
            status: JustStatus::Unrecorded,
            children: Vec::new(),
        };
        let Some(prov) = state.provenance.get(aidx) else {
            return node;
        };
        node.clauses = prov.clauses.to_vec();
        if !path.insert((sid, aidx)) {
            node.status = JustStatus::Cycle;
            return node;
        }
        if prov.premises.is_empty() {
            node.status = leaf_status(db, &node.clauses);
        } else if depth == 0 {
            node.status = JustStatus::Truncated;
        } else {
            node.status = JustStatus::Derived;
            for p in prov.premises.iter() {
                node.children
                    .push(self.justify_walk(db, p.subgoal, p.answer, depth - 1, path));
            }
        }
        path.remove(&(sid, aidx));
        node
    }

    /// Finds the table answers of predicate `f` that unify with `args`
    /// (the goal's argument tuple, living in `b`), across all of the
    /// predicate's call patterns. Returns `(subgoal, answer)` pairs in
    /// table order, deduplicated by answer variant.
    pub fn matching_answers(&self, f: Functor, args: &[Term], b: &Bindings) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for (sid, state) in self.states().iter().enumerate() {
            if state.functor != f {
                continue;
            }
            for (aidx, ans) in state.answers.iter().enumerate() {
                if !seen.insert(*ans) {
                    continue;
                }
                let mut bb = b.clone();
                let m = bb.mark();
                let ans_args = ans.instantiate(&mut bb);
                let ok = args
                    .iter()
                    .zip(ans_args.iter())
                    .all(|(x, y)| tablog_term::unify(&mut bb, x, y));
                bb.undo_to(m);
                if ok {
                    out.push((sid, aidx));
                }
            }
        }
        out
    }

    /// Exports the complete call/answer-table graph — every subgoal, its
    /// answers, and (when provenance was recorded) the answer-level
    /// dependency edges — as a [`Forest`] ready for DOT or JSON rendering.
    pub fn forest(&self) -> Forest {
        let subgoals = self
            .states()
            .iter()
            .enumerate()
            .map(|(sid, state)| ForestSubgoal {
                id: sid,
                pred: state.functor.to_string(),
                call: render_answer(state.functor, &state.call.terms()),
                complete: state.complete,
                answers: state
                    .answers
                    .iter()
                    .enumerate()
                    .map(|(aidx, ans)| {
                        let prov = state.provenance.get(aidx);
                        ForestAnswer {
                            term: render_answer(state.functor, &ans.terms()),
                            clauses: prov
                                .map(|p| p.clauses.iter().map(ClauseRef::to_string).collect())
                                .unwrap_or_default(),
                            premises: prov
                                .map(|p| p.premises.iter().map(|r| (r.subgoal, r.answer)).collect())
                                .unwrap_or_default(),
                        }
                    })
                    .collect(),
            })
            .collect();
        Forest { subgoals }
    }
}

/// Classifies a premise-free node from its clause list: a fact leaf if the
/// derivation bottomed out in at least one program fact (a clause with an
/// empty body — SLD-resolved facts are inlined into the trail), otherwise
/// supported purely by builtins.
fn leaf_status(db: &Database, clauses: &[ClauseRef]) -> JustStatus {
    let used_fact = clauses
        .iter()
        .any(|c| c.resolve(db).is_some_and(|clause| clause.body.is_empty()));
    if used_fact {
        JustStatus::Fact
    } else {
        JustStatus::Builtin
    }
}

fn render_answer(f: Functor, args: &[Term]) -> String {
    let term = if args.is_empty() {
        Term::Atom(f.name)
    } else {
        Term::Struct(f.name, args.to_vec().into())
    };
    tablog_syntax::term_to_string(&term)
}

impl Engine {
    /// Evaluates `goal` with provenance recording forced on and returns
    /// the justification trees of every matching answer.
    ///
    /// If the goal is a single call to a tabled predicate, the trees are
    /// rooted directly at the matching table answers. Otherwise (a
    /// conjunction, or a non-tabled goal) the trees are rooted at the
    /// query's own answers, labeled with the goal text.
    ///
    /// # Errors
    ///
    /// Returns parse errors and any [`EngineError`] raised during
    /// evaluation.
    pub fn explain(&self, goal: &str, max_depth: usize) -> Result<Explanation, EngineError> {
        let mut b = Bindings::new();
        let (t, _) = tablog_syntax::parse_term(goal, &mut b)?;
        self.explain_goal(&t, &b, goal, max_depth)
    }

    /// As [`Engine::explain`], but for an already-parsed goal term whose
    /// variables live in `bindings`; `label` is the display string used
    /// for query-rooted trees. This is the entry point the analyzers use:
    /// abstract predicate names (`gp$p`, `ak$p`, …) are not re-parseable,
    /// so they hand the constructed term over directly.
    ///
    /// # Errors
    ///
    /// Returns any [`EngineError`] raised during evaluation.
    pub fn explain_goal(
        &self,
        goal: &Term,
        bindings: &Bindings,
        label: &str,
        max_depth: usize,
    ) -> Result<Explanation, EngineError> {
        let mut opts = self.options().clone();
        opts.record_provenance = true;
        let mut goals = Vec::new();
        crate::machine::flatten_conj(goal, &mut goals);
        let single_tabled = match (goals.len(), goals[0].functor()) {
            (1, Some(f)) => self.db().is_tabled(f).then_some(f),
            _ => None,
        };
        let eval = self.evaluate_with_opts(&opts, &goals, &[], bindings)?;
        let trees = match single_tabled {
            Some(f) => {
                let args = goals[0].args().to_vec();
                eval.matching_answers(f, &args, bindings)
                    .into_iter()
                    .map(|(sid, aidx)| eval.justify(self.db(), sid, aidx, max_depth))
                    .collect()
            }
            None => {
                let root = eval.root_index();
                let n = eval.states()[root].answers.len();
                (0..n)
                    .map(|aidx| {
                        let mut t = eval.justify(self.db(), root, aidx, max_depth);
                        // The synthetic `$query` tuple is meaningless to the
                        // reader; show the goal text instead.
                        if sym_name(t.pred.name) == "$query" {
                            t.answer = label.to_owned();
                        }
                        t
                    })
                    .collect()
            }
        };
        Ok(Explanation {
            goal: label.to_owned(),
            trees,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;

    const GRAPH: &str = "
        :- table path/2.
        path(X, Y) :- path(X, Z), edge(Z, Y).
        path(X, Y) :- edge(X, Y).
        edge(a, b). edge(b, c). edge(c, a).
    ";

    fn engine(src: &str, record: bool) -> Engine {
        let mut e = Engine::from_source(src).unwrap();
        e.options_mut().record_provenance = record;
        e
    }

    fn eval(e: &Engine, goal: &str) -> crate::Evaluation {
        let mut b = Bindings::new();
        let (g, _) = tablog_syntax::parse_term(goal, &mut b).unwrap();
        let mut goals = Vec::new();
        crate::machine::flatten_conj(&g, &mut goals);
        e.evaluate(&goals, &[], &b).unwrap()
    }

    #[test]
    fn recording_off_stores_nothing() {
        let eval = eval(&engine(GRAPH, false), "path(a, X)");
        assert!(!eval.has_provenance());
        assert!(eval.provenance(0, 0).is_none());
    }

    #[test]
    fn off_and_on_table_bytes_differ_only_by_provenance() {
        let off = eval(&engine(GRAPH, false), "path(a, X)");
        let on = eval(&engine(GRAPH, true), "path(a, X)");
        let prov_bytes: usize = on
            .subgoals()
            .map(|v| {
                (0..v.num_answers())
                    .filter_map(|i| v.provenance(i))
                    .map(AnswerProv::heap_bytes)
                    .sum::<usize>()
            })
            .sum();
        assert!(prov_bytes > 0);
        assert_eq!(off.table_bytes() + prov_bytes, on.table_bytes());
        // The incremental accounting and the rescan agree on both sides.
        assert_eq!(off.stats().table_bytes, off.rescan_table_bytes());
        assert_eq!(on.stats().table_bytes, on.rescan_table_bytes());
    }

    #[test]
    fn every_answer_gets_a_provenance_record() {
        let eval = eval(&engine(GRAPH, true), "path(X, Y)");
        for v in eval.subgoals() {
            for i in 0..v.num_answers() {
                assert!(v.provenance(i).is_some(), "{} answer {i}", v.functor());
            }
        }
    }

    #[test]
    fn base_case_answer_cites_the_base_clause() {
        let e = engine(GRAPH, true);
        let ex = e.explain("path(a, b)", 10).unwrap();
        assert_eq!(ex.trees.len(), 1);
        let root = &ex.trees[0];
        assert_eq!(root.answer, "path(a,b)");
        // path(a,b) comes from clause 1 (the edge/2 base case) plus the
        // edge(a,b) fact inlined via SLD — a premise-free fact leaf.
        let path2 = Functor::new("path", 2);
        let edge2 = Functor::new("edge", 2);
        assert!(root.clauses.contains(&ClauseRef {
            pred: path2,
            index: 1
        }));
        assert!(root.clauses.iter().any(|c| c.pred == edge2));
        assert_eq!(root.status, JustStatus::Fact);
    }

    #[test]
    fn justification_leaves_are_grounded() {
        let e = engine(GRAPH, true);
        let ex = e.explain("path(a, c)", 64).unwrap();
        assert_eq!(ex.trees.len(), 1);
        ex.trees[0].walk(&mut |n| {
            if n.children.is_empty() {
                assert!(
                    n.status.is_grounded_leaf() || n.status == JustStatus::Cycle,
                    "leaf {} has status {:?}",
                    n.answer,
                    n.status
                );
            } else {
                assert_eq!(n.status, JustStatus::Derived);
            }
        });
    }

    #[test]
    fn clause_ids_resolve_in_the_database() {
        let e = engine(GRAPH, true);
        let ex = e.explain("path(a, a)", 64).unwrap();
        ex.trees[0].walk(&mut |n| {
            for c in &n.clauses {
                assert!(c.resolve(e.db()).is_some(), "dangling {c}");
            }
        });
    }

    #[test]
    fn depth_limit_truncates() {
        let e = engine(GRAPH, true);
        let ex = e.explain("path(a, c)", 0).unwrap();
        assert_eq!(ex.trees[0].status, JustStatus::Truncated);
        assert!(ex.trees[0].children.is_empty());
    }

    #[test]
    fn facts_are_fact_leaves() {
        let src = ":- table edge/2.\nedge(a, b).";
        let e = engine(src, true);
        let ex = e.explain("edge(a, b)", 10).unwrap();
        assert_eq!(ex.trees[0].status, JustStatus::Fact);
    }

    #[test]
    fn conjunction_explains_via_query_root() {
        let e = engine(GRAPH, true);
        let ex = e.explain("path(a, b), path(b, c)", 10).unwrap();
        assert_eq!(ex.trees.len(), 1);
        assert_eq!(ex.trees[0].answer, "path(a, b), path(b, c)");
        assert_eq!(ex.trees[0].children.len(), 2);
    }

    #[test]
    fn unrecorded_answers_render_as_unrecorded() {
        let eval = eval(&engine(GRAPH, false), "path(a, b)");
        let e = engine(GRAPH, false);
        let node = eval.justify(e.db(), 0, 0, 10);
        assert_eq!(node.status, JustStatus::Unrecorded);
    }

    #[test]
    fn render_text_draws_a_tree() {
        let e = engine(GRAPH, true);
        let text = e.explain("path(a, c)", 64).unwrap().render_text();
        assert!(text.starts_with("path(a,c)"));
        assert!(text.contains("`- "));
        assert!(text.contains("via path/2#"));
    }

    #[test]
    fn explanation_json_round_trips_through_parser() {
        let e = engine(GRAPH, true);
        let json = e.explain("path(a, c)", 64).unwrap().to_json();
        let doc = tablog_trace::json::parse(&json).unwrap();
        assert_eq!(doc.get("goal").unwrap().as_str(), Some("path(a, c)"));
        let trees = doc.get("justifications").unwrap().as_arr().unwrap();
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].get("status").unwrap().as_str(), Some("derived"));
    }

    #[test]
    fn forest_export_round_trips_and_links_premises() {
        let e = engine(GRAPH, true);
        let eval = eval(&e, "path(a, X)");
        let forest = eval.forest();
        assert_eq!(forest.subgoals.len(), eval.stats().subgoals);
        let back = tablog_trace::Forest::from_json(&forest.to_json()).unwrap();
        assert_eq!(forest, back);
        // Premise indices stay in range.
        for s in &forest.subgoals {
            for a in &s.answers {
                for &(ps, pa) in &a.premises {
                    assert!(pa < forest.subgoals[ps].answers.len());
                }
            }
        }
        // Some answer actually consumed a premise (path is recursive).
        assert!(forest
            .subgoals
            .iter()
            .flat_map(|s| &s.answers)
            .any(|a| !a.premises.is_empty()));
    }

    #[test]
    fn explain_does_not_mutate_engine_options() {
        let e = engine(GRAPH, false);
        e.explain("path(a, b)", 10).unwrap();
        assert!(!e.options().record_provenance);
    }
}
