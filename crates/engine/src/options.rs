//! Evaluation options.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;
use tablog_domain::DomainKind;
use tablog_term::{CanonicalTerm, TermArena};
use tablog_trace::TraceSink;

/// Worklist discipline for the derivation forest.
///
/// The paper's Section 6.2 discusses the impact of scheduling strategies on
/// answer collection; the three strategies here are implemented by the
/// [`crate::Scheduler`] implementations of the same names.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Scheduling {
    /// LIFO worklist: depth-first expansion, akin to XSB's local scheduling.
    #[default]
    DepthFirst,
    /// FIFO worklist: breadth-first expansion and answer return.
    BreadthFirst,
    /// Exhaust expansions before returning any answers to consumers, akin
    /// to XSB's batched scheduling.
    Batched,
    /// Multi-worker evaluation: the derivation forest is partitioned by
    /// predicate SCC across [`EngineOptions::threads`] worker threads, each
    /// running a depth-first worklist over the subgoals it owns (see
    /// DESIGN.md, "Parallel SLG"). Answer sets are identical to the
    /// sequential strategies; task interleaving (and hence step counts) are
    /// not deterministic.
    Parallel,
}

impl Scheduling {
    /// The snake_case name used in reports and on the command line.
    pub fn name(self) -> &'static str {
        match self {
            Scheduling::DepthFirst => "depth_first",
            Scheduling::BreadthFirst => "breadth_first",
            Scheduling::Batched => "batched",
            Scheduling::Parallel => "parallel",
        }
    }
}

impl fmt::Display for Scheduling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Scheduling {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "depth_first" | "depth-first" => Ok(Scheduling::DepthFirst),
            "breadth_first" | "breadth-first" => Ok(Scheduling::BreadthFirst),
            "batched" => Ok(Scheduling::Batched),
            "parallel" => Ok(Scheduling::Parallel),
            other => Err(format!(
                "unknown scheduling strategy `{other}` \
                 (expected depth_first, breadth_first, batched, or parallel)"
            )),
        }
    }
}

/// Treatment of goals whose predicate has no definition.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Unknown {
    /// Raise [`crate::EngineError::UnknownPredicate`] (ISO default).
    #[default]
    Error,
    /// Silently fail the goal (useful when analyzing partial programs).
    Fail,
}

/// A table hook: rewrites a canonical call or answer before it enters a
/// table. This is the engine-level mechanism for the paper's Section 6.1
/// (widening / on-the-fly approximation); the Section 5 depth-k analysis
/// supplies depth-truncation here. The hook receives the session's own
/// [`TermArena`] — the handle it is given and the handle it returns both
/// live there — and must be `Send + Sync` so engines stay `Send` and one
/// configured engine can serve the parallel multi-program driver.
pub type TermHook = Arc<dyn Fn(&mut TermArena, &CanonicalTerm) -> CanonicalTerm + Send + Sync>;

/// Options controlling tabled evaluation.
#[derive(Clone, Default)]
pub struct EngineOptions {
    /// Worklist discipline.
    pub scheduling: Scheduling,
    /// Worker-thread count for [`Scheduling::Parallel`] (0 = one worker per
    /// available core). Ignored by the sequential strategies.
    pub threads: usize,
    /// Which Prop-domain backend analyses built on this engine should run
    /// on (truth tables or ROBDDs). The engine itself only records the
    /// choice — the analyzers in `tablog-core` read it back — but carrying
    /// it here makes every report and snapshot self-describing, like
    /// `scheduling`.
    pub domain: DomainKind,
    /// Unify with occur check everywhere (needed by analyses that solve
    /// equality constraints, cf. Section 6.1's Hindley–Milner discussion).
    pub occur_check: bool,
    /// Route specific calls through the open call's table instead of
    /// creating a new table per call pattern (Section 6.2).
    pub forward_subsumption: bool,
    /// Rewrites tabled calls before table lookup. Must generalize (the
    /// engine re-filters answers by unification, so over-approximating
    /// calls is sound).
    pub call_abstraction: Option<TermHook>,
    /// Rewrites answers before insertion. Must over-approximate for the
    /// analysis to stay sound; guarantees termination on infinite domains
    /// when the hook's range is finite.
    pub answer_widening: Option<TermHook>,
    /// Step budget: stop scheduling after this many engine steps (`None` =
    /// unbounded). Tripping it is not an error — the evaluation is handed
    /// back truncated, with the answers derived so far (see
    /// [`crate::Truncation`]).
    pub max_steps: Option<usize>,
    /// Wall-clock budget for the whole evaluation (`None` = unbounded).
    /// Checked at dispatch boundaries (one clock read per task when set),
    /// so a long-running *single* task can overshoot; the truncation
    /// snapshot records the actual elapsed time.
    pub deadline: Option<std::time::Duration>,
    /// Table-space budget in bytes, against the engine's incremental
    /// accounting (`None` = unbounded). Checked at dispatch boundaries;
    /// the run stops after the task that crossed the ceiling.
    pub max_table_bytes: Option<usize>,
    /// Periodic run-health reporting: with `Some`, the engine emits
    /// [`tablog_trace::HealthSnapshot`]s through [`TraceSink::health`] on
    /// the configured cadence (plus one final snapshot), with the stall
    /// watchdog scoring each window. With `None` (the default) no
    /// snapshot — and no timestamp — is ever taken.
    pub health: Option<crate::HealthConfig>,
    /// Treatment of undefined predicates.
    pub unknown: Unknown,
    /// Record per-answer provenance: the clause ids resolved and the table
    /// answers consumed along each answer's first derivation (see
    /// [`crate::AnswerProv`]). Provenance bytes are charged to the table
    /// space accounting. With `false` (the default) the engine allocates
    /// and stores nothing, so the feature costs exactly zero when off.
    pub record_provenance: bool,
    /// Observer of engine events (see `tablog_trace`). With `None` the
    /// engine constructs no events at all, so tracing costs nothing when
    /// disabled. Negation subcomputations share the sink, and so do the
    /// concurrent sessions of the parallel driver (sinks are `Sync`).
    pub trace: Option<Arc<dyn TraceSink>>,
    /// Emit hierarchical timing spans (`span_enter`/`span_exit`) around
    /// evaluation, goal dispatch, clause resolution, answer return, and
    /// completion. Spans flow to the same `trace` sink; with `trace` unset
    /// or this flag off (the default) no span — and no timestamp — is ever
    /// taken, so the flag costs exactly zero when off.
    pub record_spans: bool,
    /// Parent span for the engine's root spans, letting an embedding
    /// analyzer nest the whole evaluation under its own phase span.
    /// Ignored unless `record_spans` is set.
    pub parent_span: Option<tablog_trace::SpanId>,
    /// Emit counter time-series samples (`counter_sample`) at worklist
    /// dispatch boundaries: worklist depth per class, live call tables,
    /// cumulative answers, and table bytes. Samples flow to the same
    /// `trace` sink; with `trace` unset or this flag off (the default) no
    /// sample — and no timestamp — is ever taken, so the flag costs one
    /// branch per worklist task when off.
    pub record_counters: bool,
}

impl EngineOptions {
    /// Describes the options in effect as `(key, value)` pairs — the
    /// self-describing header embedded in metric reports so a saved report
    /// can be attributed to the configuration that produced it.
    pub fn describe(&self) -> Vec<(String, String)> {
        let on_off = |b: bool| if b { "on" } else { "off" }.to_owned();
        vec![
            ("scheduling".to_owned(), self.scheduling.name().to_owned()),
            (
                "threads".to_owned(),
                match (self.scheduling, self.threads) {
                    (Scheduling::Parallel, 0) => "auto".to_owned(),
                    (Scheduling::Parallel, n) => n.to_string(),
                    _ => "n/a".to_owned(),
                },
            ),
            ("domain".to_owned(), self.domain.name().to_owned()),
            ("occur_check".to_owned(), on_off(self.occur_check)),
            (
                "forward_subsumption".to_owned(),
                on_off(self.forward_subsumption),
            ),
            (
                "call_abstraction".to_owned(),
                on_off(self.call_abstraction.is_some()),
            ),
            (
                "answer_widening".to_owned(),
                on_off(self.answer_widening.is_some()),
            ),
            (
                "max_steps".to_owned(),
                match self.max_steps {
                    Some(n) => n.to_string(),
                    None => "unbounded".to_owned(),
                },
            ),
            (
                "deadline_ms".to_owned(),
                match self.deadline {
                    Some(d) => d.as_millis().to_string(),
                    None => "unbounded".to_owned(),
                },
            ),
            (
                "max_table_bytes".to_owned(),
                match self.max_table_bytes {
                    Some(b) => b.to_string(),
                    None => "unbounded".to_owned(),
                },
            ),
            (
                "health".to_owned(),
                match self.health {
                    Some(h) => format!(
                        "every {} steps / {} ms (stall window {})",
                        h.every_steps, h.every_ms, h.stall_window
                    ),
                    None => "off".to_owned(),
                },
            ),
            (
                "unknown".to_owned(),
                match self.unknown {
                    Unknown::Error => "error".to_owned(),
                    Unknown::Fail => "fail".to_owned(),
                },
            ),
            (
                "record_provenance".to_owned(),
                on_off(self.record_provenance),
            ),
            ("record_spans".to_owned(), on_off(self.record_spans)),
            ("record_counters".to_owned(), on_off(self.record_counters)),
        ]
    }
}

impl fmt::Debug for EngineOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineOptions")
            .field("scheduling", &self.scheduling)
            .field("threads", &self.threads)
            .field("domain", &self.domain)
            .field("occur_check", &self.occur_check)
            .field("forward_subsumption", &self.forward_subsumption)
            .field("call_abstraction", &self.call_abstraction.is_some())
            .field("answer_widening", &self.answer_widening.is_some())
            .field("max_steps", &self.max_steps)
            .field("deadline", &self.deadline)
            .field("max_table_bytes", &self.max_table_bytes)
            .field("health", &self.health)
            .field("unknown", &self.unknown)
            .field("record_provenance", &self.record_provenance)
            .field("trace", &self.trace.is_some())
            .field("record_spans", &self.record_spans)
            .field("parent_span", &self.parent_span)
            .field("record_counters", &self.record_counters)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduling_round_trips_through_names() {
        for s in [
            Scheduling::DepthFirst,
            Scheduling::BreadthFirst,
            Scheduling::Batched,
            Scheduling::Parallel,
        ] {
            assert_eq!(s.name().parse::<Scheduling>(), Ok(s));
        }
        let err = "local".parse::<Scheduling>().unwrap_err();
        // The error message enumerates every valid value.
        for name in ["depth_first", "breadth_first", "batched", "parallel"] {
            assert!(err.contains(name), "{err}");
        }
    }

    #[test]
    fn describe_reports_the_selected_strategy() {
        let opts = EngineOptions {
            scheduling: Scheduling::Batched,
            ..Default::default()
        };
        let kv = opts.describe();
        assert!(kv.contains(&("scheduling".to_owned(), "batched".to_owned())));
        // The active Prop-domain backend is part of the header too.
        assert!(kv.contains(&("domain".to_owned(), "table".to_owned())));
        let bdd = EngineOptions {
            domain: DomainKind::Bdd,
            ..Default::default()
        };
        assert!(bdd
            .describe()
            .contains(&("domain".to_owned(), "bdd".to_owned())));
    }

    #[test]
    fn options_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EngineOptions>();
    }
}
