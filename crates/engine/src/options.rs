//! Evaluation options.

use std::fmt;
use std::rc::Rc;
use tablog_term::CanonicalTerm;
use tablog_trace::TraceSink;

/// Worklist discipline for the derivation forest.
///
/// The paper's Section 6.2 discusses the impact of scheduling strategies on
/// answer collection; both are provided.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Scheduling {
    /// LIFO worklist: depth-first expansion, akin to XSB's local scheduling.
    #[default]
    DepthFirst,
    /// FIFO worklist: breadth-first expansion and answer return.
    BreadthFirst,
}

/// Treatment of goals whose predicate has no definition.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Unknown {
    /// Raise [`crate::EngineError::UnknownPredicate`] (ISO default).
    #[default]
    Error,
    /// Silently fail the goal (useful when analyzing partial programs).
    Fail,
}

/// A table hook: rewrites a canonical call or answer before it enters a
/// table. This is the engine-level mechanism for the paper's Section 6.1
/// (widening / on-the-fly approximation); the Section 5 depth-k analysis
/// supplies depth-truncation here.
pub type TermHook = Rc<dyn Fn(&CanonicalTerm) -> CanonicalTerm>;

/// Options controlling tabled evaluation.
#[derive(Clone, Default)]
pub struct EngineOptions {
    /// Worklist discipline.
    pub scheduling: Scheduling,
    /// Unify with occur check everywhere (needed by analyses that solve
    /// equality constraints, cf. Section 6.1's Hindley–Milner discussion).
    pub occur_check: bool,
    /// Route specific calls through the open call's table instead of
    /// creating a new table per call pattern (Section 6.2).
    pub forward_subsumption: bool,
    /// Rewrites tabled calls before table lookup. Must generalize (the
    /// engine re-filters answers by unification, so over-approximating
    /// calls is sound).
    pub call_abstraction: Option<TermHook>,
    /// Rewrites answers before insertion. Must over-approximate for the
    /// analysis to stay sound; guarantees termination on infinite domains
    /// when the hook's range is finite.
    pub answer_widening: Option<TermHook>,
    /// Abort evaluation after this many engine steps (`None` = unbounded).
    /// A safety net for non-terminating SLD subcomputations.
    pub max_steps: Option<usize>,
    /// Treatment of undefined predicates.
    pub unknown: Unknown,
    /// Observer of engine events (see `tablog_trace`). With `None` the
    /// engine constructs no events at all, so tracing costs nothing when
    /// disabled. Negation subcomputations share the sink.
    pub trace: Option<Rc<dyn TraceSink>>,
}

impl fmt::Debug for EngineOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineOptions")
            .field("scheduling", &self.scheduling)
            .field("occur_check", &self.occur_check)
            .field("forward_subsumption", &self.forward_subsumption)
            .field("call_abstraction", &self.call_abstraction.is_some())
            .field("answer_widening", &self.answer_widening.is_some())
            .field("max_steps", &self.max_steps)
            .field("unknown", &self.unknown)
            .field("trace", &self.trace.is_some())
            .finish()
    }
}
