//! Evaluation options.

use std::fmt;
use std::rc::Rc;
use tablog_term::CanonicalTerm;
use tablog_trace::TraceSink;

/// Worklist discipline for the derivation forest.
///
/// The paper's Section 6.2 discusses the impact of scheduling strategies on
/// answer collection; both are provided.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Scheduling {
    /// LIFO worklist: depth-first expansion, akin to XSB's local scheduling.
    #[default]
    DepthFirst,
    /// FIFO worklist: breadth-first expansion and answer return.
    BreadthFirst,
}

/// Treatment of goals whose predicate has no definition.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Unknown {
    /// Raise [`crate::EngineError::UnknownPredicate`] (ISO default).
    #[default]
    Error,
    /// Silently fail the goal (useful when analyzing partial programs).
    Fail,
}

/// A table hook: rewrites a canonical call or answer before it enters a
/// table. This is the engine-level mechanism for the paper's Section 6.1
/// (widening / on-the-fly approximation); the Section 5 depth-k analysis
/// supplies depth-truncation here.
pub type TermHook = Rc<dyn Fn(&CanonicalTerm) -> CanonicalTerm>;

/// Options controlling tabled evaluation.
#[derive(Clone, Default)]
pub struct EngineOptions {
    /// Worklist discipline.
    pub scheduling: Scheduling,
    /// Unify with occur check everywhere (needed by analyses that solve
    /// equality constraints, cf. Section 6.1's Hindley–Milner discussion).
    pub occur_check: bool,
    /// Route specific calls through the open call's table instead of
    /// creating a new table per call pattern (Section 6.2).
    pub forward_subsumption: bool,
    /// Rewrites tabled calls before table lookup. Must generalize (the
    /// engine re-filters answers by unification, so over-approximating
    /// calls is sound).
    pub call_abstraction: Option<TermHook>,
    /// Rewrites answers before insertion. Must over-approximate for the
    /// analysis to stay sound; guarantees termination on infinite domains
    /// when the hook's range is finite.
    pub answer_widening: Option<TermHook>,
    /// Abort evaluation after this many engine steps (`None` = unbounded).
    /// A safety net for non-terminating SLD subcomputations.
    pub max_steps: Option<usize>,
    /// Treatment of undefined predicates.
    pub unknown: Unknown,
    /// Record per-answer provenance: the clause ids resolved and the table
    /// answers consumed along each answer's first derivation (see
    /// [`crate::AnswerProv`]). Provenance bytes are charged to the table
    /// space accounting. With `false` (the default) the engine allocates
    /// and stores nothing, so the feature costs exactly zero when off.
    pub record_provenance: bool,
    /// Observer of engine events (see `tablog_trace`). With `None` the
    /// engine constructs no events at all, so tracing costs nothing when
    /// disabled. Negation subcomputations share the sink.
    pub trace: Option<Rc<dyn TraceSink>>,
}

impl EngineOptions {
    /// Describes the options in effect as `(key, value)` pairs — the
    /// self-describing header embedded in metric reports so a saved report
    /// can be attributed to the configuration that produced it.
    pub fn describe(&self) -> Vec<(String, String)> {
        let on_off = |b: bool| if b { "on" } else { "off" }.to_owned();
        vec![
            (
                "scheduling".to_owned(),
                match self.scheduling {
                    Scheduling::DepthFirst => "depth_first".to_owned(),
                    Scheduling::BreadthFirst => "breadth_first".to_owned(),
                },
            ),
            ("occur_check".to_owned(), on_off(self.occur_check)),
            (
                "forward_subsumption".to_owned(),
                on_off(self.forward_subsumption),
            ),
            (
                "call_abstraction".to_owned(),
                on_off(self.call_abstraction.is_some()),
            ),
            (
                "answer_widening".to_owned(),
                on_off(self.answer_widening.is_some()),
            ),
            (
                "max_steps".to_owned(),
                match self.max_steps {
                    Some(n) => n.to_string(),
                    None => "unbounded".to_owned(),
                },
            ),
            (
                "unknown".to_owned(),
                match self.unknown {
                    Unknown::Error => "error".to_owned(),
                    Unknown::Fail => "fail".to_owned(),
                },
            ),
            (
                "record_provenance".to_owned(),
                on_off(self.record_provenance),
            ),
        ]
    }
}

impl fmt::Debug for EngineOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineOptions")
            .field("scheduling", &self.scheduling)
            .field("occur_check", &self.occur_check)
            .field("forward_subsumption", &self.forward_subsumption)
            .field("call_abstraction", &self.call_abstraction.is_some())
            .field("answer_widening", &self.answer_widening.is_some())
            .field("max_steps", &self.max_steps)
            .field("unknown", &self.unknown)
            .field("record_provenance", &self.record_provenance)
            .field("trace", &self.trace.is_some())
            .finish()
    }
}
