//! Answer flow: resuming consumers with table answers, inserting answers
//! into tables (with widening and substitution-factored byte accounting),
//! and negation-as-failure subcomputations. Split out of `machine.rs` in
//! PR 4; the methods here extend [`Machine`].

use crate::error::EngineError;
use crate::machine::{Machine, Task};
use crate::provenance::{AnswerRef, NodeProv};
use crate::table::NODE_OVERHEAD;
use tablog_term::{Bindings, CanonicalTerm, Term};
use tablog_trace::TraceEvent;

impl Machine<'_> {
    pub(crate) fn return_answer(&mut self, cid: usize, aidx: usize) -> Result<(), EngineError> {
        // Canonical terms are `Copy` arena handles, so pulling the consumer's
        // coordinates out is free — no `Consumer` or answer clone on this
        // path. Only the provenance trail (off by default) is cloned.
        let (subgoal, split, canon, watched) = {
            let c = &self.consumers[cid];
            (c.node.subgoal, c.node.split, c.node.canon, c.watched)
        };
        let mut b = Bindings::new();
        let ts = self.arena.instantiate(&canon, &mut b);
        let (template, goals) = ts.split_at(split);
        let (g, rest) = goals
            .split_first()
            .expect("consumer node has a selected goal");
        let answer = self.subgoals[watched].answers[aidx];
        let ans_args = self.arena.instantiate(&answer, &mut b);
        let ok = g
            .args()
            .iter()
            .zip(ans_args.iter())
            .all(|(x, y)| self.unif(&mut b, x, y));
        if ok {
            if let Some(sink) = self.trace {
                sink.event(&TraceEvent::AnswerReturn {
                    pred: self.subgoals[watched].functor,
                });
            }
            // The continuation consumed answer `aidx` of the watched table:
            // extend the consumer's trail with that premise.
            let mut prov = self.consumers[cid].node.prov.clone();
            if let Some(p) = prov.as_deref_mut() {
                p.premises.push(AnswerRef {
                    subgoal: watched,
                    answer: aidx,
                });
            }
            let n = self.make_node(subgoal, split, &b, template, rest, prov);
            self.push(Task::Expand(n));
        }
        Ok(())
    }

    pub(crate) fn add_answer(
        &mut self,
        sid: usize,
        mut ans: CanonicalTerm,
        prov: Option<Box<NodeProv>>,
    ) {
        let opts = self.opts;
        if let Some(hook) = &opts.answer_widening {
            let widened = hook(&mut self.arena, &ans);
            if let Some(sink) = self.trace {
                if widened != ans {
                    let original = self.arena.terms(&ans);
                    let wide = self.arena.terms(&widened);
                    sink.event(&TraceEvent::AnswerWidened {
                        pred: self.subgoals[sid].functor,
                        original: &original,
                        widened: &wide,
                    });
                }
            }
            ans = widened;
        }
        let arena = &self.arena;
        let sub = &mut self.subgoals[sid];
        if sub.answer_ids.insert(ans.root_id()) {
            // When recording, the provenance record rides along with the
            // answer and its bytes are charged to the same accounting the
            // rescan and the AnswerInsert event see. A widened answer keeps
            // the trail of the concrete derivation that produced it.
            let prov_rec = opts
                .record_provenance
                .then(|| prov.map(|p| p.freeze()).unwrap_or_default());
            let prov_bytes = prov_rec.as_ref().map_or(0, crate::AnswerProv::heap_bytes);
            // Substitution factoring: only structure not already present in
            // this table (call or earlier answers) is charged.
            let term_bytes = sub.charge(&ans, arena);
            let bytes = term_bytes + NODE_OVERHEAD + prov_bytes;
            sub.add_entry_overhead();
            sub.add_prov_bytes(prov_bytes);
            if let Some(sink) = self.trace {
                let answer = arena.terms(&ans);
                sink.event(&TraceEvent::AnswerInsert {
                    pred: sub.functor,
                    answer: &answer,
                    bytes,
                });
            }
            sub.answers.push(ans);
            if let Some(p) = prov_rec {
                sub.provenance.push(p);
            }
            let idx = sub.answers.len() - 1;
            self.stats.answers += 1;
            self.stats.table_bytes += bytes;
            // Wake every registered consumer with exactly this answer,
            // advancing its cursor — no clone of the consumer list. The
            // list cannot grow while we walk it (pushing tasks only
            // enqueues; registration happens during expansion).
            for i in 0..self.subgoals[sid].consumers.len() {
                let cid = self.subgoals[sid].consumers[i];
                debug_assert_eq!(
                    self.consumers[cid].next, idx,
                    "consumer cursor out of step with the answer table"
                );
                self.consumers[cid].next = idx + 1;
                self.push(Task::Return(cid, idx));
            }
            // Parallel runs: forward exactly this answer to every consumer
            // registered from another worker. Registration back-fills the
            // answers known at that moment and insertion forwards from then
            // on — both happen on this (the owner's) thread, so no answer
            // is ever sent twice or skipped.
            if let Some(par) = self.par.as_ref() {
                if !self.subgoals[sid].remote_consumers.is_empty() {
                    let args = self.arena.terms(&self.subgoals[sid].answers[idx]);
                    for &(worker, token) in &self.subgoals[sid].remote_consumers {
                        par.send(
                            worker,
                            crate::parallel::Msg::Answer {
                                token,
                                args: args.clone(),
                                from: par.me,
                                flow: None,
                            },
                        );
                    }
                }
            }
        } else {
            self.stats.duplicate_answers += 1;
            if let Some(sink) = self.trace {
                let answer = arena.terms(&ans);
                sink.event(&TraceEvent::DuplicateAnswer {
                    pred: sub.functor,
                    answer: &answer,
                });
            }
        }
    }

    /// Negation as failure over a completed subcomputation: evaluates the
    /// goal in a fresh machine (tables are not shared, and the sub-machine
    /// gets its own session arena) and reports whether any answer exists.
    pub(crate) fn provable(&mut self, goal: &Term, b: &Bindings) -> Result<bool, EngineError> {
        let g = b.resolve(goal);
        let mut sub = Machine::new(self.db, self.opts);
        // The deadline bounds the whole evaluation: the sub-machine inherits
        // the parent's absolute cutoff rather than restarting the clock.
        sub.deadline_ns = self.deadline_ns;
        let empty = Bindings::new();
        let eval = sub.run(&[g], &[], &empty)?;
        // Fold the subcomputation's work into this evaluation's counters.
        // `table_bytes` stays out: the sub-machine's tables are discarded
        // here, so charging their space would overstate live table memory.
        self.stats.steps += sub.stats.steps;
        self.stats.clause_resolutions += sub.stats.clause_resolutions;
        self.stats.subgoals += sub.stats.subgoals;
        self.stats.answers += sub.stats.answers;
        self.stats.duplicate_answers += sub.stats.duplicate_answers;
        // A truncated subcomputation cannot witness failure: propagate the
        // trip so the outer drain stops before expanding any continuation
        // this task scheduled — negation over a partial table would be
        // unsound, and budget exhaustion ends the whole run anyway.
        if let Some(t) = eval.truncation() {
            // Keep the first trip's reason: a nested trip during the settle
            // pass must not rewrite why the run was truncated.
            self.truncated.get_or_insert(t.reason);
        }
        Ok(!eval.root_answers().is_empty())
    }
}
