//! Engine-level behavior tests, carried over from the pre-split
//! `machine.rs` and extended with scheduler-strategy and `Send` coverage.

use crate::machine::flatten_conj;
use crate::{
    Database, Engine, EngineError, EngineOptions, Evaluation, LoadMode, Scheduling, Solutions,
    Unknown,
};
use std::sync::Arc;
use tablog_term::{Bindings, CanonicalTerm, Functor, Term, TermArena, Var};

fn solve(src: &str, goal: &str) -> Solutions {
    Engine::from_source(src).unwrap().solve(goal).unwrap()
}

const GRAPH: &str = "
    :- table path/2.
    path(X, Y) :- path(X, Z), edge(Z, Y).
    path(X, Y) :- edge(X, Y).
    edge(a, b). edge(b, c). edge(c, a).
";

#[test]
fn left_recursion_terminates() {
    let s = solve(GRAPH, "path(a, X)");
    let mut got: Vec<String> = s.to_strings();
    got.sort();
    assert_eq!(got, vec!["X = a", "X = b", "X = c"]);
}

#[test]
fn fully_open_call() {
    let s = solve(GRAPH, "path(X, Y)");
    assert_eq!(s.len(), 9);
}

#[test]
fn failing_goal_has_no_rows() {
    let s = solve(GRAPH, "path(a, zzz)");
    assert!(s.is_empty());
}

#[test]
fn ground_goal_succeeds_once() {
    let s = solve(GRAPH, "path(a, c)");
    assert_eq!(s.len(), 1);
    assert_eq!(s.to_strings(), vec!["true"]);
}

#[test]
fn non_tabled_append() {
    let src = "app([], Y, Y). app([H|T], Y, [H|Z]) :- app(T, Y, Z).";
    let s = solve(src, "app([1,2], [3], L)");
    assert_eq!(s.to_strings(), vec!["L = [1,2,3]"]);
}

#[test]
fn append_backwards_enumerates_splits() {
    let src = "app([], Y, Y). app([H|T], Y, [H|Z]) :- app(T, Y, Z).";
    let s = solve(src, "app(X, Y, [1,2,3])");
    assert_eq!(s.len(), 4);
}

#[test]
fn tabled_append_non_ground_answers() {
    let src = ":- table app/3.\napp([], Y, Y). app([H|T], Y, [H|Z]) :- app(T, Y, Z).";
    let e = Engine::from_source(src).unwrap();
    // Open call would run forever under SLD; tabling with variant
    // answers... would also diverge (infinitely many answers), so query
    // a bounded instance.
    let s = e.solve("app(X, Y, [1,2])").unwrap();
    assert_eq!(s.len(), 3);
}

#[test]
fn same_generation_classic() {
    let src = "
        :- table sg/2.
        sg(X, X).
        sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).
        par(c1, p1). par(c2, p1). par(p1, g1). par(p2, g1).
    ";
    let s = solve(src, "sg(c1, X)");
    let mut got = s.to_strings();
    got.sort();
    assert_eq!(got, vec!["X = c1", "X = c2"]);
}

#[test]
fn mutual_recursion_tabled() {
    let src = "
        :- table even/1, odd/1.
        even(z).
        even(s(X)) :- odd(X).
        odd(s(X)) :- even(X).
    ";
    let s = solve(src, "even(s(s(z)))");
    assert_eq!(s.len(), 1);
}

#[test]
fn arithmetic_in_clause_bodies() {
    let src = "fact(0, 1). fact(N, F) :- N > 0, N1 is N - 1, fact(N1, F1), F is N * F1.";
    let s = solve(src, "fact(5, F)");
    assert_eq!(s.to_strings(), vec!["F = 120"]);
}

#[test]
fn disjunction_and_if_then_else() {
    let src = "p(1). p(2). q(X) :- (p(X) ; X = 3). r(X, Y) :- (X = 1 -> Y = one ; Y = other).";
    let s = solve(src, "q(X)");
    assert_eq!(s.len(), 3);
    let s = solve(src, "r(1, Y)");
    assert_eq!(s.to_strings(), vec!["Y = one"]);
    let s = solve(src, "r(2, Y)");
    assert_eq!(s.to_strings(), vec!["Y = other"]);
}

#[test]
fn negation_as_failure() {
    let src = "p(1). p(2). good(X) :- p(X), \\+ bad(X). bad(2).";
    let s = solve(src, "good(X)");
    assert_eq!(s.to_strings(), vec!["X = 1"]);
}

#[test]
fn unknown_predicate_errors_by_default() {
    let e = Engine::from_source("p(a).").unwrap();
    assert!(matches!(
        e.solve("nosuch(X)"),
        Err(EngineError::UnknownPredicate(_))
    ));
}

#[test]
fn unknown_predicate_can_fail_silently() {
    let mut e = Engine::from_source("p(a) . q(X) :- p(X).").unwrap();
    e.options_mut().unknown = Unknown::Fail;
    let s = e.solve("nosuch(X)").unwrap();
    assert!(s.is_empty());
}

#[test]
fn propositional_sld_loop_terminates_via_node_dedup() {
    // `loop :- loop.` repeats the same resolvent; the derivation
    // forest is a set of nodes, so the loop is detected even without
    // tabling and the query fails finitely.
    let e = Engine::from_source("loop :- loop.").unwrap();
    assert!(e.solve("loop").unwrap().is_empty());
}

#[test]
fn step_limit_catches_runaway_sld() {
    // A growing resolvent defeats node dedup; the step budget is the
    // safety net. Tripping it is graceful: the run comes back truncated
    // (with whatever answers exist — none here), not as an error.
    let mut e = Engine::from_source("loop(X) :- loop(f(X)).").unwrap();
    e.options_mut().max_steps = Some(1000);
    let s = e.solve("loop(a)").unwrap();
    assert!(s.is_empty());
    assert!(matches!(
        s.truncation().map(|t| t.reason),
        Some(crate::TruncationReason::Steps(1000))
    ));
}

#[test]
fn tabling_dedups_answers() {
    let src = ":- table p/1.\np(X) :- q(X). p(X) :- r(X). q(a). r(a).";
    let e = Engine::from_source(src).unwrap();
    let mut b = Bindings::new();
    let (g, _) = tablog_syntax::parse_term("p(Z)", &mut b).unwrap();
    let eval = e
        .evaluate(std::slice::from_ref(&g), &[g.args()[0].clone()], &b)
        .unwrap();
    // One answer in p's table, one for the root — the second derivation
    // of p(a) collapses at node level, so the table stays duplicate-free.
    assert_eq!(eval.stats().answers, 2);
    let p = eval.subgoals_of(Functor::new("p", 1));
    assert_eq!(p[0].num_answers(), 1);
}

#[test]
fn call_table_records_input_patterns() {
    let src = "
        :- table p/2, q/2.
        p(X, Y) :- q(f(X), Y).
        q(f(a), b).
    ";
    let e = Engine::from_source(src).unwrap();
    let mut b = Bindings::new();
    let (g, _) = tablog_syntax::parse_term("p(a, Y)", &mut b).unwrap();
    let eval = e.evaluate(&[g], &[], &b).unwrap();
    let calls = eval.calls_of(Functor::new("q", 2));
    assert_eq!(calls.len(), 1);
    assert_eq!(tablog_syntax::term_to_string(&calls[0]), "q(f(a),A)");
}

fn engine_with_scheduling(src: &str, scheduling: Scheduling) -> Engine {
    let opts = EngineOptions {
        scheduling,
        ..Default::default()
    };
    let program = tablog_syntax::parse_program(src).unwrap();
    let mut db = Database::new(LoadMode::Dynamic);
    db.load(&program).unwrap();
    Engine::new(db, opts)
}

#[test]
fn breadth_first_scheduling_same_answers() {
    let e = engine_with_scheduling(GRAPH, Scheduling::BreadthFirst);
    let s = e.solve("path(a, X)").unwrap();
    assert_eq!(s.len(), 3);
}

#[test]
fn batched_scheduling_same_answers() {
    let e = engine_with_scheduling(GRAPH, Scheduling::Batched);
    let s = e.solve("path(a, X)").unwrap();
    let mut got = s.to_strings();
    got.sort();
    assert_eq!(got, vec!["X = a", "X = b", "X = c"]);
}

#[test]
fn all_schedulers_agree_on_answer_sets() {
    let goals = ["path(a, X)", "path(X, Y)", "path(X, a)"];
    for goal in goals {
        let mut per_strategy: Vec<Vec<String>> = Vec::new();
        for s in [
            Scheduling::DepthFirst,
            Scheduling::BreadthFirst,
            Scheduling::Batched,
        ] {
            let e = engine_with_scheduling(GRAPH, s);
            let mut rows = e.solve(goal).unwrap().to_strings();
            rows.sort();
            per_strategy.push(rows);
        }
        assert_eq!(per_strategy[0], per_strategy[1], "{goal}");
        assert_eq!(per_strategy[0], per_strategy[2], "{goal}");
    }
}

#[test]
fn evaluation_reports_scheduler_name() {
    for (s, name) in [
        (Scheduling::DepthFirst, "depth_first"),
        (Scheduling::BreadthFirst, "breadth_first"),
        (Scheduling::Batched, "batched"),
    ] {
        let e = engine_with_scheduling(GRAPH, s);
        let mut b = Bindings::new();
        let (g, _) = tablog_syntax::parse_term("path(a, X)", &mut b).unwrap();
        let eval = e.evaluate(&[g], &[], &b).unwrap();
        assert_eq!(eval.scheduler(), name);
        assert_eq!(eval.stats().answers, 4); // 3 in path's table + 1 root
    }
}

#[test]
fn engine_and_evaluation_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<Engine>();
    assert_send::<Evaluation>();
    assert_send::<Solutions>();
}

#[test]
fn compiled_mode_same_answers_as_dynamic() {
    let src = "p(a, 1). p(b, 2). p(c, 3). look(K, V) :- p(K, V).";
    for mode in [LoadMode::Dynamic, LoadMode::Compiled] {
        let e = Engine::from_source_with(src, mode, EngineOptions::default()).unwrap();
        assert_eq!(e.solve("look(b, V)").unwrap().to_strings(), vec!["V = 2"]);
    }
}

#[test]
fn forward_subsumption_same_answers_fewer_tables() {
    let mk = |fs: bool| {
        let opts = EngineOptions {
            forward_subsumption: fs,
            ..Default::default()
        };
        let program = tablog_syntax::parse_program(GRAPH).unwrap();
        let mut db = Database::new(LoadMode::Dynamic);
        db.load(&program).unwrap();
        Engine::new(db, opts)
    };
    for fs in [false, true] {
        let e = mk(fs);
        let s = e.solve("path(a, X)").unwrap();
        assert_eq!(s.len(), 3, "fs={fs}");
    }
    // With subsumption, the specific call path(a,X) consumes from the
    // open table; distinct specific calls do not multiply subgoals.
    let e = mk(true);
    let mut b = Bindings::new();
    let (g, _) = tablog_syntax::parse_term("path(a, X), path(b, Y)", &mut b).unwrap();
    let mut goals = Vec::new();
    flatten_conj(&g, &mut goals);
    let eval = e.evaluate(&goals, &[], &b).unwrap();
    assert_eq!(eval.subgoals_of(Functor::new("path", 2)).len(), 1);
}

#[test]
fn iff_builtin_in_program() {
    // gp_ap from Figure 2(b), with $iff for the truth tables.
    let src = "
        :- table gp_ap/3.
        gp_ap(X1, X2, X3) :- '$iff'(X1), '$iff'(X2, X3).
        gp_ap(X1, X2, X3) :-
            '$iff'(X1, X, Xs), '$iff'(X3, X, Zs), gp_ap(Xs, X2, Zs).
    ";
    let s = solve(src, "gp_ap(X, Y, Z)");
    // Success set is the truth table of X ∧ Y ⇔ Z: 4 rows.
    let mut got = s.to_strings();
    got.sort();
    assert_eq!(
        got,
        vec![
            "X = false, Y = false, Z = false",
            "X = false, Y = true, Z = false",
            "X = true, Y = false, Z = false",
            "X = true, Y = true, Z = true",
        ]
    );
}

#[test]
fn answer_widening_hook_truncates() {
    // Widen every answer to the open tuple: the table keeps one answer.
    let widen: Option<crate::TermHook> = Some(Arc::new(|a: &mut TermArena, c: &CanonicalTerm| {
        let b = Bindings::new();
        let args: Vec<Term> = (0..a.tuple_len(c))
            .map(|i| Term::Var(Var(i as u32)))
            .collect();
        a.canonicalize(&b, &args)
    }));
    let opts = EngineOptions {
        answer_widening: widen,
        ..Default::default()
    };
    let program = tablog_syntax::parse_program(":- table p/1.\np(a). p(b). p(c).").unwrap();
    let mut db = Database::new(LoadMode::Dynamic);
    db.load(&program).unwrap();
    let e = Engine::new(db, opts);
    let mut b = Bindings::new();
    let (g, _) = tablog_syntax::parse_term("p(X)", &mut b).unwrap();
    let eval = e.evaluate(&[g], &[], &b).unwrap();
    let views = eval.subgoals_of(Functor::new("p", 1));
    assert_eq!(views[0].num_answers(), 1);
}

#[test]
fn stats_table_bytes_nonzero() {
    let e = Engine::from_source(GRAPH).unwrap();
    let mut b = Bindings::new();
    let (g, _) = tablog_syntax::parse_term("path(a, X)", &mut b).unwrap();
    let eval = e.evaluate(&[g], &[], &b).unwrap();
    assert!(eval.table_bytes() > 0);
    assert!(eval.stats().steps > 0);
}

#[test]
fn zero_arity_tabled_predicate() {
    let src = ":- table win/0.\nwin :- win.\n";
    let mut e = Engine::from_source(src).unwrap();
    e.options_mut().max_steps = Some(10_000);
    let s = e.solve("win").unwrap();
    assert!(s.is_empty()); // no derivation: tabling detects the loop
}

fn eval_graph(opts: EngineOptions) -> Evaluation {
    let program = tablog_syntax::parse_program(GRAPH).unwrap();
    let mut db = Database::new(LoadMode::Dynamic);
    db.load(&program).unwrap();
    let e = Engine::new(db, opts);
    let mut b = Bindings::new();
    let (g, _) = tablog_syntax::parse_term("path(X, Y)", &mut b).unwrap();
    e.evaluate(&[g], &[], &b).unwrap()
}

#[test]
fn incremental_table_bytes_agree_with_rescan() {
    let eval = eval_graph(EngineOptions::default());
    assert_eq!(eval.stats().table_bytes, eval.rescan_table_bytes());
    assert!(eval.table_bytes() > 0);
}

#[test]
fn incremental_table_bytes_agree_under_subsumption_and_widening() {
    let opts = EngineOptions {
        forward_subsumption: true,
        answer_widening: Some(Arc::new(|_: &mut TermArena, c: &CanonicalTerm| *c)),
        ..Default::default()
    };
    let eval = eval_graph(opts);
    assert_eq!(eval.stats().table_bytes, eval.rescan_table_bytes());
}

#[test]
fn incremental_table_bytes_agree_under_every_scheduler() {
    for s in [
        Scheduling::DepthFirst,
        Scheduling::BreadthFirst,
        Scheduling::Batched,
    ] {
        let opts = EngineOptions {
            scheduling: s,
            ..Default::default()
        };
        let eval = eval_graph(opts);
        assert_eq!(
            eval.stats().table_bytes,
            eval.rescan_table_bytes(),
            "scheduler {}",
            s.name()
        );
    }
}

#[test]
fn provable_aggregates_full_subcomputation_stats() {
    // The negated goal walks a tabled predicate, so the subcomputation
    // creates subgoals, answers, and clause resolutions that must all
    // surface in the outer stats, not just its steps.
    let src = "
        :- table path/2.
        path(X, Y) :- path(X, Z), edge(Z, Y).
        path(X, Y) :- edge(X, Y).
        edge(a, b). edge(b, c).
        unreachable(X, Y) :- node(X), node(Y), \\+ path(X, Y).
        node(a). node(b). node(c).
    ";
    let e = Engine::from_source(src).unwrap();
    let mut b = Bindings::new();
    let (g, _) = tablog_syntax::parse_term("unreachable(a, Y)", &mut b).unwrap();
    let eval = e.evaluate(&[g], &[], &b).unwrap();
    let outer_only = {
        // Baseline: the same query without the negated literal.
        let mut b = Bindings::new();
        let (g, _) = tablog_syntax::parse_term("node(a), node(Y)", &mut b).unwrap();
        e.evaluate(&[g], &[], &b).unwrap().stats()
    };
    let stats = eval.stats();
    assert!(
        stats.subgoals > outer_only.subgoals,
        "negation subgoals missing: {stats:?} vs baseline {outer_only:?}"
    );
    assert!(stats.answers > outer_only.answers);
    assert!(stats.clause_resolutions > outer_only.clause_resolutions);
}

#[test]
fn trace_events_mirror_table_stats() {
    let counter = Arc::new(tablog_trace::CountingSink::new());
    let opts = EngineOptions {
        trace: Some(counter.clone()),
        ..Default::default()
    };
    let eval = eval_graph(opts);
    let stats = eval.stats();
    assert_eq!(counter.count("new_subgoal"), stats.subgoals as u64);
    assert_eq!(counter.count("answer_insert"), stats.answers as u64);
    assert_eq!(
        counter.count("duplicate_answer"),
        stats.duplicate_answers as u64
    );
    assert_eq!(
        counter.count("clause_resolution"),
        stats.clause_resolutions as u64
    );
    // Every subgoal (incl. the synthetic root) completes exactly once.
    assert_eq!(counter.count("subgoal_complete"), stats.subgoals as u64);
}

#[test]
fn metrics_registry_rolls_up_per_predicate_bytes() {
    let registry = Arc::new(tablog_trace::MetricsRegistry::new());
    let opts = EngineOptions {
        trace: Some(registry.clone()),
        ..Default::default()
    };
    let eval = eval_graph(opts);
    let report = registry.snapshot();
    let total: u64 = report.totals().table_bytes;
    assert_eq!(total, eval.stats().table_bytes as u64);
    let path = report.pred("path/2").expect("path/2 row");
    assert!(path.subgoals >= 1);
    assert!(path.answers > 0);
    assert!(path.table_bytes > 0);
}

#[test]
fn arenas_are_isolated_per_evaluation() {
    // Two evaluations of the same engine get distinct arenas; dropping one
    // evaluation cannot invalidate the other's canonical terms.
    let e = Engine::from_source(GRAPH).unwrap();
    let mut b = Bindings::new();
    let (g, _) = tablog_syntax::parse_term("path(a, X)", &mut b).unwrap();
    let outs = [g.args()[1].clone()];
    let e1 = e.evaluate(std::slice::from_ref(&g), &outs, &b).unwrap();
    let e2 = e.evaluate(std::slice::from_ref(&g), &outs, &b).unwrap();
    let a1 = e1.arena().stats();
    let a2 = e2.arena().stats();
    assert_eq!(a1.nodes, a2.nodes, "identical runs intern identical terms");
    drop(e1);
    assert_eq!(e2.root_answers().len(), 3);
}
