//! Per-table space attribution: [`TableReport`] decomposes an evaluation's
//! `table_bytes` across its call tables, the way XSB's `statistics/0`
//! splits table space — but per subgoal, with each table's bytes further
//! broken into canonical-term structure, per-entry overhead, and
//! provenance ([`TableBytes`]). The attributed components of every row sum
//! exactly to [`crate::Evaluation::table_bytes`]; consumer-cursor estimates
//! ride along without being counted, so the totals remain comparable with
//! the paper's Tables 1–4 and with earlier releases.

use crate::session::Evaluation;
use crate::table::TableBytes;
use std::fmt::Write as _;
use tablog_trace::json::escape;

/// One call table's row in a [`TableReport`].
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Predicate as `name/arity` (the synthetic root is `$query/n`).
    pub pred: String,
    /// The call pattern, rendered with canonical variable names.
    pub call: String,
    /// Number of answers in the table.
    pub answers: usize,
    /// The byte decomposition; `bytes.attributed()` is this table's share
    /// of `table_bytes`.
    pub bytes: TableBytes,
    /// Consumers registered on this table during the run.
    pub consumers: usize,
    /// Whether the table reached completion.
    pub complete: bool,
}

/// Heap attribution for every call table of one evaluation, in subgoal
/// creation order. Obtained from [`crate::Evaluation::table_report`] or
/// [`crate::Engine::table_report`].
#[derive(Clone, Debug)]
pub struct TableReport {
    rows: Vec<TableRow>,
    total_bytes: usize,
}

impl TableReport {
    pub(crate) fn from_eval(eval: &Evaluation) -> Self {
        let mut w = tablog_syntax::TermWriter::new();
        let rows = eval
            .states()
            .iter()
            .map(|s| TableRow {
                pred: s.functor.to_string(),
                call: {
                    let args: Vec<String> = eval
                        .arena()
                        .terms(&s.call)
                        .iter()
                        .map(|t| w.write(t))
                        .collect();
                    if args.is_empty() {
                        tablog_term::sym_name(s.functor.name)
                    } else {
                        format!(
                            "{}({})",
                            tablog_term::sym_name(s.functor.name),
                            args.join(",")
                        )
                    }
                },
                answers: s.answers.len(),
                bytes: s.byte_breakdown(),
                consumers: s.consumers.len(),
                complete: s.complete,
            })
            .collect();
        TableReport {
            rows,
            total_bytes: eval.table_bytes(),
        }
    }

    /// All rows, in subgoal creation order.
    pub fn rows(&self) -> &[TableRow] {
        &self.rows
    }

    /// The evaluation's total attributed table space — equal to the sum of
    /// `bytes.attributed()` over [`TableReport::rows`].
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// The `n` largest tables by attributed bytes (stable on ties).
    pub fn top_by_bytes(&self, n: usize) -> Vec<&TableRow> {
        let mut v: Vec<&TableRow> = self.rows.iter().collect();
        v.sort_by_key(|r| std::cmp::Reverse(r.bytes.attributed()));
        v.truncate(n);
        v
    }

    /// The `n` largest tables by answer count (stable on ties).
    pub fn top_by_answers(&self, n: usize) -> Vec<&TableRow> {
        let mut v: Vec<&TableRow> = self.rows.iter().collect();
        v.sort_by_key(|r| std::cmp::Reverse(r.answers));
        v.truncate(n);
        v
    }

    /// Renders the Top-`n` tables by bytes and by answers as fixed-width
    /// text, with the byte decomposition per row.
    pub fn render_text(&self, n: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} tables, {} attributed bytes",
            self.rows.len(),
            self.total_bytes
        );
        let section = |out: &mut String, title: &str, rows: &[&TableRow]| {
            let _ = writeln!(out, "top {} by {title}:", rows.len());
            let _ = writeln!(
                out,
                "  {:>10} {:>8} {:>10} {:>10} {:>10} {:>10}  call",
                "bytes", "answers", "terms", "entries", "prov", "cursors"
            );
            for r in rows {
                let _ = writeln!(
                    out,
                    "  {:>10} {:>8} {:>10} {:>10} {:>10} {:>10}  {}",
                    r.bytes.attributed(),
                    r.answers,
                    r.bytes.term_bytes,
                    r.bytes.entry_bytes,
                    r.bytes.prov_bytes,
                    r.bytes.cursor_bytes,
                    r.call
                );
            }
        };
        section(&mut out, "bytes", &self.top_by_bytes(n));
        section(&mut out, "answers", &self.top_by_answers(n));
        out
    }

    /// Renders the full report as a JSON object:
    /// `{"total_bytes":N,"tables":[{...}, …]}`, rows in creation order.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"total_bytes\":{},\"tables\":[", self.total_bytes);
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"pred\":\"{}\",\"call\":\"{}\",\"answers\":{},\"bytes\":{},\
                 \"term_bytes\":{},\"entry_bytes\":{},\"prov_bytes\":{},\
                 \"cursor_bytes\":{},\"consumers\":{},\"complete\":{}}}",
                escape(&r.pred),
                escape(&r.call),
                r.answers,
                r.bytes.attributed(),
                r.bytes.term_bytes,
                r.bytes.entry_bytes,
                r.bytes.prov_bytes,
                r.bytes.cursor_bytes,
                r.consumers,
                r.complete
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::Engine;

    const FIGURE1: &str = "
        :- table gp_ap/3.
        gp_ap(gp, X, Y) :- parent(X, Z), parent(Z, Y).
        gp_ap(ap, X, Y) :- parent(X, Y).
        gp_ap(ap, X, Y) :- parent(X, Z), gp_ap(ap, Z, Y).
        parent(ann, bob). parent(bob, cat). parent(cat, dan).
    ";

    #[test]
    fn attributed_rows_sum_to_table_bytes() {
        let engine = Engine::from_source(FIGURE1).unwrap();
        let report = engine.table_report("gp_ap(R, X, Y)").unwrap();
        let sum: usize = report.rows().iter().map(|r| r.bytes.attributed()).sum();
        assert_eq!(sum, report.total_bytes());
        assert!(report.total_bytes() > 0);
    }

    #[test]
    fn top_n_orders_by_the_requested_key() {
        let engine = Engine::from_source(FIGURE1).unwrap();
        let report = engine.table_report("gp_ap(R, X, Y)").unwrap();
        let by_bytes = report.top_by_bytes(3);
        assert!(by_bytes.len() <= 3);
        for w in by_bytes.windows(2) {
            assert!(w[0].bytes.attributed() >= w[1].bytes.attributed());
        }
        let by_answers = report.top_by_answers(usize::MAX);
        assert_eq!(by_answers.len(), report.rows().len());
        for w in by_answers.windows(2) {
            assert!(w[0].answers >= w[1].answers);
        }
    }

    #[test]
    fn json_report_parses_and_echoes_totals() {
        let engine = Engine::from_source(FIGURE1).unwrap();
        let report = engine.table_report("gp_ap(R, X, Y)").unwrap();
        let v = tablog_trace::json::parse(&report.to_json()).expect("valid JSON");
        assert_eq!(
            v.get("total_bytes").and_then(|t| t.as_f64()),
            Some(report.total_bytes() as f64)
        );
        let tables = v.get("tables").and_then(|t| t.as_arr()).unwrap();
        assert_eq!(tables.len(), report.rows().len());
        let byte_sum: f64 = tables
            .iter()
            .filter_map(|t| t.get("bytes").and_then(|b| b.as_f64()))
            .sum();
        assert_eq!(byte_sum, report.total_bytes() as f64);
    }

    #[test]
    fn text_report_names_every_section() {
        let engine = Engine::from_source(FIGURE1).unwrap();
        let report = engine.table_report("gp_ap(R, X, Y)").unwrap();
        let text = report.render_text(5);
        assert!(text.contains("attributed bytes"));
        assert!(text.contains("top"));
        assert!(text.contains("gp_ap("));
    }
}
