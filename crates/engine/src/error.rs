//! Engine errors.

use crate::budget::TruncationReason;
use std::fmt;
use tablog_term::Functor;

/// An error raised during loading or evaluation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EngineError {
    /// A goal's predicate has no clauses and no builtin definition, and the
    /// engine is configured to treat unknown predicates as errors.
    UnknownPredicate(Functor),
    /// A goal was an unbound variable or a number at call position.
    BadGoal(String),
    /// Arithmetic evaluation failed (unbound variable, bad operand, or
    /// division by zero).
    Arith(String),
    /// A builtin was called with arguments it cannot handle.
    BadArgs(&'static str, String),
    /// A resource budget cut the evaluation short *and* the caller needs
    /// complete tables. The engine itself never raises this — budget trips
    /// return a truncated [`crate::Evaluation`] with partial answers; this
    /// variant is minted by [`crate::Evaluation::require_complete`] for
    /// callers (the analyzers) whose results are only sound over the full
    /// fixpoint.
    Truncated(TruncationReason),
    /// The source text could not be parsed.
    Parse(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownPredicate(p) => write!(f, "unknown predicate {p}"),
            EngineError::BadGoal(g) => write!(f, "malformed goal: {g}"),
            EngineError::Arith(m) => write!(f, "arithmetic error: {m}"),
            EngineError::BadArgs(b, m) => write!(f, "{b}: bad arguments: {m}"),
            EngineError::Truncated(r) => write!(f, "evaluation truncated: {r}"),
            EngineError::Parse(m) => write!(f, "parse error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<tablog_syntax::ParseError> for EngineError {
    fn from(e: tablog_syntax::ParseError) -> Self {
        EngineError::Parse(e.to_string())
    }
}
