//! The tabled evaluation machine: an explicit SLG derivation forest driven
//! by a worklist.
//!
//! Every derivation node carries, in variant-canonical form, an *answer
//! template* (the instantiated arguments of the tabled subgoal it belongs
//! to) and its remaining *goal list*. Expanding a node resolves its leftmost
//! goal — against program clauses (SLD), a builtin, or a table. Tabled calls
//! register the node as a consumer of the callee's table; every answer that
//! table ever acquires is returned to every consumer exactly once. When the
//! worklist drains, all tables are complete: for definite programs, SLG
//! completion needs no incremental SCC bookkeeping.

use crate::builtins::{lookup_builtin, BuiltinImpl};
use crate::database::{Database, LoadMode};
use crate::error::EngineError;
use crate::options::{EngineOptions, Scheduling, Unknown};
use crate::provenance::{AnswerRef, ClauseRef, NodeProv};
use crate::table::{SubgoalState, SubgoalView, TableStats, NODE_OVERHEAD};
use std::collections::{HashMap, HashSet, VecDeque};
use tablog_term::{
    canonicalize, canonicalize2, sym_name, unify, unify_occurs, Bindings, CanonicalTerm, Functor,
    Term, TermId, Var,
};
use tablog_trace::{TraceEvent, TraceSink};

/// A loaded program plus evaluation options; the entry point of the crate.
///
/// See the [crate-level documentation](crate) for an overview and example.
#[derive(Clone, Debug, Default)]
pub struct Engine {
    db: Database,
    opts: EngineOptions,
}

impl Engine {
    /// Wraps an existing database with options.
    pub fn new(db: Database, opts: EngineOptions) -> Self {
        Engine { db, opts }
    }

    /// Parses and loads `src` in [`LoadMode::Dynamic`] with default options.
    ///
    /// # Errors
    ///
    /// Returns a parse or load error.
    pub fn from_source(src: &str) -> Result<Self, EngineError> {
        Engine::from_source_with(src, LoadMode::Dynamic, EngineOptions::default())
    }

    /// Parses and loads `src` with explicit load mode and options.
    ///
    /// # Errors
    ///
    /// Returns a parse or load error.
    pub fn from_source_with(
        src: &str,
        mode: LoadMode,
        opts: EngineOptions,
    ) -> Result<Self, EngineError> {
        let program = tablog_syntax::parse_program(src)?;
        let mut db = Database::new(mode);
        db.load(&program)?;
        Ok(Engine { db, opts })
    }

    /// The underlying database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the database (for `assert`-style updates between
    /// evaluations).
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The evaluation options.
    pub fn options(&self) -> &EngineOptions {
        &self.opts
    }

    /// Mutable access to the evaluation options.
    pub fn options_mut(&mut self) -> &mut EngineOptions {
        &mut self.opts
    }

    /// Parses `goal` and evaluates it to completion, returning one row per
    /// answer, with columns for the goal's named variables.
    ///
    /// # Errors
    ///
    /// Returns parse errors and any [`EngineError`] raised during
    /// evaluation.
    pub fn solve(&self, goal: &str) -> Result<Solutions, EngineError> {
        let mut b = Bindings::new();
        let (t, names) = tablog_syntax::parse_term(goal, &mut b)?;
        let mut goals = Vec::new();
        flatten_conj(&t, &mut goals);
        let template: Vec<Term> = names.iter().map(|(_, v)| Term::Var(*v)).collect();
        let eval = self.evaluate(&goals, &template, &b)?;
        Ok(Solutions {
            names: names.into_iter().map(|(n, _)| n).collect(),
            rows: eval.root_answers(),
        })
    }

    /// Evaluates `goals` (left to right) to completion. `template` lists the
    /// terms whose instances constitute the query's answers; `bindings` is
    /// the store in which the goal/template variables live (it is only read).
    ///
    /// The returned [`Evaluation`] exposes the complete call and answer
    /// tables — the raw material of the paper's analyses.
    ///
    /// # Errors
    ///
    /// Returns any [`EngineError`] raised during evaluation.
    pub fn evaluate(
        &self,
        goals: &[Term],
        template: &[Term],
        bindings: &Bindings,
    ) -> Result<Evaluation, EngineError> {
        let mut m = Machine::new(&self.db, &self.opts);
        m.run(goals, template, bindings)
    }

    /// As [`Engine::evaluate`], but under one-off options overriding the
    /// engine's own — how [`Engine::explain`] forces provenance recording
    /// on for a single query without mutating the engine.
    ///
    /// # Errors
    ///
    /// Returns any [`EngineError`] raised during evaluation.
    pub fn evaluate_with_opts(
        &self,
        opts: &EngineOptions,
        goals: &[Term],
        template: &[Term],
        bindings: &Bindings,
    ) -> Result<Evaluation, EngineError> {
        let mut m = Machine::new(&self.db, opts);
        m.run(goals, template, bindings)
    }
}

/// All answers to a [`Engine::solve`] query.
#[derive(Clone, Debug)]
pub struct Solutions {
    names: Vec<String>,
    rows: Vec<Vec<Term>>,
}

impl Solutions {
    /// Number of answers.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the query failed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The named variables of the query, in source order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Answer rows; column `i` instantiates `names()[i]`. Distinct rows may
    /// share variables (non-ground answers keep canonical variables).
    pub fn rows(&self) -> &[Vec<Term>] {
        &self.rows
    }

    /// The binding of variable `name` in answer `row`.
    pub fn get(&self, row: usize, name: &str) -> Option<&Term> {
        let col = self.names.iter().position(|n| n == name)?;
        self.rows.get(row)?.get(col)
    }

    /// Renders each answer as `X = t1, Y = t2`.
    pub fn to_strings(&self) -> Vec<String> {
        self.rows
            .iter()
            .map(|row| {
                if self.names.is_empty() {
                    "true".to_owned()
                } else {
                    let mut w = tablog_syntax::TermWriter::new();
                    self.names
                        .iter()
                        .zip(row)
                        .map(|(n, t)| format!("{n} = {}", w.write(t)))
                        .collect::<Vec<_>>()
                        .join(", ")
                }
            })
            .collect()
    }
}

/// The completed tables of one evaluation: every tabled subgoal encountered
/// (the *call table*, which the analyses read for input patterns) together
/// with its answers (the *answer table*).
#[derive(Clone, Debug)]
pub struct Evaluation {
    subgoals: Vec<SubgoalState>,
    root: usize,
    stats: TableStats,
}

impl Evaluation {
    /// Views of every subgoal table, including the synthetic `$query` root.
    pub fn subgoals(&self) -> impl Iterator<Item = SubgoalView<'_>> {
        self.subgoals.iter().map(|s| SubgoalView { state: s })
    }

    /// Views of the subgoals of one predicate.
    pub fn subgoals_of(&self, f: Functor) -> Vec<SubgoalView<'_>> {
        self.subgoals
            .iter()
            .filter(|s| s.functor == f)
            .map(|s| SubgoalView { state: s })
            .collect()
    }

    /// All answers of a predicate, merged across its call patterns.
    pub fn answers_of(&self, f: Functor) -> Vec<Term> {
        self.subgoals_of(f)
            .iter()
            .flat_map(|v| v.answers())
            .collect()
    }

    /// All recorded calls of a predicate — its input patterns.
    pub fn calls_of(&self, f: Functor) -> Vec<Term> {
        self.subgoals_of(f).iter().map(|v| v.call_term()).collect()
    }

    /// Answer tuples of the root query (instances of the query template).
    pub fn root_answers(&self) -> Vec<Vec<Term>> {
        self.subgoals[self.root]
            .answers
            .iter()
            .map(|c| c.terms())
            .collect()
    }

    /// Evaluation statistics, including total table bytes.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// Estimated total table space in bytes (the paper's last column).
    pub fn table_bytes(&self) -> usize {
        self.stats.table_bytes
    }

    /// Recomputes table space by walking every table with a fresh
    /// shared-structure charge set, bypassing the incremental accounting in
    /// `stats().table_bytes`. The two must agree; this exists so tests (and
    /// doubtful users) can check that they do.
    pub fn rescan_table_bytes(&self) -> usize {
        self.subgoals.iter().map(|s| s.rescan_bytes()).sum()
    }

    /// Index of the synthetic `$query` root subgoal.
    pub fn root_index(&self) -> usize {
        self.root
    }

    pub(crate) fn states(&self) -> &[SubgoalState] {
        &self.subgoals
    }
}

#[derive(Clone, Debug)]
struct Node {
    /// The subgoal whose answers this derivation contributes to.
    subgoal: usize,
    /// `canon.terms()[..split]` is the answer template; the rest is goals.
    split: usize,
    canon: CanonicalTerm,
    /// Derivation trail (clauses resolved, table answers consumed) on the
    /// path to this node. Always `None` unless
    /// `EngineOptions::record_provenance` is set, so the disabled path
    /// allocates nothing. When a variant-identical node is reached along a
    /// second path, `seen_nodes` drops it and the first trail wins: a
    /// justification needs one support, not all of them.
    prov: Option<Box<NodeProv>>,
}

#[derive(Clone, Debug)]
struct Consumer {
    node: Node,
    watched: usize,
    /// Cursor into the watched table: the next answer index this consumer
    /// has yet to be scheduled. Advanced when answers are handed out, so
    /// every answer is scheduled to every consumer exactly once — new
    /// consumers start at the current table size after back-filling, and
    /// `add_answer` extends each cursor by exactly the inserted answer.
    next: usize,
}

#[derive(Debug)]
enum Task {
    Expand(Node),
    Return(usize, usize),
}

struct Machine<'e> {
    db: &'e Database,
    opts: &'e EngineOptions,
    subgoals: Vec<SubgoalState>,
    /// Subgoal lookup keyed by the call's arena id: a hash probe on a
    /// 12-byte key with O(1) equality, never a structural term walk.
    lookup: HashMap<(Functor, TermId), usize>,
    consumers: Vec<Consumer>,
    tasks: VecDeque<Task>,
    /// Derivation nodes already scheduled, per subgoal: the forest is a
    /// *set* of nodes, so a variant-identical resolvent reached along two
    /// different derivation paths is expanded only once. This collapses
    /// the combinatorial re-derivation that long conjunctions of
    /// enumerative literals otherwise cause. Keys are arena ids — no
    /// canonical-term copies are stored.
    seen_nodes: HashSet<(usize, usize, TermId)>,
    stats: TableStats,
    /// Event observer, `None` unless `EngineOptions::trace` is set. Events
    /// are only constructed under `if let Some(..)`, so the disabled path
    /// does no work and no allocation.
    trace: Option<&'e dyn TraceSink>,
}

impl<'e> Machine<'e> {
    fn new(db: &'e Database, opts: &'e EngineOptions) -> Self {
        Machine {
            db,
            opts,
            subgoals: Vec::new(),
            lookup: HashMap::new(),
            consumers: Vec::new(),
            tasks: VecDeque::new(),
            seen_nodes: HashSet::new(),
            stats: TableStats::default(),
            trace: opts.trace.as_deref(),
        }
    }

    fn unif(&self, b: &mut Bindings, t1: &Term, t2: &Term) -> bool {
        if self.opts.occur_check {
            unify_occurs(b, t1, t2)
        } else {
            unify(b, t1, t2)
        }
    }

    fn push(&mut self, task: Task) {
        if let Task::Expand(n) = &task {
            if !self
                .seen_nodes
                .insert((n.subgoal, n.split, n.canon.root_id()))
            {
                return;
            }
        }
        self.tasks.push_back(task);
    }

    fn pop(&mut self) -> Option<Task> {
        match self.opts.scheduling {
            Scheduling::DepthFirst => self.tasks.pop_back(),
            Scheduling::BreadthFirst => self.tasks.pop_front(),
        }
    }

    fn run(
        &mut self,
        goals: &[Term],
        template: &[Term],
        b0: &Bindings,
    ) -> Result<Evaluation, EngineError> {
        let root_f = Functor::new("$query", template.len());
        let key = canonicalize(b0, template);
        let root = self.subgoals.len();
        self.stats.subgoals += 1;
        let state = SubgoalState::new(root_f, key);
        let bytes = state.table_bytes();
        self.stats.table_bytes += bytes;
        if let Some(sink) = self.trace {
            sink.event(&TraceEvent::NewSubgoal {
                pred: root_f,
                call: &key,
                bytes,
            });
        }
        self.subgoals.push(state);
        let node = Node {
            subgoal: root,
            split: template.len(),
            canon: canonicalize2(b0, template, goals),
            prov: self.fresh_prov(),
        };
        self.push(Task::Expand(node));
        self.drain()?;
        for s in &mut self.subgoals {
            s.complete = true;
            if let Some(sink) = self.trace {
                sink.event(&TraceEvent::SubgoalComplete {
                    pred: s.functor,
                    answers: s.answers.len(),
                    bytes: s.table_bytes(),
                });
            }
        }
        debug_assert_eq!(
            self.stats.table_bytes,
            self.subgoals
                .iter()
                .map(|s| s.rescan_bytes())
                .sum::<usize>(),
            "incremental table-byte accounting drifted from the tables"
        );
        Ok(Evaluation {
            subgoals: std::mem::take(&mut self.subgoals),
            root,
            stats: self.stats,
        })
    }

    fn drain(&mut self) -> Result<(), EngineError> {
        while let Some(task) = self.pop() {
            self.stats.steps += 1;
            if let Some(limit) = self.opts.max_steps {
                if self.stats.steps > limit {
                    return Err(EngineError::StepLimit(limit));
                }
            }
            match task {
                Task::Expand(n) => self.expand(n)?,
                Task::Return(c, a) => self.return_answer(c, a)?,
            }
        }
        Ok(())
    }

    /// `Some(empty trail)` when provenance recording is on, `None` (no
    /// allocation) otherwise.
    fn fresh_prov(&self) -> Option<Box<NodeProv>> {
        self.opts.record_provenance.then(Box::<NodeProv>::default)
    }

    fn make_node(
        &self,
        subgoal: usize,
        split: usize,
        b: &Bindings,
        template: &[Term],
        goals: &[Term],
        prov: Option<Box<NodeProv>>,
    ) -> Node {
        Node {
            subgoal,
            split,
            canon: canonicalize2(b, template, goals),
            prov,
        }
    }

    fn expand(&mut self, node: Node) -> Result<(), EngineError> {
        let mut b = Bindings::new();
        let ts = node.canon.instantiate(&mut b);
        let (template, goals) = ts.split_at(node.split);
        let Some((g, rest)) = goals.split_first() else {
            let ans = canonicalize(&b, template);
            self.add_answer(node.subgoal, ans, node.prov);
            return Ok(());
        };
        self.solve_goal(
            node.subgoal,
            node.split,
            template,
            g,
            rest,
            &mut b,
            node.prov,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn solve_goal(
        &mut self,
        sid: usize,
        split: usize,
        template: &[Term],
        g: &Term,
        rest: &[Term],
        b: &mut Bindings,
        prov: Option<Box<NodeProv>>,
    ) -> Result<(), EngineError> {
        let g = b.resolve(g);
        let f = match g.functor() {
            Some(f) => f,
            None => return Err(EngineError::BadGoal(format!("{g}"))),
        };
        let name = sym_name(f.name);
        let args = g.args();
        match (name.as_str(), f.arity) {
            (",", 2) => {
                let mut goals = vec![args[0].clone(), args[1].clone()];
                goals.extend_from_slice(rest);
                let n = self.make_node(sid, split, b, template, &goals, prov);
                self.push(Task::Expand(n));
                Ok(())
            }
            (";", 2) => {
                // (C -> T ; E) gets soft if-then-else semantics:
                // (C, T) or (\+ C, E).
                let (left, right): (Vec<Term>, Vec<Term>) = if let Term::Struct(s, ite) = &args[0] {
                    if sym_name(*s) == "->" && ite.len() == 2 {
                        (
                            vec![ite[0].clone(), ite[1].clone()],
                            vec![
                                Term::Struct(
                                    tablog_term::intern("\\+"),
                                    vec![ite[0].clone()].into(),
                                ),
                                args[1].clone(),
                            ],
                        )
                    } else {
                        (vec![args[0].clone()], vec![args[1].clone()])
                    }
                } else {
                    (vec![args[0].clone()], vec![args[1].clone()])
                };
                for branch in [left, right] {
                    let mut goals = branch;
                    goals.extend_from_slice(rest);
                    let n = self.make_node(sid, split, b, template, &goals, prov.clone());
                    self.push(Task::Expand(n));
                }
                Ok(())
            }
            ("->", 2) => {
                let mut goals = vec![args[0].clone(), args[1].clone()];
                goals.extend_from_slice(rest);
                let n = self.make_node(sid, split, b, template, &goals, prov);
                self.push(Task::Expand(n));
                Ok(())
            }
            ("\\+", 1) | ("not", 1) => {
                if !self.provable(&args[0], b)? {
                    let n = self.make_node(sid, split, b, template, rest, prov);
                    self.push(Task::Expand(n));
                }
                Ok(())
            }
            // Cut is approximated by `true`: sound (a superset of solutions)
            // for the minimal-model analyses this engine serves; see README.
            ("!", 0) | ("true", 0) => {
                let n = self.make_node(sid, split, b, template, rest, prov);
                self.push(Task::Expand(n));
                Ok(())
            }
            ("call", 1) => {
                let mut goals = vec![args[0].clone()];
                goals.extend_from_slice(rest);
                let n = self.make_node(sid, split, b, template, &goals, prov);
                self.push(Task::Expand(n));
                Ok(())
            }
            _ => {
                if let Some(imp) = lookup_builtin(f) {
                    return self.solve_builtin(imp, sid, split, template, &g, rest, b, prov);
                }
                if !self.db.is_defined(f) {
                    return match self.opts.unknown {
                        Unknown::Fail => Ok(()),
                        Unknown::Error => Err(EngineError::UnknownPredicate(f)),
                    };
                }
                if self.db.is_tabled(f) {
                    self.solve_tabled(f, sid, split, template, &g, rest, b, prov)
                } else {
                    self.solve_sld(f, sid, split, template, &g, rest, b, prov)
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn solve_builtin(
        &mut self,
        imp: BuiltinImpl,
        sid: usize,
        split: usize,
        template: &[Term],
        g: &Term,
        rest: &[Term],
        b: &mut Bindings,
        prov: Option<Box<NodeProv>>,
    ) -> Result<(), EngineError> {
        match imp {
            BuiltinImpl::Det(f) => {
                let m = b.mark();
                if f(b, g.args())? {
                    let n = self.make_node(sid, split, b, template, rest, prov);
                    self.push(Task::Expand(n));
                }
                b.undo_to(m);
                Ok(())
            }
            BuiltinImpl::NonDet(f) => {
                let tuples = f(b, g.args())?;
                for tuple in tuples {
                    let m = b.mark();
                    let ok = g
                        .args()
                        .iter()
                        .zip(tuple.iter())
                        .all(|(x, y)| self.unif(b, x, y));
                    if ok {
                        let n = self.make_node(sid, split, b, template, rest, prov.clone());
                        self.push(Task::Expand(n));
                    }
                    b.undo_to(m);
                }
                Ok(())
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn solve_sld(
        &mut self,
        f: Functor,
        sid: usize,
        split: usize,
        template: &[Term],
        g: &Term,
        rest: &[Term],
        b: &mut Bindings,
        prov: Option<Box<NodeProv>>,
    ) -> Result<(), EngineError> {
        // `self.db` is a `&'e` reference: copying it out lets the clause
        // iterator borrow the database for `'e`, independent of `self`, so
        // no snapshot of the clause list is ever cloned.
        let db = self.db;
        for (cidx, clause) in db.matching_clauses_iter(f, g.args().first()) {
            self.stats.clause_resolutions += 1;
            if let Some(sink) = self.trace {
                sink.event(&TraceEvent::ClauseResolution { pred: f });
            }
            let m = b.mark();
            let base = b.fresh_block(clause.nvars);
            let mut rename = |t: &Term| t.map_vars(&mut |v| Term::Var(Var(base.0 + v.0)));
            let head = rename(&clause.head);
            let ok = g
                .args()
                .iter()
                .zip(head.args().iter())
                .all(|(x, y)| self.unif(b, x, y));
            if ok {
                let mut goals: Vec<Term> = clause.body.iter().map(&mut rename).collect();
                goals.extend_from_slice(rest);
                // SLD resolution is inlined into the derivation node, so
                // the resolved clause joins the node's own trail.
                let mut prov = prov.clone();
                if let Some(p) = prov.as_deref_mut() {
                    p.clauses.push(ClauseRef {
                        pred: f,
                        index: cidx,
                    });
                }
                let n = self.make_node(sid, split, b, template, &goals, prov);
                self.push(Task::Expand(n));
            }
            b.undo_to(m);
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn solve_tabled(
        &mut self,
        f: Functor,
        sid: usize,
        split: usize,
        template: &[Term],
        g: &Term,
        rest: &[Term],
        b: &mut Bindings,
        prov: Option<Box<NodeProv>>,
    ) -> Result<(), EngineError> {
        let mut key = if self.opts.forward_subsumption {
            let open = open_call_key(f);
            if let Some(sink) = self.trace {
                // Only report calls that subsumption actually generalized.
                let specific = canonicalize(b, g.args());
                if specific != open {
                    sink.event(&TraceEvent::SubsumedCall {
                        pred: f,
                        call: &specific,
                        subsumer: &open,
                    });
                }
            }
            open
        } else {
            canonicalize(b, g.args())
        };
        if let Some(hook) = &self.opts.call_abstraction {
            let abstracted = hook(&key);
            if let Some(sink) = self.trace {
                if abstracted != key {
                    sink.event(&TraceEvent::CallAbstracted {
                        pred: f,
                        original: &key,
                        abstracted: &abstracted,
                    });
                }
            }
            key = abstracted;
        }
        let watched = self.find_or_create_subgoal(f, key)?;
        // Reconstitute this node (with the tabled goal still selected) as a
        // consumer of the callee's table. The trail parks on the consumer;
        // each answer return extends a copy of it with the consumed answer.
        let mut goals = vec![g.clone()];
        goals.extend_from_slice(rest);
        let node = self.make_node(sid, split, b, template, &goals, prov);
        let cid = self.consumers.len();
        // Back-fill the answers the table already holds and park the cursor
        // at the high-water mark; `add_answer` advances it from there, so
        // the consumer never rescans `0..answers.len()` on later wake-ups.
        let known = self.subgoals[watched].answers.len();
        self.consumers.push(Consumer {
            node,
            watched,
            next: known,
        });
        self.subgoals[watched].consumers.push(cid);
        for idx in 0..known {
            self.push(Task::Return(cid, idx));
        }
        Ok(())
    }

    fn find_or_create_subgoal(
        &mut self,
        f: Functor,
        key: CanonicalTerm,
    ) -> Result<usize, EngineError> {
        if let Some(&sid) = self.lookup.get(&(f, key.root_id())) {
            return Ok(sid);
        }
        let sid = self.subgoals.len();
        self.stats.subgoals += 1;
        let state = SubgoalState::new(f, key);
        let bytes = state.table_bytes();
        self.stats.table_bytes += bytes;
        if let Some(sink) = self.trace {
            sink.event(&TraceEvent::NewSubgoal {
                pred: f,
                call: &key,
                bytes,
            });
        }
        self.subgoals.push(state);
        self.lookup.insert((f, key.root_id()), sid);
        // Spawn generator nodes: one per resolving program clause. Each
        // starts a fresh derivation trail rooted at its clause — the answers
        // it eventually produces are supported by that clause.
        let mut b = Bindings::new();
        let call_args = key.instantiate(&mut b);
        let db = self.db;
        for (cidx, clause) in db.matching_clauses_iter(f, call_args.first()) {
            self.stats.clause_resolutions += 1;
            if let Some(sink) = self.trace {
                sink.event(&TraceEvent::ClauseResolution { pred: f });
            }
            let m = b.mark();
            let base = b.fresh_block(clause.nvars);
            let mut rename = |t: &Term| t.map_vars(&mut |v| Term::Var(Var(base.0 + v.0)));
            let head = rename(&clause.head);
            let ok = call_args
                .iter()
                .zip(head.args().iter())
                .all(|(x, y)| self.unif(&mut b, x, y));
            if ok {
                let goals: Vec<Term> = clause.body.iter().map(&mut rename).collect();
                let prov = self.opts.record_provenance.then(|| {
                    Box::new(NodeProv {
                        clauses: vec![ClauseRef {
                            pred: f,
                            index: cidx,
                        }],
                        premises: Vec::new(),
                    })
                });
                let n = self.make_node(sid, f.arity, &b, &call_args, &goals, prov);
                self.push(Task::Expand(n));
            }
            b.undo_to(m);
        }
        Ok(sid)
    }

    fn return_answer(&mut self, cid: usize, aidx: usize) -> Result<(), EngineError> {
        // Canonical terms are `Copy` arena handles, so pulling the consumer's
        // coordinates out is free — no `Consumer` or answer clone on this
        // path. Only the provenance trail (off by default) is cloned.
        let (subgoal, split, canon, watched) = {
            let c = &self.consumers[cid];
            (c.node.subgoal, c.node.split, c.node.canon, c.watched)
        };
        let mut b = Bindings::new();
        let ts = canon.instantiate(&mut b);
        let (template, goals) = ts.split_at(split);
        let (g, rest) = goals
            .split_first()
            .expect("consumer node has a selected goal");
        let answer = self.subgoals[watched].answers[aidx];
        let ans_args = answer.instantiate(&mut b);
        let ok = g
            .args()
            .iter()
            .zip(ans_args.iter())
            .all(|(x, y)| self.unif(&mut b, x, y));
        if ok {
            if let Some(sink) = self.trace {
                sink.event(&TraceEvent::AnswerReturn {
                    pred: self.subgoals[watched].functor,
                });
            }
            // The continuation consumed answer `aidx` of the watched table:
            // extend the consumer's trail with that premise.
            let mut prov = self.consumers[cid].node.prov.clone();
            if let Some(p) = prov.as_deref_mut() {
                p.premises.push(AnswerRef {
                    subgoal: watched,
                    answer: aidx,
                });
            }
            let n = self.make_node(subgoal, split, &b, template, rest, prov);
            self.push(Task::Expand(n));
        }
        Ok(())
    }

    fn add_answer(&mut self, sid: usize, mut ans: CanonicalTerm, prov: Option<Box<NodeProv>>) {
        if let Some(hook) = &self.opts.answer_widening {
            let widened = hook(&ans);
            if let Some(sink) = self.trace {
                if widened != ans {
                    sink.event(&TraceEvent::AnswerWidened {
                        pred: self.subgoals[sid].functor,
                        original: &ans,
                        widened: &widened,
                    });
                }
            }
            ans = widened;
        }
        let sub = &mut self.subgoals[sid];
        if sub.answer_ids.insert(ans.root_id()) {
            // When recording, the provenance record rides along with the
            // answer and its bytes are charged to the same accounting the
            // rescan and the AnswerInsert event see. A widened answer keeps
            // the trail of the concrete derivation that produced it.
            let prov_rec = self
                .opts
                .record_provenance
                .then(|| prov.map(|p| p.freeze()).unwrap_or_default());
            let prov_bytes = prov_rec.as_ref().map_or(0, crate::AnswerProv::heap_bytes);
            // Substitution factoring: only structure not already present in
            // this table (call or earlier answers) is charged.
            let term_bytes = sub.charge(&ans);
            let bytes = term_bytes + NODE_OVERHEAD + prov_bytes;
            sub.add_entry_bytes(NODE_OVERHEAD + prov_bytes);
            if let Some(sink) = self.trace {
                sink.event(&TraceEvent::AnswerInsert {
                    pred: sub.functor,
                    answer: &ans,
                    bytes,
                });
            }
            sub.answers.push(ans);
            if let Some(p) = prov_rec {
                sub.provenance.push(p);
            }
            let idx = sub.answers.len() - 1;
            self.stats.answers += 1;
            self.stats.table_bytes += bytes;
            // Wake every registered consumer with exactly this answer,
            // advancing its cursor — no clone of the consumer list. The
            // list cannot grow while we walk it (pushing tasks only
            // enqueues; registration happens during expansion).
            for i in 0..self.subgoals[sid].consumers.len() {
                let cid = self.subgoals[sid].consumers[i];
                debug_assert_eq!(
                    self.consumers[cid].next, idx,
                    "consumer cursor out of step with the answer table"
                );
                self.consumers[cid].next = idx + 1;
                self.push(Task::Return(cid, idx));
            }
        } else {
            self.stats.duplicate_answers += 1;
            if let Some(sink) = self.trace {
                sink.event(&TraceEvent::DuplicateAnswer {
                    pred: sub.functor,
                    answer: &ans,
                });
            }
        }
    }

    /// Negation as failure over a completed subcomputation: evaluates the
    /// goal in a fresh machine (tables are not shared) and reports whether
    /// any answer exists.
    fn provable(&mut self, goal: &Term, b: &Bindings) -> Result<bool, EngineError> {
        let g = b.resolve(goal);
        let mut sub = Machine::new(self.db, self.opts);
        let empty = Bindings::new();
        let eval = sub.run(&[g], &[], &empty)?;
        // Fold the subcomputation's work into this evaluation's counters.
        // `table_bytes` stays out: the sub-machine's tables are discarded
        // here, so charging their space would overstate live table memory.
        self.stats.steps += sub.stats.steps;
        self.stats.clause_resolutions += sub.stats.clause_resolutions;
        self.stats.subgoals += sub.stats.subgoals;
        self.stats.answers += sub.stats.answers;
        self.stats.duplicate_answers += sub.stats.duplicate_answers;
        Ok(!eval.root_answers().is_empty())
    }
}

fn open_call_key(f: Functor) -> CanonicalTerm {
    let b = Bindings::new();
    let args: Vec<Term> = (0..f.arity).map(|i| Term::Var(Var(i as u32))).collect();
    canonicalize(&b, &args)
}

pub(crate) fn flatten_conj(t: &Term, out: &mut Vec<Term>) {
    if let Term::Struct(s, args) = t {
        if args.len() == 2 && sym_name(*s) == "," {
            flatten_conj(&args[0], out);
            flatten_conj(&args[1], out);
            return;
        }
    }
    out.push(t.clone());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(src: &str, goal: &str) -> Solutions {
        Engine::from_source(src).unwrap().solve(goal).unwrap()
    }

    const GRAPH: &str = "
        :- table path/2.
        path(X, Y) :- path(X, Z), edge(Z, Y).
        path(X, Y) :- edge(X, Y).
        edge(a, b). edge(b, c). edge(c, a).
    ";

    #[test]
    fn left_recursion_terminates() {
        let s = solve(GRAPH, "path(a, X)");
        let mut got: Vec<String> = s.to_strings();
        got.sort();
        assert_eq!(got, vec!["X = a", "X = b", "X = c"]);
    }

    #[test]
    fn fully_open_call() {
        let s = solve(GRAPH, "path(X, Y)");
        assert_eq!(s.len(), 9);
    }

    #[test]
    fn failing_goal_has_no_rows() {
        let s = solve(GRAPH, "path(a, zzz)");
        assert!(s.is_empty());
    }

    #[test]
    fn ground_goal_succeeds_once() {
        let s = solve(GRAPH, "path(a, c)");
        assert_eq!(s.len(), 1);
        assert_eq!(s.to_strings(), vec!["true"]);
    }

    #[test]
    fn non_tabled_append() {
        let src = "app([], Y, Y). app([H|T], Y, [H|Z]) :- app(T, Y, Z).";
        let s = solve(src, "app([1,2], [3], L)");
        assert_eq!(s.to_strings(), vec!["L = [1,2,3]"]);
    }

    #[test]
    fn append_backwards_enumerates_splits() {
        let src = "app([], Y, Y). app([H|T], Y, [H|Z]) :- app(T, Y, Z).";
        let s = solve(src, "app(X, Y, [1,2,3])");
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn tabled_append_non_ground_answers() {
        let src = ":- table app/3.\napp([], Y, Y). app([H|T], Y, [H|Z]) :- app(T, Y, Z).";
        let e = Engine::from_source(src).unwrap();
        // Open call would run forever under SLD; tabling with variant
        // answers... would also diverge (infinitely many answers), so query
        // a bounded instance.
        let s = e.solve("app(X, Y, [1,2])").unwrap();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn same_generation_classic() {
        let src = "
            :- table sg/2.
            sg(X, X).
            sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).
            par(c1, p1). par(c2, p1). par(p1, g1). par(p2, g1).
        ";
        let s = solve(src, "sg(c1, X)");
        let mut got = s.to_strings();
        got.sort();
        assert_eq!(got, vec!["X = c1", "X = c2"]);
    }

    #[test]
    fn mutual_recursion_tabled() {
        let src = "
            :- table even/1, odd/1.
            even(z).
            even(s(X)) :- odd(X).
            odd(s(X)) :- even(X).
        ";
        let s = solve(src, "even(s(s(z)))");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn arithmetic_in_clause_bodies() {
        let src = "fact(0, 1). fact(N, F) :- N > 0, N1 is N - 1, fact(N1, F1), F is N * F1.";
        let s = solve(src, "fact(5, F)");
        assert_eq!(s.to_strings(), vec!["F = 120"]);
    }

    #[test]
    fn disjunction_and_if_then_else() {
        let src = "p(1). p(2). q(X) :- (p(X) ; X = 3). r(X, Y) :- (X = 1 -> Y = one ; Y = other).";
        let s = solve(src, "q(X)");
        assert_eq!(s.len(), 3);
        let s = solve(src, "r(1, Y)");
        assert_eq!(s.to_strings(), vec!["Y = one"]);
        let s = solve(src, "r(2, Y)");
        assert_eq!(s.to_strings(), vec!["Y = other"]);
    }

    #[test]
    fn negation_as_failure() {
        let src = "p(1). p(2). good(X) :- p(X), \\+ bad(X). bad(2).";
        let s = solve(src, "good(X)");
        assert_eq!(s.to_strings(), vec!["X = 1"]);
    }

    #[test]
    fn unknown_predicate_errors_by_default() {
        let e = Engine::from_source("p(a).").unwrap();
        assert!(matches!(
            e.solve("nosuch(X)"),
            Err(EngineError::UnknownPredicate(_))
        ));
    }

    #[test]
    fn unknown_predicate_can_fail_silently() {
        let mut e = Engine::from_source("p(a) . q(X) :- p(X).").unwrap();
        e.options_mut().unknown = Unknown::Fail;
        let s = e.solve("nosuch(X)").unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn propositional_sld_loop_terminates_via_node_dedup() {
        // `loop :- loop.` repeats the same resolvent; the derivation
        // forest is a set of nodes, so the loop is detected even without
        // tabling and the query fails finitely.
        let e = Engine::from_source("loop :- loop.").unwrap();
        assert!(e.solve("loop").unwrap().is_empty());
    }

    #[test]
    fn step_limit_catches_runaway_sld() {
        // A growing resolvent defeats node dedup; the step budget is the
        // safety net.
        let mut e = Engine::from_source("loop(X) :- loop(f(X)).").unwrap();
        e.options_mut().max_steps = Some(1000);
        assert!(matches!(e.solve("loop(a)"), Err(EngineError::StepLimit(_))));
    }

    #[test]
    fn tabling_dedups_answers() {
        let src = ":- table p/1.\np(X) :- q(X). p(X) :- r(X). q(a). r(a).";
        let e = Engine::from_source(src).unwrap();
        let mut b = Bindings::new();
        let (g, _) = tablog_syntax::parse_term("p(Z)", &mut b).unwrap();
        let eval = e
            .evaluate(std::slice::from_ref(&g), &[g.args()[0].clone()], &b)
            .unwrap();
        // One answer in p's table, one for the root — the second derivation
        // of p(a) collapses at node level, so the table stays duplicate-free.
        assert_eq!(eval.stats().answers, 2);
        let p = eval.subgoals_of(Functor::new("p", 1));
        assert_eq!(p[0].num_answers(), 1);
    }

    #[test]
    fn call_table_records_input_patterns() {
        let src = "
            :- table p/2, q/2.
            p(X, Y) :- q(f(X), Y).
            q(f(a), b).
        ";
        let e = Engine::from_source(src).unwrap();
        let mut b = Bindings::new();
        let (g, _) = tablog_syntax::parse_term("p(a, Y)", &mut b).unwrap();
        let eval = e.evaluate(&[g], &[], &b).unwrap();
        let calls = eval.calls_of(Functor::new("q", 2));
        assert_eq!(calls.len(), 1);
        assert_eq!(tablog_syntax::term_to_string(&calls[0]), "q(f(a),A)");
    }

    #[test]
    fn breadth_first_scheduling_same_answers() {
        let opts = EngineOptions {
            scheduling: Scheduling::BreadthFirst,
            ..Default::default()
        };
        let program = tablog_syntax::parse_program(GRAPH).unwrap();
        let mut db = Database::new(LoadMode::Dynamic);
        db.load(&program).unwrap();
        let e = Engine::new(db, opts);
        let s = e.solve("path(a, X)").unwrap();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn compiled_mode_same_answers_as_dynamic() {
        let src = "p(a, 1). p(b, 2). p(c, 3). look(K, V) :- p(K, V).";
        for mode in [LoadMode::Dynamic, LoadMode::Compiled] {
            let e = Engine::from_source_with(src, mode, EngineOptions::default()).unwrap();
            assert_eq!(e.solve("look(b, V)").unwrap().to_strings(), vec!["V = 2"]);
        }
    }

    #[test]
    fn forward_subsumption_same_answers_fewer_tables() {
        let mk = |fs: bool| {
            let opts = EngineOptions {
                forward_subsumption: fs,
                ..Default::default()
            };
            let program = tablog_syntax::parse_program(GRAPH).unwrap();
            let mut db = Database::new(LoadMode::Dynamic);
            db.load(&program).unwrap();
            Engine::new(db, opts)
        };
        for fs in [false, true] {
            let e = mk(fs);
            let s = e.solve("path(a, X)").unwrap();
            assert_eq!(s.len(), 3, "fs={fs}");
        }
        // With subsumption, the specific call path(a,X) consumes from the
        // open table; distinct specific calls do not multiply subgoals.
        let e = mk(true);
        let mut b = Bindings::new();
        let (g, _) = tablog_syntax::parse_term("path(a, X), path(b, Y)", &mut b).unwrap();
        let mut goals = Vec::new();
        flatten_conj(&g, &mut goals);
        let eval = e.evaluate(&goals, &[], &b).unwrap();
        assert_eq!(eval.subgoals_of(Functor::new("path", 2)).len(), 1);
    }

    #[test]
    fn iff_builtin_in_program() {
        // gp_ap from Figure 2(b), with $iff for the truth tables.
        let src = "
            :- table gp_ap/3.
            gp_ap(X1, X2, X3) :- '$iff'(X1), '$iff'(X2, X3).
            gp_ap(X1, X2, X3) :-
                '$iff'(X1, X, Xs), '$iff'(X3, X, Zs), gp_ap(Xs, X2, Zs).
        ";
        let s = solve(src, "gp_ap(X, Y, Z)");
        // Success set is the truth table of X ∧ Y ⇔ Z: 4 rows.
        let mut got = s.to_strings();
        got.sort();
        assert_eq!(
            got,
            vec![
                "X = false, Y = false, Z = false",
                "X = false, Y = true, Z = false",
                "X = true, Y = false, Z = false",
                "X = true, Y = true, Z = true",
            ]
        );
    }

    #[test]
    fn answer_widening_hook_truncates() {
        use std::rc::Rc;
        // Widen every answer to the open tuple: the table keeps one answer.
        let widen: Option<crate::TermHook> = Some(Rc::new(|c: &CanonicalTerm| {
            let b = Bindings::new();
            let args: Vec<Term> = (0..c.terms().len())
                .map(|i| Term::Var(Var(i as u32)))
                .collect();
            canonicalize(&b, &args)
        }));
        let opts = EngineOptions {
            answer_widening: widen,
            ..Default::default()
        };
        let program = tablog_syntax::parse_program(":- table p/1.\np(a). p(b). p(c).").unwrap();
        let mut db = Database::new(LoadMode::Dynamic);
        db.load(&program).unwrap();
        let e = Engine::new(db, opts);
        let mut b = Bindings::new();
        let (g, _) = tablog_syntax::parse_term("p(X)", &mut b).unwrap();
        let eval = e.evaluate(&[g], &[], &b).unwrap();
        let views = eval.subgoals_of(Functor::new("p", 1));
        assert_eq!(views[0].num_answers(), 1);
    }

    #[test]
    fn stats_table_bytes_nonzero() {
        let e = Engine::from_source(GRAPH).unwrap();
        let mut b = Bindings::new();
        let (g, _) = tablog_syntax::parse_term("path(a, X)", &mut b).unwrap();
        let eval = e.evaluate(&[g], &[], &b).unwrap();
        assert!(eval.table_bytes() > 0);
        assert!(eval.stats().steps > 0);
    }

    #[test]
    fn zero_arity_tabled_predicate() {
        let src = ":- table win/0.\nwin :- win.\n";
        let mut e = Engine::from_source(src).unwrap();
        e.options_mut().max_steps = Some(10_000);
        let s = e.solve("win").unwrap();
        assert!(s.is_empty()); // no derivation: tabling detects the loop
    }

    fn eval_graph(opts: EngineOptions) -> Evaluation {
        let program = tablog_syntax::parse_program(GRAPH).unwrap();
        let mut db = Database::new(LoadMode::Dynamic);
        db.load(&program).unwrap();
        let e = Engine::new(db, opts);
        let mut b = Bindings::new();
        let (g, _) = tablog_syntax::parse_term("path(X, Y)", &mut b).unwrap();
        e.evaluate(&[g], &[], &b).unwrap()
    }

    #[test]
    fn incremental_table_bytes_agree_with_rescan() {
        let eval = eval_graph(EngineOptions::default());
        assert_eq!(eval.stats().table_bytes, eval.rescan_table_bytes());
        assert!(eval.table_bytes() > 0);
    }

    #[test]
    fn incremental_table_bytes_agree_under_subsumption_and_widening() {
        use std::rc::Rc;
        let opts = EngineOptions {
            forward_subsumption: true,
            answer_widening: Some(Rc::new(|c: &CanonicalTerm| *c)),
            ..Default::default()
        };
        let eval = eval_graph(opts);
        assert_eq!(eval.stats().table_bytes, eval.rescan_table_bytes());
    }

    #[test]
    fn provable_aggregates_full_subcomputation_stats() {
        // The negated goal walks a tabled predicate, so the subcomputation
        // creates subgoals, answers, and clause resolutions that must all
        // surface in the outer stats, not just its steps.
        let src = "
            :- table path/2.
            path(X, Y) :- path(X, Z), edge(Z, Y).
            path(X, Y) :- edge(X, Y).
            edge(a, b). edge(b, c).
            unreachable(X, Y) :- node(X), node(Y), \\+ path(X, Y).
            node(a). node(b). node(c).
        ";
        let e = Engine::from_source(src).unwrap();
        let mut b = Bindings::new();
        let (g, _) = tablog_syntax::parse_term("unreachable(a, Y)", &mut b).unwrap();
        let eval = e.evaluate(&[g], &[], &b).unwrap();
        let outer_only = {
            // Baseline: the same query without the negated literal.
            let mut b = Bindings::new();
            let (g, _) = tablog_syntax::parse_term("node(a), node(Y)", &mut b).unwrap();
            e.evaluate(&[g], &[], &b).unwrap().stats()
        };
        let stats = eval.stats();
        assert!(
            stats.subgoals > outer_only.subgoals,
            "negation subgoals missing: {stats:?} vs baseline {outer_only:?}"
        );
        assert!(stats.answers > outer_only.answers);
        assert!(stats.clause_resolutions > outer_only.clause_resolutions);
    }

    #[test]
    fn trace_events_mirror_table_stats() {
        use std::rc::Rc;
        let counter = Rc::new(tablog_trace::CountingSink::new());
        let opts = EngineOptions {
            trace: Some(counter.clone()),
            ..Default::default()
        };
        let eval = eval_graph(opts);
        let stats = eval.stats();
        assert_eq!(counter.count("new_subgoal"), stats.subgoals as u64);
        assert_eq!(counter.count("answer_insert"), stats.answers as u64);
        assert_eq!(
            counter.count("duplicate_answer"),
            stats.duplicate_answers as u64
        );
        assert_eq!(
            counter.count("clause_resolution"),
            stats.clause_resolutions as u64
        );
        // Every subgoal (incl. the synthetic root) completes exactly once.
        assert_eq!(counter.count("subgoal_complete"), stats.subgoals as u64);
    }

    #[test]
    fn metrics_registry_rolls_up_per_predicate_bytes() {
        use std::rc::Rc;
        let registry = Rc::new(tablog_trace::MetricsRegistry::new());
        let opts = EngineOptions {
            trace: Some(registry.clone()),
            ..Default::default()
        };
        let eval = eval_graph(opts);
        let report = registry.snapshot();
        let total: u64 = report.totals().table_bytes;
        assert_eq!(total, eval.stats().table_bytes as u64);
        let path = report.pred("path/2").expect("path/2 row");
        assert!(path.subgoals >= 1);
        assert!(path.answers > 0);
        assert!(path.table_bytes > 0);
    }
}
