//! The tabled evaluation machine: an explicit SLG derivation forest driven
//! by a worklist.
//!
//! Every derivation node carries, in variant-canonical form, an *answer
//! template* (the instantiated arguments of the tabled subgoal it belongs
//! to) and its remaining *goal list*. Expanding a node resolves its leftmost
//! goal — against program clauses (SLD), a builtin, or a table. Tabled calls
//! register the node as a consumer of the callee's table; every answer that
//! table ever acquires is returned to every consumer exactly once. When the
//! worklist drains, all tables are complete: for definite programs, SLG
//! completion needs no incremental SCC bookkeeping.
//!
//! The machine owns two pieces of session state factored out in PR 4:
//!
//! * a session-scoped [`TermArena`] holding every canonical call, answer,
//!   and node key of the run — handed to the finished
//!   [`Evaluation`](crate::Evaluation) and dropped with it, so nothing
//!   accumulates across runs;
//! * a pluggable [`Scheduler`](crate::Scheduler) deciding which worklist
//!   task runs next, selected by [`EngineOptions::scheduling`].
//!
//! Goal dispatch for builtins and SLD clauses lives in `dispatch.rs`;
//! answer flow (consumer resumption, table insertion, negation
//! subcomputations) lives in `consumers.rs`.

use crate::budget::{HealthConfig, Truncation, TruncationReason};
use crate::builtins::lookup_builtin;
use crate::database::Database;
use crate::error::EngineError;
use crate::options::{EngineOptions, Unknown};
use crate::parallel::{Msg, ParCtx};
use crate::provenance::{ClauseRef, NodeProv};
use crate::scheduler::{make_scheduler, Scheduler, TaskClass};
use crate::session::Evaluation;
use crate::table::{SubgoalState, TableStats};
use std::collections::{HashMap, HashSet};
use tablog_term::{
    sym_name, unify, unify_occurs, Bindings, CanonicalTerm, Functor, Term, TermArena, TermId, Var,
};
use tablog_trace::{
    now_ns, CounterSample, HealthSnapshot, SpanEmitter, StallWatchdog, TraceEvent, TraceSink,
};

#[derive(Clone, Debug)]
pub(crate) struct Node {
    /// The subgoal whose answers this derivation contributes to.
    pub(crate) subgoal: usize,
    /// `canon`'s first `split` member terms are the answer template; the
    /// rest is the goal list.
    pub(crate) split: usize,
    pub(crate) canon: CanonicalTerm,
    /// Derivation trail (clauses resolved, table answers consumed) on the
    /// path to this node. Always `None` unless
    /// `EngineOptions::record_provenance` is set, so the disabled path
    /// allocates nothing. When a variant-identical node is reached along a
    /// second path, `seen_nodes` drops it and the first trail wins: a
    /// justification needs one support, not all of them.
    pub(crate) prov: Option<Box<NodeProv>>,
}

#[derive(Clone, Debug)]
pub(crate) struct Consumer {
    pub(crate) node: Node,
    pub(crate) watched: usize,
    /// Cursor into the watched table: the next answer index this consumer
    /// has yet to be scheduled. Advanced when answers are handed out, so
    /// every answer is scheduled to every consumer exactly once — new
    /// consumers start at the current table size after back-filling, and
    /// `add_answer` extends each cursor by exactly the inserted answer.
    pub(crate) next: usize,
}

#[derive(Debug)]
pub(crate) enum Task {
    Expand(Node),
    Return(usize, usize),
}

pub(crate) struct Machine<'e> {
    pub(crate) db: &'e Database,
    pub(crate) opts: &'e EngineOptions,
    /// Session arena: every canonical term of this run is interned here,
    /// and the arena moves into the [`Evaluation`] when the run finishes.
    pub(crate) arena: TermArena,
    pub(crate) subgoals: Vec<SubgoalState>,
    /// Subgoal lookup keyed by the call's arena id: a hash probe on a
    /// 12-byte key with O(1) equality, never a structural term walk.
    pub(crate) lookup: HashMap<(Functor, TermId), usize>,
    pub(crate) consumers: Vec<Consumer>,
    /// The worklist, behind the strategy selected by
    /// [`EngineOptions::scheduling`].
    pub(crate) scheduler: Box<dyn Scheduler<Task>>,
    /// Derivation nodes already scheduled, per subgoal: the forest is a
    /// *set* of nodes, so a variant-identical resolvent reached along two
    /// different derivation paths is expanded only once. This collapses
    /// the combinatorial re-derivation that long conjunctions of
    /// enumerative literals otherwise cause. Keys are arena ids — no
    /// canonical-term copies are stored. Membership is checked *before*
    /// the scheduler sees the task, so it is strategy-independent.
    pub(crate) seen_nodes: HashSet<(usize, usize, TermId)>,
    pub(crate) stats: TableStats,
    /// Event observer, `None` unless `EngineOptions::trace` is set. Events
    /// are only constructed under `if let Some(..)`, so the disabled path
    /// does no work and no allocation.
    pub(crate) trace: Option<&'e dyn TraceSink>,
    /// Span emitter, `Some` only when `EngineOptions::record_spans` is set
    /// *and* a sink is installed — every span site gates on this, so the
    /// disabled path takes no timestamps and mints no ids.
    pub(crate) spans: Option<SpanEmitter>,
    /// Counter sampling enabled: `EngineOptions::record_counters` *and* a
    /// sink installed. The disabled path is one branch per worklist task.
    pub(crate) counters_on: bool,
    /// Any resource budget set. The only cost budgets add to an unbudgeted
    /// run is this one branch per worklist task.
    budgets_on: bool,
    /// Absolute wall-clock cutoff on the [`now_ns`] timeline, precomputed
    /// once so the per-task deadline check is a single comparison. Negation
    /// subcomputations inherit the parent's cutoff (the deadline bounds the
    /// whole evaluation, not each sub-machine).
    pub(crate) deadline_ns: Option<u64>,
    /// The budget that tripped, set at a dispatch boundary (directly or
    /// propagated from a negation subcomputation); once set, `drain` stops
    /// scheduling and `run` hands back a truncated evaluation.
    pub(crate) truncated: Option<TruncationReason>,
    /// Parallel-run context (worker id, shared state, peer channels) when
    /// this machine is one worker of a [`crate::Scheduling::Parallel`]
    /// evaluation; `None` for sequential machines and for negation
    /// sub-machines, which always evaluate locally.
    pub(crate) par: Option<ParCtx>,
    /// Consumer nodes waiting on answers from subgoals owned by other
    /// workers, indexed by the token carried in the remote call message.
    pub(crate) remote_waits: Vec<(Functor, Node)>,
    /// Periodic health emission state, `Some` only when
    /// `EngineOptions::health` is set *and* a sink is installed.
    health: Option<HealthState>,
    /// Timestamp of machine creation, taken only when budgets or health
    /// reporting need one (0 otherwise, never read in that case).
    start_ns: u64,
}

/// Book-keeping for periodic [`HealthSnapshot`] emission: the cadence
/// config, the watchdog, and the previous emission's coordinates (for
/// window deltas and the derivation rate).
struct HealthState {
    cfg: HealthConfig,
    watchdog: StallWatchdog,
    last_ns: u64,
    last_steps: usize,
    last_answers: usize,
}

impl<'e> Machine<'e> {
    pub(crate) fn new(db: &'e Database, opts: &'e EngineOptions) -> Self {
        let budgets_on =
            opts.max_steps.is_some() || opts.deadline.is_some() || opts.max_table_bytes.is_some();
        let health_on = opts.health.is_some() && opts.trace.is_some();
        // One timestamp at machine creation when budgets or health need a
        // time origin; the all-off path still takes none.
        let start_ns = if budgets_on || health_on { now_ns() } else { 0 };
        Machine {
            db,
            opts,
            arena: TermArena::new(),
            subgoals: Vec::new(),
            lookup: HashMap::new(),
            consumers: Vec::new(),
            scheduler: make_scheduler(opts.scheduling),
            seen_nodes: HashSet::new(),
            stats: TableStats::default(),
            trace: opts.trace.as_deref(),
            spans: (opts.record_spans && opts.trace.is_some())
                .then(|| SpanEmitter::with_root(opts.parent_span)),
            counters_on: opts.record_counters && opts.trace.is_some(),
            budgets_on,
            deadline_ns: opts
                .deadline
                .map(|d| start_ns.saturating_add(d.as_nanos() as u64)),
            truncated: None,
            par: None,
            remote_waits: Vec::new(),
            health: health_on.then(|| {
                let cfg = opts.health.unwrap();
                HealthState {
                    cfg,
                    watchdog: StallWatchdog::new(cfg.stall_window),
                    last_ns: start_ns,
                    last_steps: 0,
                    last_answers: 0,
                }
            }),
            start_ns,
        }
    }

    /// Emits one counter time-series sample to the trace sink. Only called
    /// from sites gated on `counters_on`, so the disabled path takes no
    /// timestamp and constructs nothing.
    pub(crate) fn sample_counters(&self) {
        if let Some(sink) = self.trace {
            sink.counter_sample(&CounterSample {
                t_ns: tablog_trace::now_ns(),
                worklist: self.scheduler.len(),
                expands: self.scheduler.class_len(TaskClass::Expand),
                returns: self.scheduler.class_len(TaskClass::Return),
                tables: self.subgoals.len(),
                answers: self.stats.answers,
                table_bytes: self.stats.table_bytes,
                msgs_sent: self
                    .par
                    .as_ref()
                    .map_or(0, |p| p.msgs_sent_total() as usize),
                worker: self.par.as_ref().map(|p| p.me),
            });
        }
    }

    /// Checks every configured resource budget, in a fixed order (steps,
    /// table bytes, deadline) so a run tripping several reports
    /// deterministically. Only called when `budgets_on`; the deadline is
    /// the only check that reads the clock.
    fn budget_tripped(&self) -> Option<TruncationReason> {
        if let Some(limit) = self.opts.max_steps {
            if self.stats.steps > limit {
                return Some(TruncationReason::Steps(limit));
            }
        }
        if let Some(limit) = self.opts.max_table_bytes {
            if self.stats.table_bytes > limit {
                return Some(TruncationReason::TableBytes(limit));
            }
        }
        if let Some(cutoff) = self.deadline_ns {
            if now_ns() >= cutoff {
                let ms = self.opts.deadline.map_or(0, |d| d.as_millis() as u64);
                return Some(TruncationReason::DeadlineMs(ms));
            }
        }
        None
    }

    /// Builds one health snapshot at `t_ns`, advancing the health window
    /// state (rate baseline, watchdog) when health reporting is on. Also
    /// used for the final snapshot of a truncated run even when no health
    /// config is set — the window then spans the whole run.
    fn health_snapshot(&mut self, t_ns: u64) -> HealthSnapshot {
        let answers = self.stats.answers;
        let table_bytes = self.stats.table_bytes;
        let (answer_rate, stalled) = match self.health.as_mut() {
            Some(h) => {
                let dt = t_ns.saturating_sub(h.last_ns);
                let da = answers - h.last_answers;
                let rate = if dt > 0 {
                    da as f64 * 1e9 / dt as f64
                } else {
                    0.0
                };
                let stalled = h.watchdog.observe(answers, table_bytes);
                h.last_ns = t_ns;
                h.last_steps = self.stats.steps;
                h.last_answers = answers;
                (rate, stalled)
            }
            None => {
                let dt = t_ns.saturating_sub(self.start_ns);
                let rate = if dt > 0 {
                    answers as f64 * 1e9 / dt as f64
                } else {
                    0.0
                };
                (rate, false)
            }
        };
        HealthSnapshot {
            t_ns,
            steps: self.stats.steps,
            worklist: self.scheduler.len(),
            expands: self.scheduler.class_len(TaskClass::Expand),
            returns: self.scheduler.class_len(TaskClass::Return),
            tables: self.subgoals.len(),
            completed_tables: self.subgoals.iter().filter(|s| s.complete).count(),
            answers,
            duplicate_answers: self.stats.duplicate_answers,
            table_bytes,
            answer_rate,
            peak_heap_bytes: tablog_alloc::is_tracking().then(|| tablog_alloc::stats().peak_bytes),
            stalled,
        }
    }

    /// Emits a periodic health snapshot if either cadence is due. Only
    /// called when `health` is `Some`; the step cadence costs no clock
    /// read until it fires, the time cadence reads the clock once.
    fn health_tick(&mut self) {
        let due = {
            let h = self.health.as_ref().expect("health_tick gated on health");
            let step_due =
                h.cfg.every_steps > 0 && self.stats.steps - h.last_steps >= h.cfg.every_steps;
            if step_due {
                Some(now_ns())
            } else if h.cfg.every_ms > 0 {
                let t = now_ns();
                (t.saturating_sub(h.last_ns) >= h.cfg.every_ms.saturating_mul(1_000_000))
                    .then_some(t)
            } else {
                None
            }
        };
        if let Some(t_ns) = due {
            let snap = self.health_snapshot(t_ns);
            if let Some(sink) = self.trace {
                sink.health(&snap);
            }
        }
    }

    /// Opens a span when span recording is on; no-op (and no timestamp)
    /// otherwise.
    pub(crate) fn span_enter(&mut self, name: &str, pred: Option<Functor>) {
        if let (Some(em), Some(sink)) = (self.spans.as_mut(), self.trace) {
            em.enter(sink, name, pred);
        }
    }

    /// Closes the innermost open span when span recording is on.
    pub(crate) fn span_exit(&mut self) {
        if let (Some(em), Some(sink)) = (self.spans.as_mut(), self.trace) {
            em.exit(sink);
        }
    }

    pub(crate) fn unif(&self, b: &mut Bindings, t1: &Term, t2: &Term) -> bool {
        if self.opts.occur_check {
            unify_occurs(b, t1, t2)
        } else {
            unify(b, t1, t2)
        }
    }

    pub(crate) fn push(&mut self, task: Task) {
        let class = match &task {
            Task::Expand(n) => {
                if !self
                    .seen_nodes
                    .insert((n.subgoal, n.split, n.canon.root_id()))
                {
                    return;
                }
                TaskClass::Expand
            }
            Task::Return(..) => TaskClass::Return,
        };
        // Under the parallel driver every enqueued task is one unit of the
        // run-wide pending-work count (decremented after execution); the
        // count only covers tasks that actually enter a queue, so the
        // seen-node drop above must come first.
        if let Some(par) = &self.par {
            par.on_enqueue();
        }
        self.scheduler.push(class, task);
    }

    pub(crate) fn run(
        &mut self,
        goals: &[Term],
        template: &[Term],
        b0: &Bindings,
    ) -> Result<Evaluation, EngineError> {
        // A span left open by an `?` early return below is fine: the
        // recorder clamps open spans to the last observed timestamp.
        self.span_enter("evaluate", None);
        let root = self.seed_root(goals, template, b0);
        self.drain()?;
        if self.truncated.is_some() {
            self.settle()?;
        }
        let truncated = self.truncated.take();
        if truncated.is_none() {
            self.span_enter("completion", None);
            for s in &mut self.subgoals {
                s.complete = true;
                if let Some(sink) = self.trace {
                    sink.event(&TraceEvent::SubgoalComplete {
                        pred: s.functor,
                        answers: s.answers.len(),
                        bytes: s.table_bytes(),
                    });
                }
            }
            self.span_exit(); // completion
        }
        // Tables of a truncated run stay unmarked (`complete == false`) —
        // their answers are genuine but not known exhaustive — yet the byte
        // accounting invariants hold either way.
        debug_assert_eq!(
            self.stats.table_bytes,
            self.subgoals
                .iter()
                .map(|s| s.rescan_bytes(&self.arena))
                .sum::<usize>(),
            "incremental table-byte accounting drifted from the tables"
        );
        debug_assert!(
            self.subgoals
                .iter()
                .all(|s| s.byte_breakdown().attributed() == s.table_bytes()),
            "per-table byte attribution does not sum to table_bytes"
        );
        // One final snapshot closes every health-reporting run and stamps
        // every truncation; a run with neither takes no timestamp here.
        let truncation = if truncated.is_some() || self.health.is_some() {
            let snap = self.health_snapshot(now_ns());
            if self.health.is_some() {
                if let Some(sink) = self.trace {
                    sink.health(&snap);
                }
            }
            truncated.map(|reason| Truncation {
                reason,
                snapshot: snap,
            })
        } else {
            None
        };
        self.span_exit(); // evaluate
        Ok(Evaluation {
            subgoals: std::mem::take(&mut self.subgoals),
            root,
            stats: self.stats,
            scheduler: self.scheduler.name(),
            arena: std::mem::take(&mut self.arena),
            truncation,
            parallel: None,
        })
    }

    /// Creates the synthetic `$query` root subgoal and schedules the root
    /// derivation node. Shared by the sequential [`Machine::run`] prologue
    /// and the parallel driver's worker 0.
    pub(crate) fn seed_root(&mut self, goals: &[Term], template: &[Term], b0: &Bindings) -> usize {
        let root_f = Functor::new("$query", template.len());
        let key = self.arena.canonicalize(b0, template);
        let root = self.subgoals.len();
        self.stats.subgoals += 1;
        let state = SubgoalState::new(root_f, key, &self.arena);
        let bytes = state.table_bytes();
        self.stats.table_bytes += bytes;
        if let Some(sink) = self.trace {
            let call = self.arena.terms(&key);
            sink.event(&TraceEvent::NewSubgoal {
                pred: root_f,
                call: &call,
                bytes,
            });
        }
        self.subgoals.push(state);
        let node = Node {
            subgoal: root,
            split: template.len(),
            canon: self.arena.canonicalize2(b0, template, goals),
            prov: self.fresh_prov(),
        };
        self.push(Task::Expand(node));
        root
    }

    /// Executes one worklist task, wrapped in its per-task span. Per-task
    /// spans attribute time to the predicate whose table the task serves:
    /// the node's own subgoal for an expansion, the watched table for an
    /// answer return.
    pub(crate) fn step(&mut self, task: Task) -> Result<(), EngineError> {
        let spans_on = self.spans.is_some();
        match task {
            Task::Expand(n) => {
                if spans_on {
                    let pred = self.subgoals[n.subgoal].functor;
                    self.span_enter("dispatch", Some(pred));
                }
                let r = self.expand(n);
                if spans_on {
                    self.span_exit();
                }
                r
            }
            Task::Return(c, a) => {
                if spans_on {
                    let pred = self.subgoals[self.consumers[c].watched].functor;
                    self.span_enter("answer_return", Some(pred));
                }
                let r = self.return_answer(c, a);
                if spans_on {
                    self.span_exit();
                }
                r
            }
        }
    }

    fn drain(&mut self) -> Result<(), EngineError> {
        // One sample of the initial state, then one after every task — a
        // run of `steps` tasks yields `steps + 1` samples (negation
        // subcomputations run their own drain and interleave additional
        // samples on the shared sink).
        if self.counters_on {
            self.sample_counters();
        }
        while let Some(task) = self.scheduler.pop() {
            self.stats.steps += 1;
            // Budget trips are graceful: stop scheduling, keep every table
            // row derived so far, and let `run` hand back a truncated
            // evaluation. The popped task is dropped unexecuted (it is
            // counted, preserving the historical step-limit boundary).
            if self.budgets_on {
                if let Some(reason) = self.budget_tripped() {
                    self.truncated = Some(reason);
                    break;
                }
            }
            self.step(task)?;
            if self.counters_on {
                self.sample_counters();
            }
            if self.health.is_some() {
                self.health_tick();
            }
            // A negation subcomputation may have tripped a budget mid-task;
            // stop before expanding anything it scheduled.
            if self.truncated.is_some() {
                break;
            }
        }
        Ok(())
    }

    /// Bounded delivery pass after a budget trip. The drain loop stops the
    /// moment a budget trips, which can leave answers derived *before* the
    /// trip parked in queued [`Task::Return`]s — genuine derivations that
    /// would otherwise never reach their consumers or the root `$query`
    /// table. This pass pops everything queued at trip time, executes only
    /// the answer returns (expansions are dropped: they would grow the
    /// computation the budget just stopped), then discards whatever those
    /// deliveries scheduled. Soundness: a return only propagates an answer
    /// that is already a derivation, so the partial answer set stays a
    /// prefix of the fixpoint. Boundedness: the pass is capped at the
    /// pre-trip queue, so a diverging program cannot keep it alive.
    /// Settle deliveries are not counted as steps — budget accounting is
    /// over once the trip is recorded.
    ///
    /// Two rounds, because a return does not insert by itself: it advances
    /// the consumer and schedules the advanced node as an expansion, and
    /// only expanding a node with no remaining goals performs the insert.
    /// Round one executes the queued returns; round two executes exactly
    /// the spawned continuations that are pure inserts (clause bodies the
    /// delivery completed). Recursive chains need a further return →
    /// expand link, which never runs — that is what bounds the pass.
    pub(crate) fn settle(&mut self) -> Result<(), EngineError> {
        let mut queued = Vec::new();
        while let Some(task) = self.scheduler.pop() {
            queued.push(task);
        }
        for task in queued {
            if let Task::Return(c, a) = task {
                self.return_answer(c, a)?;
            }
        }
        let mut continuations = Vec::new();
        while let Some(task) = self.scheduler.pop() {
            continuations.push(task);
        }
        for task in continuations {
            if let Task::Expand(n) = task {
                // `canon` packs template ++ goals; length `split` means no
                // goals remain and expansion is exactly the answer insert.
                let mut b = Bindings::new();
                if self.arena.instantiate(&n.canon, &mut b).len() == n.split {
                    self.expand(n)?;
                }
            }
        }
        // Inserts wake consumers and schedule fresh returns; the run is
        // over, so drop them and report a drained worklist.
        while self.scheduler.pop().is_some() {}
        Ok(())
    }

    /// `Some(empty trail)` when provenance recording is on, `None` (no
    /// allocation) otherwise.
    pub(crate) fn fresh_prov(&self) -> Option<Box<NodeProv>> {
        self.opts.record_provenance.then(Box::<NodeProv>::default)
    }

    pub(crate) fn make_node(
        &mut self,
        subgoal: usize,
        split: usize,
        b: &Bindings,
        template: &[Term],
        goals: &[Term],
        prov: Option<Box<NodeProv>>,
    ) -> Node {
        Node {
            subgoal,
            split,
            canon: self.arena.canonicalize2(b, template, goals),
            prov,
        }
    }

    pub(crate) fn expand(&mut self, node: Node) -> Result<(), EngineError> {
        let mut b = Bindings::new();
        let ts = self.arena.instantiate(&node.canon, &mut b);
        let (template, goals) = ts.split_at(node.split);
        let Some((g, rest)) = goals.split_first() else {
            let ans = self.arena.canonicalize(&b, template);
            self.add_answer(node.subgoal, ans, node.prov);
            return Ok(());
        };
        self.solve_goal(
            node.subgoal,
            node.split,
            template,
            g,
            rest,
            &mut b,
            node.prov,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn solve_goal(
        &mut self,
        sid: usize,
        split: usize,
        template: &[Term],
        g: &Term,
        rest: &[Term],
        b: &mut Bindings,
        prov: Option<Box<NodeProv>>,
    ) -> Result<(), EngineError> {
        let g = b.resolve(g);
        let f = match g.functor() {
            Some(f) => f,
            None => return Err(EngineError::BadGoal(format!("{g}"))),
        };
        let name = sym_name(f.name);
        let args = g.args();
        match (name.as_str(), f.arity) {
            (",", 2) => {
                let mut goals = vec![args[0].clone(), args[1].clone()];
                goals.extend_from_slice(rest);
                let n = self.make_node(sid, split, b, template, &goals, prov);
                self.push(Task::Expand(n));
                Ok(())
            }
            (";", 2) => {
                // (C -> T ; E) gets soft if-then-else semantics:
                // (C, T) or (\+ C, E).
                let (left, right): (Vec<Term>, Vec<Term>) = if let Term::Struct(s, ite) = &args[0] {
                    if sym_name(*s) == "->" && ite.len() == 2 {
                        (
                            vec![ite[0].clone(), ite[1].clone()],
                            vec![
                                Term::Struct(
                                    tablog_term::intern("\\+"),
                                    vec![ite[0].clone()].into(),
                                ),
                                args[1].clone(),
                            ],
                        )
                    } else {
                        (vec![args[0].clone()], vec![args[1].clone()])
                    }
                } else {
                    (vec![args[0].clone()], vec![args[1].clone()])
                };
                for branch in [left, right] {
                    let mut goals = branch;
                    goals.extend_from_slice(rest);
                    let n = self.make_node(sid, split, b, template, &goals, prov.clone());
                    self.push(Task::Expand(n));
                }
                Ok(())
            }
            ("->", 2) => {
                let mut goals = vec![args[0].clone(), args[1].clone()];
                goals.extend_from_slice(rest);
                let n = self.make_node(sid, split, b, template, &goals, prov);
                self.push(Task::Expand(n));
                Ok(())
            }
            ("\\+", 1) | ("not", 1) => {
                let fails = !self.provable(&args[0], b)?;
                // A truncated subcomputation cannot witness failure: its
                // empty answer set proves nothing, so the continuation must
                // not be scheduled on the strength of it.
                if fails && self.truncated.is_none() {
                    let n = self.make_node(sid, split, b, template, rest, prov);
                    self.push(Task::Expand(n));
                }
                Ok(())
            }
            // Cut is approximated by `true`: sound (a superset of solutions)
            // for the minimal-model analyses this engine serves; see README.
            ("!", 0) | ("true", 0) => {
                let n = self.make_node(sid, split, b, template, rest, prov);
                self.push(Task::Expand(n));
                Ok(())
            }
            ("call", 1) => {
                let mut goals = vec![args[0].clone()];
                goals.extend_from_slice(rest);
                let n = self.make_node(sid, split, b, template, &goals, prov);
                self.push(Task::Expand(n));
                Ok(())
            }
            _ => {
                if let Some(imp) = lookup_builtin(f) {
                    return self.solve_builtin(imp, sid, split, template, &g, rest, b, prov);
                }
                if !self.db.is_defined(f) {
                    return match self.opts.unknown {
                        Unknown::Fail => Ok(()),
                        Unknown::Error => Err(EngineError::UnknownPredicate(f)),
                    };
                }
                if self.db.is_tabled(f) {
                    self.solve_tabled(f, sid, split, template, &g, rest, b, prov)
                } else {
                    self.solve_sld(f, sid, split, template, &g, rest, b, prov)
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn solve_tabled(
        &mut self,
        f: Functor,
        sid: usize,
        split: usize,
        template: &[Term],
        g: &Term,
        rest: &[Term],
        b: &mut Bindings,
        prov: Option<Box<NodeProv>>,
    ) -> Result<(), EngineError> {
        let opts = self.opts;
        let mut key = if opts.forward_subsumption {
            let open = self.open_call_key(f);
            if let Some(sink) = self.trace {
                // Only report calls that subsumption actually generalized.
                let specific = self.arena.canonicalize(b, g.args());
                if specific != open {
                    let call = self.arena.terms(&specific);
                    let subsumer = self.arena.terms(&open);
                    sink.event(&TraceEvent::SubsumedCall {
                        pred: f,
                        call: &call,
                        subsumer: &subsumer,
                    });
                }
            }
            open
        } else {
            self.arena.canonicalize(b, g.args())
        };
        if let Some(hook) = &opts.call_abstraction {
            let abstracted = hook(&mut self.arena, &key);
            if let Some(sink) = self.trace {
                if abstracted != key {
                    let original = self.arena.terms(&key);
                    let widened = self.arena.terms(&abstracted);
                    sink.event(&TraceEvent::CallAbstracted {
                        pred: f,
                        original: &original,
                        abstracted: &widened,
                    });
                }
            }
            key = abstracted;
        }
        // Under the parallel driver, a call whose predicate SCC belongs to
        // another worker is not tabled here: the consumer node parks in
        // `remote_waits` and a call message carries the canonical pattern
        // to the owner, who back-fills existing answers and forwards every
        // later insert (each answer reaches the waiting node exactly once).
        if let Some(owner) = self.remote_owner(f) {
            let mut goals = vec![g.clone()];
            goals.extend_from_slice(rest);
            let node = self.make_node(sid, split, b, template, &goals, prov);
            let token = self.remote_waits.len();
            self.remote_waits.push((f, node));
            let call = self.arena.terms(&key);
            let par = self.par.as_ref().expect("remote owner implies parallel");
            par.send(
                owner,
                Msg::Call {
                    pred: f,
                    call,
                    from: par.me,
                    token,
                    flow: None,
                },
            );
            return Ok(());
        }
        let watched = self.find_or_create_subgoal(f, key)?;
        // Reconstitute this node (with the tabled goal still selected) as a
        // consumer of the callee's table. The trail parks on the consumer;
        // each answer return extends a copy of it with the consumed answer.
        let mut goals = vec![g.clone()];
        goals.extend_from_slice(rest);
        let node = self.make_node(sid, split, b, template, &goals, prov);
        let cid = self.consumers.len();
        // Back-fill the answers the table already holds and park the cursor
        // at the high-water mark; `add_answer` advances it from there, so
        // the consumer never rescans `0..answers.len()` on later wake-ups.
        let known = self.subgoals[watched].answers.len();
        self.consumers.push(Consumer {
            node,
            watched,
            next: known,
        });
        self.subgoals[watched].consumers.push(cid);
        for idx in 0..known {
            self.push(Task::Return(cid, idx));
        }
        Ok(())
    }

    pub(crate) fn find_or_create_subgoal(
        &mut self,
        f: Functor,
        key: CanonicalTerm,
    ) -> Result<usize, EngineError> {
        if let Some(&sid) = self.lookup.get(&(f, key.root_id())) {
            return Ok(sid);
        }
        let sid = self.subgoals.len();
        self.stats.subgoals += 1;
        let state = SubgoalState::new(f, key, &self.arena);
        let bytes = state.table_bytes();
        self.stats.table_bytes += bytes;
        if let Some(sink) = self.trace {
            let call = self.arena.terms(&key);
            sink.event(&TraceEvent::NewSubgoal {
                pred: f,
                call: &call,
                bytes,
            });
        }
        self.subgoals.push(state);
        self.lookup.insert((f, key.root_id()), sid);
        // Spawn generator nodes: one per resolving program clause. Each
        // starts a fresh derivation trail rooted at its clause — the answers
        // it eventually produces are supported by that clause.
        let mut b = Bindings::new();
        let call_args = self.arena.instantiate(&key, &mut b);
        let db = self.db;
        let spans_on = self.spans.is_some();
        if spans_on {
            self.span_enter("clause_resolution", Some(f));
        }
        for (cidx, clause) in db.matching_clauses_iter(f, call_args.first()) {
            self.stats.clause_resolutions += 1;
            if let Some(sink) = self.trace {
                sink.event(&TraceEvent::ClauseResolution { pred: f });
            }
            let m = b.mark();
            let base = b.fresh_block(clause.nvars);
            let mut rename = |t: &Term| t.map_vars(&mut |v| Term::Var(Var(base.0 + v.0)));
            let head = rename(&clause.head);
            let ok = call_args
                .iter()
                .zip(head.args().iter())
                .all(|(x, y)| self.unif(&mut b, x, y));
            if ok {
                let goals: Vec<Term> = clause.body.iter().map(&mut rename).collect();
                let prov = self.opts.record_provenance.then(|| {
                    Box::new(NodeProv {
                        clauses: vec![ClauseRef {
                            pred: f,
                            index: cidx,
                        }],
                        premises: Vec::new(),
                    })
                });
                let n = self.make_node(sid, f.arity, &b, &call_args, &goals, prov);
                self.push(Task::Expand(n));
            }
            b.undo_to(m);
        }
        if spans_on {
            self.span_exit();
        }
        Ok(sid)
    }

    /// `Some(worker)` when this machine is a parallel worker and `f`'s SCC
    /// is owned by a *different* worker; `None` for sequential machines and
    /// for predicates this worker owns (or claims, on first touch).
    fn remote_owner(&self, f: Functor) -> Option<usize> {
        let par = self.par.as_ref()?;
        let owner = par.owner_of(f);
        (owner != par.me).then_some(owner)
    }

    fn open_call_key(&mut self, f: Functor) -> CanonicalTerm {
        let b = Bindings::new();
        let args: Vec<Term> = (0..f.arity).map(|i| Term::Var(Var(i as u32))).collect();
        self.arena.canonicalize(&b, &args)
    }
}

pub(crate) fn flatten_conj(t: &Term, out: &mut Vec<Term>) {
    if let Term::Struct(s, args) = t {
        if args.len() == 2 && sym_name(*s) == "," {
            flatten_conj(&args[0], out);
            flatten_conj(&args[1], out);
            return;
        }
    }
    out.push(t.clone());
}
