//! Engine sessions: the public entry point ([`Engine`]) and the completed
//! evaluation it produces ([`Evaluation`]).
//!
//! An `Engine` is a loaded program plus options — cheap to clone and
//! `Send`, so the parallel multi-program driver can hand engines to worker
//! threads. Each call to [`Engine::evaluate`] spins up a private machine
//! with its own session [`TermArena`] and scheduler; the finished
//! [`Evaluation`] carries the arena, so the entire interned forest of a run
//! is released when the evaluation is dropped (no cross-run accumulation,
//! no shared mutable state between concurrent sessions).

use crate::budget::Truncation;
use crate::database::{Database, LoadMode};
use crate::error::EngineError;
use crate::machine::{flatten_conj, Machine};
use crate::options::EngineOptions;
use crate::table::{SubgoalState, SubgoalView, TableStats};
use tablog_term::{Bindings, Functor, Term, TermArena};

/// A loaded program plus evaluation options; the entry point of the crate.
///
/// See the [crate-level documentation](crate) for an overview and example.
/// `Engine` is `Send`: it owns no session state (each evaluation gets a
/// fresh arena and worklist), so engines can be moved to — or, being
/// `Sync` too, shared across — worker threads.
#[derive(Clone, Debug, Default)]
pub struct Engine {
    db: Database,
    opts: EngineOptions,
}

impl Engine {
    /// Wraps an existing database with options.
    pub fn new(db: Database, opts: EngineOptions) -> Self {
        Engine { db, opts }
    }

    /// Parses and loads `src` in [`LoadMode::Dynamic`] with default options.
    ///
    /// # Errors
    ///
    /// Returns a parse or load error.
    pub fn from_source(src: &str) -> Result<Self, EngineError> {
        Engine::from_source_with(src, LoadMode::Dynamic, EngineOptions::default())
    }

    /// Parses and loads `src` with explicit load mode and options.
    ///
    /// # Errors
    ///
    /// Returns a parse or load error.
    pub fn from_source_with(
        src: &str,
        mode: LoadMode,
        opts: EngineOptions,
    ) -> Result<Self, EngineError> {
        let program = tablog_syntax::parse_program(src)?;
        let mut db = Database::new(mode);
        db.load(&program)?;
        Ok(Engine { db, opts })
    }

    /// The underlying database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the database (for `assert`-style updates between
    /// evaluations).
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The evaluation options.
    pub fn options(&self) -> &EngineOptions {
        &self.opts
    }

    /// Mutable access to the evaluation options.
    pub fn options_mut(&mut self) -> &mut EngineOptions {
        &mut self.opts
    }

    /// Parses `goal` and evaluates it to completion, returning one row per
    /// answer, with columns for the goal's named variables.
    ///
    /// # Errors
    ///
    /// Returns parse errors and any [`EngineError`] raised during
    /// evaluation.
    pub fn solve(&self, goal: &str) -> Result<Solutions, EngineError> {
        let mut b = Bindings::new();
        let (t, names) = tablog_syntax::parse_term(goal, &mut b)?;
        let mut goals = Vec::new();
        flatten_conj(&t, &mut goals);
        let template: Vec<Term> = names.iter().map(|(_, v)| Term::Var(*v)).collect();
        let eval = self.evaluate(&goals, &template, &b)?;
        Ok(Solutions {
            names: names.into_iter().map(|(n, _)| n).collect(),
            rows: eval.root_answers(),
            truncation: eval.truncation().copied(),
        })
    }

    /// Evaluates `goals` (left to right) to completion. `template` lists the
    /// terms whose instances constitute the query's answers; `bindings` is
    /// the store in which the goal/template variables live (it is only read).
    ///
    /// The returned [`Evaluation`] exposes the complete call and answer
    /// tables — the raw material of the paper's analyses.
    ///
    /// # Errors
    ///
    /// Returns any [`EngineError`] raised during evaluation.
    pub fn evaluate(
        &self,
        goals: &[Term],
        template: &[Term],
        bindings: &Bindings,
    ) -> Result<Evaluation, EngineError> {
        self.evaluate_with_opts(&self.opts, goals, template, bindings)
    }

    /// Parses `goal`, evaluates it to completion, and returns the per-table
    /// heap attribution of the run (see [`crate::TableReport`]).
    ///
    /// # Errors
    ///
    /// Returns parse errors and any [`EngineError`] raised during
    /// evaluation.
    pub fn table_report(&self, goal: &str) -> Result<crate::TableReport, EngineError> {
        let mut b = Bindings::new();
        let (t, names) = tablog_syntax::parse_term(goal, &mut b)?;
        let mut goals = Vec::new();
        flatten_conj(&t, &mut goals);
        let template: Vec<Term> = names.iter().map(|(_, v)| Term::Var(*v)).collect();
        let eval = self.evaluate(&goals, &template, &b)?;
        Ok(eval.table_report())
    }

    /// As [`Engine::evaluate`], but under one-off options overriding the
    /// engine's own — how [`Engine::explain`] forces provenance recording
    /// on for a single query without mutating the engine.
    ///
    /// # Errors
    ///
    /// Returns any [`EngineError`] raised during evaluation.
    pub fn evaluate_with_opts(
        &self,
        opts: &EngineOptions,
        goals: &[Term],
        template: &[Term],
        bindings: &Bindings,
    ) -> Result<Evaluation, EngineError> {
        // Provenance trails reference answer indices across tables, which
        // the cross-worker merge does not preserve; explanation queries run
        // sequentially even under the parallel strategy. The downgrade is
        // announced (once per evaluation) rather than silent: a user asking
        // for both gets the provenance, not the parallelism.
        if opts.scheduling == crate::options::Scheduling::Parallel {
            if !opts.record_provenance {
                return crate::parallel::run_parallel(&self.db, opts, goals, template, bindings);
            }
            eprintln!(
                "warning: --record-provenance forces sequential evaluation; \
                 ignoring --scheduler parallel"
            );
        }
        let mut m = Machine::new(&self.db, opts);
        m.run(goals, template, bindings)
    }
}

/// All answers to a [`Engine::solve`] query.
#[derive(Clone, Debug)]
pub struct Solutions {
    names: Vec<String>,
    rows: Vec<Vec<Term>>,
    truncation: Option<Truncation>,
}

impl Solutions {
    /// Number of answers.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the query failed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The named variables of the query, in source order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Answer rows; column `i` instantiates `names()[i]`. Distinct rows may
    /// share variables (non-ground answers keep canonical variables).
    pub fn rows(&self) -> &[Vec<Term>] {
        &self.rows
    }

    /// The binding of variable `name` in answer `row`.
    pub fn get(&self, row: usize, name: &str) -> Option<&Term> {
        let col = self.names.iter().position(|n| n == name)?;
        self.rows.get(row)?.get(col)
    }

    /// `Some` when a resource budget cut the evaluation short: the rows are
    /// genuine answers but possibly not all of them. `None` for a run that
    /// completed its tables.
    pub fn truncation(&self) -> Option<&Truncation> {
        self.truncation.as_ref()
    }

    /// Whether a resource budget cut the evaluation short.
    pub fn is_truncated(&self) -> bool {
        self.truncation.is_some()
    }

    /// Renders each answer as `X = t1, Y = t2`.
    pub fn to_strings(&self) -> Vec<String> {
        self.rows
            .iter()
            .map(|row| {
                if self.names.is_empty() {
                    "true".to_owned()
                } else {
                    let mut w = tablog_syntax::TermWriter::new();
                    self.names
                        .iter()
                        .zip(row)
                        .map(|(n, t)| format!("{n} = {}", w.write(t)))
                        .collect::<Vec<_>>()
                        .join(", ")
                }
            })
            .collect()
    }
}

/// The completed tables of one evaluation: every tabled subgoal encountered
/// (the *call table*, which the analyses read for input patterns) together
/// with its answers (the *answer table*). Owns the session [`TermArena`]
/// that minted every canonical term inside — drop the evaluation and the
/// whole interned forest goes with it.
#[derive(Clone, Debug)]
pub struct Evaluation {
    pub(crate) subgoals: Vec<SubgoalState>,
    pub(crate) root: usize,
    pub(crate) stats: TableStats,
    /// Name of the scheduling strategy the run used.
    pub(crate) scheduler: &'static str,
    pub(crate) arena: TermArena,
    /// `Some` when a resource budget stopped the run before the worklist
    /// drained; the tables then hold a sound prefix of the fixpoint and
    /// stay unmarked complete.
    pub(crate) truncation: Option<Truncation>,
    /// Load-balance and message-flow attribution, `Some` exactly when the
    /// parallel strategy actually ran (a provenance downgrade to sequential
    /// leaves it `None` — the honest record of what executed).
    pub(crate) parallel: Option<crate::parallel::ParallelReport>,
}

impl Evaluation {
    /// Views of every subgoal table, including the synthetic `$query` root.
    pub fn subgoals(&self) -> impl Iterator<Item = SubgoalView<'_>> {
        self.subgoals.iter().map(|s| SubgoalView {
            state: s,
            arena: &self.arena,
        })
    }

    /// Views of the subgoals of one predicate.
    pub fn subgoals_of(&self, f: Functor) -> Vec<SubgoalView<'_>> {
        self.subgoals
            .iter()
            .filter(|s| s.functor == f)
            .map(|s| SubgoalView {
                state: s,
                arena: &self.arena,
            })
            .collect()
    }

    /// All answers of a predicate, merged across its call patterns.
    pub fn answers_of(&self, f: Functor) -> Vec<Term> {
        self.subgoals_of(f)
            .iter()
            .flat_map(|v| v.answers())
            .collect()
    }

    /// All recorded calls of a predicate — its input patterns.
    pub fn calls_of(&self, f: Functor) -> Vec<Term> {
        self.subgoals_of(f).iter().map(|v| v.call_term()).collect()
    }

    /// Answer tuples of the root query (instances of the query template).
    pub fn root_answers(&self) -> Vec<Vec<Term>> {
        self.subgoals[self.root]
            .answers
            .iter()
            .map(|c| self.arena.terms(c))
            .collect()
    }

    /// Evaluation statistics, including total table bytes.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// Estimated total table space in bytes (the paper's last column).
    pub fn table_bytes(&self) -> usize {
        self.stats.table_bytes
    }

    /// Recomputes table space by walking every table with a fresh
    /// shared-structure charge set, bypassing the incremental accounting in
    /// `stats().table_bytes`. The two must agree; this exists so tests (and
    /// doubtful users) can check that they do.
    pub fn rescan_table_bytes(&self) -> usize {
        self.subgoals
            .iter()
            .map(|s| s.rescan_bytes(&self.arena))
            .sum()
    }

    /// Per-table heap attribution: one [`crate::TableRow`] per call table,
    /// whose attributed bytes sum exactly to [`Evaluation::table_bytes`].
    pub fn table_report(&self) -> crate::TableReport {
        crate::TableReport::from_eval(self)
    }

    /// Name of the scheduling strategy that produced this evaluation
    /// (see [`crate::Scheduling`]).
    pub fn scheduler(&self) -> &'static str {
        self.scheduler
    }

    /// The session arena holding this evaluation's canonical terms.
    pub fn arena(&self) -> &TermArena {
        &self.arena
    }

    /// Index of the synthetic `$query` root subgoal.
    pub fn root_index(&self) -> usize {
        self.root
    }

    /// `Some` when a resource budget (step, deadline, or table-byte) cut
    /// the run short. Every answer in the tables is still a genuine
    /// derivation — what is missing is completeness.
    pub fn truncation(&self) -> Option<&Truncation> {
        self.truncation.as_ref()
    }

    /// Whether a resource budget cut the run short.
    pub fn is_truncated(&self) -> bool {
        self.truncation.is_some()
    }

    /// Per-worker load and message-flow attribution, `Some` exactly when
    /// the parallel strategy produced this evaluation (see
    /// [`crate::ParallelReport`]).
    pub fn parallel_report(&self) -> Option<&crate::parallel::ParallelReport> {
        self.parallel.as_ref()
    }

    /// Demands complete tables: returns the evaluation unchanged when the
    /// run drained its worklist, or [`EngineError::Truncated`] when a
    /// budget stopped it early. Callers whose results are only sound over
    /// the full fixpoint — the paper's analyses — gate on this instead of
    /// silently consuming a partial model.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Truncated`] with the tripped budget.
    pub fn require_complete(self) -> Result<Evaluation, EngineError> {
        match self.truncation {
            Some(t) => Err(EngineError::Truncated(t.reason)),
            None => Ok(self),
        }
    }

    pub(crate) fn states(&self) -> &[SubgoalState] {
        &self.subgoals
    }
}
