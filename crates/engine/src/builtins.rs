//! Builtin predicates.
//!
//! Two flavours exist: *deterministic* builtins bind directly into the
//! current [`Bindings`] and succeed or fail once; *nondeterministic*
//! builtins enumerate alternative argument tuples which the machine unifies
//! against the call one by one (trailing and undoing between alternatives).
//!
//! The analysis-specific `$iff/N` family lives here too: `$iff(X, Y1…Yk)`
//! holds iff `X ⇔ Y1 ∧ … ∧ Yk` over the constants `true`/`false`. Its
//! success set is exactly the truth table the paper uses to represent
//! Prop-domain boolean formulae (Section 3.1); the builtin enumerates only
//! the rows consistent with already-bound arguments, which is the engine
//! analog of computing with delta-sets.

use crate::error::EngineError;
use std::cmp::Ordering;
use tablog_term::{atom, int, intern, structure, sym_name, var, Bindings, Functor, Term};

/// A deterministic builtin: binds into `b`, returns whether it succeeded.
pub type DetFn = fn(&mut Bindings, &[Term]) -> Result<bool, EngineError>;
/// A nondeterministic builtin: returns alternative argument tuples, each to
/// be unified pairwise against the call's arguments.
pub type NonDetFn = fn(&Bindings, &[Term]) -> Result<Vec<Vec<Term>>, EngineError>;

/// Dispatch entry for a builtin predicate.
///
/// Exposed so that alternative evaluators (the bottom-up baseline in
/// `tablog-magic`) can share the engine's builtin semantics.
#[derive(Clone, Copy)]
pub enum BuiltinImpl {
    /// Binds directly into the store; succeeds at most once.
    Det(DetFn),
    /// Enumerates alternative argument tuples.
    NonDet(NonDetFn),
}

/// Looks up the builtin implementing `f`, if any.
pub fn lookup_builtin(f: Functor) -> Option<BuiltinImpl> {
    use BuiltinImpl::*;
    let name = sym_name(f.name);
    if name == "$iff" && f.arity >= 1 {
        return Some(NonDet(iff));
    }
    if name == "$absunify" && f.arity == 2 {
        return Some(Det(|b, a| Ok(abs_unify(b, &a[0], &a[1]))));
    }
    if name == "$absground" && f.arity == 1 {
        return Some(Det(|b, a| {
            abs_ground(b, &a[0]);
            Ok(true)
        }));
    }
    Some(match (name.as_str(), f.arity) {
        ("true", 0) => Det(|_, _| Ok(true)),
        ("fail", 0) | ("false", 0) => Det(|_, _| Ok(false)),
        ("=", 2) => Det(|b, a| Ok(tablog_term::unify(b, &a[0], &a[1]))),
        ("\\=", 2) => Det(|b, a| {
            let m = b.mark();
            let ok = tablog_term::unify(b, &a[0], &a[1]);
            b.undo_to(m);
            Ok(!ok)
        }),
        ("==", 2) => Det(|b, a| Ok(b.resolve(&a[0]) == b.resolve(&a[1]))),
        ("\\==", 2) => Det(|b, a| Ok(b.resolve(&a[0]) != b.resolve(&a[1]))),
        ("@<", 2) => Det(|b, a| Ok(cmp(b, a) == Ordering::Less)),
        ("@>", 2) => Det(|b, a| Ok(cmp(b, a) == Ordering::Greater)),
        ("@=<", 2) => Det(|b, a| Ok(cmp(b, a) != Ordering::Greater)),
        ("@>=", 2) => Det(|b, a| Ok(cmp(b, a) != Ordering::Less)),
        ("is", 2) => Det(|b, a| {
            let v = arith_eval(b, &a[1])?;
            Ok(tablog_term::unify(b, &a[0], &int(v)))
        }),
        ("=:=", 2) => Det(|b, a| Ok(arith_eval(b, &a[0])? == arith_eval(b, &a[1])?)),
        ("=\\=", 2) => Det(|b, a| Ok(arith_eval(b, &a[0])? != arith_eval(b, &a[1])?)),
        ("<", 2) => Det(|b, a| Ok(arith_eval(b, &a[0])? < arith_eval(b, &a[1])?)),
        (">", 2) => Det(|b, a| Ok(arith_eval(b, &a[0])? > arith_eval(b, &a[1])?)),
        ("=<", 2) => Det(|b, a| Ok(arith_eval(b, &a[0])? <= arith_eval(b, &a[1])?)),
        (">=", 2) => Det(|b, a| Ok(arith_eval(b, &a[0])? >= arith_eval(b, &a[1])?)),
        ("var", 1) => Det(|b, a| Ok(b.walk(&a[0]).is_var())),
        ("nonvar", 1) => Det(|b, a| Ok(!b.walk(&a[0]).is_var())),
        ("atom", 1) => Det(|b, a| Ok(matches!(b.walk(&a[0]), Term::Atom(_)))),
        ("number", 1) | ("integer", 1) => Det(|b, a| Ok(matches!(b.walk(&a[0]), Term::Int(_)))),
        ("atomic", 1) => Det(|b, a| Ok(matches!(b.walk(&a[0]), Term::Atom(_) | Term::Int(_)))),
        ("compound", 1) => Det(|b, a| Ok(matches!(b.walk(&a[0]), Term::Struct(_, _)))),
        ("ground", 1) => Det(|b, a| Ok(b.resolve(&a[0]).is_ground())),
        ("functor", 3) => Det(functor3),
        ("arg", 3) => Det(arg3),
        ("=..", 2) => Det(univ),
        ("between", 3) => NonDet(between),
        _ => return None,
    })
}

/// `true` if `f` names a builtin (including control constructs the machine
/// itself interprets).
pub fn is_builtin(f: Functor) -> bool {
    if lookup_builtin(f).is_some() {
        return true;
    }
    let name = sym_name(f.name);
    matches!(
        (name.as_str(), f.arity),
        (",", 2) | (";", 2) | ("->", 2) | ("\\+", 1) | ("not", 1) | ("call", 1) | ("!", 0)
    )
}

/// Functors of all named builtins with fixed arity (used by the magic-sets
/// transform to leave builtin literals untouched).
pub fn builtin_functors() -> Vec<Functor> {
    let names: &[(&str, usize)] = &[
        ("true", 0),
        ("fail", 0),
        ("false", 0),
        ("=", 2),
        ("\\=", 2),
        ("==", 2),
        ("\\==", 2),
        ("@<", 2),
        ("@>", 2),
        ("@=<", 2),
        ("@>=", 2),
        ("is", 2),
        ("=:=", 2),
        ("=\\=", 2),
        ("<", 2),
        (">", 2),
        ("=<", 2),
        (">=", 2),
        ("var", 1),
        ("nonvar", 1),
        ("atom", 1),
        ("number", 1),
        ("integer", 1),
        ("atomic", 1),
        ("compound", 1),
        ("ground", 1),
        ("functor", 3),
        ("arg", 3),
        ("=..", 2),
        ("between", 3),
    ];
    names.iter().map(|(n, a)| Functor::new(n, *a)).collect()
}

fn cmp(b: &Bindings, a: &[Term]) -> Ordering {
    term_compare(&b.resolve(&a[0]), &b.resolve(&a[1]))
}

/// Standard order of terms: `Var < Int < Atom < Compound`, compounds by
/// arity, then name, then arguments left to right.
pub fn term_compare(t1: &Term, t2: &Term) -> Ordering {
    fn rank(t: &Term) -> u8 {
        match t {
            Term::Var(_) => 0,
            Term::Int(_) => 1,
            Term::Atom(_) => 2,
            Term::Struct(_, _) => 3,
        }
    }
    match (t1, t2) {
        (Term::Var(v), Term::Var(w)) => v.cmp(w),
        (Term::Int(i), Term::Int(j)) => i.cmp(j),
        (Term::Atom(a), Term::Atom(b)) => sym_name(*a).cmp(&sym_name(*b)),
        (Term::Struct(f, xs), Term::Struct(g, ys)) => xs
            .len()
            .cmp(&ys.len())
            .then_with(|| sym_name(*f).cmp(&sym_name(*g)))
            .then_with(|| {
                xs.iter()
                    .zip(ys.iter())
                    .map(|(x, y)| term_compare(x, y))
                    .find(|o| *o != Ordering::Equal)
                    .unwrap_or(Ordering::Equal)
            }),
        _ => rank(t1).cmp(&rank(t2)),
    }
}

/// Evaluates an arithmetic expression under `b`.
///
/// # Errors
///
/// Fails on unbound variables, non-numeric leaves, unknown function symbols,
/// division by zero, and overflow.
pub fn arith_eval(b: &Bindings, t: &Term) -> Result<i64, EngineError> {
    let w = b.walk(t).clone();
    match &w {
        Term::Int(i) => Ok(*i),
        Term::Var(_) => Err(EngineError::Arith("unbound variable".into())),
        Term::Atom(s) => Err(EngineError::Arith(format!(
            "not a number: {}",
            sym_name(*s)
        ))),
        Term::Struct(s, args) => {
            let name = sym_name(*s);
            let bin = |b: &Bindings, f: fn(i64, i64) -> Option<i64>| -> Result<i64, EngineError> {
                let x = arith_eval(b, &args[0])?;
                let y = arith_eval(b, &args[1])?;
                f(x, y).ok_or_else(|| EngineError::Arith(format!("{name} failed on {x}, {y}")))
            };
            match (name.as_str(), args.len()) {
                ("+", 2) => bin(b, i64::checked_add),
                ("-", 2) => bin(b, i64::checked_sub),
                ("*", 2) => bin(b, i64::checked_mul),
                ("//", 2) | ("/", 2) | ("div", 2) => bin(b, |x, y| x.checked_div(y)),
                ("mod", 2) => bin(b, |x, y| x.checked_rem_euclid(y)),
                ("rem", 2) => bin(b, |x, y| x.checked_rem(y)),
                ("min", 2) => bin(b, |x, y| Some(x.min(y))),
                ("max", 2) => bin(b, |x, y| Some(x.max(y))),
                ("<<", 2) => bin(b, |x, y| x.checked_shl(y.try_into().ok()?)),
                (">>", 2) => bin(b, |x, y| x.checked_shr(y.try_into().ok()?)),
                ("/\\", 2) => bin(b, |x, y| Some(x & y)),
                ("\\/", 2) => bin(b, |x, y| Some(x | y)),
                ("xor", 2) => bin(b, |x, y| Some(x ^ y)),
                ("-", 1) => arith_eval(b, &args[0])?
                    .checked_neg()
                    .ok_or_else(|| EngineError::Arith("negation overflow".into())),
                ("+", 1) => arith_eval(b, &args[0]),
                ("abs", 1) => Ok(arith_eval(b, &args[0])?.abs()),
                _ => Err(EngineError::Arith(format!(
                    "unknown function {name}/{}",
                    args.len()
                ))),
            }
        }
    }
}

/// The atom representing γ, the set of all ground terms, in the Section-5
/// depth-k abstract domain.
pub const GAMMA: &str = "$g";

/// Abstract unification over depth-k terms (`$absunify/2`): the γ atom
/// unifies with any term whose variables it grounds, and variable binding
/// performs the occur check (as the paper's meta-level implementation
/// does). Over-approximating: `γ ⊓ f(…)` keeps each side's own view.
pub fn abs_unify(b: &mut Bindings, t1: &Term, t2: &Term) -> bool {
    let w1 = b.walk(t1).clone();
    let w2 = b.walk(t2).clone();
    let gamma = intern(GAMMA);
    let is_gamma = |t: &Term| matches!(t, Term::Atom(s) if *s == gamma);
    match (&w1, &w2) {
        (Term::Var(v1), Term::Var(v2)) if v1 == v2 => true,
        (Term::Var(v), _) => {
            if b.occurs(*v, &w2) {
                return false;
            }
            b.bind(*v, w2);
            true
        }
        (_, Term::Var(v)) => {
            if b.occurs(*v, &w1) {
                return false;
            }
            b.bind(*v, w1);
            true
        }
        _ if is_gamma(&w1) => {
            abs_ground(b, &w2);
            true
        }
        _ if is_gamma(&w2) => {
            abs_ground(b, &w1);
            true
        }
        (Term::Atom(x), Term::Atom(y)) => x == y,
        (Term::Int(x), Term::Int(y)) => x == y,
        (Term::Struct(f, xs), Term::Struct(g, ys)) => {
            f == g
                && xs.len() == ys.len()
                && xs.iter().zip(ys.iter()).all(|(x, y)| abs_unify(b, x, y))
        }
        _ => false,
    }
}

/// Constrains every unbound variable of `t` to γ (`$absground/1`): the
/// abstraction of "this term is ground".
pub fn abs_ground(b: &mut Bindings, t: &Term) {
    match b.walk(t).clone() {
        Term::Var(v) => b.bind(v, atom(GAMMA)),
        Term::Struct(_, args) => {
            for a in args.iter() {
                abs_ground(b, a);
            }
        }
        _ => {}
    }
}

fn functor3(b: &mut Bindings, a: &[Term]) -> Result<bool, EngineError> {
    let t = b.walk(&a[0]).clone();
    match &t {
        Term::Var(_) => {
            let name = b.walk(&a[1]).clone();
            let n = arith_eval(b, &a[2])?;
            if n < 0 {
                return Err(EngineError::BadArgs("functor/3", "negative arity".into()));
            }
            let built = match (&name, n) {
                (Term::Atom(s), 0) => Term::Atom(*s),
                (Term::Int(i), 0) => Term::Int(*i),
                (Term::Atom(s), n) => {
                    let args: Vec<Term> = (0..n).map(|_| var(b.fresh_var())).collect();
                    Term::Struct(*s, args.into())
                }
                _ => return Err(EngineError::BadArgs("functor/3", "bad name".into())),
            };
            Ok(tablog_term::unify(b, &a[0], &built))
        }
        Term::Atom(s) => {
            Ok(tablog_term::unify(b, &a[1], &Term::Atom(*s))
                && tablog_term::unify(b, &a[2], &int(0)))
        }
        Term::Int(i) => {
            Ok(tablog_term::unify(b, &a[1], &int(*i)) && tablog_term::unify(b, &a[2], &int(0)))
        }
        Term::Struct(s, args) => Ok(tablog_term::unify(b, &a[1], &Term::Atom(*s))
            && tablog_term::unify(b, &a[2], &int(args.len() as i64))),
    }
}

fn arg3(b: &mut Bindings, a: &[Term]) -> Result<bool, EngineError> {
    let n = arith_eval(b, &a[0])?;
    let t = b.walk(&a[1]).clone();
    match &t {
        Term::Struct(_, args) => {
            if n < 1 || n as usize > args.len() {
                return Ok(false);
            }
            let picked = args[n as usize - 1].clone();
            Ok(tablog_term::unify(b, &a[2], &picked))
        }
        _ => Err(EngineError::BadArgs(
            "arg/3",
            "second argument must be compound".into(),
        )),
    }
}

fn univ(b: &mut Bindings, a: &[Term]) -> Result<bool, EngineError> {
    let t = b.walk(&a[0]).clone();
    match &t {
        Term::Var(_) => {
            // Build term from list.
            let items = list_to_vec(b, &a[1]).ok_or_else(|| {
                EngineError::BadArgs("=../2", "second argument must be a proper list".into())
            })?;
            let Some((head, rest)) = items.split_first() else {
                return Err(EngineError::BadArgs("=../2", "empty list".into()));
            };
            let built = match (head, rest.len()) {
                (Term::Atom(s), 0) => Term::Atom(*s),
                (Term::Int(i), 0) => Term::Int(*i),
                (Term::Atom(s), _) => Term::Struct(*s, rest.to_vec().into()),
                _ => return Err(EngineError::BadArgs("=../2", "bad functor".into())),
            };
            Ok(tablog_term::unify(b, &a[0], &built))
        }
        Term::Atom(_) | Term::Int(_) => {
            let l = vec_to_list(vec![t.clone()]);
            Ok(tablog_term::unify(b, &a[1], &l))
        }
        Term::Struct(s, args) => {
            let mut items = vec![Term::Atom(*s)];
            items.extend(args.iter().cloned());
            let l = vec_to_list(items);
            Ok(tablog_term::unify(b, &a[1], &l))
        }
    }
}

/// Converts a (resolved) Prolog list term into a `Vec`, or `None` if it is
/// not a proper list.
fn list_to_vec(b: &Bindings, t: &Term) -> Option<Vec<Term>> {
    let mut out = Vec::new();
    let mut cur = b.walk(t).clone();
    loop {
        match &cur {
            Term::Atom(s) if sym_name(*s) == "[]" => return Some(out),
            Term::Struct(s, args) if args.len() == 2 && sym_name(*s) == "." => {
                out.push(b.resolve(&args[0]));
                cur = b.walk(&args[1]).clone();
            }
            _ => return None,
        }
    }
}

fn vec_to_list(items: Vec<Term>) -> Term {
    let mut l = atom("[]");
    for it in items.into_iter().rev() {
        l = structure(".", vec![it, l]);
    }
    l
}

fn between(b: &Bindings, a: &[Term]) -> Result<Vec<Vec<Term>>, EngineError> {
    let lo = arith_eval(b, &a[0])?;
    let hi = arith_eval(b, &a[1])?;
    Ok((lo..=hi).map(|i| vec![int(lo), int(hi), int(i)]).collect())
}

/// The `$iff/N` builtin: `$iff(X, Y1…Yk)` succeeds for every boolean row
/// with `X = Y1 ∧ … ∧ Yk`, enumerating only rows consistent with bound
/// arguments. The enumeration itself lives in the shared domain layer
/// ([`tablog_domain::iff_rows`]), which also enforces the
/// [`tablog_domain::MAX_IFF_FREE_VARS`] cap: a call with more free `Y`s
/// than that fails with [`EngineError::BadArgs`] instead of materialising
/// `2^k` rows.
fn iff(b: &Bindings, a: &[Term]) -> Result<Vec<Vec<Term>>, EngineError> {
    use tablog_domain::IffArg;
    let tru = atom("true");
    let fls = atom("false");
    let mut vals = Vec::with_capacity(a.len());
    for t in a {
        let w = b.walk(t);
        vals.push(match w {
            Term::Var(_) => IffArg::Free,
            t if *t == tru => IffArg::True,
            t if *t == fls => IffArg::False,
            other => {
                return Err(EngineError::BadArgs(
                    "$iff",
                    format!("non-boolean argument {other}"),
                ))
            }
        });
    }
    let rows = tablog_domain::iff_rows(&vals)
        .map_err(|overflow| EngineError::BadArgs("$iff", overflow.to_string()))?;
    Ok(rows
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|v| if v { tru.clone() } else { fls.clone() })
                .collect()
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tablog_term::var;

    fn run_det(goal: &str) -> bool {
        let mut b = Bindings::new();
        let (t, _) = tablog_syntax::parse_term(goal, &mut b).unwrap();
        let f = t.functor().unwrap();
        match lookup_builtin(f).unwrap() {
            BuiltinImpl::Det(f) => f(&mut b, t.args()).unwrap(),
            _ => panic!("not det"),
        }
    }

    #[test]
    fn arithmetic_comparisons() {
        assert!(run_det("1 + 2 =:= 3"));
        assert!(run_det("2 * 3 > 5"));
        assert!(run_det("7 mod 3 =:= 1"));
        assert!(run_det("min(3, 5) =:= 3"));
        assert!(run_det("abs(-4) =:= 4"));
    }

    #[test]
    fn is_binds() {
        let mut b = Bindings::new();
        let (t, names) = tablog_syntax::parse_term("X is 6 * 7", &mut b).unwrap();
        match lookup_builtin(t.functor().unwrap()).unwrap() {
            BuiltinImpl::Det(f) => assert!(f(&mut b, t.args()).unwrap()),
            _ => panic!(),
        }
        assert_eq!(b.resolve(&var(names[0].1)), int(42));
    }

    #[test]
    fn division_by_zero_is_error() {
        let mut b = Bindings::new();
        let (t, _) = tablog_syntax::parse_term("X is 1 // 0", &mut b).unwrap();
        match lookup_builtin(t.functor().unwrap()).unwrap() {
            BuiltinImpl::Det(f) => assert!(f(&mut b, t.args()).is_err()),
            _ => panic!(),
        }
    }

    #[test]
    fn structural_equality_and_order() {
        assert!(run_det("f(a) == f(a)"));
        assert!(run_det("f(a) \\== f(b)"));
        assert!(run_det("a @< b"));
        assert!(run_det("f(a) @< f(a, b)")); // arity first
        assert!(run_det("1 @< a")); // numbers before atoms
    }

    #[test]
    fn type_tests() {
        assert!(run_det("atom(a)"));
        assert!(!run_det("atom(f(a))"));
        assert!(run_det("compound(f(a))"));
        assert!(run_det("ground(f(a, 1))"));
        assert!(run_det("integer(3)"));
    }

    #[test]
    fn functor_decompose_and_build() {
        let mut b = Bindings::new();
        let (t, names) = tablog_syntax::parse_term("functor(f(a, b), N, A)", &mut b).unwrap();
        match lookup_builtin(t.functor().unwrap()).unwrap() {
            BuiltinImpl::Det(f) => assert!(f(&mut b, t.args()).unwrap()),
            _ => panic!(),
        }
        assert_eq!(b.resolve(&var(names[0].1)), atom("f"));
        assert_eq!(b.resolve(&var(names[1].1)), int(2));
    }

    #[test]
    fn univ_both_directions() {
        let mut b = Bindings::new();
        let (t, names) = tablog_syntax::parse_term("f(a, B) =.. L", &mut b).unwrap();
        match lookup_builtin(t.functor().unwrap()).unwrap() {
            BuiltinImpl::Det(f) => assert!(f(&mut b, t.args()).unwrap()),
            _ => panic!(),
        }
        let l = b.resolve(&var(names[1].1));
        assert_eq!(tablog_syntax::term_to_string(&l), "[f,a,A]");
    }

    #[test]
    fn iff_fully_free_enumerates_full_table() {
        // $iff(X, Y1, Y2): 4 rows.
        let mut b = Bindings::new();
        let args = vec![var(b.fresh_var()), var(b.fresh_var()), var(b.fresh_var())];
        let rows = iff(&b, &args).unwrap();
        assert_eq!(rows.len(), 4);
        let true_rows: Vec<_> = rows.iter().filter(|r| r[0] == atom("true")).collect();
        assert_eq!(true_rows.len(), 1);
        assert!(true_rows[0].iter().all(|t| *t == atom("true")));
    }

    #[test]
    fn iff_prunes_on_bound_head() {
        let mut b = Bindings::new();
        let x = b.fresh_var();
        b.bind(x, atom("true"));
        let args = vec![var(x), var(b.fresh_var()), var(b.fresh_var())];
        let rows = iff(&b, &args).unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn iff_bound_false_y_forces_false_head() {
        let mut b = Bindings::new();
        let y = b.fresh_var();
        b.bind(y, atom("false"));
        let args = vec![var(b.fresh_var()), var(y), var(b.fresh_var())];
        let rows = iff(&b, &args).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r[0] == atom("false")));
    }

    #[test]
    fn iff_unary_is_identity_true() {
        let b = Bindings::new();
        let rows = iff(&b, &[atom("true")]).unwrap();
        // $iff(X) with X=true: empty conjunction is true.
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], atom("true"));
        let rows2 = iff(&b, &[atom("false")]).unwrap();
        assert!(rows2.is_empty());
    }

    #[test]
    fn iff_rejects_non_boolean() {
        let b = Bindings::new();
        assert!(iff(&b, &[atom("zzz")]).is_err());
    }

    #[test]
    fn iff_caps_free_variable_enumeration() {
        // One free Y past the cap: a proper error, not 2^17 rows.
        let mut b = Bindings::new();
        let over = tablog_domain::MAX_IFF_FREE_VARS + 1;
        let mut args = vec![var(b.fresh_var())];
        for _ in 0..over {
            args.push(var(b.fresh_var()));
        }
        let err = iff(&b, &args).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("cap"), "{msg}");
        assert!(msg.contains("$iff"), "{msg}");
        // Binding the Ys brings the same arity back under the cap: only
        // free Ys count, the head never does.
        for a in args.iter_mut().skip(1) {
            *a = atom("true");
        }
        let rows = iff(&b, &args).unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn between_enumerates() {
        let b = Bindings::new();
        let rows = between(&b, &[int(1), int(3), Term::Var(tablog_term::Var(0))]).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn builtin_lookup_and_is_builtin() {
        assert!(is_builtin(Functor::new("=", 2)));
        assert!(is_builtin(Functor::new(",", 2)));
        assert!(is_builtin(Functor::new("$iff", 7)));
        assert!(!is_builtin(Functor::new("append", 3)));
    }
}
