//! A tabled logic programming engine — the XSB analog at the heart of the
//! PLDI'96 reproduction.
//!
//! The engine evaluates definite logic programs with *tabled resolution*:
//! predicates marked as tabled have their calls and answers recorded in
//! tables keyed by variant (identical up to variable renaming), exactly the
//! discipline of XSB's SLG/OLDT engine. Tabling guarantees termination for
//! programs over finite domains — the property that makes declaratively
//! formulated program analyses *complete* — while non-tabled predicates run
//! under plain SLD resolution.
//!
//! Rather than a WAM with suspended consumer choice points, evaluation is an
//! explicit **derivation forest**: each node owns its resolvent (a goal list
//! plus an answer template) in canonical form, and a worklist interleaves
//! clause resolution, builtin evaluation, and answer-return steps until no
//! work remains — at which point every table is complete. This keeps the
//! engine small and obviously correct while preserving XSB's observable
//! behaviour: call tables (used by the analyses for input patterns), answer
//! tables with variant-based duplicate elimination (non-ground answers
//! included), and left-to-right literal selection.
//!
//! Features used by the paper's experiments:
//!
//! * **Dynamic vs. compiled code** ([`LoadMode`]): compiled predicates get a
//!   first-argument index (faster evaluation, more preprocessing); dynamic
//!   predicates are asserted as a plain clause list (XSB's `assert`-and-
//!   `call/1` mode, which the paper found superior overall).
//! * **Scheduling** ([`Scheduling`]): the SLG worklist is a pluggable
//!   [`Scheduler`] — depth-first (local-ish), breadth-first, or batched
//!   (drain pending expansions before returning answers, XSB's batched
//!   strategy; Section 6.2's discussion).
//! * **Forward subsumption** ([`EngineOptions::forward_subsumption`]):
//!   route specific calls through the open call's table (Section 6.2).
//! * **Call abstraction / answer widening hooks**
//!   ([`EngineOptions::call_abstraction`], [`EngineOptions::answer_widening`]):
//!   the Section 6.1 mechanism for infinite-domain analyses; the depth-k
//!   analysis of Section 5 is built on these.
//!
//! # Example
//!
//! ```
//! use tablog_engine::{Engine, Program};
//!
//! // Left recursion terminates under tabling.
//! let src = ":- table path/2.
//!            path(X, Y) :- path(X, Z), edge(Z, Y).
//!            path(X, Y) :- edge(X, Y).
//!            edge(a, b). edge(b, c). edge(c, a).";
//! let engine = Engine::from_source(src)?;
//! let solutions = engine.solve("path(a, X)")?;
//! assert_eq!(solutions.len(), 3);
//! # Ok::<(), tablog_engine::EngineError>(())
//! ```

mod budget;
mod builtins;
mod consumers;
mod database;
mod dispatch;
mod error;
mod explain;
mod justify;
mod machine;
mod options;
mod parallel;
mod provenance;
mod report;
mod scheduler;
mod session;
mod table;

#[cfg(test)]
mod machine_tests;

pub use budget::{HealthConfig, Truncation, TruncationReason};
pub use builtins::{
    abs_ground, abs_unify, arith_eval, builtin_functors, is_builtin, lookup_builtin, term_compare,
    BuiltinImpl, DetFn, NonDetFn, GAMMA,
};
pub use database::{ClauseMatches, Database, LoadMode, StoredClause};
pub use error::EngineError;
pub use explain::Explanation;
pub use justify::{JustNode, JustStatus};
pub use options::{EngineOptions, Scheduling, TermHook, Unknown};
pub use parallel::{MsgEdge, ParallelReport, SccOwner, WorkerLoad};
pub use provenance::{AnswerProv, AnswerRef, ClauseRef};
pub use report::{TableReport, TableRow};
pub use scheduler::{make_scheduler, Batched, BreadthFirst, DepthFirst, Scheduler, TaskClass};
pub use session::{Engine, Evaluation, Solutions};
pub use table::{AnswerIter, SubgoalView, TableBytes, TableStats};

// Re-exported for downstream convenience: the reader produces the programs
// the engine loads, and the trace types plug into `EngineOptions::trace`.
pub use tablog_syntax::{parse_program, ParseError, Program};
pub use tablog_trace::{
    chrome_trace, CounterSample, CounterTrack, CountingSink, Forest, ForestAnswer, ForestSubgoal,
    HealthSnapshot, HealthTrack, JsonLinesSink, MetricsRegistry, MetricsReport, MultiSink,
    NoopSink, OwnedEvent, PredStats, RingBufferSink, SpanEmitter, SpanEvent, SpanId, SpanRecorder,
    SpanTree, StallWatchdog, TraceEvent, TraceSink,
};
