//! Pluggable worklist strategies for the SLG derivation forest.
//!
//! The machine's control loop is a worklist of tasks: *expansions* (resolve
//! a derivation node's selected goal) and *answer returns* (resume a
//! consumer with one table answer). Which task runs next is the engine's
//! scheduling strategy — the knob the paper's Section 6.2 discusses and the
//! subject of XSB's batched-vs-local scheduling work (Freire, Swift &
//! Warren; see DESIGN.md, "Arenas, sessions, and scheduling strategies").
//! PR 4 factors the discipline out of the machine into the [`Scheduler`]
//! trait: the machine tags each task with a [`TaskClass`] and otherwise
//! does not care how the strategy orders them, so strategies are pluggable
//! via [`crate::EngineOptions::scheduling`] and separately testable.
//!
//! Completeness of SLG resolution does not depend on task order — every
//! strategy must merely be *exhaustive* (eventually return each pushed
//! task), and then all strategies compute the same tables. The differential
//! property test in `tests/prop_table_diff.rs` checks exactly this.

use crate::options::Scheduling;
use std::collections::VecDeque;

/// Coarse classification of a worklist task, the only view of the payload
/// a strategy gets (the task type itself is crate-private).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TaskClass {
    /// Resolve a derivation node's selected goal.
    Expand,
    /// Resume a consumer with one table answer.
    Return,
}

/// A worklist discipline: the machine pushes tasks tagged with their
/// [`TaskClass`] and pops whatever the strategy selects next; evaluation
/// terminates when [`Scheduler::pop`] returns `None`.
pub trait Scheduler<T> {
    /// The strategy's name, reported in evaluation metadata
    /// (see [`crate::Evaluation::scheduler`]).
    fn name(&self) -> &'static str;

    /// Accepts one task.
    fn push(&mut self, class: TaskClass, task: T);

    /// Hands out the next task, or `None` when the worklist is empty.
    fn pop(&mut self) -> Option<T>;

    /// Number of pending tasks.
    fn len(&self) -> usize;

    /// Number of pending tasks of one class — the per-class worklist depth
    /// the counter time-series samples (see `tablog_trace::CounterSample`).
    /// Must be O(1): it is polled at every dispatch boundary when counter
    /// recording is on.
    fn class_len(&self, class: TaskClass) -> usize;

    /// `true` when no tasks are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// LIFO worklist: the most recently generated task runs next, regardless of
/// class — depth-first expansion, akin to XSB's local scheduling. This is
/// the default and reproduces the seed engine's task order exactly (the
/// golden Figure 1 trace is recorded under it).
#[derive(Debug)]
pub struct DepthFirst<T> {
    // Tasks carry their class so per-class counts stay exact without a
    // second queue; order is the class-blind LIFO the seed engine used.
    tasks: VecDeque<(TaskClass, T)>,
    expands: usize,
    returns: usize,
}

impl<T> Default for DepthFirst<T> {
    fn default() -> Self {
        DepthFirst {
            tasks: VecDeque::new(),
            expands: 0,
            returns: 0,
        }
    }
}

impl<T> Scheduler<T> for DepthFirst<T> {
    fn name(&self) -> &'static str {
        "depth_first"
    }

    fn push(&mut self, class: TaskClass, task: T) {
        match class {
            TaskClass::Expand => self.expands += 1,
            TaskClass::Return => self.returns += 1,
        }
        self.tasks.push_back((class, task));
    }

    fn pop(&mut self) -> Option<T> {
        let (class, task) = self.tasks.pop_back()?;
        match class {
            TaskClass::Expand => self.expands -= 1,
            TaskClass::Return => self.returns -= 1,
        }
        Some(task)
    }

    fn len(&self) -> usize {
        self.tasks.len()
    }

    fn class_len(&self, class: TaskClass) -> usize {
        match class {
            TaskClass::Expand => self.expands,
            TaskClass::Return => self.returns,
        }
    }
}

/// FIFO worklist: tasks run in generation order — breadth-first expansion
/// and answer return.
#[derive(Debug)]
pub struct BreadthFirst<T> {
    tasks: VecDeque<(TaskClass, T)>,
    expands: usize,
    returns: usize,
}

impl<T> Default for BreadthFirst<T> {
    fn default() -> Self {
        BreadthFirst {
            tasks: VecDeque::new(),
            expands: 0,
            returns: 0,
        }
    }
}

impl<T> Scheduler<T> for BreadthFirst<T> {
    fn name(&self) -> &'static str {
        "breadth_first"
    }

    fn push(&mut self, class: TaskClass, task: T) {
        match class {
            TaskClass::Expand => self.expands += 1,
            TaskClass::Return => self.returns += 1,
        }
        self.tasks.push_back((class, task));
    }

    fn pop(&mut self) -> Option<T> {
        let (class, task) = self.tasks.pop_front()?;
        match class {
            TaskClass::Expand => self.expands -= 1,
            TaskClass::Return => self.returns -= 1,
        }
        Some(task)
    }

    fn len(&self) -> usize {
        self.tasks.len()
    }

    fn class_len(&self, class: TaskClass) -> usize {
        match class {
            TaskClass::Expand => self.expands,
            TaskClass::Return => self.returns,
        }
    }
}

/// Batched answer return, after XSB's batched scheduling: expansions run
/// eagerly (LIFO) until none remain, and only then do pending answer
/// returns flow to consumers, oldest first. Each generator thus produces
/// its full batch of program-clause work before any consumer resumes,
/// trading the prompt first answer of [`DepthFirst`] for fewer
/// generator/consumer switches.
#[derive(Debug)]
pub struct Batched<T> {
    expands: Vec<T>,
    returns: VecDeque<T>,
}

impl<T> Default for Batched<T> {
    fn default() -> Self {
        Batched {
            expands: Vec::new(),
            returns: VecDeque::new(),
        }
    }
}

impl<T> Scheduler<T> for Batched<T> {
    fn name(&self) -> &'static str {
        "batched"
    }

    fn push(&mut self, class: TaskClass, task: T) {
        match class {
            TaskClass::Expand => self.expands.push(task),
            TaskClass::Return => self.returns.push_back(task),
        }
    }

    fn pop(&mut self) -> Option<T> {
        self.expands.pop().or_else(|| self.returns.pop_front())
    }

    fn len(&self) -> usize {
        self.expands.len() + self.returns.len()
    }

    fn class_len(&self, class: TaskClass) -> usize {
        match class {
            TaskClass::Expand => self.expands.len(),
            TaskClass::Return => self.returns.len(),
        }
    }
}

/// Instantiates the strategy selected by [`Scheduling`].
pub fn make_scheduler<T: 'static>(s: Scheduling) -> Box<dyn Scheduler<T>> {
    match s {
        Scheduling::DepthFirst => Box::new(DepthFirst::default()),
        Scheduling::BreadthFirst => Box::new(BreadthFirst::default()),
        Scheduling::Batched => Box::new(Batched::default()),
        // The parallel strategy is a driver over worker machines, not a
        // worklist discipline: each worker (and each negation sub-machine)
        // orders its local tasks depth-first. `run_parallel` reports the
        // strategy name itself.
        Scheduling::Parallel => Box::new(DepthFirst::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(s: &mut dyn Scheduler<u32>) -> Vec<u32> {
        let mut out = Vec::new();
        while let Some(t) = s.pop() {
            out.push(t);
        }
        out
    }

    #[test]
    fn depth_first_is_lifo_across_classes() {
        let mut s = DepthFirst::default();
        s.push(TaskClass::Expand, 1);
        s.push(TaskClass::Return, 2);
        s.push(TaskClass::Expand, 3);
        assert_eq!(s.len(), 3);
        assert_eq!(drain(&mut s), vec![3, 2, 1]);
        assert!(s.is_empty());
    }

    #[test]
    fn breadth_first_is_fifo_across_classes() {
        let mut s = BreadthFirst::default();
        s.push(TaskClass::Expand, 1);
        s.push(TaskClass::Return, 2);
        s.push(TaskClass::Expand, 3);
        assert_eq!(drain(&mut s), vec![1, 2, 3]);
    }

    #[test]
    fn batched_drains_expansions_before_returns() {
        let mut s = Batched::default();
        s.push(TaskClass::Return, 10);
        s.push(TaskClass::Expand, 1);
        s.push(TaskClass::Expand, 2);
        s.push(TaskClass::Return, 11);
        // Expansions LIFO first, then returns FIFO.
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        // A fresh expansion pushed mid-batch still preempts the returns.
        s.push(TaskClass::Expand, 3);
        assert_eq!(s.pop(), Some(3));
        assert_eq!(drain(&mut s), vec![10, 11]);
    }

    #[test]
    fn class_len_tracks_pushes_and_pops_per_class() {
        for opt in [
            Scheduling::DepthFirst,
            Scheduling::BreadthFirst,
            Scheduling::Batched,
        ] {
            let mut s: Box<dyn Scheduler<u32>> = make_scheduler(opt);
            s.push(TaskClass::Expand, 1);
            s.push(TaskClass::Return, 2);
            s.push(TaskClass::Expand, 3);
            assert_eq!(s.class_len(TaskClass::Expand), 2, "{}", s.name());
            assert_eq!(s.class_len(TaskClass::Return), 1, "{}", s.name());
            assert_eq!(
                s.class_len(TaskClass::Expand) + s.class_len(TaskClass::Return),
                s.len()
            );
            while s.pop().is_some() {}
            assert_eq!(s.class_len(TaskClass::Expand), 0, "{}", s.name());
            assert_eq!(s.class_len(TaskClass::Return), 0, "{}", s.name());
        }
    }

    #[test]
    fn factory_matches_option_names() {
        for (opt, name) in [
            (Scheduling::DepthFirst, "depth_first"),
            (Scheduling::BreadthFirst, "breadth_first"),
            (Scheduling::Batched, "batched"),
            // Parallel workers each run a local depth-first queue; the
            // "parallel" name comes from the driver, not the scheduler.
            (Scheduling::Parallel, "depth_first"),
        ] {
            let s: Box<dyn Scheduler<u32>> = make_scheduler(opt);
            assert_eq!(s.name(), name);
        }
    }
}
