//! The clause database: predicates, loading modes, first-argument indexing.

use crate::error::EngineError;
use std::collections::HashMap;
use tablog_syntax::{Program, ReadClause};
use tablog_term::{intern, sym_name, Functor, Sym, Term};

/// How clauses are prepared for evaluation — the paper's central
/// preprocessing trade-off (Section 4).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LoadMode {
    /// "Dynamic compilation": clauses are asserted as-is and scanned
    /// linearly, like XSB's `assert` + `call/1`. Cheapest preprocessing;
    /// the paper found this the better overall choice for analysis.
    #[default]
    Dynamic,
    /// "Full compilation": build a first-argument index per predicate.
    /// More preprocessing, faster clause selection during evaluation.
    Compiled,
}

/// A clause stored in the database, with variables numbered `0..nvars`.
#[derive(Clone, Debug)]
pub struct StoredClause {
    /// The head literal.
    pub head: Term,
    /// Body goals, in selection order.
    pub body: Vec<Term>,
    /// Number of distinct variables in the clause.
    pub nvars: usize,
}

impl StoredClause {
    fn renumber(head: Term, body: Vec<Term>) -> StoredClause {
        // Compact variable numbering to 0..n in first-occurrence order.
        let mut map = HashMap::new();
        let mut fix = |t: &Term| {
            t.map_vars(&mut |v| {
                let n = map.len() as u32;
                Term::Var(tablog_term::Var(*map.entry(v).or_insert(n)))
            })
        };
        let head = fix(&head);
        let body: Vec<Term> = body.iter().map(&mut fix).collect();
        StoredClause {
            head,
            body,
            nvars: map.len(),
        }
    }
}

/// First-argument index key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum IndexKey {
    Atom(Sym),
    Int(i64),
    Struct(Sym, usize),
}

fn index_key(t: &Term) -> Option<IndexKey> {
    match t {
        Term::Atom(s) => Some(IndexKey::Atom(*s)),
        Term::Int(i) => Some(IndexKey::Int(*i)),
        Term::Struct(s, args) => Some(IndexKey::Struct(*s, args.len())),
        Term::Var(_) => None,
    }
}

/// `key -> clause indices`, plus the list of clauses with variable
/// first argument (which match any key).
type ClauseIndex = (HashMap<IndexKey, Vec<usize>>, Vec<usize>);

#[derive(Clone, Debug, Default)]
struct Predicate {
    clauses: Vec<StoredClause>,
    tabled: bool,
    index: Option<ClauseIndex>,
}

/// A clause database with per-predicate tabling flags.
///
/// Built from a parsed [`Program`] via [`Database::load`], or incrementally
/// with [`Database::assert_clause`] (the engine's `assert`).
#[derive(Clone, Debug, Default)]
pub struct Database {
    preds: HashMap<Functor, Predicate>,
    mode: LoadMode,
}

impl Database {
    /// Creates an empty database with the given load mode.
    pub fn new(mode: LoadMode) -> Self {
        Database {
            preds: HashMap::new(),
            mode,
        }
    }

    /// The database's load mode.
    pub fn mode(&self) -> LoadMode {
        self.mode
    }

    /// Loads a parsed program: all clauses, plus its `:- table` directives.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BadGoal`] if a clause head is not a callable
    /// term.
    pub fn load(&mut self, program: &Program) -> Result<(), EngineError> {
        for (name, arity) in program.tabled() {
            self.set_tabled(
                Functor {
                    name: intern(&name),
                    arity,
                },
                true,
            );
        }
        for c in &program.clauses {
            self.add_read_clause(c)?;
        }
        if self.mode == LoadMode::Compiled {
            self.build_indexes();
        }
        Ok(())
    }

    fn add_read_clause(&mut self, c: &ReadClause) -> Result<(), EngineError> {
        self.assert_clause(c.head.clone(), c.body.clone())
    }

    /// Asserts a clause (at the end of its predicate, like `assertz`).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BadGoal`] if `head` is not callable.
    pub fn assert_clause(&mut self, head: Term, body: Vec<Term>) -> Result<(), EngineError> {
        let f = head
            .functor()
            .ok_or_else(|| EngineError::BadGoal(format!("clause head {head}")))?;
        let pred = self.preds.entry(f).or_default();
        let clause = StoredClause::renumber(head, body);
        if let Some((index, var_clauses)) = &mut pred.index {
            let i = pred.clauses.len();
            match index_key(&clause.head.args().first().cloned().unwrap_or(Term::Int(0))) {
                Some(k) if f.arity > 0 => {
                    // A bucket created only now must still contain every
                    // earlier variable-headed clause: buckets are complete,
                    // merged, source-ordered lists.
                    index
                        .entry(k)
                        .or_insert_with(|| var_clauses.clone())
                        .push(i);
                }
                _ => {
                    var_clauses.push(i);
                    // A variable-headed clause matches every key bucket too.
                    for v in index.values_mut() {
                        v.push(i);
                    }
                }
            }
        }
        pred.clauses.push(clause);
        Ok(())
    }

    /// Retracts every clause of `f` (like `abolish/1`).
    pub fn retract_all(&mut self, f: Functor) {
        if let Some(p) = self.preds.get_mut(&f) {
            p.clauses.clear();
            p.index = None;
        }
    }

    /// Marks (or unmarks) a predicate for tabled evaluation.
    pub fn set_tabled(&mut self, f: Functor, tabled: bool) {
        self.preds.entry(f).or_default().tabled = tabled;
    }

    /// Marks every predicate defined in the database as tabled — what the
    /// analyses do to their abstract programs.
    pub fn table_all(&mut self) {
        for p in self.preds.values_mut() {
            p.tabled = true;
        }
    }

    /// `true` if `f` is marked tabled.
    pub fn is_tabled(&self, f: Functor) -> bool {
        self.preds.get(&f).map(|p| p.tabled).unwrap_or(false)
    }

    /// `true` if `f` has at least one clause or a tabling mark.
    pub fn is_defined(&self, f: Functor) -> bool {
        self.preds.contains_key(&f)
    }

    /// All functors defined in the database.
    pub fn functors(&self) -> impl Iterator<Item = Functor> + '_ {
        self.preds.keys().copied()
    }

    /// Total number of stored clauses.
    pub fn num_clauses(&self) -> usize {
        self.preds.values().map(|p| p.clauses.len()).sum()
    }

    /// Builds first-argument indexes for every predicate ("compilation").
    /// Idempotent; called automatically by [`Database::load`] in
    /// [`LoadMode::Compiled`].
    ///
    /// Each bucket is precomputed as the complete, merged, source-ordered
    /// list of matching clause ids (keyed clauses plus every
    /// variable-headed clause), so lookup never sorts or allocates.
    pub fn build_indexes(&mut self) {
        for pred in self.preds.values_mut() {
            let mut index: HashMap<IndexKey, Vec<usize>> = HashMap::new();
            let mut var_clauses = Vec::new();
            for (i, c) in pred.clauses.iter().enumerate() {
                match c.head.args().first().and_then(index_key) {
                    Some(k) => index.entry(k).or_default().push(i),
                    None => var_clauses.push(i),
                }
            }
            // Merge the variable-headed clauses into every bucket, restoring
            // source order. Merging after the scan (rather than pushing into
            // live buckets during it) also covers buckets whose key first
            // appears *after* a var clause.
            for v in index.values_mut() {
                v.extend_from_slice(&var_clauses);
                v.sort_unstable();
                v.dedup();
            }
            pred.index = Some((index, var_clauses));
        }
    }

    /// The clauses of `f` that can match a call whose first argument is
    /// `first_arg` — all of them in [`LoadMode::Dynamic`], an indexed subset
    /// in [`LoadMode::Compiled`].
    pub fn matching_clauses(&self, f: Functor, first_arg: Option<&Term>) -> Vec<&StoredClause> {
        self.matching_clauses_indexed(f, first_arg)
            .into_iter()
            .map(|(_, c)| c)
            .collect()
    }

    /// Like [`Database::matching_clauses`], but pairs each clause with its
    /// stable index within the predicate (its position in source order) —
    /// the clause identity recorded by answer provenance.
    pub fn matching_clauses_indexed(
        &self,
        f: Functor,
        first_arg: Option<&Term>,
    ) -> Vec<(usize, &StoredClause)> {
        self.matching_clauses_iter(f, first_arg).collect()
    }

    /// Iterates the matching clauses without allocating: index buckets are
    /// precomputed merged source-ordered id lists (see
    /// [`Database::build_indexes`]), so lookup is a hash probe plus a slice
    /// walk. This is the clause-resolution hot path.
    pub fn matching_clauses_iter(&self, f: Functor, first_arg: Option<&Term>) -> ClauseMatches<'_> {
        let Some(pred) = self.preds.get(&f) else {
            return ClauseMatches {
                clauses: &[],
                ids: IdSource::All(0..0),
            };
        };
        let ids = match (&pred.index, first_arg.and_then(index_key)) {
            (Some((index, var_clauses)), Some(key)) => {
                // A key with its own bucket sees the full merged list; a key
                // never indexed matches exactly the variable-headed clauses.
                let bucket = index.get(&key).unwrap_or(var_clauses);
                IdSource::Bucket(bucket.iter())
            }
            _ => IdSource::All(0..pred.clauses.len()),
        };
        ClauseMatches {
            clauses: &pred.clauses,
            ids,
        }
    }

    /// The `idx`-th clause of `f` in source order, if it exists — resolves
    /// the clause ids stored in answer provenance.
    pub fn clause(&self, f: Functor, idx: usize) -> Option<&StoredClause> {
        self.preds.get(&f).and_then(|p| p.clauses.get(idx))
    }

    /// All clauses of `f` in source order.
    pub fn clauses(&self, f: Functor) -> &[StoredClause] {
        self.preds
            .get(&f)
            .map(|p| p.clauses.as_slice())
            .unwrap_or(&[])
    }

    /// The strongly connected components of the static predicate call
    /// graph, in a deterministic order (reverse topological: callees before
    /// callers; members and tie-breaks sorted by name/arity). Call edges
    /// are collected from clause bodies by descending through the control
    /// constructs the engine itself interprets (`,`, `;`, `->`, `\+`,
    /// `not`, `call`); only defined predicates appear. This is the grouping
    /// the profiler uses to roll span time up per SCC.
    pub fn predicate_sccs(&self) -> Vec<Vec<Functor>> {
        let mut preds: Vec<Functor> = self.preds.keys().copied().collect();
        preds.sort_by_key(|f| (sym_name(f.name), f.arity));
        let index_of: HashMap<Functor, usize> =
            preds.iter().enumerate().map(|(i, f)| (*f, i)).collect();
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); preds.len()];
        for (i, f) in preds.iter().enumerate() {
            let mut callees = Vec::new();
            for c in self.clauses(*f) {
                for g in &c.body {
                    collect_called(g, &mut callees);
                }
            }
            callees.sort_by_key(|f| (sym_name(f.name), f.arity));
            callees.dedup();
            for callee in callees {
                if let Some(&j) = index_of.get(&callee) {
                    edges[i].push(j);
                }
            }
        }
        // Iterative Tarjan (explicit stack: analysis programs are small,
        // but generated abstract programs can chain deeply).
        let n = preds.len();
        let mut order = vec![usize::MAX; n]; // discovery index
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut sccs: Vec<Vec<Functor>> = Vec::new();
        let mut next_order = 0usize;
        for root in 0..n {
            if order[root] != usize::MAX {
                continue;
            }
            // (node, next child edge to visit)
            let mut call: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(&mut (v, ref mut ei)) = call.last_mut() {
                if *ei == 0 {
                    order[v] = next_order;
                    low[v] = next_order;
                    next_order += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if let Some(&w) = edges[v].get(*ei) {
                    *ei += 1;
                    if order[w] == usize::MAX {
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(order[w]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == order[v] {
                        let mut scc = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            scc.push(preds[w]);
                            if w == v {
                                break;
                            }
                        }
                        scc.sort_by_key(|f| (sym_name(f.name), f.arity));
                        sccs.push(scc);
                    }
                }
            }
        }
        sccs
    }
}

/// Collects the functors a goal can call, descending through the control
/// constructs `solve_goal` interprets structurally.
fn collect_called(g: &Term, out: &mut Vec<Functor>) {
    let Some(f) = g.functor() else { return };
    let name = sym_name(f.name);
    match (name.as_str(), f.arity) {
        (",", 2) | (";", 2) | ("->", 2) => {
            for a in g.args() {
                collect_called(a, out);
            }
        }
        ("\\+", 1) | ("not", 1) | ("call", 1) => collect_called(&g.args()[0], out),
        ("!", 0) | ("true", 0) => {}
        _ => out.push(f),
    }
}

enum IdSource<'a> {
    /// A precomputed merged bucket (or the var-clause list).
    Bucket(std::slice::Iter<'a, usize>),
    /// Every clause of the predicate, in source order.
    All(std::ops::Range<usize>),
}

/// Borrowing iterator over `(source index, clause)` pairs returned by
/// [`Database::matching_clauses_iter`]. Never allocates.
pub struct ClauseMatches<'a> {
    clauses: &'a [StoredClause],
    ids: IdSource<'a>,
}

impl<'a> Iterator for ClauseMatches<'a> {
    type Item = (usize, &'a StoredClause);

    fn next(&mut self) -> Option<(usize, &'a StoredClause)> {
        let i = match &mut self.ids {
            IdSource::Bucket(it) => *it.next()?,
            IdSource::All(r) => r.next()?,
        };
        Some((i, &self.clauses[i]))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.ids {
            IdSource::Bucket(it) => it.size_hint(),
            IdSource::All(r) => r.size_hint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tablog_syntax::parse_program;
    use tablog_term::atom;

    fn db(src: &str, mode: LoadMode) -> Database {
        let p = parse_program(src).unwrap();
        let mut d = Database::new(mode);
        d.load(&p).unwrap();
        d
    }

    #[test]
    fn load_counts_clauses_and_tabling() {
        let d = db(
            ":- table p/1.\np(a).\np(b).\nq(X) :- p(X).",
            LoadMode::Dynamic,
        );
        assert_eq!(d.num_clauses(), 3);
        assert!(d.is_tabled(Functor::new("p", 1)));
        assert!(!d.is_tabled(Functor::new("q", 1)));
    }

    #[test]
    fn clause_variables_are_renumbered() {
        let d = db("r(X, Y, X) :- s(Y).", LoadMode::Dynamic);
        let c = &d.clauses(Functor::new("r", 3))[0];
        assert_eq!(c.nvars, 2);
        assert_eq!(c.head.vars().len(), 2);
    }

    #[test]
    fn dynamic_mode_returns_all_clauses() {
        let d = db("p(a). p(b). p(f(c)).", LoadMode::Dynamic);
        assert_eq!(
            d.matching_clauses(Functor::new("p", 1), Some(&atom("a")))
                .len(),
            3
        );
    }

    #[test]
    fn compiled_mode_indexes_first_arg() {
        let d = db("p(a). p(b). p(f(c)). p(X).", LoadMode::Compiled);
        let f = Functor::new("p", 1);
        // Atom key: its own bucket plus the var clause.
        assert_eq!(d.matching_clauses(f, Some(&atom("a"))).len(), 2);
        // Unknown key: only the var clause.
        assert_eq!(d.matching_clauses(f, Some(&atom("zzz"))).len(), 1);
        // Unbound first arg: everything.
        let mut b = tablog_term::Bindings::new();
        let v = b.fresh_var();
        assert_eq!(d.matching_clauses(f, Some(&tablog_term::var(v))).len(), 4);
    }

    #[test]
    fn index_preserves_source_order() {
        let d = db("p(a, 1). p(X, 2). p(a, 3).", LoadMode::Compiled);
        let got: Vec<i64> = d
            .matching_clauses(Functor::new("p", 2), Some(&atom("a")))
            .iter()
            .map(|c| match &c.head.args()[1] {
                Term::Int(i) => *i,
                _ => panic!(),
            })
            .collect();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn assert_after_compile_keeps_index_fresh() {
        let mut d = db("p(a).", LoadMode::Compiled);
        d.assert_clause(atom("p_extra"), vec![]).unwrap();
        d.assert_clause(tablog_term::structure("p", vec![atom("b")]), vec![])
            .unwrap();
        assert_eq!(
            d.matching_clauses(Functor::new("p", 1), Some(&atom("b")))
                .len(),
            1
        );
    }

    #[test]
    fn bucket_keyed_after_var_clause_still_matches_it() {
        // The var clause precedes the first (and only) appearance of key
        // `a`, so the `a` bucket must be seeded with it.
        let d = db("p(X, 1). p(a, 2).", LoadMode::Compiled);
        let got: Vec<i64> = d
            .matching_clauses(Functor::new("p", 2), Some(&atom("a")))
            .iter()
            .map(|c| match &c.head.args()[1] {
                Term::Int(i) => *i,
                _ => panic!(),
            })
            .collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn assert_created_bucket_includes_preexisting_var_clauses() {
        let mut d = db("p(X, 1).", LoadMode::Compiled);
        d.assert_clause(
            tablog_term::structure("p", vec![atom("b"), Term::Int(2)]),
            vec![],
        )
        .unwrap();
        // The `b` bucket is created by the assert; it must still include the
        // earlier variable-headed clause, in source order.
        let got: Vec<i64> = d
            .matching_clauses(Functor::new("p", 2), Some(&atom("b")))
            .iter()
            .map(|c| match &c.head.args()[1] {
                Term::Int(i) => *i,
                _ => panic!(),
            })
            .collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn matching_iter_agrees_with_indexed_vec() {
        for mode in [LoadMode::Dynamic, LoadMode::Compiled] {
            let d = db("p(a, 1). p(X, 2). p(a, 3). p(b, 4).", mode);
            let f = Functor::new("p", 2);
            for first in [Some(atom("a")), Some(atom("zzz")), None] {
                let via_vec = d.matching_clauses_indexed(f, first.as_ref());
                let via_iter: Vec<_> = d.matching_clauses_iter(f, first.as_ref()).collect();
                let ids_vec: Vec<usize> = via_vec.iter().map(|(i, _)| *i).collect();
                let ids_iter: Vec<usize> = via_iter.iter().map(|(i, _)| *i).collect();
                assert_eq!(ids_vec, ids_iter, "mode {mode:?} first {first:?}");
            }
        }
    }

    #[test]
    fn retract_all_empties_predicate() {
        let mut d = db("p(a). p(b).", LoadMode::Dynamic);
        d.retract_all(Functor::new("p", 1));
        assert_eq!(d.clauses(Functor::new("p", 1)).len(), 0);
    }

    #[test]
    fn zero_arity_predicates() {
        let d = db("go :- p. p.", LoadMode::Compiled);
        assert_eq!(d.matching_clauses(Functor::new("go", 0), None).len(), 1);
    }

    #[test]
    fn bad_head_is_an_error() {
        let mut d = Database::new(LoadMode::Dynamic);
        assert!(d.assert_clause(Term::Int(3), vec![]).is_err());
    }

    #[test]
    fn sccs_group_mutual_recursion_in_callee_first_order() {
        let d = db(
            "even(z). even(s(X)) :- odd(X).\n\
             odd(s(X)) :- even(X).\n\
             top(X) :- even(X), leaf(X).\n\
             leaf(_).",
            LoadMode::Dynamic,
        );
        let sccs = d.predicate_sccs();
        let even_odd = sccs
            .iter()
            .find(|s| s.contains(&Functor::new("even", 1)))
            .expect("even/1 has an SCC");
        assert_eq!(
            even_odd,
            &vec![Functor::new("even", 1), Functor::new("odd", 1)]
        );
        // Reverse topological: even/odd and leaf precede top.
        let pos = |f: Functor| sccs.iter().position(|s| s.contains(&f)).unwrap();
        assert!(pos(Functor::new("even", 1)) < pos(Functor::new("top", 1)));
        assert!(pos(Functor::new("leaf", 1)) < pos(Functor::new("top", 1)));
        // Every defined predicate appears exactly once.
        assert_eq!(sccs.iter().map(Vec::len).sum::<usize>(), 4);
    }

    #[test]
    fn sccs_see_through_control_constructs() {
        let d = db(
            "p(X) :- (q(X) ; r(X)), \\+ s(X), call(t(X)).\n\
             q(a). r(a). s(b). t(a).",
            LoadMode::Dynamic,
        );
        let sccs = d.predicate_sccs();
        let flat: Vec<Functor> = sccs.into_iter().flatten().collect();
        for name in ["p", "q", "r", "s", "t"] {
            assert!(flat.contains(&Functor::new(name, 1)), "{name}/1 missing");
        }
    }
}
