//! Table inspection types: subgoal views, answer iteration, statistics.

use crate::provenance::AnswerProv;
use std::collections::HashSet;
use tablog_term::{CanonicalTerm, Functor, Term};

/// Per-entry overhead added to each stored call or answer term, mirroring
/// what XSB's statistics report counts: the term plus a fixed table-node
/// cost. Shared by the full-table rescan below and the machine's
/// incremental accounting.
pub(crate) const NODE_OVERHEAD: usize = 16;

/// Internal state of one tabled subgoal.
#[derive(Clone, Debug)]
pub(crate) struct SubgoalState {
    pub functor: Functor,
    /// Canonical argument tuple of the call.
    pub call: CanonicalTerm,
    /// Answers (canonical argument tuples), in insertion order.
    pub answers: Vec<CanonicalTerm>,
    pub answer_set: HashSet<CanonicalTerm>,
    /// Per-answer provenance, parallel to `answers`. Empty (no allocation)
    /// unless the evaluation ran with
    /// [`record_provenance`](crate::EngineOptions::record_provenance).
    pub provenance: Vec<AnswerProv>,
    /// Consumer ids registered on this subgoal.
    pub consumers: Vec<usize>,
    pub complete: bool,
}

impl SubgoalState {
    pub(crate) fn new(functor: Functor, call: CanonicalTerm) -> Self {
        SubgoalState {
            functor,
            call,
            answers: Vec::new(),
            answer_set: HashSet::new(),
            provenance: Vec::new(),
            consumers: Vec::new(),
            complete: false,
        }
    }

    pub(crate) fn table_bytes(&self) -> usize {
        self.call.heap_bytes()
            + NODE_OVERHEAD
            + self
                .answers
                .iter()
                .map(|a| a.heap_bytes() + NODE_OVERHEAD)
                .sum::<usize>()
            + self
                .provenance
                .iter()
                .map(AnswerProv::heap_bytes)
                .sum::<usize>()
    }
}

/// A read-only view of one subgoal's table: the call pattern and its
/// answers. Obtained from [`crate::Evaluation::subgoals`].
#[derive(Clone, Copy, Debug)]
pub struct SubgoalView<'a> {
    pub(crate) state: &'a SubgoalState,
}

impl<'a> SubgoalView<'a> {
    /// The subgoal's predicate.
    pub fn functor(&self) -> Functor {
        self.state.functor
    }

    /// The call pattern as a term `p(t1,…,tn)` with canonical variables.
    pub fn call_term(&self) -> Term {
        rebuild(self.state.functor, self.state.call.terms())
    }

    /// The canonical call-argument tuple.
    pub fn call_args(&self) -> &'a [Term] {
        self.state.call.terms()
    }

    /// Number of answers in the table.
    pub fn num_answers(&self) -> usize {
        self.state.answers.len()
    }

    /// `true` once the fixpoint is reached (always true on views obtained
    /// from a finished [`crate::Evaluation`]).
    pub fn is_complete(&self) -> bool {
        self.state.complete
    }

    /// Iterates over answers as full terms `p(s1,…,sn)`.
    pub fn answers(&self) -> AnswerIter<'a> {
        AnswerIter {
            functor: self.state.functor,
            inner: self.state.answers.iter(),
        }
    }

    /// Iterates over raw canonical answer tuples.
    pub fn answer_tuples(&self) -> impl Iterator<Item = &'a [Term]> + 'a {
        self.state.answers.iter().map(|c| c.terms())
    }

    /// Provenance of answer `idx`, if the evaluation recorded it.
    pub fn provenance(&self, idx: usize) -> Option<&'a AnswerProv> {
        self.state.provenance.get(idx)
    }

    /// Estimated table space consumed by this subgoal, in bytes.
    pub fn table_bytes(&self) -> usize {
        self.state.table_bytes()
    }
}

/// Iterator over a subgoal's answers as terms; see [`SubgoalView::answers`].
#[derive(Clone, Debug)]
pub struct AnswerIter<'a> {
    functor: Functor,
    inner: std::slice::Iter<'a, CanonicalTerm>,
}

impl Iterator for AnswerIter<'_> {
    type Item = Term;

    fn next(&mut self) -> Option<Term> {
        self.inner.next().map(|c| rebuild(self.functor, c.terms()))
    }
}

fn rebuild(f: Functor, args: &[Term]) -> Term {
    if args.is_empty() {
        Term::Atom(f.name)
    } else {
        Term::Struct(f.name, args.to_vec().into())
    }
}

/// Cumulative counters of one evaluation, in the spirit of XSB's
/// `statistics/0` output.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Engine steps (node expansions + answer returns).
    pub steps: usize,
    /// Program-clause resolution attempts.
    pub clause_resolutions: usize,
    /// Tabled subgoals created.
    pub subgoals: usize,
    /// Unique answers entered into tables.
    pub answers: usize,
    /// Answers rejected as duplicates by the variant check.
    pub duplicate_answers: usize,
    /// Estimated total table space in bytes.
    pub table_bytes: usize,
}
