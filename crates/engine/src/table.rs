//! Table inspection types: subgoal views, answer iteration, statistics.
//!
//! Since PR 3 the answer store is id-keyed: [`CanonicalTerm`] is a `Copy`
//! handle into a hash-consing arena, the duplicate-check set holds bare
//! [`TermId`]s (not second copies of the answers), and table-space
//! accounting charges shared structure once per subgoal — the substitution
//! factoring XSB's tries provide (see DESIGN.md, "Table representation &
//! substitution factoring"). Since PR 4 the arena is session-scoped
//! ([`TermArena`], owned by the running machine and then by the finished
//! [`crate::Evaluation`]), so every accessor that materializes terms takes
//! the owning arena.

use crate::provenance::AnswerProv;
use std::collections::HashSet;
use tablog_term::{CanonicalTerm, Functor, Term, TermArena, TermId};

/// Per-entry overhead added to each stored call or answer term, mirroring
/// what XSB's statistics report counts: the term plus a fixed table-node
/// cost. Shared by the full-table rescan below and the machine's
/// incremental accounting.
pub(crate) const NODE_OVERHEAD: usize = 16;

/// Estimated cost of one registered consumer cursor (a `Consumer` record:
/// node handle, watched table index, answer cursor). Reported in
/// [`TableBytes::cursor_bytes`] for attribution only — cursors are machine
/// scaffolding, not table content, so they stay *out* of
/// [`SubgoalState::table_bytes`] and the paper-facing space totals.
pub(crate) const CURSOR_OVERHEAD: usize = 24;

/// Decomposition of one subgoal's table space. The first three components
/// partition [`SubgoalView::table_bytes`] exactly:
/// `term_bytes + entry_bytes + prov_bytes == table_bytes` — asserted by the
/// engine (debug builds) on every evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TableBytes {
    /// Substitution-factored canonical-term structure: arena nodes of the
    /// call and all answers, each shared node charged once per table.
    pub term_bytes: usize,
    /// Fixed per-entry overhead (call + one per answer), mirroring XSB's
    /// table-node cost.
    pub entry_bytes: usize,
    /// Provenance records, when the evaluation recorded them.
    pub prov_bytes: usize,
    /// Estimated consumer-cursor footprint. Informational: *excluded* from
    /// [`TableBytes::attributed`] and from `table_bytes`, which predate
    /// this breakdown and must stay comparable across releases.
    pub cursor_bytes: usize,
}

impl TableBytes {
    /// The attributed total: exactly [`SubgoalView::table_bytes`].
    pub fn attributed(&self) -> usize {
        self.term_bytes + self.entry_bytes + self.prov_bytes
    }
}

/// Internal state of one tabled subgoal.
#[derive(Clone, Debug)]
pub(crate) struct SubgoalState {
    pub functor: Functor,
    /// Canonical argument tuple of the call.
    pub call: CanonicalTerm,
    /// Answers (canonical argument tuples), in insertion order.
    pub answers: Vec<CanonicalTerm>,
    /// Duplicate check: arena ids of the entered answers. Holds 8-byte ids,
    /// not full term copies — the seed's `HashSet<CanonicalTerm>` double
    /// store is gone.
    pub answer_ids: HashSet<TermId>,
    /// Per-answer provenance, parallel to `answers`. Empty (no allocation)
    /// unless the evaluation ran with
    /// [`record_provenance`](crate::EngineOptions::record_provenance).
    pub provenance: Vec<AnswerProv>,
    /// Consumer ids registered on this subgoal.
    pub consumers: Vec<usize>,
    /// Cross-worker consumers under the parallel scheduler: `(worker,
    /// token)` pairs to forward every inserted answer to. Always empty in
    /// sequential runs.
    pub remote_consumers: Vec<(usize, usize)>,
    /// Arena nodes already charged to this table's space: within one
    /// subgoal, structure shared between the call and any answers is billed
    /// exactly once (substitution factoring).
    charged: HashSet<TermId>,
    /// Incrementally maintained table space, decomposed by component
    /// (terms / entry overhead / provenance); the attributed sum is kept
    /// equal to [`SubgoalState::rescan_bytes`] by construction.
    bytes: TableBytes,
    pub complete: bool,
}

impl SubgoalState {
    /// Creates the state and charges the call term plus its entry overhead.
    /// `arena` is the session arena that minted `call`.
    pub(crate) fn new(functor: Functor, call: CanonicalTerm, arena: &TermArena) -> Self {
        let mut charged = HashSet::new();
        let bytes = TableBytes {
            term_bytes: arena.charge_shared_bytes(&call, &mut charged),
            entry_bytes: NODE_OVERHEAD,
            prov_bytes: 0,
            cursor_bytes: 0,
        };
        SubgoalState {
            functor,
            call,
            answers: Vec::new(),
            answer_ids: HashSet::new(),
            provenance: Vec::new(),
            consumers: Vec::new(),
            remote_consumers: Vec::new(),
            charged,
            bytes,
            complete: false,
        }
    }

    /// Charges the nodes of `c` not yet billed to this table and returns the
    /// newly charged term bytes (0 if everything was already shared).
    pub(crate) fn charge(&mut self, c: &CanonicalTerm, arena: &TermArena) -> usize {
        let fresh = arena.charge_shared_bytes(c, &mut self.charged);
        self.bytes.term_bytes += fresh;
        fresh
    }

    /// Adds one answer entry's fixed overhead.
    pub(crate) fn add_entry_overhead(&mut self) {
        self.bytes.entry_bytes += NODE_OVERHEAD;
    }

    /// Adds one answer's provenance-record bytes.
    pub(crate) fn add_prov_bytes(&mut self, n: usize) {
        self.bytes.prov_bytes += n;
    }

    /// The incrementally maintained table space of this subgoal, O(1).
    pub(crate) fn table_bytes(&self) -> usize {
        self.bytes.attributed()
    }

    /// The per-component decomposition of this subgoal's table space, with
    /// the consumer-cursor estimate filled in from the current consumer
    /// registrations.
    pub(crate) fn byte_breakdown(&self) -> TableBytes {
        TableBytes {
            cursor_bytes: self.consumers.len() * CURSOR_OVERHEAD,
            ..self.bytes
        }
    }

    /// Recomputes this subgoal's table space from scratch: call first, then
    /// answers in insertion order, each with entry overhead, plus provenance
    /// records. Must agree with the incremental [`SubgoalState::table_bytes`].
    pub(crate) fn rescan_bytes(&self, arena: &TermArena) -> usize {
        let mut seen = HashSet::new();
        let mut total = arena.charge_shared_bytes(&self.call, &mut seen) + NODE_OVERHEAD;
        for a in &self.answers {
            total += arena.charge_shared_bytes(a, &mut seen) + NODE_OVERHEAD;
        }
        total
            + self
                .provenance
                .iter()
                .map(AnswerProv::heap_bytes)
                .sum::<usize>()
    }
}

/// A read-only view of one subgoal's table: the call pattern and its
/// answers. Obtained from [`crate::Evaluation::subgoals`]; carries a
/// reference to the evaluation's session arena so materialization needs no
/// global state.
#[derive(Clone, Copy, Debug)]
pub struct SubgoalView<'a> {
    pub(crate) state: &'a SubgoalState,
    pub(crate) arena: &'a TermArena,
}

impl<'a> SubgoalView<'a> {
    /// The subgoal's predicate.
    pub fn functor(&self) -> Functor {
        self.state.functor
    }

    /// The call pattern as a term `p(t1,…,tn)` with canonical variables.
    pub fn call_term(&self) -> Term {
        rebuild(self.state.functor, &self.arena.terms(&self.state.call))
    }

    /// The canonical call-argument tuple, materialized from the arena.
    pub fn call_args(&self) -> Vec<Term> {
        self.arena.terms(&self.state.call)
    }

    /// Number of answers in the table.
    pub fn num_answers(&self) -> usize {
        self.state.answers.len()
    }

    /// `true` once the fixpoint is reached (always true on views obtained
    /// from a finished [`crate::Evaluation`]).
    pub fn is_complete(&self) -> bool {
        self.state.complete
    }

    /// Iterates over answers as full terms `p(s1,…,sn)`.
    pub fn answers(&self) -> AnswerIter<'a> {
        AnswerIter {
            functor: self.state.functor,
            arena: self.arena,
            inner: self.state.answers.iter(),
        }
    }

    /// Iterates over raw canonical answer tuples.
    pub fn answer_tuples(&self) -> impl Iterator<Item = Vec<Term>> + 'a {
        let arena = self.arena;
        self.state.answers.iter().map(move |c| arena.terms(c))
    }

    /// Provenance of answer `idx`, if the evaluation recorded it.
    pub fn provenance(&self, idx: usize) -> Option<&'a AnswerProv> {
        self.state.provenance.get(idx)
    }

    /// Estimated table space consumed by this subgoal, in bytes — the
    /// substitution-factored charge (shared structure counted once).
    pub fn table_bytes(&self) -> usize {
        self.state.table_bytes()
    }

    /// Decomposition of [`SubgoalView::table_bytes`] by component. The
    /// attributed components sum exactly to `table_bytes()`; the cursor
    /// estimate is reported alongside without being counted.
    pub fn byte_breakdown(&self) -> TableBytes {
        self.state.byte_breakdown()
    }
}

/// Iterator over a subgoal's answers as terms; see [`SubgoalView::answers`].
#[derive(Clone, Debug)]
pub struct AnswerIter<'a> {
    functor: Functor,
    arena: &'a TermArena,
    inner: std::slice::Iter<'a, CanonicalTerm>,
}

impl Iterator for AnswerIter<'_> {
    type Item = Term;

    fn next(&mut self) -> Option<Term> {
        self.inner
            .next()
            .map(|c| rebuild(self.functor, &self.arena.terms(c)))
    }
}

pub(crate) fn rebuild(f: Functor, args: &[Term]) -> Term {
    if args.is_empty() {
        Term::Atom(f.name)
    } else {
        Term::Struct(f.name, args.to_vec().into())
    }
}

/// Cumulative counters of one evaluation, in the spirit of XSB's
/// `statistics/0` output.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Engine steps (node expansions + answer returns).
    pub steps: usize,
    /// Program-clause resolution attempts.
    pub clause_resolutions: usize,
    /// Tabled subgoals created.
    pub subgoals: usize,
    /// Unique answers entered into tables.
    pub answers: usize,
    /// Answers rejected as duplicates by the variant check.
    pub duplicate_answers: usize,
    /// Estimated total table space in bytes.
    pub table_bytes: usize,
}
