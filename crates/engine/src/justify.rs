//! Justification trees and the derivation-forest export.
//!
//! The walk in [`Evaluation::justify`] materializes a [`JustNode`] tree
//! from the [`AnswerProv`] records: the root is the answer being explained,
//! children are the premises (consumed table answers), and every leaf is
//! either a program fact, a clause supported purely by builtins, or a stop
//! marker (cycle / depth limit / provenance not recorded). Non-tabled (SLD)
//! subderivations are inlined: their clause ids appear on the consuming
//! node's [`JustNode::clauses`] list rather than as separate children,
//! mirroring how the machine inlines SLD resolution into the derivation
//! node itself. The provenance graph is acyclic by construction, but the
//! walk still guards against cycles with the same node-set discipline the
//! derivation forest uses, so a corrupted or hand-built graph cannot hang
//! it.

use crate::database::Database;
use crate::provenance::{AnswerProv, ClauseRef};
use crate::session::Evaluation;
use std::collections::HashSet;
use std::fmt;
use std::fmt::Write as _;
use tablog_term::{Bindings, Functor, Term};
use tablog_trace::json::escape;
use tablog_trace::{Forest, ForestAnswer, ForestSubgoal};

/// Why a justification node has no children.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JustStatus {
    /// Supported by a program fact (a clause with an empty body).
    Fact,
    /// Supported by a clause whose body was discharged entirely by
    /// builtins (or by the query's own builtin goals).
    Builtin,
    /// An internal node: supported by a clause plus the child premises.
    Derived,
    /// Walk stopped: this answer already occurs on the path to the root.
    Cycle,
    /// Walk stopped at the depth limit; the answer has further premises.
    Truncated,
    /// No provenance was recorded for this answer (evaluation ran with
    /// `record_provenance` off, or the answer entered via a hook rewrite).
    Unrecorded,
}

impl JustStatus {
    /// The snake_case name used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            JustStatus::Fact => "fact",
            JustStatus::Builtin => "builtin",
            JustStatus::Derived => "derived",
            JustStatus::Cycle => "cycle",
            JustStatus::Truncated => "truncated",
            JustStatus::Unrecorded => "unrecorded",
        }
    }

    /// `true` for the two grounded leaf kinds (fact / builtin support).
    pub fn is_grounded_leaf(self) -> bool {
        matches!(self, JustStatus::Fact | JustStatus::Builtin)
    }
}

/// One node of a justification tree: a table answer together with the
/// clauses that support it and the justifications of its premises.
#[derive(Clone, Debug)]
pub struct JustNode {
    /// The answer's predicate.
    pub pred: Functor,
    /// Subgoal index in the evaluation.
    pub subgoal: usize,
    /// Answer index within the subgoal's table.
    pub answer_index: usize,
    /// The answer rendered as a term, `p(t1,…,tn)`.
    pub answer: String,
    /// Clause ids supporting this answer (first = generator clause).
    pub clauses: Vec<ClauseRef>,
    /// Leaf/internal classification.
    pub status: JustStatus,
    /// Justifications of the consumed premises.
    pub children: Vec<JustNode>,
}

impl JustNode {
    /// Depth-first iteration over the whole tree (self included).
    pub fn walk(&self, f: &mut impl FnMut(&JustNode)) {
        f(self);
        for c in &self.children {
            c.walk(f);
        }
    }

    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(JustNode::size).sum::<usize>()
    }

    /// Renders the tree as ASCII art, one node per line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, "", "");
        out
    }

    fn render_into(&self, out: &mut String, pad: &str, child_pad: &str) {
        let _ = write!(out, "{pad}{}", self.answer);
        if !self.clauses.is_empty() {
            let refs: Vec<String> = self.clauses.iter().map(ClauseRef::to_string).collect();
            let _ = write!(out, "  via {}", refs.join(", "));
        }
        match self.status {
            JustStatus::Derived => {}
            s => {
                let _ = write!(out, "  [{}]", s.name());
            }
        }
        out.push('\n');
        let n = self.children.len();
        for (i, c) in self.children.iter().enumerate() {
            let last = i + 1 == n;
            let branch = if last { "`- " } else { "|- " };
            let cont = if last { "   " } else { "|  " };
            c.render_into(
                out,
                &format!("{child_pad}{branch}"),
                &format!("{child_pad}{cont}"),
            );
        }
    }

    /// Renders the node (recursively) as one JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        let _ = write!(
            s,
            "{{\"answer\":\"{}\",\"pred\":\"{}\",\"subgoal\":{},\"answer_index\":{},\"status\":\"{}\"",
            escape(&self.answer),
            escape(&self.pred.to_string()),
            self.subgoal,
            self.answer_index,
            self.status.name()
        );
        s.push_str(",\"clauses\":[");
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\"", escape(&c.to_string()));
        }
        s.push_str("],\"children\":[");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&c.to_json());
        }
        s.push_str("]}");
        s
    }
}

impl fmt::Display for JustNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_text())
    }
}

impl Evaluation {
    /// The provenance of answer `answer` of subgoal `subgoal`, if it was
    /// recorded.
    pub fn provenance(&self, subgoal: usize, answer: usize) -> Option<&AnswerProv> {
        self.states().get(subgoal)?.provenance.get(answer)
    }

    /// `true` if this evaluation recorded provenance.
    pub fn has_provenance(&self) -> bool {
        self.states().iter().any(|s| !s.provenance.is_empty())
    }

    /// Builds the justification tree of one table answer.
    ///
    /// The walk is cycle-safe (an answer already on the path becomes a
    /// [`JustStatus::Cycle`] leaf) and depth-bounded: nodes at
    /// `max_depth` with further premises become [`JustStatus::Truncated`]
    /// leaves. `db` must be the database the evaluation ran against; it is
    /// used to classify leaves as facts vs. builtin-supported.
    pub fn justify(
        &self,
        db: &Database,
        subgoal: usize,
        answer: usize,
        max_depth: usize,
    ) -> JustNode {
        let mut path = HashSet::new();
        self.justify_walk(db, subgoal, answer, max_depth, &mut path)
    }

    fn justify_walk(
        &self,
        db: &Database,
        sid: usize,
        aidx: usize,
        depth: usize,
        path: &mut HashSet<(usize, usize)>,
    ) -> JustNode {
        let state = &self.states()[sid];
        let answer = render_answer(state.functor, &self.arena.terms(&state.answers[aidx]));
        let mut node = JustNode {
            pred: state.functor,
            subgoal: sid,
            answer_index: aidx,
            answer,
            clauses: Vec::new(),
            status: JustStatus::Unrecorded,
            children: Vec::new(),
        };
        let Some(prov) = state.provenance.get(aidx) else {
            return node;
        };
        node.clauses = prov.clauses.to_vec();
        if !path.insert((sid, aidx)) {
            node.status = JustStatus::Cycle;
            return node;
        }
        if prov.premises.is_empty() {
            node.status = leaf_status(db, &node.clauses);
        } else if depth == 0 {
            node.status = JustStatus::Truncated;
        } else {
            node.status = JustStatus::Derived;
            for p in prov.premises.iter() {
                node.children
                    .push(self.justify_walk(db, p.subgoal, p.answer, depth - 1, path));
            }
        }
        path.remove(&(sid, aidx));
        node
    }

    /// Finds the table answers of predicate `f` that unify with `args`
    /// (the goal's argument tuple, living in `b`), across all of the
    /// predicate's call patterns. Returns `(subgoal, answer)` pairs in
    /// table order, deduplicated by answer variant.
    pub fn matching_answers(&self, f: Functor, args: &[Term], b: &Bindings) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for (sid, state) in self.states().iter().enumerate() {
            if state.functor != f {
                continue;
            }
            for (aidx, ans) in state.answers.iter().enumerate() {
                if !seen.insert(*ans) {
                    continue;
                }
                let mut bb = b.clone();
                let m = bb.mark();
                let ans_args = self.arena.instantiate(ans, &mut bb);
                let ok = args
                    .iter()
                    .zip(ans_args.iter())
                    .all(|(x, y)| tablog_term::unify(&mut bb, x, y));
                bb.undo_to(m);
                if ok {
                    out.push((sid, aidx));
                }
            }
        }
        out
    }

    /// Exports the complete call/answer-table graph — every subgoal, its
    /// answers, and (when provenance was recorded) the answer-level
    /// dependency edges — as a [`Forest`] ready for DOT or JSON rendering.
    pub fn forest(&self) -> Forest {
        let subgoals = self
            .states()
            .iter()
            .enumerate()
            .map(|(sid, state)| ForestSubgoal {
                id: sid,
                pred: state.functor.to_string(),
                call: render_answer(state.functor, &self.arena.terms(&state.call)),
                complete: state.complete,
                answers: state
                    .answers
                    .iter()
                    .enumerate()
                    .map(|(aidx, ans)| {
                        let prov = state.provenance.get(aidx);
                        ForestAnswer {
                            term: render_answer(state.functor, &self.arena.terms(ans)),
                            clauses: prov
                                .map(|p| p.clauses.iter().map(ClauseRef::to_string).collect())
                                .unwrap_or_default(),
                            premises: prov
                                .map(|p| p.premises.iter().map(|r| (r.subgoal, r.answer)).collect())
                                .unwrap_or_default(),
                        }
                    })
                    .collect(),
            })
            .collect();
        Forest { subgoals }
    }
}

/// Classifies a premise-free node from its clause list: a fact leaf if the
/// derivation bottomed out in at least one program fact (a clause with an
/// empty body — SLD-resolved facts are inlined into the trail), otherwise
/// supported purely by builtins.
fn leaf_status(db: &Database, clauses: &[ClauseRef]) -> JustStatus {
    let used_fact = clauses
        .iter()
        .any(|c| c.resolve(db).is_some_and(|clause| clause.body.is_empty()));
    if used_fact {
        JustStatus::Fact
    } else {
        JustStatus::Builtin
    }
}

pub(crate) fn render_answer(f: Functor, args: &[Term]) -> String {
    let term = if args.is_empty() {
        Term::Atom(f.name)
    } else {
        Term::Struct(f.name, args.to_vec().into())
    };
    tablog_syntax::term_to_string(&term)
}
