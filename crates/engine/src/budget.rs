//! Resource budgets and graceful truncation.
//!
//! A production tabled engine — XSB serving queries, the ROADMAP's
//! `tablog serve` daemon — cannot let one pathological query hang the
//! process or eat the heap. [`EngineOptions`](crate::EngineOptions)
//! therefore carries three budgets, all checked at the worklist dispatch
//! boundary (between tasks, never inside one):
//!
//! * `max_steps` — a ceiling on worklist tasks executed;
//! * `deadline` — a wall-clock allowance for the whole evaluation;
//! * `max_table_bytes` — a ceiling on table space, per the engine's
//!   incremental accounting.
//!
//! Tripping a budget is **not an error**: the machine stops scheduling,
//! keeps every table row derived so far, and hands back an
//! [`Evaluation`](crate::Evaluation) carrying a [`Truncation`] — the
//! tripped [`TruncationReason`] plus a final
//! [`HealthSnapshot`](tablog_trace::HealthSnapshot) of the run's vital
//! signs. Answers in a truncated evaluation are all genuinely derivable
//! (a prefix of the complete fixpoint); what is missing is completeness,
//! which is why tables stay unmarked (`complete == false`) and why
//! analyses that need the full model call
//! [`Evaluation::require_complete`](crate::Evaluation::require_complete),
//! converting truncation into [`EngineError::Truncated`](crate::EngineError).

use std::fmt;
use tablog_trace::HealthSnapshot;

/// Cadence of periodic [`HealthSnapshot`] emission through
/// [`TraceSink::health`](tablog_trace::TraceSink::health), plus the stall
/// watchdog's patience. Snapshots are emitted when *either* cadence
/// elapses (a zero disables that trigger); a final snapshot is always
/// emitted when the run ends, completed or truncated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthConfig {
    /// Emit a snapshot every this many worklist tasks (0 = step cadence
    /// off). The step cadence costs no timestamp between emissions.
    pub every_steps: usize,
    /// Emit a snapshot when this many milliseconds have passed since the
    /// last one (0 = time cadence off). The time cadence reads the clock
    /// once per task.
    pub every_ms: u64,
    /// Consecutive answer-free, table-growing snapshot windows before the
    /// watchdog reports `stalled` (0 = never); see
    /// [`StallWatchdog`](tablog_trace::StallWatchdog).
    pub stall_window: usize,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            every_steps: 1024,
            every_ms: 100,
            stall_window: 3,
        }
    }
}

impl HealthConfig {
    /// A config emitting only on the step cadence (deterministic snapshot
    /// counts — what tests want).
    pub fn every_steps(n: usize) -> Self {
        HealthConfig {
            every_steps: n,
            every_ms: 0,
            ..Default::default()
        }
    }

    /// A config emitting only on the time cadence (what `tablog watch
    /// --interval` wants).
    pub fn every_ms(ms: u64) -> Self {
        HealthConfig {
            every_steps: 0,
            every_ms: ms,
            ..Default::default()
        }
    }
}

/// Which resource budget cut an evaluation short.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TruncationReason {
    /// `EngineOptions::max_steps`: the step budget was exhausted.
    Steps(usize),
    /// `EngineOptions::deadline`: the wall-clock allowance (milliseconds)
    /// passed.
    DeadlineMs(u64),
    /// `EngineOptions::max_table_bytes`: table space crossed the ceiling.
    TableBytes(usize),
}

impl TruncationReason {
    /// The snake_case budget name used in reports and JSON
    /// (`"steps"`, `"deadline"`, `"table_bytes"`).
    pub fn name(self) -> &'static str {
        match self {
            TruncationReason::Steps(_) => "steps",
            TruncationReason::DeadlineMs(_) => "deadline",
            TruncationReason::TableBytes(_) => "table_bytes",
        }
    }

    /// The budget's configured limit, in its native unit (tasks,
    /// milliseconds, or bytes).
    pub fn limit(self) -> u64 {
        match self {
            TruncationReason::Steps(n) => n as u64,
            TruncationReason::DeadlineMs(ms) => ms,
            TruncationReason::TableBytes(b) => b as u64,
        }
    }
}

impl fmt::Display for TruncationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TruncationReason::Steps(n) => write!(f, "step budget of {n} exhausted"),
            TruncationReason::DeadlineMs(ms) => write!(f, "deadline of {ms} ms passed"),
            TruncationReason::TableBytes(b) => {
                write!(f, "table-space ceiling of {b} bytes crossed")
            }
        }
    }
}

/// The record of a budget-truncated evaluation: why it stopped and what
/// the run looked like at that moment. Carried by
/// [`Evaluation::truncation`](crate::Evaluation::truncation) and by
/// [`Solutions::truncation`](crate::Solutions::truncation).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Truncation {
    /// The budget that tripped.
    pub reason: TruncationReason,
    /// Final vital signs, taken at the dispatch boundary that stopped the
    /// run.
    pub snapshot: HealthSnapshot,
}

impl Truncation {
    /// Renders the truncation as a JSON object:
    /// `{"reason":…,"limit":…,"message":…,"snapshot":{…}}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"reason\":\"{}\",\"limit\":{},\"message\":\"{}\",\"snapshot\":{}}}",
            self.reason.name(),
            self.reason.limit(),
            self.reason,
            self.snapshot.to_json()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reasons_name_their_budget_and_limit() {
        assert_eq!(TruncationReason::Steps(10).name(), "steps");
        assert_eq!(TruncationReason::DeadlineMs(250).name(), "deadline");
        assert_eq!(TruncationReason::TableBytes(1 << 20).name(), "table_bytes");
        assert_eq!(TruncationReason::DeadlineMs(250).limit(), 250);
        assert_eq!(TruncationReason::TableBytes(42).limit(), 42);
        assert!(TruncationReason::Steps(10).to_string().contains("10"));
    }

    #[test]
    fn truncation_json_round_trips_the_reason() {
        let t = Truncation {
            reason: TruncationReason::TableBytes(4096),
            snapshot: HealthSnapshot::default(),
        };
        let v = tablog_trace::json::parse(&t.to_json()).expect("valid JSON");
        assert_eq!(
            v.get("reason").and_then(|x| x.as_str()),
            Some("table_bytes")
        );
        assert_eq!(v.get("limit").and_then(|x| x.as_f64()), Some(4096.0));
        assert!(v.get("snapshot").and_then(|s| s.get("steps")).is_some());
    }

    #[test]
    fn health_config_defaults_are_sane() {
        let c = HealthConfig::default();
        assert!(c.every_steps > 0 && c.every_ms > 0 && c.stall_window > 0);
        assert_eq!(HealthConfig::every_steps(8).every_ms, 0);
        assert_eq!(HealthConfig::every_ms(50).every_steps, 0);
    }
}
