//! Goal dispatch for non-tabled work: builtin evaluation and plain SLD
//! resolution against program clauses. Split out of `machine.rs` in PR 4;
//! the methods here extend [`Machine`] and feed resolvents back to it via
//! [`Machine::push`].

use crate::builtins::BuiltinImpl;
use crate::error::EngineError;
use crate::machine::{Machine, Task};
use crate::provenance::{ClauseRef, NodeProv};
use tablog_term::{Bindings, Functor, Term, Var};
use tablog_trace::TraceEvent;

impl Machine<'_> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn solve_builtin(
        &mut self,
        imp: BuiltinImpl,
        sid: usize,
        split: usize,
        template: &[Term],
        g: &Term,
        rest: &[Term],
        b: &mut Bindings,
        prov: Option<Box<NodeProv>>,
    ) -> Result<(), EngineError> {
        match imp {
            BuiltinImpl::Det(f) => {
                let m = b.mark();
                if f(b, g.args())? {
                    let n = self.make_node(sid, split, b, template, rest, prov);
                    self.push(Task::Expand(n));
                }
                b.undo_to(m);
                Ok(())
            }
            BuiltinImpl::NonDet(f) => {
                let tuples = f(b, g.args())?;
                for tuple in tuples {
                    let m = b.mark();
                    let ok = g
                        .args()
                        .iter()
                        .zip(tuple.iter())
                        .all(|(x, y)| self.unif(b, x, y));
                    if ok {
                        let n = self.make_node(sid, split, b, template, rest, prov.clone());
                        self.push(Task::Expand(n));
                    }
                    b.undo_to(m);
                }
                Ok(())
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn solve_sld(
        &mut self,
        f: Functor,
        sid: usize,
        split: usize,
        template: &[Term],
        g: &Term,
        rest: &[Term],
        b: &mut Bindings,
        prov: Option<Box<NodeProv>>,
    ) -> Result<(), EngineError> {
        // `self.db` is a `&'e` reference: copying it out lets the clause
        // iterator borrow the database for `'e`, independent of `self`, so
        // no snapshot of the clause list is ever cloned.
        let db = self.db;
        let spans_on = self.spans.is_some();
        if spans_on {
            self.span_enter("clause_resolution", Some(f));
        }
        for (cidx, clause) in db.matching_clauses_iter(f, g.args().first()) {
            self.stats.clause_resolutions += 1;
            if let Some(sink) = self.trace {
                sink.event(&TraceEvent::ClauseResolution { pred: f });
            }
            let m = b.mark();
            let base = b.fresh_block(clause.nvars);
            let mut rename = |t: &Term| t.map_vars(&mut |v| Term::Var(Var(base.0 + v.0)));
            let head = rename(&clause.head);
            let ok = g
                .args()
                .iter()
                .zip(head.args().iter())
                .all(|(x, y)| self.unif(b, x, y));
            if ok {
                let mut goals: Vec<Term> = clause.body.iter().map(&mut rename).collect();
                goals.extend_from_slice(rest);
                // SLD resolution is inlined into the derivation node, so
                // the resolved clause joins the node's own trail.
                let mut prov = prov.clone();
                if let Some(p) = prov.as_deref_mut() {
                    p.clauses.push(ClauseRef {
                        pred: f,
                        index: cidx,
                    });
                }
                let n = self.make_node(sid, split, b, template, &goals, prov);
                self.push(Task::Expand(n));
            }
            b.undo_to(m);
        }
        if spans_on {
            self.span_exit();
        }
        Ok(())
    }
}
