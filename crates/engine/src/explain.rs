//! Goal-level explanations: every matching answer's justification tree.

use crate::error::EngineError;
use crate::justify::JustNode;
use crate::session::Engine;
use tablog_term::{sym_name, Bindings, Term};
use tablog_trace::json::escape;

/// A complete explanation of one goal: every matching answer's
/// justification tree. Produced by [`Engine::explain`].
#[derive(Clone, Debug)]
pub struct Explanation {
    /// The goal as given.
    pub goal: String,
    /// One justification per matching answer, in table order.
    pub trees: Vec<JustNode>,
}

impl Explanation {
    /// `true` if the goal had no matching answers.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Renders all justification trees, separated by blank lines.
    pub fn render_text(&self) -> String {
        if self.trees.is_empty() {
            return format!("no answers for {}\n", self.goal);
        }
        let mut out = String::new();
        for (i, t) in self.trees.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            out.push_str(&t.render_text());
        }
        out
    }

    /// Renders the explanation as one JSON object
    /// (`{"goal": …, "justifications": […]}`).
    pub fn to_json(&self) -> String {
        let mut s = format!("{{\"goal\":\"{}\",\"justifications\":[", escape(&self.goal));
        for (i, t) in self.trees.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&t.to_json());
        }
        s.push_str("]}");
        s
    }
}

impl Engine {
    /// Evaluates `goal` with provenance recording forced on and returns
    /// the justification trees of every matching answer.
    ///
    /// If the goal is a single call to a tabled predicate, the trees are
    /// rooted directly at the matching table answers. Otherwise (a
    /// conjunction, or a non-tabled goal) the trees are rooted at the
    /// query's own answers, labeled with the goal text.
    ///
    /// # Errors
    ///
    /// Returns parse errors and any [`EngineError`] raised during
    /// evaluation.
    pub fn explain(&self, goal: &str, max_depth: usize) -> Result<Explanation, EngineError> {
        let mut b = Bindings::new();
        let (t, _) = tablog_syntax::parse_term(goal, &mut b)?;
        self.explain_goal(&t, &b, goal, max_depth)
    }

    /// As [`Engine::explain`], but for an already-parsed goal term whose
    /// variables live in `bindings`; `label` is the display string used
    /// for query-rooted trees. This is the entry point the analyzers use:
    /// abstract predicate names (`gp$p`, `ak$p`, …) are not re-parseable,
    /// so they hand the constructed term over directly.
    ///
    /// # Errors
    ///
    /// Returns any [`EngineError`] raised during evaluation.
    pub fn explain_goal(
        &self,
        goal: &Term,
        bindings: &Bindings,
        label: &str,
        max_depth: usize,
    ) -> Result<Explanation, EngineError> {
        let mut opts = self.options().clone();
        opts.record_provenance = true;
        let mut goals = Vec::new();
        crate::machine::flatten_conj(goal, &mut goals);
        let single_tabled = match (goals.len(), goals[0].functor()) {
            (1, Some(f)) => self.db().is_tabled(f).then_some(f),
            _ => None,
        };
        let eval = self.evaluate_with_opts(&opts, &goals, &[], bindings)?;
        let trees = match single_tabled {
            Some(f) => {
                let args = goals[0].args().to_vec();
                eval.matching_answers(f, &args, bindings)
                    .into_iter()
                    .map(|(sid, aidx)| eval.justify(self.db(), sid, aidx, max_depth))
                    .collect()
            }
            None => {
                let root = eval.root_index();
                let n = eval.states()[root].answers.len();
                (0..n)
                    .map(|aidx| {
                        let mut t = eval.justify(self.db(), root, aidx, max_depth);
                        // The synthetic `$query` tuple is meaningless to the
                        // reader; show the goal text instead.
                        if sym_name(t.pred.name) == "$query" {
                            t.answer = label.to_owned();
                        }
                        t
                    })
                    .collect()
            }
        };
        Ok(Explanation {
            goal: label.to_owned(),
            trees,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::justify::JustStatus;
    use crate::provenance::{AnswerProv, ClauseRef};
    use crate::Engine;
    use tablog_term::Functor;

    const GRAPH: &str = "
        :- table path/2.
        path(X, Y) :- path(X, Z), edge(Z, Y).
        path(X, Y) :- edge(X, Y).
        edge(a, b). edge(b, c). edge(c, a).
    ";

    fn engine(src: &str, record: bool) -> Engine {
        let mut e = Engine::from_source(src).unwrap();
        e.options_mut().record_provenance = record;
        e
    }

    fn eval(e: &Engine, goal: &str) -> crate::Evaluation {
        let mut b = Bindings::new();
        let (g, _) = tablog_syntax::parse_term(goal, &mut b).unwrap();
        let mut goals = Vec::new();
        crate::machine::flatten_conj(&g, &mut goals);
        e.evaluate(&goals, &[], &b).unwrap()
    }

    #[test]
    fn recording_off_stores_nothing() {
        let eval = eval(&engine(GRAPH, false), "path(a, X)");
        assert!(!eval.has_provenance());
        assert!(eval.provenance(0, 0).is_none());
    }

    #[test]
    fn off_and_on_table_bytes_differ_only_by_provenance() {
        let off = eval(&engine(GRAPH, false), "path(a, X)");
        let on = eval(&engine(GRAPH, true), "path(a, X)");
        let prov_bytes: usize = on
            .subgoals()
            .map(|v| {
                (0..v.num_answers())
                    .filter_map(|i| v.provenance(i))
                    .map(AnswerProv::heap_bytes)
                    .sum::<usize>()
            })
            .sum();
        assert!(prov_bytes > 0);
        assert_eq!(off.table_bytes() + prov_bytes, on.table_bytes());
        // The incremental accounting and the rescan agree on both sides.
        assert_eq!(off.stats().table_bytes, off.rescan_table_bytes());
        assert_eq!(on.stats().table_bytes, on.rescan_table_bytes());
    }

    #[test]
    fn every_answer_gets_a_provenance_record() {
        let eval = eval(&engine(GRAPH, true), "path(X, Y)");
        for v in eval.subgoals() {
            for i in 0..v.num_answers() {
                assert!(v.provenance(i).is_some(), "{} answer {i}", v.functor());
            }
        }
    }

    #[test]
    fn base_case_answer_cites_the_base_clause() {
        let e = engine(GRAPH, true);
        let ex = e.explain("path(a, b)", 10).unwrap();
        assert_eq!(ex.trees.len(), 1);
        let root = &ex.trees[0];
        assert_eq!(root.answer, "path(a,b)");
        // path(a,b) comes from clause 1 (the edge/2 base case) plus the
        // edge(a,b) fact inlined via SLD — a premise-free fact leaf.
        let path2 = Functor::new("path", 2);
        let edge2 = Functor::new("edge", 2);
        assert!(root.clauses.contains(&ClauseRef {
            pred: path2,
            index: 1
        }));
        assert!(root.clauses.iter().any(|c| c.pred == edge2));
        assert_eq!(root.status, JustStatus::Fact);
    }

    #[test]
    fn justification_leaves_are_grounded() {
        let e = engine(GRAPH, true);
        let ex = e.explain("path(a, c)", 64).unwrap();
        assert_eq!(ex.trees.len(), 1);
        ex.trees[0].walk(&mut |n| {
            if n.children.is_empty() {
                assert!(
                    n.status.is_grounded_leaf() || n.status == JustStatus::Cycle,
                    "leaf {} has status {:?}",
                    n.answer,
                    n.status
                );
            } else {
                assert_eq!(n.status, JustStatus::Derived);
            }
        });
    }

    #[test]
    fn clause_ids_resolve_in_the_database() {
        let e = engine(GRAPH, true);
        let ex = e.explain("path(a, a)", 64).unwrap();
        ex.trees[0].walk(&mut |n| {
            for c in &n.clauses {
                assert!(c.resolve(e.db()).is_some(), "dangling {c}");
            }
        });
    }

    #[test]
    fn depth_limit_truncates() {
        let e = engine(GRAPH, true);
        let ex = e.explain("path(a, c)", 0).unwrap();
        assert_eq!(ex.trees[0].status, JustStatus::Truncated);
        assert!(ex.trees[0].children.is_empty());
    }

    #[test]
    fn facts_are_fact_leaves() {
        let src = ":- table edge/2.\nedge(a, b).";
        let e = engine(src, true);
        let ex = e.explain("edge(a, b)", 10).unwrap();
        assert_eq!(ex.trees[0].status, JustStatus::Fact);
    }

    #[test]
    fn conjunction_explains_via_query_root() {
        let e = engine(GRAPH, true);
        let ex = e.explain("path(a, b), path(b, c)", 10).unwrap();
        assert_eq!(ex.trees.len(), 1);
        assert_eq!(ex.trees[0].answer, "path(a, b), path(b, c)");
        assert_eq!(ex.trees[0].children.len(), 2);
    }

    #[test]
    fn unrecorded_answers_render_as_unrecorded() {
        let eval = eval(&engine(GRAPH, false), "path(a, b)");
        let e = engine(GRAPH, false);
        let node = eval.justify(e.db(), 0, 0, 10);
        assert_eq!(node.status, JustStatus::Unrecorded);
    }

    #[test]
    fn render_text_draws_a_tree() {
        let e = engine(GRAPH, true);
        let text = e.explain("path(a, c)", 64).unwrap().render_text();
        assert!(text.starts_with("path(a,c)"));
        assert!(text.contains("`- "));
        assert!(text.contains("via path/2#"));
    }

    #[test]
    fn explanation_json_round_trips_through_parser() {
        let e = engine(GRAPH, true);
        let json = e.explain("path(a, c)", 64).unwrap().to_json();
        let doc = tablog_trace::json::parse(&json).unwrap();
        assert_eq!(doc.get("goal").unwrap().as_str(), Some("path(a, c)"));
        let trees = doc.get("justifications").unwrap().as_arr().unwrap();
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].get("status").unwrap().as_str(), Some("derived"));
    }

    #[test]
    fn forest_export_round_trips_and_links_premises() {
        let e = engine(GRAPH, true);
        let eval = eval(&e, "path(a, X)");
        let forest = eval.forest();
        assert_eq!(forest.subgoals.len(), eval.stats().subgoals);
        let back = tablog_trace::Forest::from_json(&forest.to_json()).unwrap();
        assert_eq!(forest, back);
        // Premise indices stay in range.
        for s in &forest.subgoals {
            for a in &s.answers {
                for &(ps, pa) in &a.premises {
                    assert!(pa < forest.subgoals[ps].answers.len());
                }
            }
        }
        // Some answer actually consumed a premise (path is recursive).
        assert!(forest
            .subgoals
            .iter()
            .flat_map(|s| &s.answers)
            .any(|a| !a.premises.is_empty()));
    }

    #[test]
    fn explain_does_not_mutate_engine_options() {
        let e = engine(GRAPH, false);
        e.explain("path(a, b)", 10).unwrap();
        assert!(!e.options().record_provenance);
    }
}
