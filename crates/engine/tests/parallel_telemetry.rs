//! Property tests for the parallel observatory's telemetry (PR 10).
//!
//! The load/message attribution in `ParallelReport` is accounting layered
//! over the PR 8 message protocol, so it must obey conservation laws no
//! matter how the racy SCC claiming distributes work: every message sent
//! over an edge is received on that edge, the credit counter returns to
//! zero, and turning the instrumentation on cannot change what the engine
//! computes. These tests check those laws at several worker counts on the
//! same cross-SCC fixtures the PR 8 stress tests use.

use std::sync::Arc;
use tablog_engine::{Engine, EngineOptions, Evaluation, LoadMode, MetricsRegistry, Scheduling};
use tablog_term::Bindings;
use tablog_trace::MsgKind;

/// Several independent SCCs feeding a `join` layer (same shape as the
/// PR 8 stress fixture): the joins force cross-worker answer streams.
const CROSS_SCC: &str = "
:- table path/2.
:- table rpath/2.
:- table apath/2.
:- table join/2.
path(X, Y) :- path(X, Z), edge(Z, Y).
path(X, Y) :- edge(X, Y).
rpath(X, Y) :- edge(Y, X).
rpath(X, Y) :- rpath(X, Z), edge(Y, Z).
apath(X, Y) :- path(X, Y).
apath(X, Y) :- rpath(X, Y).
join(X, Y) :- path(X, Z), rpath(Y, Z).
join(X, Y) :- apath(X, Y), path(Y, X).
edge(a, b). edge(b, c). edge(c, d). edge(d, a).
edge(b, d). edge(d, b). edge(a, c).
";

/// A chain of strata so answers hop multiple workers before the root.
const LAYERED: &str = "
:- table t0/2.
:- table t1/2.
:- table t2/2.
:- table t3/2.
t0(X, Y) :- t0(X, Z), e(Z, Y).
t0(X, Y) :- e(X, Y).
t1(X, Y) :- t0(X, Y).
t1(X, Y) :- t1(X, Z), t0(Z, Y).
t2(X, Y) :- t1(Y, X).
t3(X, Y) :- t1(X, Z), t2(Z, Y).
e(n1, n2). e(n2, n3). e(n3, n4). e(n4, n5). e(n5, n1). e(n2, n5).
";

const FIXTURES: [(&str, &str); 2] = [(CROSS_SCC, "join(X, Y)"), (LAYERED, "t3(X, Y)")];

/// Runs `goal` under the parallel scheduler. With `instrumented` the run
/// records spans into a registry sink, which also switches flow-event
/// capture on — exactly what `tablog timeline --scheduler parallel` does.
fn run_parallel(src: &str, goal: &str, threads: usize, instrumented: bool) -> Evaluation {
    let opts = if instrumented {
        let registry = Arc::new(MetricsRegistry::new());
        EngineOptions {
            scheduling: Scheduling::Parallel,
            threads,
            trace: Some(registry as Arc<dyn tablog_trace::TraceSink>),
            record_spans: true,
            record_counters: true,
            ..EngineOptions::default()
        }
    } else {
        EngineOptions {
            scheduling: Scheduling::Parallel,
            threads,
            ..EngineOptions::default()
        }
    };
    let engine = Engine::from_source_with(src, LoadMode::Dynamic, opts).unwrap();
    let mut b = Bindings::new();
    let (g, _) = tablog_syntax::parse_term(goal, &mut b).unwrap();
    engine.evaluate(&[g], &[], &b).unwrap()
}

/// Conservation: on every directed worker edge, the sender's send-side
/// counts equal the receiver's receive-side counts — per message kind —
/// and the credit counter is back at zero. Repeated because the SCC
/// ownership race makes every run a different interleaving.
#[test]
fn message_accounting_balances_on_every_edge() {
    for (src, goal) in FIXTURES {
        for threads in [1usize, 2, 4] {
            for rep in 0..10 {
                let eval = run_parallel(src, goal, threads, false);
                let report = eval.parallel_report().expect("parallel run has a report");
                assert_eq!(report.threads, threads);
                assert_eq!(
                    report.pending_at_exit, 0,
                    "completed run must drain all credits (threads={threads}, rep={rep})"
                );
                for e in &report.edges {
                    assert_ne!(e.from, e.to, "local work never crosses an edge");
                    assert_eq!(
                        e.calls_sent, e.calls_received,
                        "call loss/duplication on {}->{} (threads={threads}, rep={rep})",
                        e.from, e.to
                    );
                    assert_eq!(
                        e.answers_sent, e.answers_received,
                        "answer loss/duplication on {}->{} (threads={threads}, rep={rep})",
                        e.from, e.to
                    );
                }
                // Per-worker totals are exactly the edge sums.
                for w in &report.workers {
                    let sent: u64 = report
                        .edges
                        .iter()
                        .filter(|e| e.from == w.worker)
                        .map(|e| e.calls_sent + e.answers_sent)
                        .sum();
                    let received: u64 = report
                        .edges
                        .iter()
                        .filter(|e| e.to == w.worker)
                        .map(|e| e.calls_received + e.answers_received)
                        .sum();
                    assert_eq!(w.msgs_sent, sent, "worker {} sent total", w.worker);
                    assert_eq!(w.msgs_received, received, "worker {} recv total", w.worker);
                }
            }
        }
    }
}

/// A single worker exchanges no messages: the matrix is empty and every
/// claimed SCC belongs to worker 0.
#[test]
fn single_worker_run_has_no_cross_traffic() {
    let eval = run_parallel(CROSS_SCC, "join(X, Y)", 1, false);
    let report = eval.parallel_report().unwrap();
    assert!(report.edges.is_empty(), "{:?}", report.edges);
    assert_eq!(report.msgs_sent_total(), 0);
    assert!(report.flows.is_empty());
    for scc in &report.sccs {
        assert!(
            scc.owner.is_none() || scc.owner == Some(0),
            "SCC {} owned by {:?}",
            scc.scc,
            scc.owner
        );
    }
}

/// Observing the run must not change it: the deterministic outcome
/// counters (subgoals, answers, table bytes) are identical with the full
/// observatory on and with everything off, at every worker count.
#[test]
fn instrumentation_does_not_change_the_fixpoint() {
    for (src, goal) in FIXTURES {
        let baseline = run_parallel(src, goal, 1, false);
        let want = (
            baseline.stats().subgoals,
            baseline.stats().answers,
            baseline.stats().table_bytes,
        );
        for threads in [1usize, 2, 4] {
            for instrumented in [false, true] {
                let eval = run_parallel(src, goal, threads, instrumented);
                let got = (
                    eval.stats().subgoals,
                    eval.stats().answers,
                    eval.stats().table_bytes,
                );
                assert_eq!(
                    got, want,
                    "fixpoint drifted (threads={threads}, instrumented={instrumented})"
                );
            }
        }
    }
}

/// With span recording on, every delivered message leaves exactly one flow
/// record, consistent with the per-edge counters: ids unique, timestamps
/// ordered, and per-(edge, kind) flow counts equal the receive counts.
#[test]
fn flow_records_cover_every_delivered_message() {
    for rep in 0..5 {
        let eval = run_parallel(CROSS_SCC, "join(X, Y)", 4, true);
        let report = eval.parallel_report().unwrap();
        let delivered: u64 = report.workers.iter().map(|w| w.msgs_received).sum();
        assert_eq!(
            report.flows.len() as u64,
            delivered,
            "one flow per delivered message (rep={rep})"
        );
        let mut ids: Vec<u64> = report.flows.iter().map(|f| f.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), report.flows.len(), "flow ids are unique");
        for f in &report.flows {
            assert_ne!(f.from, f.to);
            assert!(
                f.send_ns <= f.recv_ns,
                "flow {} delivered before it was sent",
                f.id
            );
        }
        for e in &report.edges {
            let kind_count = |kind: MsgKind| {
                report
                    .flows
                    .iter()
                    .filter(|f| f.from == e.from && f.to == e.to && f.kind == kind)
                    .count() as u64
            };
            assert_eq!(kind_count(MsgKind::Call), e.calls_received, "{e:?}");
            assert_eq!(kind_count(MsgKind::Answer), e.answers_received, "{e:?}");
        }
    }
}

/// Wall-clock attribution is internally consistent: each worker's lane
/// decomposes into busy + idle + receive-wait, and the derived summary
/// statistics stay in their defined ranges.
#[test]
fn worker_timing_decomposes_and_summaries_are_sane() {
    let eval = run_parallel(CROSS_SCC, "join(X, Y)", 4, false);
    let report = eval.parallel_report().unwrap();
    assert_eq!(report.workers.len(), 4);
    for w in &report.workers {
        assert_eq!(w.wall_ns(), w.busy_ns + w.idle_ns + w.recv_wait_ns);
        assert!(w.busy_ns > 0 || w.dispatches == 0, "busy work left untimed");
    }
    assert!(report.imbalance() >= 1.0, "{}", report.imbalance());
    let idle = report.idle_pct();
    assert!((0.0..=100.0).contains(&idle), "{idle}");
    let total: u64 = report.workers.iter().map(|w| w.msgs_sent).sum();
    assert_eq!(report.msgs_sent_total(), total);
}
