//! Regression locks against the pre-arena (PR 2) engine.
//!
//! PR 3 replaced the table representation (hash-consed canonical terms,
//! id-keyed dedup, borrowed clause iteration). None of that may change what
//! the engine *computes*: answer sets, insertion order, duplicate verdicts,
//! step and clause-resolution counts must all match the seed `Vec`/`HashSet`
//! implementation. The constants below were captured by running the seed
//! engine (commit `6b79cf2`) on the same programs; the borrow rewrite of the
//! clause-resolution loops in particular must not alter `clause_resolutions`.

use std::sync::Arc;
use tablog_engine::{CounterTrack, Engine, EngineOptions, HealthConfig, HealthTrack, LoadMode};
use tablog_term::Bindings;

struct Expect {
    name: &'static str,
    src: &'static str,
    goal: &'static str,
    /// (steps, clause_resolutions, subgoals, answers, duplicate_answers)
    dynamic: (usize, usize, usize, usize, usize),
    compiled: (usize, usize, usize, usize, usize),
}

/// Seed-engine counters, one row per (program, load mode).
const EXPECTED: &[Expect] = &[
    Expect {
        name: "graph",
        src: ":- table path/2.\n\
              path(X, Y) :- path(X, Z), edge(Z, Y).\n\
              path(X, Y) :- edge(X, Y).\n\
              edge(a, b). edge(b, c). edge(c, a).",
        goal: "path(X, Y)",
        dynamic: (40, 32, 2, 10, 0),
        compiled: (40, 14, 2, 10, 0),
    },
    Expect {
        name: "sg",
        src: ":- table sg/2.\n\
              sg(X, X).\n\
              sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).\n\
              par(c1, p1). par(c2, p1). par(p1, g1). par(p2, g1).",
        goal: "sg(c1, X)",
        dynamic: (20, 30, 4, 6, 0),
        compiled: (20, 20, 4, 6, 0),
    },
    Expect {
        name: "gp_ap",
        src: ":- table gp_ap/3.\n\
              gp_ap(X1, X2, X3) :- '$iff'(X1), '$iff'(X2, X3).\n\
              gp_ap(X1, X2, X3) :-\n\
                  '$iff'(X1, X, Xs), '$iff'(X3, X, Zs), gp_ap(Xs, X2, Zs).",
        goal: "gp_ap(X, Y, Z)",
        dynamic: (65, 10, 6, 9, 0),
        compiled: (65, 10, 6, 9, 0),
    },
    Expect {
        name: "app",
        src: ":- table app/3.\n\
              app([], Y, Y). app([H|T], Y, [H|Z]) :- app(T, Y, Z).",
        goal: "app(X, Y, [1,2,3,4])",
        dynamic: (36, 10, 6, 16, 0),
        compiled: (36, 10, 6, 16, 0),
    },
];

fn run(src: &str, goal: &str, mode: LoadMode) -> tablog_engine::TableStats {
    let e = Engine::from_source_with(src, mode, EngineOptions::default()).unwrap();
    let mut b = Bindings::new();
    let (g, _) = tablog_syntax::parse_term(goal, &mut b).unwrap();
    e.evaluate(&[g], &[], &b).unwrap().stats()
}

#[test]
fn counters_match_seed_engine() {
    for e in EXPECTED {
        for (mode, want) in [
            (LoadMode::Dynamic, e.dynamic),
            (LoadMode::Compiled, e.compiled),
        ] {
            let s = run(e.src, e.goal, mode);
            let got = (
                s.steps,
                s.clause_resolutions,
                s.subgoals,
                s.answers,
                s.duplicate_answers,
            );
            assert_eq!(
                got, want,
                "{} ({mode:?}): (steps, clause_resolutions, subgoals, answers, \
                 duplicate_answers) diverged from the seed engine",
                e.name
            );
        }
    }
}

/// Counter sampling is observation only: a run with `record_counters` on
/// computes byte-for-byte the same whole-run totals as a plain run, the
/// track holds one sample per engine step plus the initial state, and the
/// final sample agrees with the evaluation's own statistics.
#[test]
fn counter_sampling_does_not_perturb_evaluation() {
    for e in EXPECTED {
        for mode in [LoadMode::Dynamic, LoadMode::Compiled] {
            let plain = run(e.src, e.goal, mode);
            let track = Arc::new(CounterTrack::new());
            let opts = EngineOptions {
                trace: Some(track.clone()),
                record_counters: true,
                ..Default::default()
            };
            let eng = Engine::from_source_with(e.src, mode, opts).unwrap();
            let mut b = Bindings::new();
            let (g, _) = tablog_syntax::parse_term(e.goal, &mut b).unwrap();
            let counted = eng.evaluate(&[g], &[], &b).unwrap().stats();
            assert_eq!(
                (
                    counted.steps,
                    counted.clause_resolutions,
                    counted.subgoals,
                    counted.answers,
                    counted.duplicate_answers,
                    counted.table_bytes,
                ),
                (
                    plain.steps,
                    plain.clause_resolutions,
                    plain.subgoals,
                    plain.answers,
                    plain.duplicate_answers,
                    plain.table_bytes,
                ),
                "{} ({mode:?}): counter sampling changed the evaluation",
                e.name
            );
            assert_eq!(
                track.len(),
                counted.steps + 1,
                "{} ({mode:?}): one sample per step plus the initial state",
                e.name
            );
            let last = track.last().expect("at least the initial sample");
            assert_eq!(last.worklist, 0, "{}: final worklist is drained", e.name);
            assert_eq!(last.expands + last.returns, 0, "{}", e.name);
            assert_eq!(last.answers, counted.answers, "{}", e.name);
            assert_eq!(last.tables, counted.subgoals, "{}", e.name);
            assert_eq!(last.table_bytes, counted.table_bytes, "{}", e.name);
        }
    }
}

/// Budgets and health reporting are observation only: a run under generous
/// budgets (none of which trip) with health snapshots on computes
/// byte-for-byte the same whole-run totals and answer sets as a plain run,
/// is not truncated, and the final snapshot agrees with the evaluation's
/// own statistics.
#[test]
fn generous_budgets_and_health_do_not_perturb_evaluation() {
    for e in EXPECTED {
        for mode in [LoadMode::Dynamic, LoadMode::Compiled] {
            let plain_eng =
                Engine::from_source_with(e.src, mode, EngineOptions::default()).unwrap();
            let plain = plain_eng.solve(e.goal).unwrap();
            let plain_stats = run(e.src, e.goal, mode);

            let track = Arc::new(HealthTrack::new());
            let opts = EngineOptions {
                trace: Some(track.clone()),
                max_steps: Some(1_000_000),
                deadline: Some(std::time::Duration::from_secs(3600)),
                max_table_bytes: Some(1 << 30),
                health: Some(HealthConfig::every_steps(1)),
                ..Default::default()
            };
            let eng = Engine::from_source_with(e.src, mode, opts).unwrap();
            let sols = eng.solve(e.goal).unwrap();
            assert!(!sols.is_truncated(), "{}: generous budgets tripped", e.name);
            assert_eq!(
                sols.rows(),
                plain.rows(),
                "{} ({mode:?}): budgets changed the answer set",
                e.name
            );

            let mut b = Bindings::new();
            let (g, _) = tablog_syntax::parse_term(e.goal, &mut b).unwrap();
            let budgeted = eng.evaluate(&[g], &[], &b).unwrap().stats();
            assert_eq!(
                (
                    budgeted.steps,
                    budgeted.clause_resolutions,
                    budgeted.subgoals,
                    budgeted.answers,
                    budgeted.duplicate_answers,
                    budgeted.table_bytes,
                ),
                (
                    plain_stats.steps,
                    plain_stats.clause_resolutions,
                    plain_stats.subgoals,
                    plain_stats.answers,
                    plain_stats.duplicate_answers,
                    plain_stats.table_bytes,
                ),
                "{} ({mode:?}): budgets/health changed the evaluation",
                e.name
            );

            // every_steps(1) emits one snapshot per step plus the final one;
            // the track saw both solve() and evaluate() runs.
            assert!(!track.is_empty(), "{}: no health snapshots", e.name);
            let last = track.last().expect("final snapshot");
            assert_eq!(last.steps, budgeted.steps, "{}", e.name);
            assert_eq!(last.worklist, 0, "{}: final worklist is drained", e.name);
            assert_eq!(last.answers, budgeted.answers, "{}", e.name);
            assert_eq!(last.tables, budgeted.subgoals, "{}", e.name);
            assert_eq!(
                last.completed_tables, budgeted.subgoals,
                "{}: a drained run completes every table",
                e.name
            );
            assert_eq!(last.table_bytes, budgeted.table_bytes, "{}", e.name);
            assert!(!last.stalled, "{}: bounded runs never stall", e.name);
        }
    }
}

#[test]
fn rescan_agrees_with_incremental_on_seed_programs() {
    for e in EXPECTED {
        for mode in [LoadMode::Dynamic, LoadMode::Compiled] {
            let eng = Engine::from_source_with(e.src, mode, EngineOptions::default()).unwrap();
            let mut b = Bindings::new();
            let (g, _) = tablog_syntax::parse_term(e.goal, &mut b).unwrap();
            let eval = eng.evaluate(&[g], &[], &b).unwrap();
            assert_eq!(
                eval.stats().table_bytes,
                eval.rescan_table_bytes(),
                "{} ({mode:?})",
                e.name
            );
        }
    }
}
