//! Differential property tests for the id-backed answer tables.
//!
//! PR 3 swapped the seed's structural `Vec<CanonicalTerm>` + `HashSet`
//! answer store for hash-consed `TermId` keys. These tests re-run the seed
//! representation as a *shadow*: a naive structural table fed from the
//! engine's own trace events. Every `answer_insert`/`duplicate_answer`
//! verdict the id-keyed table reaches must be the verdict the structural
//! table reaches on the materialized terms, and the final tables must agree
//! byte-for-byte on content and insertion order.
//!
//! Forward subsumption is switched on for the replay test so each tabled
//! predicate owns exactly one table — that makes the per-predicate shadow
//! an exact model (events do not say *which* table of a predicate they hit).

use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};
use tablog_engine::{
    Engine, EngineOptions, LoadMode, OwnedEvent, Scheduling, TraceEvent, TraceSink,
};
use tablog_term::{Bindings, Functor, Term};

/// A sink that retains every event in emission order.
#[derive(Default)]
struct Collect(Mutex<Vec<OwnedEvent>>);

impl TraceSink for Collect {
    fn event(&self, e: &TraceEvent<'_>) {
        self.0.lock().unwrap().push(e.to_owned());
    }
}

/// A generated test program: source text plus the goal to run.
#[derive(Clone, Debug)]
struct Prog {
    src: String,
    goal: &'static str,
}

/// Renders graph node `i` wrapped in `depth` layers of `s/1` — ground
/// structure that recurs across facts, so the hash-consing arena actually
/// shares subterms and the byte accounting is exercised under sharing.
fn node(i: u8, depth: u8) -> String {
    let mut t = format!("n{i}");
    for _ in 0..depth {
        t = format!("s({t})");
    }
    t
}

/// Random Datalog programs: a random `edge/2` relation over wrapped nodes,
/// one of three recursion shapes for `path/2`, and a structured `pair/2`
/// layer on top so answers themselves are compound. Everything is a finite
/// Datalog program, so tabled evaluation always terminates.
fn arb_prog() -> impl Strategy<Value = Prog> {
    (
        2u8..5,                                                // node count
        prop::collection::vec((0u8..4, 0u8..4, 0u8..3), 1..9), // edges + wrap depth
        0u8..3,                                                // recursion shape
    )
        .prop_map(|(n, edges, shape)| {
            let mut src = String::from(":- table path/2.\n:- table pair/2.\n");
            src.push_str(match shape {
                0 => "path(X, Y) :- path(X, Z), edge(Z, Y).\n",
                1 => "path(X, Y) :- edge(X, Z), path(Z, Y).\n",
                _ => "path(X, Y) :- path(X, Z), path(Z, Y).\n",
            });
            src.push_str("path(X, Y) :- edge(X, Y).\n");
            src.push_str("pair(f(X, Y), f(Y, X)) :- path(X, Y).\n");
            for (a, b, d) in edges {
                src.push_str(&format!("edge({}, {}).\n", node(a % n, d), node(b % n, d)));
            }
            Prog {
                src,
                goal: "pair(U, V)",
            }
        })
}

/// The seed's table representation: structural terms in a `Vec` for order
/// plus a `HashSet` for duplicate detection.
#[derive(Default)]
struct ShadowTable {
    order: Vec<Vec<Term>>,
    seen: HashSet<Vec<Term>>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replaying the engine's own insert/duplicate events into a naive
    /// structural table reproduces its verdicts, contents, and order.
    #[test]
    fn id_keyed_tables_match_structural_shadow(prog in arb_prog()) {
        for mode in [LoadMode::Dynamic, LoadMode::Compiled] {
            let sink = Arc::new(Collect::default());
            let opts = EngineOptions {
                forward_subsumption: true,
                trace: Some(sink.clone()),
                ..EngineOptions::default()
            };
            let engine = Engine::from_source_with(&prog.src, mode, opts)
                .expect("generated program parses");
            let mut b = Bindings::new();
            let (g, _) = tablog_syntax::parse_term(prog.goal, &mut b).unwrap();
            let eval = engine.evaluate(&[g], &[], &b).expect("evaluation succeeds");
            let events = sink.0.lock().unwrap();

            let mut shadow: HashMap<Functor, ShadowTable> = HashMap::new();
            let mut tables_per_pred: HashMap<Functor, usize> = HashMap::new();
            let (mut inserts, mut dups) = (0usize, 0usize);
            for ev in events.iter() {
                match ev {
                    OwnedEvent::NewSubgoal { pred, .. } => {
                        let n = tables_per_pred.entry(*pred).or_insert(0);
                        *n += 1;
                        // The shadow is keyed by predicate, which is only
                        // sound while subsumption keeps one table per pred.
                        prop_assert_eq!(*n, 1, "pred {:?} opened a second table", pred);
                    }
                    OwnedEvent::AnswerInsert { pred, answer, .. } => {
                        inserts += 1;
                        let tuple = answer.clone();
                        let t = shadow.entry(*pred).or_default();
                        prop_assert!(
                            t.seen.insert(tuple.clone()),
                            "id table inserted {:?} but the structural table \
                             already contains it ({:?}, {:?})",
                            tuple, pred, mode
                        );
                        t.order.push(tuple);
                    }
                    OwnedEvent::DuplicateAnswer { pred, answer } => {
                        dups += 1;
                        let tuple = answer.clone();
                        prop_assert!(
                            shadow.entry(*pred).or_default().seen.contains(&tuple),
                            "id table rejected {:?} as duplicate but the \
                             structural table has never seen it ({:?}, {:?})",
                            tuple, pred, mode
                        );
                    }
                    _ => {}
                }
            }

            // Stats agree with the event stream the tables were built from.
            let stats = eval.stats();
            prop_assert_eq!(stats.answers, inserts);
            prop_assert_eq!(stats.duplicate_answers, dups);

            // Final tables: same tuples, same insertion order, for every
            // subgoal the engine materialized.
            for view in eval.subgoals() {
                let got: Vec<Vec<Term>> = view.answer_tuples().collect();
                let want = shadow
                    .get(&view.functor())
                    .map(|t| t.order.as_slice())
                    .unwrap_or(&[]);
                prop_assert_eq!(&got, &want, "answer order for {:?}", view.functor());
            }
        }
    }

    /// Scheduling strategy is a performance knob, not a semantics knob:
    /// depth-first, batched, breadth-first, and parallel (at 1, 2, and 4
    /// workers) evaluation of the same random program reach identical
    /// answer sets for every subgoal, and identical table/subgoal counts.
    #[test]
    fn schedulers_agree_on_answer_sets(prog in arb_prog()) {
        let run = |scheduling: Scheduling, threads: usize| {
            let opts = EngineOptions { scheduling, threads, ..EngineOptions::default() };
            let engine =
                Engine::from_source_with(&prog.src, LoadMode::Dynamic, opts).unwrap();
            let mut b = Bindings::new();
            let (g, _) = tablog_syntax::parse_term(prog.goal, &mut b).unwrap();
            let eval = engine.evaluate(&[g], &[], &b).unwrap();
            // Per-subgoal answer sets, keyed by the call pattern so tables
            // line up even if creation order differs between strategies.
            let mut tables: Vec<(String, Vec<String>)> = eval
                .subgoals()
                .map(|v| {
                    let call = tablog_syntax::term_to_string(&v.call_term());
                    let mut answers: Vec<String> = v
                        .answer_tuples()
                        .map(|t| {
                            t.iter()
                                .map(tablog_syntax::term_to_string)
                                .collect::<Vec<_>>()
                                .join(",")
                        })
                        .collect();
                    answers.sort();
                    (call, answers)
                })
                .collect();
            tables.sort();
            (tables, eval.stats().subgoals, eval.stats().answers)
        };
        let depth = run(Scheduling::DepthFirst, 1);
        let batched = run(Scheduling::Batched, 1);
        let breadth = run(Scheduling::BreadthFirst, 1);
        prop_assert_eq!(&depth.0, &batched.0, "depth-first vs batched tables");
        prop_assert_eq!(&depth.0, &breadth.0, "depth-first vs breadth-first tables");
        prop_assert_eq!(depth.1, batched.1, "subgoal counts");
        prop_assert_eq!(depth.2, batched.2, "answer counts");
        // The parallel driver partitions the same forest across workers:
        // table contents must not depend on the worker count.
        for threads in [1usize, 2, 4] {
            let par = run(Scheduling::Parallel, threads);
            prop_assert_eq!(
                &depth.0, &par.0,
                "depth-first vs parallel tables at {} threads", threads
            );
            prop_assert_eq!(depth.1, par.1, "subgoal counts at {} threads", threads);
            prop_assert_eq!(depth.2, par.2, "answer counts at {} threads", threads);
        }
    }

    /// PR 5's heap attribution: each table's byte breakdown (terms +
    /// answer entries + provenance) sums exactly to that table's total,
    /// and the per-table totals sum exactly to the evaluation-wide
    /// `table_bytes()`, across option modes that change what gets charged.
    /// Cursor bytes are informational and deliberately outside the sum.
    #[test]
    fn per_table_attribution_sums_to_table_bytes(prog in arb_prog()) {
        let modes = [
            EngineOptions::default(),
            EngineOptions { forward_subsumption: true, ..EngineOptions::default() },
            EngineOptions { record_provenance: true, ..EngineOptions::default() },
        ];
        for opts in modes {
            for mode in [LoadMode::Dynamic, LoadMode::Compiled] {
                let engine =
                    Engine::from_source_with(&prog.src, mode, opts.clone()).unwrap();
                let mut b = Bindings::new();
                let (g, _) = tablog_syntax::parse_term(prog.goal, &mut b).unwrap();
                let eval = engine.evaluate(&[g], &[], &b).unwrap();
                let mut sum = 0usize;
                for view in eval.subgoals() {
                    let bd = view.byte_breakdown();
                    prop_assert_eq!(
                        bd.attributed(),
                        view.table_bytes(),
                        "attribution for {:?} ({:?}, {:?})",
                        view.functor(), mode, opts
                    );
                    sum += bd.attributed();
                }
                prop_assert_eq!(
                    sum,
                    eval.table_bytes(),
                    "per-table sum vs total ({:?}, {:?})",
                    mode,
                    opts
                );
                let report = eval.table_report();
                prop_assert_eq!(report.total_bytes(), sum);
            }
        }
    }

    /// The incremental byte accounting (charged as answers arrive, with
    /// arena sharing) agrees with a from-scratch rescan of the finished
    /// tables, across option modes that change what gets charged.
    #[test]
    fn incremental_bytes_match_rescan(prog in arb_prog()) {
        let modes = [
            EngineOptions::default(),
            EngineOptions { forward_subsumption: true, ..EngineOptions::default() },
            EngineOptions { record_provenance: true, ..EngineOptions::default() },
        ];
        for opts in modes {
            for mode in [LoadMode::Dynamic, LoadMode::Compiled] {
                let engine =
                    Engine::from_source_with(&prog.src, mode, opts.clone()).unwrap();
                let mut b = Bindings::new();
                let (g, _) = tablog_syntax::parse_term(prog.goal, &mut b).unwrap();
                let eval = engine.evaluate(&[g], &[], &b).unwrap();
                prop_assert_eq!(
                    eval.stats().table_bytes,
                    eval.rescan_table_bytes(),
                    "mode {:?}, opts {:?}",
                    mode,
                    opts
                );
            }
        }
    }
}
