//! Stress tests for the parallel scheduler's cross-worker answer
//! publication (PR 8).
//!
//! Loom-style model checking is not available in this workspace, so these
//! tests attack the sharded path statistically instead: many repetitions of
//! multi-worker runs whose SCC structure forces cross-worker traffic, each
//! compared against the sequential fixpoint. The properties under test are
//! exactly the ones the message protocol must guarantee — every answer
//! reaches every remote consumer exactly once (no loss, no duplication),
//! and the merged tables are independent of worker count and interleaving.

use std::collections::BTreeMap;
use tablog_engine::{Engine, EngineOptions, LoadMode, Scheduling};
use tablog_term::Bindings;

/// A program with several independent SCCs (`path`, `rpath`, `apath`) that
/// all feed a `join` layer: the joins force whichever workers own the
/// upstream SCCs to stream answers to the worker expanding the join bodies.
const CROSS_SCC: &str = "
:- table path/2.
:- table rpath/2.
:- table apath/2.
:- table join/2.
path(X, Y) :- path(X, Z), edge(Z, Y).
path(X, Y) :- edge(X, Y).
rpath(X, Y) :- edge(Y, X).
rpath(X, Y) :- rpath(X, Z), edge(Y, Z).
apath(X, Y) :- path(X, Y).
apath(X, Y) :- rpath(X, Y).
join(X, Y) :- path(X, Z), rpath(Y, Z).
join(X, Y) :- apath(X, Y), path(Y, X).
edge(a, b). edge(b, c). edge(c, d). edge(d, a).
edge(b, d). edge(d, b). edge(a, c).
";

/// A deeper chain of mutually independent strata, so ownership spreads
/// across workers and answers hop multiple times before reaching the root.
const LAYERED: &str = "
:- table t0/2.
:- table t1/2.
:- table t2/2.
:- table t3/2.
t0(X, Y) :- t0(X, Z), e(Z, Y).
t0(X, Y) :- e(X, Y).
t1(X, Y) :- t0(X, Y).
t1(X, Y) :- t1(X, Z), t0(Z, Y).
t2(X, Y) :- t1(Y, X).
t3(X, Y) :- t1(X, Z), t2(Z, Y).
e(n1, n2). e(n2, n3). e(n3, n4). e(n4, n5). e(n5, n1). e(n2, n5).
";

/// Runs `goal` under `scheduling`/`threads` and returns every table as a
/// sorted (call, sorted answers) map — the full observable fixpoint.
fn tables(
    src: &str,
    goal: &str,
    scheduling: Scheduling,
    threads: usize,
) -> BTreeMap<String, Vec<String>> {
    let opts = EngineOptions {
        scheduling,
        threads,
        ..EngineOptions::default()
    };
    let engine = Engine::from_source_with(src, LoadMode::Dynamic, opts).unwrap();
    let mut b = Bindings::new();
    let (g, _) = tablog_syntax::parse_term(goal, &mut b).unwrap();
    let eval = engine.evaluate(&[g], &[], &b).unwrap();
    eval.subgoals()
        .map(|v| {
            let call = format!(
                "{}:{}",
                v.functor(),
                tablog_syntax::term_to_string(&v.call_term())
            );
            let mut answers: Vec<String> = v
                .answer_tuples()
                .map(|t| {
                    t.iter()
                        .map(tablog_syntax::term_to_string)
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .collect();
            answers.sort();
            (call, answers)
        })
        .collect()
}

/// Many repetitions at several worker counts: the cross-SCC program's
/// tables must match the sequential fixpoint on every run, whatever the
/// interleaving of call and answer messages.
#[test]
fn repeated_parallel_runs_match_sequential_tables() {
    for (src, goal) in [(CROSS_SCC, "join(X, Y)"), (LAYERED, "t3(X, Y)")] {
        let want = tables(src, goal, Scheduling::DepthFirst, 1);
        assert!(
            want.values().any(|a| !a.is_empty()),
            "baseline must derive answers"
        );
        for threads in [2usize, 3, 4] {
            for rep in 0..25 {
                let got = tables(src, goal, Scheduling::Parallel, threads);
                assert_eq!(
                    got, want,
                    "parallel tables diverged (threads={threads}, rep={rep})"
                );
            }
        }
    }
}

/// Exactly-once publication, observed through the duplicate counter: a
/// lost answer would shrink a table (caught above), a doubly-delivered one
/// would either re-insert (caught above) or inflate `duplicate_answers`
/// beyond what the clause structure itself produces. Runs agree with the
/// sequential counts on unique answers and subgoals on every repetition.
#[test]
fn answer_and_subgoal_counts_are_interleaving_independent() {
    let run = |scheduling: Scheduling, threads: usize| {
        let opts = EngineOptions {
            scheduling,
            threads,
            ..EngineOptions::default()
        };
        let engine = Engine::from_source_with(CROSS_SCC, LoadMode::Dynamic, opts).unwrap();
        let mut b = Bindings::new();
        let (g, _) = tablog_syntax::parse_term("join(X, Y)", &mut b).unwrap();
        let eval = engine.evaluate(&[g], &[], &b).unwrap();
        (eval.stats().subgoals, eval.stats().answers)
    };
    let (subgoals, answers) = run(Scheduling::DepthFirst, 1);
    for threads in [2usize, 4] {
        for rep in 0..25 {
            let (s, a) = run(Scheduling::Parallel, threads);
            assert_eq!(s, subgoals, "subgoal count (threads={threads}, rep={rep})");
            assert_eq!(a, answers, "answer count (threads={threads}, rep={rep})");
        }
    }
}

/// Oversubscription: more workers than SCCs (and than cores) still
/// converges to the same tables — idle workers must park on their channels
/// without wedging the pending-work completion detector.
#[test]
fn more_workers_than_sccs_terminates_and_agrees() {
    let want = tables(CROSS_SCC, "join(X, Y)", Scheduling::DepthFirst, 1);
    for rep in 0..5 {
        let got = tables(CROSS_SCC, "join(X, Y)", Scheduling::Parallel, 16);
        assert_eq!(got, want, "16-worker run diverged (rep={rep})");
    }
}

/// `threads: 0` means one worker per core; whatever that resolves to on
/// the host, the fixpoint is the sequential one.
#[test]
fn auto_thread_count_matches_sequential() {
    let want = tables(LAYERED, "t3(X, Y)", Scheduling::DepthFirst, 1);
    let got = tables(LAYERED, "t3(X, Y)", Scheduling::Parallel, 0);
    assert_eq!(got, want);
}

/// The parallel evaluation reports its own scheduler name (the workers'
/// internal depth-first queues are an implementation detail).
#[test]
fn parallel_evaluation_reports_parallel_scheduler() {
    let opts = EngineOptions {
        scheduling: Scheduling::Parallel,
        threads: 2,
        ..EngineOptions::default()
    };
    let engine = Engine::from_source_with(CROSS_SCC, LoadMode::Dynamic, opts).unwrap();
    let mut b = Bindings::new();
    let (g, _) = tablog_syntax::parse_term("join(X, Y)", &mut b).unwrap();
    let eval = engine.evaluate(&[g], &[], &b).unwrap();
    assert_eq!(eval.scheduler(), "parallel");
    assert!(eval.subgoals().all(|v| v.is_complete()));
}

/// Negation runs as a sequential subcomputation inside whichever worker
/// expands it; stratified programs agree with sequential evaluation.
#[test]
fn stratified_negation_agrees_under_parallel() {
    let src = "
:- table path/2.
:- table unreach/2.
path(X, Y) :- path(X, Z), edge(Z, Y).
path(X, Y) :- edge(X, Y).
node(a). node(b). node(c). node(d).
unreach(X, Y) :- node(X), node(Y), \\+ path(X, Y).
edge(a, b). edge(b, c).
";
    let want = tables(src, "unreach(X, Y)", Scheduling::DepthFirst, 1);
    for threads in [2usize, 4] {
        let got = tables(src, "unreach(X, Y)", Scheduling::Parallel, threads);
        assert_eq!(got, want, "negation diverged at {threads} threads");
    }
}
