//! Killed-evaluation behavior under each resource budget: a tripped
//! budget is graceful truncation — partial answers, a final snapshot, no
//! error, no panic, no hang — and `require_complete` is the analyzer-side
//! gate that turns truncation into an error.

use std::sync::Arc;
use std::time::Duration;
use tablog_engine::{
    Engine, EngineError, EngineOptions, HealthConfig, HealthTrack, LoadMode, TruncationReason,
};

/// A tabled predicate with infinitely many answers: every step makes
/// progress, so any budget kind eventually trips mid-derivation with a
/// non-empty partial answer set.
const NUMBERS: &str = ":- table num/1.\nnum(z).\nnum(s(X)) :- num(X).";

/// A divergent tabled query that never produces an answer: each recursive
/// call is a fresh call pattern, so tables (and table bytes) grow forever
/// while the answer count stays zero — the stall watchdog's signature.
const BARREN: &str = ":- table q/1.\nq(X) :- q(f(X)).";

fn engine(src: &str, opts: EngineOptions) -> Engine {
    Engine::from_source_with(src, LoadMode::Dynamic, opts).unwrap()
}

#[test]
fn step_budget_truncates_with_partial_answers() {
    let e = engine(
        NUMBERS,
        EngineOptions {
            max_steps: Some(200),
            ..Default::default()
        },
    );
    let sols = e.solve("num(N)").unwrap();
    let t = sols.truncation().expect("the budget must trip");
    assert_eq!(t.reason, TruncationReason::Steps(200));
    assert_eq!(t.reason.name(), "steps");
    assert!(
        !sols.is_empty(),
        "200 steps derive plenty of numerals before the trip"
    );
    // Every partial answer is a genuine numeral.
    for row in sols.rows() {
        let text = format!("{}", row[0]);
        assert!(text == "z" || text.starts_with("s("), "{text}");
    }
    assert_eq!(t.snapshot.steps, 201, "the counted boundary task included");
    // The snapshot counts inserts across every table, including the root
    // `$query` rows the settle pass delivered.
    assert!(t.snapshot.answers >= sols.len());
}

#[test]
fn deadline_budget_truncates_without_hanging() {
    let e = engine(
        NUMBERS,
        EngineOptions {
            deadline: Some(Duration::from_millis(50)),
            ..Default::default()
        },
    );
    let start = std::time::Instant::now();
    let sols = e.solve("num(N)").unwrap();
    let elapsed = start.elapsed();
    let t = sols.truncation().expect("the deadline must pass");
    assert_eq!(t.reason, TruncationReason::DeadlineMs(50));
    assert!(!sols.is_empty(), "some numerals exist before the deadline");
    assert!(
        elapsed < Duration::from_secs(30),
        "deadline enforcement must not hang (took {elapsed:?})"
    );
}

#[test]
fn table_byte_budget_truncates_once_ceiling_crossed() {
    let ceiling = 4096;
    let e = engine(
        NUMBERS,
        EngineOptions {
            max_table_bytes: Some(ceiling),
            ..Default::default()
        },
    );
    let sols = e.solve("num(N)").unwrap();
    let t = sols.truncation().expect("the ceiling must be crossed");
    assert_eq!(t.reason, TruncationReason::TableBytes(ceiling));
    assert!(!sols.is_empty());
    assert!(
        t.snapshot.table_bytes > ceiling,
        "the run stops at the first dispatch boundary past the ceiling"
    );
}

#[test]
fn truncated_tables_stay_incomplete() {
    let e = engine(
        NUMBERS,
        EngineOptions {
            max_steps: Some(100),
            ..Default::default()
        },
    );
    let mut b = tablog_term::Bindings::new();
    let (g, _) = tablog_syntax::parse_term("num(N)", &mut b).unwrap();
    let eval = e.evaluate(&[g], &[], &b).unwrap();
    assert!(eval.is_truncated());
    assert!(
        eval.subgoals().all(|s| !s.is_complete()),
        "truncation must not mark tables complete"
    );
    // The byte accounting invariant holds on the partial tables too.
    assert_eq!(eval.stats().table_bytes, eval.rescan_table_bytes());
}

#[test]
fn require_complete_converts_truncation_to_error() {
    let e = engine(
        NUMBERS,
        EngineOptions {
            max_steps: Some(100),
            ..Default::default()
        },
    );
    let mut b = tablog_term::Bindings::new();
    let (g, _) = tablog_syntax::parse_term("num(N)", &mut b).unwrap();
    let err = e
        .evaluate(&[g], &[], &b)
        .unwrap()
        .require_complete()
        .expect_err("truncated runs fail the completeness gate");
    assert!(matches!(
        err,
        EngineError::Truncated(TruncationReason::Steps(100))
    ));
    assert!(err.to_string().contains("100"));

    // A completed run passes through untouched.
    let ok = engine(NUMBERS, EngineOptions::default());
    let mut b = tablog_term::Bindings::new();
    let (g, _) = tablog_syntax::parse_term("num(z)", &mut b).unwrap();
    assert!(ok
        .evaluate(&[g], &[], &b)
        .unwrap()
        .require_complete()
        .is_ok());
}

#[test]
fn health_snapshots_flow_during_truncated_runs() {
    let track = Arc::new(HealthTrack::new());
    let e = engine(
        NUMBERS,
        EngineOptions {
            trace: Some(track.clone()),
            max_steps: Some(500),
            health: Some(HealthConfig::every_steps(50)),
            ..Default::default()
        },
    );
    let sols = e.solve("num(N)").unwrap();
    assert!(sols.is_truncated());
    // 500 steps at a 50-step cadence: ten periodic snapshots plus the
    // final one stamped onto the truncation.
    assert!(track.len() >= 10, "periodic snapshots: {}", track.len());
    let samples = track.samples();
    assert!(
        samples.windows(2).all(|w| w[0].steps <= w[1].steps),
        "snapshot step counts are monotonic"
    );
    let last = track.last().unwrap();
    assert_eq!(
        last,
        sols.truncation().unwrap().snapshot,
        "the final emitted snapshot is the truncation snapshot"
    );
}

#[test]
fn stall_watchdog_flags_barren_divergence() {
    let track = Arc::new(HealthTrack::new());
    let e = engine(
        BARREN,
        EngineOptions {
            trace: Some(track.clone()),
            max_steps: Some(2_000),
            health: Some(HealthConfig::every_steps(100)),
            ..Default::default()
        },
    );
    let sols = e.solve("q(a)").unwrap();
    assert!(sols.is_empty(), "the barren query never answers");
    let t = sols.truncation().expect("the step budget trips");
    assert!(
        t.snapshot.stalled,
        "table-growth-only windows must be flagged as a stall: {:?}",
        t.snapshot
    );
    assert_eq!(t.snapshot.answers, 0);

    // The same cadence over a productive run never flags.
    let track2 = Arc::new(HealthTrack::new());
    let p = engine(
        NUMBERS,
        EngineOptions {
            trace: Some(track2.clone()),
            max_steps: Some(2_000),
            health: Some(HealthConfig::every_steps(100)),
            ..Default::default()
        },
    );
    let sols = p.solve("num(N)").unwrap();
    assert!(sols.is_truncated());
    assert!(
        track2.samples().iter().all(|s| !s.stalled),
        "a run deriving answers every window is healthy"
    );
}

#[test]
fn budget_trip_inside_negation_truncates_the_outer_run() {
    // The negation subcomputation diverges; its budget trip must surface
    // as truncation of the outer evaluation, not as a "proven" negation.
    let src = ":- table q/1.\nq(X) :- q(f(X)).\np(Y) :- \\+ q(Y).";
    let e = engine(
        src,
        EngineOptions {
            max_steps: Some(1_000),
            ..Default::default()
        },
    );
    let sols = e.solve("p(a)").unwrap();
    assert!(sols.is_truncated(), "the sub-machine's trip must propagate");
    assert!(
        sols.is_empty(),
        "a truncated negation must not count as failure-as-proof"
    );
}

#[test]
fn parallel_step_budget_truncates_gracefully() {
    use tablog_engine::Scheduling;
    // Parallel step counts are aggregated across workers and the check
    // happens at each worker's dispatch boundary, so the exact trip point
    // is interleaving-dependent — unlike the sequential tests above, only
    // the contract is pinned: Ok result, Steps truncation, partial answers.
    for threads in [2usize, 4] {
        let e = engine(
            NUMBERS,
            EngineOptions {
                scheduling: Scheduling::Parallel,
                threads,
                max_steps: Some(400),
                ..Default::default()
            },
        );
        let sols = e.solve("num(N)").unwrap();
        let t = sols.truncation().expect("the shared step budget must trip");
        assert_eq!(t.reason, TruncationReason::Steps(400));
        assert!(
            !sols.is_empty(),
            "the settle pass delivers pre-trip numerals ({threads} threads)"
        );
        assert!(
            t.snapshot.steps > 400,
            "aggregated step total crosses the limit: {}",
            t.snapshot.steps
        );
        for row in sols.rows() {
            let text = format!("{}", row[0]);
            assert!(text == "z" || text.starts_with("s("), "{text}");
        }
    }
}

#[test]
fn parallel_deadline_budget_truncates_without_hanging() {
    use tablog_engine::Scheduling;
    let e = engine(
        NUMBERS,
        EngineOptions {
            scheduling: Scheduling::Parallel,
            threads: 4,
            deadline: Some(Duration::from_millis(50)),
            ..Default::default()
        },
    );
    let start = std::time::Instant::now();
    let sols = e.solve("num(N)").unwrap();
    let elapsed = start.elapsed();
    let t = sols.truncation().expect("the shared deadline must pass");
    assert_eq!(t.reason, TruncationReason::DeadlineMs(50));
    assert!(
        elapsed < Duration::from_secs(30),
        "all workers must observe the stop flag (took {elapsed:?})"
    );
}

#[test]
fn parallel_table_byte_budget_truncates() {
    use tablog_engine::Scheduling;
    let ceiling = 4096;
    let e = engine(
        NUMBERS,
        EngineOptions {
            scheduling: Scheduling::Parallel,
            threads: 2,
            max_table_bytes: Some(ceiling),
            ..Default::default()
        },
    );
    let sols = e.solve("num(N)").unwrap();
    let t = sols
        .truncation()
        .expect("the shared ceiling must be crossed");
    assert_eq!(t.reason, TruncationReason::TableBytes(ceiling));
    assert!(
        t.snapshot.table_bytes > ceiling,
        "published byte totals cross the ceiling: {}",
        t.snapshot.table_bytes
    );
}

#[test]
fn parallel_truncated_tables_stay_incomplete_and_account_bytes() {
    use tablog_engine::Scheduling;
    let e = engine(
        NUMBERS,
        EngineOptions {
            scheduling: Scheduling::Parallel,
            threads: 2,
            max_steps: Some(300),
            ..Default::default()
        },
    );
    let mut b = tablog_term::Bindings::new();
    let (g, _) = tablog_syntax::parse_term("num(N)", &mut b).unwrap();
    let eval = e.evaluate(&[g], &[], &b).unwrap();
    assert!(eval.is_truncated());
    assert!(
        eval.subgoals().all(|s| !s.is_complete()),
        "parallel truncation must not mark tables complete"
    );
    // The merged accounting invariant holds on partial tables too.
    assert_eq!(eval.stats().table_bytes, eval.rescan_table_bytes());
}

#[test]
fn parallel_budget_trip_inside_negation_stops_all_workers() {
    use tablog_engine::Scheduling;
    let src = ":- table q/1.\nq(X) :- q(f(X)).\np(Y) :- \\+ q(Y).";
    let e = engine(
        src,
        EngineOptions {
            scheduling: Scheduling::Parallel,
            threads: 4,
            max_steps: Some(1_000),
            ..Default::default()
        },
    );
    let start = std::time::Instant::now();
    let sols = e.solve("p(a)").unwrap();
    assert!(
        sols.is_truncated(),
        "the negation sub-machine's trip must stop the whole parallel run"
    );
    assert!(
        sols.is_empty(),
        "a truncated negation must not count as failure-as-proof"
    );
    assert!(start.elapsed() < Duration::from_secs(30));
}

#[test]
fn parallel_health_snapshots_aggregate_across_workers() {
    use tablog_engine::Scheduling;
    let track = Arc::new(HealthTrack::new());
    let e = engine(
        NUMBERS,
        EngineOptions {
            scheduling: Scheduling::Parallel,
            threads: 2,
            trace: Some(track.clone()),
            max_steps: Some(5_000),
            health: Some(HealthConfig::every_ms(1)),
            ..Default::default()
        },
    );
    let sols = e.solve("num(N)").unwrap();
    assert!(sols.is_truncated());
    let samples = track.samples();
    assert!(
        !samples.is_empty(),
        "the run-wide monitor emits aggregated snapshots"
    );
    assert!(
        samples.windows(2).all(|w| w[0].steps <= w[1].steps),
        "aggregated step counts are monotonic"
    );
    let last = track.last().unwrap();
    assert_eq!(
        last,
        sols.truncation().unwrap().snapshot,
        "the final snapshot is the truncation snapshot, from merged totals"
    );
    assert!(last.steps > 0 && last.answers > 0);
}

#[test]
fn jsonl_sink_flushes_health_and_truncation_lines() {
    use tablog_engine::{JsonLinesSink, TraceSink};
    use tablog_trace::SharedBuf;

    let buf = SharedBuf::new();
    let sink = Arc::new(JsonLinesSink::new(buf.clone()));
    let e = engine(
        NUMBERS,
        EngineOptions {
            trace: Some(sink.clone()),
            max_steps: Some(300),
            health: Some(HealthConfig::every_steps(50)),
            ..Default::default()
        },
    );
    let sols = e.solve("num(N)").unwrap();
    assert!(sols.is_truncated());
    sink.flush();
    let text = buf.contents();
    let health_lines: Vec<_> = text
        .lines()
        .filter(|l| l.starts_with("{\"health\":"))
        .collect();
    assert!(!health_lines.is_empty(), "health lines reach the sink");
    for line in health_lines {
        tablog_trace::json::parse(line).expect("each health line is valid JSON");
    }
}
