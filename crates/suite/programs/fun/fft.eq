-- fft: radix-2 decimation-in-time FFT over fixed-point complex
-- numbers (scale 1024). Twiddle factors come from a table, as the
-- original EQUALS benchmark computes over a fixed input size.

data complexnum = cx(2);

scale = 1024;

cadd(cx(a, b), cx(c, d)) = cx(a + c, b + d);
csub(cx(a, b), cx(c, d)) = cx(a - c, b - d);
cmul(cx(a, b), cx(c, d)) =
    cx((a * c - b * d) / scale, (a * d + b * c) / scale);

-- Twiddle table for n = 8: w(k) = exp(-2 pi i k / 8), scaled by 1024.
-- 724 ~ 1024 / sqrt(2).
w(0) = cx(1024, 0);
w(1) = cx(724, 0 - 724);
w(2) = cx(0, 0 - 1024);
w(3) = cx(0 - 724, 0 - 724);
w(4) = cx(0 - 1024, 0);
w(5) = cx(0 - 724, 724);
w(6) = cx(0, 1024);
w(7) = cx(724, 724);

fft(nil, stride) = nil;
fft(x : nil, stride) = x : nil;
fft(xs, stride) =
    combine(fft(evens(xs), stride * 2),
            fft(odds(xs), stride * 2),
            0, stride);

combine(es, os, k, stride) = joinhalves(butterfly(es, os, k, stride));

-- butterfly returns pair(front, back); join concatenates.
butterfly(nil, nil, k, stride) = pair(nil, nil);
butterfly(e : es, o : os, k, stride) =
    attach(cadd(e, cmul(w(k), o)),
           csub(e, cmul(w(k), o)),
           butterfly(es, os, k + stride, stride));

attach(f, b, pair(fs, bs)) = pair(f : fs, b : bs);

joinhalves(pair(fs, bs)) = ap(fs, bs);

evens(nil) = nil;
evens(x : nil) = x : nil;
evens(x : (y : zs)) = x : evens(zs);

odds(nil) = nil;
odds(x : nil) = nil;
odds(x : (y : zs)) = y : odds(zs);

ap(nil, ys) = ys;
ap(x : xs, ys) = x : ap(xs, ys);

-- Inverse transform: conjugate, forward, conjugate, scale by 1/n.
conjlist(nil) = nil;
conjlist(cx(a, b) : xs) = cx(a, 0 - b) : conjlist(xs);

divn(nil, n) = nil;
divn(cx(a, b) : xs, n) = cx(a / n, b / n) : divn(xs, n);

ifft(xs) = divn(conjlist(fft(conjlist(xs), 1)), 8);

-- Magnitude-squared spectrum (avoids sqrt on integers).
power(nil) = nil;
power(cx(a, b) : xs) = ((a * a + b * b) / scale) : power(xs);

-- Input: a scaled square wave of length 8.
signal = cx(1024, 0) : (cx(1024, 0) : (cx(1024, 0) : (cx(1024, 0) :
         (cx(0 - 1024, 0) : (cx(0 - 1024, 0) : (cx(0 - 1024, 0) :
         (cx(0 - 1024, 0) : nil)))))));

sumlist(nil) = 0;
sumlist(x : xs) = x + sumlist(xs);

roundtrip = ifft(fft(signal, 1));

re(cx(a, b)) = a;

relist(nil) = nil;
relist(x : xs) = re(x) : relist(xs);

main = pair(sumlist(power(fft(signal, 1))),
            sumlist(relist(roundtrip)));
