-- odprove: a prover for ordered binary decision trees — decide
-- propositional formulas by converting to if-then-else normal form
-- (Boute/Bryant style), the smaller of the two prover benchmarks.

data formula = varf(1) | notf(1) | andf(2) | orf(2) | impf(2);
data itetree = tcase(3);   -- tcase(var, hi, lo); leaves are true/false

-- Convert a formula to an ITE tree (ordered by variable number).
conv(varf(v)) = tcase(v, true, false);
conv(notf(p)) = negate(conv(p));
conv(andf(p, q)) = apply_and(conv(p), conv(q));
conv(orf(p, q)) = apply_or(conv(p), conv(q));
conv(impf(p, q)) = apply_or(negate(conv(p)), conv(q));

negate(true) = false;
negate(false) = true;
negate(tcase(v, h, l)) = tcase(v, negate(h), negate(l));

apply_and(true, t) = t;
apply_and(false, t) = false;
apply_and(tcase(v, h, l), true) = tcase(v, h, l);
apply_and(tcase(v, h, l), false) = false;
apply_and(tcase(v1, h1, l1), tcase(v2, h2, l2)) =
    if v1 < v2 then
        reduce(v1, apply_and(h1, tcase(v2, h2, l2)),
                   apply_and(l1, tcase(v2, h2, l2)))
    else if v2 < v1 then
        reduce(v2, apply_and(tcase(v1, h1, l1), h2),
                   apply_and(tcase(v1, h1, l1), l2))
    else reduce(v1, apply_and(h1, h2), apply_and(l1, l2));

apply_or(p, q) = negate(apply_and(negate(p), negate(q)));

-- Reduction: collapse redundant tests.
reduce(v, t, t1) = if equaltree(t, t1) then t else tcase(v, t, t1);

equaltree(true, true) = true;
equaltree(false, false) = true;
equaltree(true, false) = false;
equaltree(false, true) = false;
equaltree(true, tcase(v, h, l)) = false;
equaltree(false, tcase(v, h, l)) = false;
equaltree(tcase(v, h, l), true) = false;
equaltree(tcase(v, h, l), false) = false;
equaltree(tcase(v1, h1, l1), tcase(v2, h2, l2)) =
    if v1 == v2 then
        if equaltree(h1, h2) then equaltree(l1, l2) else false
    else false;

tautology(p) = equaltree(conv(p), true);
contradiction(p) = equaltree(conv(p), false);

-- Sample theorems.
peirce = impf(impf(impf(varf(1), varf(2)), varf(1)), varf(1));
excluded_middle = orf(varf(1), notf(varf(1)));
demorgan = impf(notf(andf(varf(1), varf(2))),
                orf(notf(varf(1)), notf(varf(2))));
syllogism = impf(andf(impf(varf(1), varf(2)), impf(varf(2), varf(3))),
                 impf(varf(1), varf(3)));
non_theorem = impf(orf(varf(1), varf(2)), andf(varf(1), varf(2)));

count_true(nil) = 0;
count_true(true : xs) = 1 + count_true(xs);
count_true(false : xs) = count_true(xs);

results = tautology(peirce) : (tautology(excluded_middle) :
          (tautology(demorgan) : (tautology(syllogism) :
          (tautology(non_theorem) : nil))));

main = count_true(results);
