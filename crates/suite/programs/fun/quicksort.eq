-- quicksort: list quicksort with explicit partition.

qsort(nil) = nil;
qsort(x : xs) = splice(qsort(below(x, xs)), x, qsort(above(x, xs)));

splice(lo, x, hi) = ap(lo, x : hi);

below(p, nil) = nil;
below(p, x : xs) = if x < p then x : below(p, xs) else below(p, xs);

above(p, nil) = nil;
above(p, x : xs) = if x >= p then x : above(p, xs) else above(p, xs);

ap(nil, ys) = ys;
ap(x : xs, ys) = x : ap(xs, ys);

len(nil) = 0;
len(x : xs) = 1 + len(xs);

-- A deterministic pseudo-random input list.
rand(seed, 0) = nil;
rand(seed, n) = next(seed) : rand(next(seed), n - 1);

next(seed) = (seed * 137 + 71) / 8 - ((seed * 137 + 71) / 8 / 100) * 100;

checksorted(nil) = true;
checksorted(x : nil) = true;
checksorted(x : (y : zs)) =
    if x <= y then checksorted(y : zs) else false;

main = pair(len(qsort(rand(7, 60))), checksorted(qsort(rand(7, 60))));
