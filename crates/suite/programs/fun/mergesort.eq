-- mergesort: the classic lazy mergesort benchmark.

split(nil) = pair(nil, nil);
split(x : nil) = pair(x : nil, nil);
split(x : (y : zs)) = glue(x, y, split(zs));

glue(x, y, pair(as, bs)) = pair(x : as, y : bs);

merge(nil, ys) = ys;
merge(x : xs, nil) = x : xs;
merge(x : xs, y : ys) =
    if x <= y then x : merge(xs, y : ys)
    else y : merge(x : xs, ys);

msort(nil) = nil;
msort(x : nil) = x : nil;
msort(x : (y : zs)) = mergehalves(split(x : (y : zs)));

mergehalves(pair(as, bs)) = merge(msort(as), msort(bs));

upto(m, n) = if m > n then nil else m : upto(m + 1, n);

shuffle(nil) = nil;
shuffle(x : xs) = ap(shuffle(evens(xs)), x : shuffle(odds(xs)));

evens(nil) = nil;
evens(x : nil) = nil;
evens(x : (y : zs)) = y : evens(zs);

odds(nil) = nil;
odds(x : xs) = x : evens(xs);

ap(nil, ys) = ys;
ap(x : xs, ys) = x : ap(xs, ys);

main = msort(shuffle(upto(1, 50)));
