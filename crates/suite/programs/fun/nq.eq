-- nq: the n-queens benchmark, list-based generate and test.

queens(n) = go(n, n);

go(0, n) = nil : nil;    -- one empty placement
go(row, n) = extend(go(row - 1, n), n);

extend(nil, n) = nil;
extend(ps : rest, n) = ap(place(ps, 1, n), extend(rest, n));

place(ps, col, n) =
    if col > n then nil
    else if safe(ps, col, 1) then (col : ps) : place(ps, col + 1, n)
    else place(ps, col + 1, n);

safe(nil, col, dist) = true;
safe(q : qs, col, dist) =
    if q == col then false
    else if q == col + dist then false
    else if q == col - dist then false
    else safe(qs, col, dist + 1);

ap(nil, ys) = ys;
ap(x : xs, ys) = x : ap(xs, ys);

count(nil) = 0;
count(x : xs) = 1 + count(xs);

hd(x : xs) = x;

first_solution(n) = hd(queens(n));

main = pair(count(queens(6)), first_solution(6));
