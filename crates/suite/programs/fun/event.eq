-- event: a discrete-event simulation kernel — priority queue of
-- pending events, server states, and statistics, in the style of the
-- EQUALS event benchmark (queueing network simulation).

data eventrec = ev(3);          -- ev(time, kind, station)
data staterec = st(3);          -- st(clock, stations, stats)
data stationrec = stn(3);       -- stn(id, busy, queue_len)
data statrec = stats(3);        -- stats(arrivals, departures, busy_time)

-- ---- Priority queue as a sorted event list --------------------------
insert_ev(ev(t, k, s), nil) = ev(t, k, s) : nil;
insert_ev(ev(t, k, s), ev(t2, k2, s2) : es) =
    if t <= t2 then ev(t, k, s) : (ev(t2, k2, s2) : es)
    else ev(t2, k2, s2) : insert_ev(ev(t, k, s), es);

merge_ev(nil, es) = es;
merge_ev(e : es, fs) = merge_ev(es, insert_ev(e, fs));

-- ---- Pseudo-random service and interarrival times --------------------
nextrand(seed) = (seed * 1103 + 12345) - ((seed * 1103 + 12345) / 2048) * 2048;

service(seed) = 3 + nextrand(seed) - (nextrand(seed) / 7) * 7;
interarrival(seed) = 1 + nextrand(seed * 3) - (nextrand(seed * 3) / 5) * 5;

-- ---- Station table ----------------------------------------------------
find_station(i, stn(j, b, q) : ss) =
    if i == j then stn(j, b, q) else find_station(i, ss);

replace_station(stn(i, b, q), nil) = nil;
replace_station(stn(i, b, q), stn(j, b2, q2) : ss) =
    if i == j then stn(i, b, q) : ss
    else stn(j, b2, q2) : replace_station(stn(i, b, q), ss);

busy(stn(i, b, q)) = b;
qlen(stn(i, b, q)) = q;
sid(stn(i, b, q)) = i;

set_busy(stn(i, b, q), nb) = stn(i, nb, q);
inc_q(stn(i, b, q)) = stn(i, b, q + 1);
dec_q(stn(i, b, q)) = stn(i, b, q - 1);

-- ---- Statistics ---------------------------------------------------------
arrive_stat(stats(a, d, bt)) = stats(a + 1, d, bt);
depart_stat(stats(a, d, bt), t) = stats(a, d + 1, bt + t);

-- ---- The simulation loop ------------------------------------------------
simulate(nil, state, limit) = state;
simulate(ev(t, k, s) : es, st(clock, stations, sts), limit) =
    if t > limit then st(clock, stations, sts)
    else step(ev(t, k, s), es, st(t, stations, sts), limit);

-- kind 1 = arrival, kind 2 = departure
step(ev(t, 1, s), es, st(clock, stations, sts), limit) =
    handle_arrival(t, s, es, stations, arrive_stat(sts), limit);
step(ev(t, 2, s), es, st(clock, stations, sts), limit) =
    handle_departure(t, s, es, stations, sts, limit);

handle_arrival(t, s, es, stations, sts, limit) =
    dispatch_arrival(find_station(s, stations), t, s, es, stations, sts, limit);

dispatch_arrival(station, t, s, es, stations, sts, limit) =
    if busy(station) == 1 then
        simulate(schedule_next_arrival(t, s, es),
                 st(t, replace_station(inc_q(station), stations), sts),
                 limit)
    else
        simulate(schedule_next_arrival(t, s,
                     insert_ev(ev(t + service(t + s), 2, s), es)),
                 st(t, replace_station(set_busy(station, 1), stations), sts),
                 limit);

schedule_next_arrival(t, s, es) =
    insert_ev(ev(t + interarrival(t), 1, nextstation(s)), es);

nextstation(s) = if s == 3 then 1 else s + 1;

handle_departure(t, s, es, stations, sts, limit) =
    dispatch_departure(find_station(s, stations), t, s, es, stations, sts, limit);

dispatch_departure(station, t, s, es, stations, sts, limit) =
    if qlen(station) > 0 then
        simulate(insert_ev(ev(t + service(t), 2, s), es),
                 st(t, replace_station(dec_q(station), stations),
                    depart_stat(sts, service(t))),
                 limit)
    else
        simulate(es,
                 st(t, replace_station(set_busy(station, 0), stations),
                    depart_stat(sts, 0)),
                 limit);

-- ---- Reporting -----------------------------------------------------------
report(st(clock, stations, stats(a, d, bt))) =
    triple(a, d, bt + total_queue(stations));

total_queue(nil) = 0;
total_queue(s : ss) = qlen(s) + total_queue(ss);

initial_stations = stn(1, 0, 0) : (stn(2, 0, 0) : (stn(3, 0, 0) : nil));

initial_events = ev(0, 1, 1) : (ev(1, 1, 2) : (ev(2, 1, 3) : nil));

run(limit) =
    report(simulate(initial_events,
                    st(0, initial_stations, stats(0, 0, 0)),
                    limit));

main = run(60);
