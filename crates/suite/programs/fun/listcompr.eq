-- listcompr: desugared list comprehensions — the benchmark exercises
-- the map/filter/concat pipelines a comprehension compiler emits.

-- [ x*x | x <- [1..n], even x ]
squares_of_evens(n) = mapsq(filter_even(upto(1, n)));

mapsq(nil) = nil;
mapsq(x : xs) = (x * x) : mapsq(xs);

filter_even(nil) = nil;
filter_even(x : xs) =
    if even(x) then x : filter_even(xs) else filter_even(xs);

even(x) = x - (x / 2) * 2 == 0;

-- [ (x,y) | x <- [1..n], y <- [x..n] ] : a nested comprehension
-- becomes a concat-map chain.
pairs_upto(n) = concat(map_outer(upto(1, n), n));

map_outer(nil, n) = nil;
map_outer(x : xs, n) = map_inner(x, upto(x, n)) : map_outer(xs, n);

map_inner(x, nil) = nil;
map_inner(x, y : ys) = pair(x, y) : map_inner(x, ys);

concat(nil) = nil;
concat(xs : xss) = ap(xs, concat(xss));

-- [ x+y | (x,y) <- ps, x < y ]
sums_of_increasing(ps) = mapsum(filter_lt(ps));

filter_lt(nil) = nil;
filter_lt(pair(x, y) : ps) =
    if x < y then pair(x, y) : filter_lt(ps) else filter_lt(ps);

mapsum(nil) = nil;
mapsum(pair(x, y) : ps) = (x + y) : mapsum(ps);

-- Pythagorean triples: triple-nested comprehension.
triples(n) = concat(map_a(upto(1, n), n));

map_a(nil, n) = nil;
map_a(a : as, n) = concat(map_b(a, upto(a, n), n)) : map_a(as, n);

map_b(a, nil, n) = nil;
map_b(a, b : bs, n) = map_c(a, b, upto(b, n)) : map_b(a, bs, n);

map_c(a, b, nil) = nil;
map_c(a, b, c : cs) =
    if a * a + b * b == c * c then triple(a, b, c) : map_c(a, b, cs)
    else map_c(a, b, cs);

-- zip with index: [ (i, x) | (i, x) <- zip [0..] xs ]
index(xs) = zipidx(0, xs);

zipidx(i, nil) = nil;
zipidx(i, x : xs) = pair(i, x) : zipidx(i + 1, xs);

-- takeWhile / dropWhile pair used by comprehension guards
take_while_pos(nil) = nil;
take_while_pos(x : xs) =
    if x > 0 then x : take_while_pos(xs) else nil;

drop_while_pos(nil) = nil;
drop_while_pos(x : xs) =
    if x > 0 then drop_while_pos(xs) else x : xs;

-- library
upto(m, n) = if m > n then nil else m : upto(m + 1, n);

ap(nil, ys) = ys;
ap(x : xs, ys) = x : ap(xs, ys);

len(nil) = 0;
len(x : xs) = 1 + len(xs);

sumlist(nil) = 0;
sumlist(x : xs) = x + sumlist(xs);

main = triple(sumlist(squares_of_evens(20)),
              len(triples(20)),
              sumlist(sums_of_increasing(pairs_upto(10))));
