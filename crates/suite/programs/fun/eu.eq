-- eu: Euler's method for a first-order ODE over scaled integers
-- (fixed-point arithmetic with scale 1000), the numeric kernel
-- benchmark of the EQUALS suite.

scale = 1000;

-- dy/dt = -y  (decay), scaled arithmetic
deriv(y) = 0 - y;

step(y, h) = y + (h * deriv(y)) / scale;

iterate(y, h, 0) = y : nil;
iterate(y, h, n) = y : iterate(step(y, h), h, n - 1);

lastv(x : nil) = x;
lastv(x : (y : zs)) = lastv(y : zs);

sumlist(nil) = 0;
sumlist(x : xs) = x + sumlist(xs);

len(nil) = 0;
len(x : xs) = 1 + len(xs);

-- trapezoid correction pass over the trajectory
smooth(nil) = nil;
smooth(x : nil) = x : nil;
smooth(x : (y : zs)) = ((x + y) / 2) : smooth(y : zs);

trajectory(n) = iterate(scale, 100, n);

main = triple(lastv(trajectory(40)),
              sumlist(smooth(trajectory(40))),
              len(trajectory(40)));
