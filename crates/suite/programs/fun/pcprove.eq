-- pcprove: a propositional-calculus sequent prover (Wang's algorithm).
-- The benchmark is characterized by deeply nested formula terms, which
-- the paper notes produce long clauses and deep backtracking in the
-- demand analysis.

data formula = pvar(1) | pnot(1) | pand(2) | por(2) | pimp(2) | piff(2);
data seqkind = seq(2);   -- seq(antecedent list, succedent list)

-- ---- The prover -------------------------------------------------------
prove(f) = provable(seq(nil, f : nil));

-- Axiom: some atom appears on both sides.
provable(seq(ante, sucs)) = step(seq(ante, sucs));

step(seq(ante, sucs)) =
    if axiom(ante, sucs) then true
    else reduce_left(ante, nil, sucs);

axiom(nil, sucs) = false;
axiom(pvar(v) : ante, sucs) =
    if member_var(v, sucs) then true else axiom(ante, sucs);
axiom(f : ante, sucs) = axiom_nonvar(f, ante, sucs);

axiom_nonvar(pnot(p), ante, sucs) = axiom(ante, sucs);
axiom_nonvar(pand(p, q), ante, sucs) = axiom(ante, sucs);
axiom_nonvar(por(p, q), ante, sucs) = axiom(ante, sucs);
axiom_nonvar(pimp(p, q), ante, sucs) = axiom(ante, sucs);
axiom_nonvar(piff(p, q), ante, sucs) = axiom(ante, sucs);

member_var(v, nil) = false;
member_var(v, pvar(w) : fs) =
    if v == w then true else member_var(v, fs);
member_var(v, f : fs) = member_var_nonvar(v, f, fs);

member_var_nonvar(v, pnot(p), fs) = member_var(v, fs);
member_var_nonvar(v, pand(p, q), fs) = member_var(v, fs);
member_var_nonvar(v, por(p, q), fs) = member_var(v, fs);
member_var_nonvar(v, pimp(p, q), fs) = member_var(v, fs);
member_var_nonvar(v, piff(p, q), fs) = member_var(v, fs);

-- Decompose the first non-atomic formula on the left; atoms rotate to
-- a "done" list.
reduce_left(nil, done, sucs) = reduce_right(done, sucs, nil);
reduce_left(pvar(v) : ante, done, sucs) =
    reduce_left(ante, pvar(v) : done, sucs);
reduce_left(pnot(p) : ante, done, sucs) =
    provable(seq(rejoin(done, ante), p : sucs));
reduce_left(pand(p, q) : ante, done, sucs) =
    provable(seq(p : (q : rejoin(done, ante)), sucs));
reduce_left(por(p, q) : ante, done, sucs) =
    both(provable(seq(p : rejoin(done, ante), sucs)),
         provable(seq(q : rejoin(done, ante), sucs)));
reduce_left(pimp(p, q) : ante, done, sucs) =
    both(provable(seq(rejoin(done, ante), p : sucs)),
         provable(seq(q : rejoin(done, ante), sucs)));
reduce_left(piff(p, q) : ante, done, sucs) =
    both(provable(seq(p : (q : rejoin(done, ante)), sucs)),
         provable(seq(rejoin(done, ante), p : (q : sucs))));

-- Decompose the first non-atomic formula on the right.
reduce_right(ante, nil, done) = false;
reduce_right(ante, pvar(v) : sucs, done) =
    reduce_right(ante, sucs, pvar(v) : done);
reduce_right(ante, pnot(p) : sucs, done) =
    provable(seq(p : ante, rejoin(done, sucs)));
reduce_right(ante, pand(p, q) : sucs, done) =
    both(provable(seq(ante, p : rejoin(done, sucs))),
         provable(seq(ante, q : rejoin(done, sucs))));
reduce_right(ante, por(p, q) : sucs, done) =
    provable(seq(ante, p : (q : rejoin(done, sucs))));
reduce_right(ante, pimp(p, q) : sucs, done) =
    provable(seq(p : ante, q : rejoin(done, sucs)));
reduce_right(ante, piff(p, q) : sucs, done) =
    both(provable(seq(p : ante, q : rejoin(done, sucs))),
         provable(seq(q : ante, p : rejoin(done, sucs))));

both(a, b) = if a then b else false;

rejoin(nil, ys) = ys;
rejoin(x : xs, ys) = x : rejoin(xs, ys);

-- ---- Formula builders: the deeply nested theorem set -------------------
conj(nil) = pvar(999);
conj(f : nil) = f;
conj(f : (g : fs)) = pand(f, conj(g : fs));

disj(nil) = pvar(998);
disj(f : nil) = f;
disj(f : (g : fs)) = por(f, disj(g : fs));

chain_imp(f : nil) = f;
chain_imp(f : (g : fs)) = pimp(f, chain_imp(g : fs));

vars_upto(n) = if n == 0 then nil else pvar(n) : vars_upto(n - 1);

-- Pigeonhole-style tautology: (p1 & ... & pn) -> (p1 | ... | pn)
and_implies_or(n) = pimp(conj(vars_upto(n)), disj(vars_upto(n)));

-- Transitivity chain: (p1->p2) & (p2->p3) & ... -> (p1->pn)
trans_chain(n) = pimp(conj(imp_pairs(1, n)), pimp(pvar(1), pvar(n)));

imp_pairs(i, n) =
    if i >= n then nil
    else pimp(pvar(i), pvar(i + 1)) : imp_pairs(i + 1, n);

-- Distribution: p & (q | r) <-> (p & q) | (p & r)
distrib = piff(pand(pvar(1), por(pvar(2), pvar(3))),
               por(pand(pvar(1), pvar(2)), pand(pvar(1), pvar(3))));

-- Contraposition, De Morgan, Peirce.
contrapos = piff(pimp(pvar(1), pvar(2)), pimp(pnot(pvar(2)), pnot(pvar(1))));
demorgan1 = piff(pnot(pand(pvar(1), pvar(2))), por(pnot(pvar(1)), pnot(pvar(2))));
demorgan2 = piff(pnot(por(pvar(1), pvar(2))), pand(pnot(pvar(1)), pnot(pvar(2))));
peirce = pimp(pimp(pimp(pvar(1), pvar(2)), pvar(1)), pvar(1));

-- A deliberately deep non-theorem.
hard_false(n) = pimp(disj(vars_upto(n)), conj(vars_upto(n)));

theorems = and_implies_or(6) : (trans_chain(6) : (distrib :
           (contrapos : (demorgan1 : (demorgan2 : (peirce : nil))))));

nontheorems = hard_false(5) : (pimp(pvar(1), pvar(2)) : nil);

count_true(nil) = 0;
count_true(true : xs) = 1 + count_true(xs);
count_true(false : xs) = count_true(xs);

mapprove(nil) = nil;
mapprove(f : fs) = prove(f) : mapprove(fs);

main = pair(count_true(mapprove(theorems)),
            count_true(mapprove(nontheorems)));
