-- strassen: 2x2 block Strassen matrix multiplication over
-- quadtree-style matrices: mat(a, b, c, d) with scalar leaves.

data matrix = mat(4);

madd(mat(a1, b1, c1, d1), mat(a2, b2, c2, d2)) =
    mat(sadd(a1, a2), sadd(b1, b2), sadd(c1, c2), sadd(d1, d2));

msub(mat(a1, b1, c1, d1), mat(a2, b2, c2, d2)) =
    mat(ssub(a1, a2), ssub(b1, b2), ssub(c1, c2), ssub(d1, d2));

sadd(x, y) = x + y;
ssub(x, y) = x - y;
smul(x, y) = x * y;

strassen(mat(a, b, c, d), mat(e, f, g, h)) =
    combine(smul(sadd(a, d), sadd(e, h)),
            smul(sadd(c, d), e),
            smul(a, ssub(f, h)),
            smul(d, ssub(g, e)),
            smul(sadd(a, b), h),
            smul(ssub(c, a), sadd(e, f)),
            smul(ssub(b, d), sadd(g, h)));

combine(m1, m2, m3, m4, m5, m6, m7) =
    mat(m1 + m4 - m5 + m7,
        m3 + m5,
        m2 + m4,
        m1 - m2 + m3 + m6);

naive(mat(a, b, c, d), mat(e, f, g, h)) =
    mat(a * e + b * g, a * f + b * h, c * e + d * g, c * f + d * h);

equalmat(mat(a1, b1, c1, d1), mat(a2, b2, c2, d2)) =
    if a1 == a2 then
        if b1 == b2 then
            if c1 == c2 then
                if d1 == d2 then true else false
            else false
        else false
    else false;

trace(mat(a, b, c, d)) = a + d;

powm(m, 0) = mat(1, 0, 0, 1);
powm(m, n) = strassen(m, powm(m, n - 1));

main = pair(equalmat(strassen(mat(1, 2, 3, 4), mat(5, 6, 7, 8)),
                     naive(mat(1, 2, 3, 4), mat(5, 6, 7, 8))),
            trace(powm(mat(1, 1, 1, 0), 10)));
