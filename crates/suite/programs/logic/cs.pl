% cs -- cutting stock (reconstruction of the CS benchmark): cut ordered
% pieces from stock rolls minimizing waste, by backtracking search over
% cutting patterns with bounded waste.
% Entry: cs_test(g, f).

cs_test(Orders, Solution) :-
    stock_length(StockLen),
    cut_all(Orders, StockLen, [], Solution).

cut_all([], _, Rolls, Rolls).
cut_all(Orders, StockLen, Rolls, Solution) :-
    Orders \== [],
    best_pattern(Orders, StockLen, Pattern, Rest),
    cut_all(Rest, StockLen, [Pattern|Rolls], Solution).

% Find a pattern for one roll: a subset of orders fitting the stock,
% preferring low waste.
best_pattern(Orders, StockLen, pattern(Used, Waste), Rest) :-
    waste_bound(Bound),
    acceptable_waste(0, Bound, Waste),
    pattern(Orders, StockLen, Used, Rest, Waste).

acceptable_waste(W, Bound, W) :- W =< Bound.
acceptable_waste(W, Bound, Waste) :-
    W < Bound,
    W1 is W + 1,
    acceptable_waste(W1, Bound, Waste).

pattern(Orders, Remaining, [Piece|Used], Rest, Waste) :-
    select_order(Piece, Orders, Orders1),
    Piece =< Remaining,
    Remaining1 is Remaining - Piece,
    pattern(Orders1, Remaining1, Used, Rest, Waste).
pattern(Orders, Remaining, [], Orders, Remaining) :-
    no_fit(Orders, Remaining).

no_fit([], _).
no_fit([Piece|Orders], Remaining) :-
    Piece > Remaining,
    no_fit(Orders, Remaining).
no_fit([Piece|Orders], Remaining) :-
    Piece =< Remaining,
    % Allowed to stop early only when the waste bound admits it; the
    % search above controls this via acceptable_waste.
    no_fit(Orders, Remaining).

select_order(X, [X|Xs], Xs).
select_order(X, [Y|Ys], [Y|Zs]) :- select_order(X, Ys, Zs).

% --- Evaluation of a finished cutting plan ---------------------------
plan_waste([], 0).
plan_waste([pattern(_, W)|Rolls], Waste) :-
    plan_waste(Rolls, Waste1),
    Waste is Waste1 + W.

plan_rolls([], 0).
plan_rolls([_|Rolls], N) :-
    plan_rolls(Rolls, N1),
    N is N1 + 1.

plan_pieces([], 0).
plan_pieces([pattern(Used, _)|Rolls], N) :-
    count_pieces(Used, N1),
    plan_pieces(Rolls, N2),
    N is N1 + N2.

count_pieces([], 0).
count_pieces([_|Ps], N) :-
    count_pieces(Ps, N1),
    N is N1 + 1.

better_plan(PlanA, PlanB, PlanA) :-
    plan_waste(PlanA, WA),
    plan_waste(PlanB, WB),
    WA =< WB.
better_plan(PlanA, PlanB, PlanB) :-
    plan_waste(PlanA, WA),
    plan_waste(PlanB, WB),
    WA > WB.

% --- Demand expansion: orders arrive as length-count pairs ----------
expand_orders([], []).
expand_orders([order(Len, Count)|Orders], Pieces) :-
    replicate(Count, Len, Front),
    expand_orders(Orders, Back),
    append_list(Front, Back, Pieces).

replicate(0, _, []).
replicate(N, X, [X|Xs]) :-
    N > 0,
    N1 is N - 1,
    replicate(N1, X, Xs).

append_list([], Ys, Ys).
append_list([X|Xs], Ys, [X|Zs]) :- append_list(Xs, Ys, Zs).

% Sort orders descending (first-fit-decreasing heuristic).
sort_desc([], []).
sort_desc([X|Xs], Sorted) :-
    sort_desc(Xs, Sorted1),
    insert_desc(X, Sorted1, Sorted).

insert_desc(X, [], [X]).
insert_desc(X, [Y|Ys], [X,Y|Ys]) :- X >= Y.
insert_desc(X, [Y|Ys], [Y|Zs]) :- X < Y, insert_desc(X, Ys, Zs).

% --- Feasibility checks ----------------------------------------------
feasible([], _).
feasible([order(Len, _)|Orders], StockLen) :-
    Len =< StockLen,
    feasible(Orders, StockLen).

total_demand([], 0).
total_demand([order(Len, Count)|Orders], Total) :-
    total_demand(Orders, T1),
    Total is T1 + Len * Count.

lower_bound(Orders, StockLen, Bound) :-
    total_demand(Orders, Total),
    Bound is (Total + StockLen - 1) // StockLen.

% --- Problem instances -------------------------------------------------
stock_length(10).
waste_bound(2).

instance(small, [order(7, 1), order(5, 2), order(3, 3), order(2, 2)]).
instance(medium, [order(8, 2), order(6, 2), order(4, 3), order(3, 4), order(2, 5)]).
instance(tight, [order(9, 1), order(7, 2), order(5, 2), order(1, 3)]).

solve_instance(Name, Solution) :-
    instance(Name, Orders),
    stock_length(StockLen),
    feasible(Orders, StockLen),
    expand_orders(Orders, Pieces),
    sort_desc(Pieces, SortedPieces),
    cs_test(SortedPieces, Solution).

main(S) :- solve_instance(small, S).
