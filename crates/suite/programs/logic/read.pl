% read -- a Prolog tokenizer and operator-precedence reader written in
% Prolog (reconstruction of the classic O'Keefe/Warren read benchmark).
% Input is a list of character codes; output is a term representation.
% Entry: read_test(g, f).

read_test(Codes, Term) :-
    read_term_codes(Codes, Term).

read_term_codes(Codes, Term) :-
    tokenize(Codes, Tokens),
    parse_tokens(Tokens, Term).

% ===================== Tokenizer =====================================

tokenize([], []).
tokenize([C|Cs], Tokens) :-
    layout_char(C),
    tokenize(Cs, Tokens).
tokenize([C|Cs], Tokens) :-
    comment_start(C),
    skip_comment(Cs, Rest),
    tokenize(Rest, Tokens).
tokenize([C|Cs], [Token|Tokens]) :-
    digit_char(C),
    scan_number(C, Cs, Token, Rest),
    tokenize(Rest, Tokens).
tokenize([C|Cs], [Token|Tokens]) :-
    lower_char(C),
    scan_name(C, Cs, Token, Rest),
    tokenize(Rest, Tokens).
tokenize([C|Cs], [Token|Tokens]) :-
    upper_char(C),
    scan_variable(C, Cs, Token, Rest),
    tokenize(Rest, Tokens).
tokenize([C|Cs], [Token|Tokens]) :-
    quote_char(C),
    scan_quoted(Cs, Token, Rest),
    tokenize(Rest, Tokens).
tokenize([C|Cs], [Token|Tokens]) :-
    solo_char(C, Token),
    tokenize(Cs, Tokens).
tokenize([C|Cs], [Token|Tokens]) :-
    symbol_char(C),
    scan_symbol(C, Cs, Token, Rest),
    tokenize(Rest, Tokens).

skip_comment([], []).
skip_comment([C|Cs], Cs) :- newline_char(C).
skip_comment([C|Cs], Rest) :-
    \+ newline_char(C),
    skip_comment(Cs, Rest).

scan_number(C, Cs, integer(N), Rest) :-
    digit_value(C, V),
    scan_digits(Cs, V, N, Rest).

scan_digits([C|Cs], Acc, N, Rest) :-
    digit_char(C),
    digit_value(C, V),
    Acc1 is Acc * 10 + V,
    scan_digits(Cs, Acc1, N, Rest).
scan_digits([C|Cs], N, N, [C|Cs]) :-
    \+ digit_char(C).
scan_digits([], N, N, []).

scan_name(C, Cs, atom(Name), Rest) :-
    scan_alphas(Cs, Alphas, Rest),
    name_from_codes([C|Alphas], Name).

scan_variable(C, Cs, variable(Name), Rest) :-
    scan_alphas(Cs, Alphas, Rest),
    name_from_codes([C|Alphas], Name).

scan_alphas([C|Cs], [C|As], Rest) :-
    alpha_char(C),
    scan_alphas(Cs, As, Rest).
scan_alphas([C|Cs], [], [C|Cs]) :-
    \+ alpha_char(C).
scan_alphas([], [], []).

scan_quoted(Cs, atom(Name), Rest) :-
    quoted_codes(Cs, Codes, Rest),
    name_from_codes(Codes, Name).

quoted_codes([C|Cs], [], Cs) :- quote_char(C).
quoted_codes([C|Cs], [C|Codes], Rest) :-
    \+ quote_char(C),
    quoted_codes(Cs, Codes, Rest).

scan_symbol(C, Cs, Token, Rest) :-
    scan_symbols(Cs, Ss, Rest),
    symbol_token([C|Ss], Token).

scan_symbols([C|Cs], [C|Ss], Rest) :-
    symbol_char(C),
    scan_symbols(Cs, Ss, Rest).
scan_symbols([C|Cs], [], [C|Cs]) :-
    \+ symbol_char(C).
scan_symbols([], [], []).

symbol_token([0'.], end) .
symbol_token(Codes, atom(Name)) :-
    Codes \== [0'.],
    name_from_codes(Codes, Name).

% Map a small set of known names; unknown spellings stay as code lists,
% which is all the analysis needs.
name_from_codes([0'a], a).
name_from_codes([0'b], b).
name_from_codes([0'c], c).
name_from_codes([0'f], f).
name_from_codes([0'g], g).
name_from_codes([0'h], h).
name_from_codes([0'x], x).
name_from_codes([0'y], y).
name_from_codes([0'z], z).
name_from_codes([0'X], xvar).
name_from_codes([0'Y], yvar).
name_from_codes([0'Z], zvar).
name_from_codes([0'+], +).
name_from_codes([0'-], -).
name_from_codes([0'*], *).
name_from_codes([0'/], /).
name_from_codes([0'=], =).
name_from_codes([0':, 0'-], (:-)).
name_from_codes([0'f, 0'o, 0'o], foo).
name_from_codes([0'b, 0'a, 0'r], bar).
name_from_codes([0'b, 0'a, 0'z], baz).
name_from_codes([0'a, 0'p, 0'p], app).
name_from_codes([0'n, 0'i, 0'l], nil).
name_from_codes([0'c, 0'o, 0'n, 0's], cons).
name_from_codes([0'm, 0'a, 0'i, 0'n], main).
name_from_codes([0'<], <).
name_from_codes([0'>], >).
name_from_codes([0'=, 0'<], =<).
name_from_codes([0'>, 0'=], >=).
name_from_codes([0'-, 0'>], ->).
name_from_codes([0'i, 0's], is).
name_from_codes([C|Cs], codes([C|Cs])) :-
    \+ known_spelling([C|Cs]).

known_spelling([0'a]). known_spelling([0'b]). known_spelling([0'c]).
known_spelling([0'f]). known_spelling([0'g]). known_spelling([0'h]).
known_spelling([0'x]). known_spelling([0'y]). known_spelling([0'z]).
known_spelling([0'X]). known_spelling([0'Y]). known_spelling([0'Z]).
known_spelling([0'+]). known_spelling([0'-]). known_spelling([0'*]).
known_spelling([0'/]). known_spelling([0'=]).
known_spelling([0':, 0'-]).
known_spelling([0'f, 0'o, 0'o]).
known_spelling([0'b, 0'a, 0'r]).
known_spelling([0'b, 0'a, 0'z]).
known_spelling([0'a, 0'p, 0'p]).
known_spelling([0'n, 0'i, 0'l]).
known_spelling([0'c, 0'o, 0'n, 0's]).
known_spelling([0'm, 0'a, 0'i, 0'n]).
known_spelling([0'<]). known_spelling([0'>]).
known_spelling([0'=, 0'<]). known_spelling([0'>, 0'=]).
known_spelling([0'-, 0'>]).
known_spelling([0'i, 0's]).

% --- Character classes -----------------------------------------------
layout_char(0' ).
layout_char(9).
layout_char(10).
layout_char(13).

newline_char(10).

comment_start(0'%).

digit_char(C) :- C >= 0'0, C =< 0'9.

digit_value(C, V) :- V is C - 0'0.

lower_char(C) :- C >= 0'a, C =< 0'z.

upper_char(C) :- C >= 0'A, C =< 0'Z.
upper_char(0'_).

alpha_char(C) :- lower_char(C).
alpha_char(C) :- upper_char(C).
alpha_char(C) :- digit_char(C).

quote_char(0'').

solo_char(0'(, open).
solo_char(0'), close).
solo_char(0'[, open_list).
solo_char(0'], close_list).
solo_char(0',, comma).
solo_char(0'|, bar).

symbol_char(0'+). symbol_char(0'-). symbol_char(0'*). symbol_char(0'/).
symbol_char(0'=). symbol_char(0'<). symbol_char(0'>). symbol_char(0':).
symbol_char(0'.). symbol_char(0'^). symbol_char(0'~). symbol_char(0'\\).
symbol_char(0'#). symbol_char(0'&). symbol_char(0'?). symbol_char(0'@).

% ===================== Parser ========================================
% Operator precedence parsing over the token list.

parse_tokens(Tokens, Term) :-
    parse(Tokens, 1200, Term, Rest),
    parse_end(Rest).

parse_end([]).
parse_end([end]).

parse(Tokens, MaxPrec, Term, Rest) :-
    parse_primary(Tokens, MaxPrec, Left, LeftPrec, Rest1),
    parse_infix(Rest1, Left, LeftPrec, MaxPrec, Term, Rest).

% Primary terms.
parse_primary([integer(N)|Rest], _, integer_term(N), 0, Rest).
parse_primary([variable(V)|Rest], _, var_term(V), 0, Rest).
parse_primary([atom(A), open|Rest], _, Term, 0, Rest1) :-
    parse_arglist(Rest, Args, Rest1),
    Term = compound(A, Args).
parse_primary([atom(A)|Rest], MaxPrec, Term, Prec, Rest1) :-
    \+ next_is_open(Rest),
    parse_prefix(A, Rest, MaxPrec, Term, Prec, Rest1).
parse_primary([open|Rest], _, Term, 0, Rest1) :-
    parse(Rest, 1200, Term, [close|Rest1]).
parse_primary([open_list, close_list|Rest], _, nil_term, 0, Rest).
parse_primary([open_list|Rest], _, Term, 0, Rest1) :-
    parse_list_items(Rest, Term, Rest1).

next_is_open([open|_]).

parse_prefix(A, Rest, MaxPrec, Term, Prec, Rest1) :-
    prefix_op(A, Prec, ArgPrec),
    Prec =< MaxPrec,
    can_start_term(Rest),
    parse(Rest, ArgPrec, Arg, Rest1),
    Term = prefix_term(A, Arg).
parse_prefix(A, Rest, _, atom_term(A), 0, Rest) :-
    \+ prefix_context(A, Rest).

prefix_context(A, Rest) :-
    prefix_op(A, _, _),
    can_start_term(Rest).

can_start_term([integer(_)|_]).
can_start_term([variable(_)|_]).
can_start_term([atom(_)|_]).
can_start_term([open|_]).
can_start_term([open_list|_]).

parse_arglist(Tokens, [Arg|Args], Rest) :-
    parse(Tokens, 999, Arg, Rest1),
    parse_arglist_rest(Rest1, Args, Rest).

parse_arglist_rest([comma|Tokens], [Arg|Args], Rest) :-
    parse(Tokens, 999, Arg, Rest1),
    parse_arglist_rest(Rest1, Args, Rest).
parse_arglist_rest([close|Rest], [], Rest).

parse_list_items(Tokens, cons_term(Head, Tail), Rest) :-
    parse(Tokens, 999, Head, Rest1),
    parse_list_tail(Rest1, Tail, Rest).

parse_list_tail([comma|Tokens], cons_term(Head, Tail), Rest) :-
    parse(Tokens, 999, Head, Rest1),
    parse_list_tail(Rest1, Tail, Rest).
parse_list_tail([bar|Tokens], Tail, Rest) :-
    parse(Tokens, 999, Tail, [close_list|Rest]).
parse_list_tail([close_list|Rest], nil_term, Rest).

% Infix loop.
parse_infix([atom(A)|Tokens], Left, LeftPrec, MaxPrec, Term, Rest) :-
    infix_op(A, Prec, LeftMax, RightMax),
    Prec =< MaxPrec,
    LeftPrec =< LeftMax,
    parse(Tokens, RightMax, Right, Rest1),
    parse_infix(Rest1, infix_term(A, Left, Right), Prec, MaxPrec, Term, Rest).
parse_infix([comma|Tokens], Left, LeftPrec, MaxPrec, Term, Rest) :-
    1000 =< MaxPrec,
    LeftPrec =< 999,
    parse(Tokens, 1000, Right, Rest1),
    parse_infix(Rest1, infix_term(comma, Left, Right), 1000, MaxPrec, Term, Rest).
parse_infix(Tokens, Term, _, _, Term, Tokens) :-
    no_infix(Tokens).

no_infix([]).
no_infix([end|_]).
no_infix([comma|_]).   % a ',' binds at 1000; below that it terminates
no_infix([close|_]).
no_infix([close_list|_]).
no_infix([bar|_]).
no_infix([atom(A)|_]) :- \+ infix_op(A, _, _, _).

% --- Operator tables ---------------------------------------------------
infix_op((:-), 1200, 1199, 1199).
infix_op(=, 700, 699, 699).
infix_op(<, 700, 699, 699).
infix_op(>, 700, 699, 699).
infix_op(=<, 700, 699, 699).
infix_op(>=, 700, 699, 699).
infix_op(is, 700, 699, 699).
infix_op(+, 500, 500, 499).
infix_op(-, 500, 500, 499).
infix_op(*, 400, 400, 399).
infix_op(/, 400, 400, 399).
infix_op((->), 1050, 1049, 1050).

prefix_op(-, 200, 199).
prefix_op((:-), 1200, 1199).

% --- Sample inputs: "foo(bar, X) :- baz(X)." etc. as code lists -------
sample_input(1, Codes) :-
    % "foo(a,X) :- bar(X)."
    Codes = [0'f,0'o,0'o,0'(,0'a,0',,0'X,0'),0' ,
             0':,0'-,0' ,0'b,0'a,0'r,0'(,0'X,0'),0'.].
sample_input(2, Codes) :-
    % "z = f(1+2*3, [a,b|Y])."
    Codes = [0'z,0' ,0'=,0' ,0'f,0'(,0'1,0'+,0'2,0'*,0'3,0',,
             0'[,0'a,0',,0'b,0'|,0'Y,0'],0'),0'.].
sample_input(3, Codes) :-
    % "- 5 + x * y."
    Codes = [0'-,0' ,0'5,0' ,0'+,0' ,0'x,0' ,0'*,0' ,0'y,0'.].
sample_input(4, Codes) :-
    % "'quoted atom' = baz."
    Codes = [0'',0'q,0'u,0'o,0't,0'e,0'd,0' ,0'a,0't,0'o,0'm,0'',
             0' ,0'=,0' ,0'b,0'a,0'z,0'.].

main(T) :- sample_input(1, Cs), read_test(Cs, T).
