% pg -- W. Older's puzzle (reconstruction): place numbers into bins
% subject to sum constraints, searched with backtracking.
% Entry: pg_test(f).

pg_test(Solution) :-
    problem(Items, Bins, Limit),
    distribute(Items, Bins, Limit, Solution).

distribute([], Bins, _, Bins).
distribute([Item|Items], Bins, Limit, Solution) :-
    place(Item, Bins, Limit, Bins1),
    distribute(Items, Bins1, Limit, Solution).

place(Item, [bin(Load, Contents)|Bins], Limit, [bin(Load1, [Item|Contents])|Bins]) :-
    Load1 is Load + Item,
    Load1 =< Limit.
place(Item, [Bin|Bins], Limit, [Bin|Bins1]) :-
    place(Item, Bins, Limit, Bins1).

problem([9, 7, 6, 5, 4, 3], Bins, 12) :-
    empty_bins(3, Bins).

empty_bins(0, []).
empty_bins(N, [bin(0, [])|Bins]) :-
    N > 0,
    N1 is N - 1,
    empty_bins(N1, Bins).

check_bins([], _).
check_bins([bin(Load, _)|Bins], Limit) :-
    Load =< Limit,
    check_bins(Bins, Limit).

main(S) :- pg_test(S).
