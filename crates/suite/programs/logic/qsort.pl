% qsort -- the classic quicksort benchmark (difference-free version).
% Entry: qsort(g, f).

qsort([], []).
qsort([X|Xs], Sorted) :-
    partition(Xs, X, Smaller, Bigger),
    qsort(Smaller, SortedSmall),
    qsort(Bigger, SortedBig),
    append(SortedSmall, [X|SortedBig], Sorted).

partition([], _, [], []).
partition([Y|Ys], X, [Y|Smaller], Bigger) :-
    Y =< X, partition(Ys, X, Smaller, Bigger).
partition([Y|Ys], X, Smaller, [Y|Bigger]) :-
    Y > X, partition(Ys, X, Smaller, Bigger).

append([], Ys, Ys).
append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).

main(Sorted) :-
    qsort([27,74,17,33,94,18,46,83,65,2,32,53,28,85,99,47,28,82,6,11], Sorted).
