% press1 -- PRESS (PRolog Equation Solving System) kernel,
% reconstruction of the classic benchmark: solve symbolic equations by
% isolation, attraction and collection, with an algebraic simplifier.
% Entry: solve_test(g, f).

solve_test(Eq, Answer) :-
    solve_equation(Eq, x, Answer).

% --- Top level: method selection --------------------------------------
solve_equation(A = B, X, Solution) :-
    single_occurrence(X, A = B),
    position(X, A = B, [Side|Position]),
    maneuver_sides(Side, A = B, Equation1),
    isolate(Position, Equation1, Solution).
solve_equation(Lhs = Rhs, X, Solution) :-
    is_polynomial(Lhs, X),
    is_polynomial(Rhs, X),
    polynomial_normal_form(Lhs - Rhs, X, PolyForm),
    solve_polynomial_equation(PolyForm, X, Solution).
solve_equation(Equation, X, Solution) :-
    offenders(Equation, X, Offenders),
    multiple(Offenders),
    homogenize(Equation, X, Offenders, Equation1, X1),
    solve_equation(Equation1, X1, Solution1),
    solve_equation(Solution1, X, Solution).

maneuver_sides(1, Lhs = Rhs, Lhs = Rhs).
maneuver_sides(2, Lhs = Rhs, Rhs = Lhs).

% --- Isolation ---------------------------------------------------------
isolate([], Equation, Equation).
isolate([N|Position], Equation, IsolatedEquation) :-
    isolax(N, Equation, Equation1),
    isolate(Position, Equation1, IsolatedEquation).

isolax(1, Term + A = B, Term = B - A).
isolax(2, A + Term = B, Term = B - A).
isolax(1, Term - A = B, Term = B + A).
isolax(2, A - Term = B, Term = A - B).
isolax(1, Term * A = B, Term = B / A) :- nonzero(A).
isolax(2, A * Term = B, Term = B / A) :- nonzero(A).
isolax(1, Term / A = B, Term = B * A) :- nonzero(A).
isolax(2, A / Term = B, Term = A / B) :- nonzero(B).
isolax(1, Term ^ N = B, Term = B ^ Inv) :- inverse_exp(N, Inv).
isolax(1, sin(Term) = B, Term = arcsin(B)).
isolax(1, cos(Term) = B, Term = arccos(B)).
isolax(1, exp(Term) = B, Term = log(B)).
isolax(1, log(Term) = B, Term = exp(B)).
isolax(1, -(Term) = B, Term = -(B)).

inverse_exp(2, half).
inverse_exp(3, third).

nonzero(A) :- A \== 0.

% --- Position finding --------------------------------------------------
single_occurrence(Subterm, Term) :-
    occurrences(Subterm, Term, 1).

position(Term, Term, []).
position(Subterm, Term, Path) :-
    Term \== Subterm,
    functor_args(Term, Args),
    position_args(Subterm, Args, 1, Path).

position_args(Subterm, [Arg|_], N, [N|Path]) :-
    position(Subterm, Arg, Path).
position_args(Subterm, [Arg|Args], N, Path) :-
    \+ position(Subterm, Arg, _),
    N1 is N + 1,
    position_args(Subterm, Args, N1, Path).

occurrences(Subterm, Subterm, 1).
occurrences(Subterm, Term, N) :-
    Term \== Subterm,
    functor_args(Term, Args),
    occurrences_list(Subterm, Args, N).
occurrences(Subterm, Term, 0) :-
    Term \== Subterm,
    atomic(Term).

occurrences_list(_, [], 0).
occurrences_list(Subterm, [Arg|Args], N) :-
    occurrences(Subterm, Arg, N1),
    occurrences_list(Subterm, Args, N2),
    N is N1 + N2.

functor_args(A + B, [A, B]).
functor_args(A - B, [A, B]).
functor_args(A * B, [A, B]).
functor_args(A / B, [A, B]).
functor_args(A ^ B, [A, B]).
functor_args(A = B, [A, B]).
functor_args(-(A), [A]).
functor_args(sin(A), [A]).
functor_args(cos(A), [A]).
functor_args(exp(A), [A]).
functor_args(log(A), [A]).

% --- Polynomial methods -------------------------------------------------
is_polynomial(X, X).
is_polynomial(Term, _) :- number_term(Term).
is_polynomial(A + B, X) :- is_polynomial(A, X), is_polynomial(B, X).
is_polynomial(A - B, X) :- is_polynomial(A, X), is_polynomial(B, X).
is_polynomial(A * B, X) :- is_polynomial(A, X), is_polynomial(B, X).
is_polynomial(A / B, X) :- is_polynomial(A, X), number_term(B).
is_polynomial(A ^ N, X) :- is_polynomial(A, X), integer(N).

number_term(T) :- integer(T).

polynomial_normal_form(Polynomial, X, NormalForm) :-
    polynomial_form(Polynomial, X, PolyForm),
    remove_zero_terms(PolyForm, NormalForm).

polynomial_form(X, X, [(1, 1)]).
polynomial_form(X ^ N, X, [(1, N)]).
polynomial_form(A + B, X, Poly) :-
    polynomial_form(A, X, PolyA),
    polynomial_form(B, X, PolyB),
    add_polynomials(PolyA, PolyB, Poly).
polynomial_form(A - B, X, Poly) :-
    polynomial_form(A, X, PolyA),
    polynomial_form(B, X, PolyB),
    negate_polynomial(PolyB, NegB),
    add_polynomials(PolyA, NegB, Poly).
polynomial_form(A * B, X, Poly) :-
    polynomial_form(A, X, PolyA),
    polynomial_form(B, X, PolyB),
    multiply_polynomials(PolyA, PolyB, Poly).
polynomial_form(Term, _, [(Term, 0)]) :-
    number_term(Term).

add_polynomials([], Poly, Poly).
add_polynomials(Poly, [], Poly).
add_polynomials([(Ai, Ni)|PolyA], [(Aj, Nj)|PolyB], [(Ai, Ni)|Poly]) :-
    Ni > Nj,
    add_polynomials(PolyA, [(Aj, Nj)|PolyB], Poly).
add_polynomials([(Ai, Ni)|PolyA], [(Aj, Nj)|PolyB], [(A, Ni)|Poly]) :-
    Ni =:= Nj,
    A is Ai + Aj,
    add_polynomials(PolyA, PolyB, Poly).
add_polynomials([(Ai, Ni)|PolyA], [(Aj, Nj)|PolyB], [(Aj, Nj)|Poly]) :-
    Ni < Nj,
    add_polynomials([(Ai, Ni)|PolyA], PolyB, Poly).

negate_polynomial([], []).
negate_polynomial([(A, N)|Poly], [(A1, N)|Poly1]) :-
    A1 is -A,
    negate_polynomial(Poly, Poly1).

multiply_polynomials([], _, []).
multiply_polynomials([Term|PolyA], PolyB, Poly) :-
    multiply_single(Term, PolyB, PolyT),
    multiply_polynomials(PolyA, PolyB, PolyRest),
    add_polynomials(PolyT, PolyRest, Poly).

multiply_single(_, [], []).
multiply_single((A, N), [(A1, N1)|Poly], [(A2, N2)|Poly1]) :-
    A2 is A * A1,
    N2 is N + N1,
    multiply_single((A, N), Poly, Poly1).

remove_zero_terms([], []).
remove_zero_terms([(0, _)|Poly], Poly1) :-
    remove_zero_terms(Poly, Poly1).
remove_zero_terms([(A, N)|Poly], [(A, N)|Poly1]) :-
    A \== 0,
    remove_zero_terms(Poly, Poly1).

solve_polynomial_equation(Poly, X, X = Solution) :-
    linear(Poly),
    pad_linear(Poly, (A, _), (B, _)),
    Solution = -(B) / A.
solve_polynomial_equation(Poly, X, X = Solution) :-
    quadratic(Poly),
    pad_quadratic(Poly, (A, _), (B, _), (C, _)),
    discriminant(A, B, C, Disc),
    root(A, B, Disc, Solution).

discriminant(A, B, C, Disc) :- Disc is B * B - 4 * A * C.

root(A, B, Disc, (-(B) + sqrt(Disc)) / (2 * A)).
root(A, B, Disc, (-(B) - sqrt(Disc)) / (2 * A)).

linear([(_, 1)|_]).
quadratic([(_, 2)|_]).

pad_linear([(A, 1), (B, 0)], (A, 1), (B, 0)).
pad_linear([(A, 1)], (A, 1), (0, 0)).

pad_quadratic([(A, 2)|Rest], (A, 2), B, C) :- pad_linear_rest(Rest, B, C).

pad_linear_rest([], (0, 1), (0, 0)).
pad_linear_rest([(B, 1)], (B, 1), (0, 0)).
pad_linear_rest([(C, 0)], (0, 1), (C, 0)).
pad_linear_rest([(B, 1), (C, 0)], (B, 1), (C, 0)).

% --- Homogenization ------------------------------------------------------
offenders(Equation, X, Offenders) :-
    parse_terms(Equation, X, [], Offenders).

parse_terms(A = B, X, Acc, Offenders) :-
    parse_terms(A, X, Acc, Acc1),
    parse_terms(B, X, Acc1, Offenders).
parse_terms(Term, X, Acc, [Term|Acc]) :-
    offending(Term, X).
parse_terms(Term, X, Acc, Offenders) :-
    \+ offending(Term, X),
    functor_args(Term, Args),
    parse_term_list(Args, X, Acc, Offenders).
parse_terms(Term, _, Acc, Acc) :-
    atomic(Term).

parse_term_list([], _, Acc, Acc).
parse_term_list([T|Ts], X, Acc, Offenders) :-
    parse_terms(T, X, Acc, Acc1),
    parse_term_list(Ts, X, Acc1, Offenders).

offending(exp(T), X) :- contains_var(T, X).
offending(sin(T), X) :- contains_var(T, X).
offending(cos(T), X) :- contains_var(T, X).

contains_var(X, X).
contains_var(T, X) :-
    functor_args(T, Args),
    contains_var_list(Args, X).

contains_var_list([A|_], X) :- contains_var(A, X).
contains_var_list([_|As], X) :- contains_var_list(As, X).

multiple([_, _|_]).

homogenize(Equation, X, [Offender|_], Equation1, X1) :-
    reduced_term(Offender, X, X1),
    rewrite_equation(Equation, Offender, X1, Equation1).

reduced_term(exp(_), _, u).
reduced_term(sin(_), _, s).
reduced_term(cos(_), _, c).

rewrite_equation(A = B, Off, New, A1 = B1) :-
    rewrite_term(A, Off, New, A1),
    rewrite_term(B, Off, New, B1).

rewrite_term(Off, Off, New, New).
rewrite_term(T, Off, New, T1) :-
    T \== Off,
    functor_args(T, Args),
    rewrite_list(Args, Off, New, Args1),
    rebuild(T, Args1, T1).
rewrite_term(T, Off, _, T) :-
    T \== Off,
    atomic(T).

rewrite_list([], _, _, []).
rewrite_list([A|As], Off, New, [A1|As1]) :-
    rewrite_term(A, Off, New, A1),
    rewrite_list(As, Off, New, As1).

rebuild(_ + _, [A, B], A + B).
rebuild(_ - _, [A, B], A - B).
rebuild(_ * _, [A, B], A * B).
rebuild(_ / _, [A, B], A / B).
rebuild(_ ^ _, [A, B], A ^ B).
rebuild(-(_), [A], -(A)).
rebuild(sin(_), [A], sin(A)).
rebuild(cos(_), [A], cos(A)).
rebuild(exp(_), [A], exp(A)).
rebuild(log(_), [A], log(A)).

% --- Test equations -------------------------------------------------------
test_equation(1, x + 3 = 5).
test_equation(2, 2 * x - 4 = 0).
test_equation(3, x ^ 2 - 5 * x + 6 = 0).
test_equation(4, sin(x) = 0).
test_equation(5, exp(2 * x) - 3 * exp(x) = 0).

main(S) :- test_equation(1, E), solve_test(E, S).
