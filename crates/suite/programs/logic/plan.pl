% plan -- Warren's blocks-world planner (reconstruction).
% Depth-first means-ends planner over a three-block world.
% Entry: plan_test(g, f).

plan_test(Name, Plan) :-
    initial_state(Name, Init),
    goal_state(Name, Goal),
    plan(Init, Goal, [], Plan).

plan(State, Goal, _, []) :-
    satisfied(State, Goal).
plan(State, Goal, Sofar, [Action|Plan]) :-
    short_history(Sofar),
    legal_action(Action, State),
    apply_action(Action, State, NewState),
    \+ member_state(NewState, Sofar),
    plan(NewState, Goal, [State|Sofar], Plan).

% Depth bound: the classic benchmark searches with a plan-length cap
% (iterative deepening in the original); four moves suffice here.
short_history([]).
short_history([_]).
short_history([_, _]).
short_history([_, _, _]).

satisfied(_, []).
satisfied(State, [Cond|Conds]) :-
    member_fact(Cond, State),
    satisfied(State, Conds).

legal_action(move(Block, From, To), State) :-
    member_fact(clear(Block), State),
    member_fact(on(Block, From), State),
    member_fact(clear(To), State),
    Block \== To,
    From \== To.

apply_action(move(Block, From, To), State, NewState) :-
    substitute(on(Block, From), on(Block, To), State, S1),
    substitute(clear(To), clear(From), S1, NewState).

substitute(Old, New, [Old|Rest], [New|Rest]).
substitute(Old, New, [X|Rest], [X|Rest1]) :-
    X \== Old,
    substitute(Old, New, Rest, Rest1).

member_fact(X, [X|_]).
member_fact(X, [_|Ys]) :- member_fact(X, Ys).

member_state(S, [S1|_]) :- same_state(S, S1).
member_state(S, [_|Ss]) :- member_state(S, Ss).

same_state([], []).
same_state([F|Fs], S) :-
    member_fact(F, S),
    same_state(Fs, S).

initial_state(sussman, [on(c, a), on(a, table), on(b, table),
                        clear(c), clear(b), clear(table)]).
initial_state(simple, [on(a, table), on(b, table), on(c, table),
                       clear(a), clear(b), clear(c), clear(table)]).
initial_state(tower, [on(a, b), on(b, c), on(c, table),
                      clear(a), clear(table)]).

goal_state(sussman, [on(a, b), on(b, c)]).
goal_state(simple, [on(a, b)]).
goal_state(tower, [on(c, b), on(b, a)]).

main(Plan) :- plan_test(sussman, Plan).
