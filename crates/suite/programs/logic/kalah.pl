% kalah -- the kalah game player from Sterling & Shapiro's
% "The Art of Prolog" (reconstruction): alpha-beta game-tree search
% over the sowing game of kalah.
% Entry: play_test(f).

play_test(FinalScore) :-
    initialize(kalah, Position, computer),
    play_from(Position, computer, FinalScore).

play_from(Position, Player, Score) :-
    game_over(Position, Player, Score).
play_from(Position, Player, Score) :-
    \+ game_over(Position, Player, _),
    choose_move(Position, Player, Move),
    move(Move, Position, Position1),
    next_player(Player, Player1),
    play_from(Position1, Player1, Score).

choose_move(Position, computer, Move) :-
    lookahead(Depth),
    alpha_beta(Depth, Position, -40, 40, Move, _).
choose_move(Position, opponent, Move) :-
    first_legal(Position, Move).

first_legal(Position, [Move|Rest]) :-
    legal_single(Position, Move),
    extend_move(Move, Position, Rest).

extend_move(Move, Position, []) :-
    \+ lands_in_kalah(Move, Position).
extend_move(Move, Position, Rest) :-
    lands_in_kalah(Move, Position),
    move_stones(Move, Position, Position1),
    first_legal_or_stop(Position1, Rest).

first_legal_or_stop(Position, Moves) :- first_legal(Position, Moves).
first_legal_or_stop(_, []).

lands_in_kalah(M, board(Holes, _, _, _)) :-
    nth_hole(M, Holes, Stones),
    Fly is M + Stones,
    Fly =:= 7.

legal_single(board(Holes, _, _, _), M) :-
    between_hole(1, 6, M),
    nth_hole(M, Holes, Stones),
    Stones > 0.

alpha_beta(0, Position, _, _, [], Value) :-
    value(Position, Value).
alpha_beta(D, Position, Alpha, Beta, Move, Value) :-
    D > 0,
    all_moves(Position, Moves),
    Alpha1 is -Beta,
    Beta1 is -Alpha,
    D1 is D - 1,
    evaluate_and_choose(Moves, Position, D1, Alpha1, Beta1, nil, (Move, Value)).

evaluate_and_choose([Move|Moves], Position, D, Alpha, Beta, Record, BestMove) :-
    move(Move, Position, Position1),
    swap_sides(Position1, Position2),
    alpha_beta(D, Position2, Alpha, Beta, _, MinusValue),
    Value is -MinusValue,
    cutoff(Move, Value, D, Alpha, Beta, Moves, Position, Record, BestMove).
evaluate_and_choose([], _, _, Alpha, _, Move, (Move, Alpha)).

cutoff(Move, Value, _, _, Beta, _, _, _, (Move, Value)) :-
    Value >= Beta.
cutoff(Move, Value, D, Alpha, Beta, Moves, Position, _, BestMove) :-
    Alpha < Value, Value < Beta,
    evaluate_and_choose(Moves, Position, D, Value, Beta, Move, BestMove).
cutoff(_, Value, D, Alpha, Beta, Moves, Position, Record, BestMove) :-
    Value =< Alpha,
    evaluate_and_choose(Moves, Position, D, Alpha, Beta, Record, BestMove).

all_moves(Position, [[M]|Ms]) :-
    legal_single(Position, M),
    collect_rest(Position, M, Ms).

collect_rest(Position, M, Ms) :-
    M1 is M + 1,
    collect_from(Position, M1, Ms).

collect_from(_, M, []) :- M > 6.
collect_from(Position, M, [[M]|Ms]) :-
    M =< 6,
    legal_single(Position, M),
    M1 is M + 1,
    collect_from(Position, M1, Ms).
collect_from(Position, M, Ms) :-
    M =< 6,
    \+ legal_single(Position, M),
    M1 is M + 1,
    collect_from(Position, M1, Ms).

move([M|Ms], Position, Position1) :-
    move_stones(M, Position, PositionMid),
    move_rest(Ms, PositionMid, Position1).
move([], Position, Position).

move_rest([], Position, Position).
move_rest([M|Ms], Position, Position1) :-
    move_stones(M, Position, PositionMid),
    move_rest(Ms, PositionMid, Position1).

move_stones(M, board(Hs, K, Ys, L), board(Hs2, K2, Ys2, L)) :-
    nth_hole(M, Hs, Stones),
    Stones > 0,
    set_hole(M, Hs, 0, Hs1),
    M1 is M + 1,
    sow(M1, Stones, Hs1, K, Ys, Hs2, K2, Ys2).

sow(_, 0, Hs, K, Ys, Hs, K, Ys).
sow(Pos, Stones, Hs, K, Ys, Hs2, K2, Ys2) :-
    Stones > 0,
    Pos =< 6,
    nth_hole(Pos, Hs, Old),
    New is Old + 1,
    set_hole(Pos, Hs, New, Hs1),
    Pos1 is Pos + 1,
    Stones1 is Stones - 1,
    sow(Pos1, Stones1, Hs1, K, Ys, Hs2, K2, Ys2).
sow(7, Stones, Hs, K, Ys, Hs2, K2, Ys2) :-
    Stones > 0,
    K1 is K + 1,
    Stones1 is Stones - 1,
    sow(8, Stones1, Hs, K1, Ys, Hs2, K2, Ys2).
sow(Pos, Stones, Hs, K, Ys, Hs2, K2, Ys2) :-
    Stones > 0,
    Pos > 7,
    Pos =< 13,
    Opp is Pos - 7,
    nth_hole(Opp, Ys, Old),
    New is Old + 1,
    set_hole(Opp, Ys, New, Ys1),
    Pos1 is Pos + 1,
    Stones1 is Stones - 1,
    sow(Pos1, Stones1, Hs, K, Ys1, Hs2, K2, Ys2).
sow(Pos, Stones, Hs, K, Ys, Hs2, K2, Ys2) :-
    Pos > 13,
    sow(1, Stones, Hs, K, Ys, Hs2, K2, Ys2).

swap_sides(board(Hs, K, Ys, L), board(Ys, L, Hs, K)).

value(board(_, K, _, L), Value) :- Value is K - L.

game_over(board(Hs, K, Ys, L), _, Score) :-
    all_empty(Hs),
    sum_holes(Ys, S),
    Score is K - (L + S).
game_over(board(Hs, K, Ys, L), _, Score) :-
    all_empty(Ys),
    sum_holes(Hs, S),
    Score is K + S - L.
game_over(board(_, K, _, L), _, Score) :-
    K > 18,
    Score is K - L.
game_over(board(_, K, _, L), _, Score) :-
    L > 18,
    Score is K - L.

all_empty([]).
all_empty([0|Hs]) :- all_empty(Hs).

sum_holes([], 0).
sum_holes([H|Hs], S) :- sum_holes(Hs, S0), S is S0 + H.

nth_hole(1, [H|_], H).
nth_hole(N, [_|Hs], H) :-
    N > 1,
    N1 is N - 1,
    nth_hole(N1, Hs, H).

set_hole(1, [_|Hs], X, [X|Hs]).
set_hole(N, [H|Hs], X, [H|Hs1]) :-
    N > 1,
    N1 is N - 1,
    set_hole(N1, Hs, X, Hs1).

between_hole(L, _, L).
between_hole(L, H, X) :-
    L < H,
    L1 is L + 1,
    between_hole(L1, H, X).

next_player(computer, opponent).
next_player(opponent, computer).

lookahead(2).

initialize(kalah, board([3,3,3,3,3,3], 0, [3,3,3,3,3,3], 0), computer).

main(S) :- play_test(S).
