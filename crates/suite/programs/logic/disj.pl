% disj -- disjunctive scheduling (reconstruction of the DISJ benchmark):
% schedule tasks on shared machines where every pair of tasks on the
% same machine must be ordered one way or the other — the disjunction
% that gives the benchmark its name.
% Entry: schedule_test(g, f).

schedule_test(Horizon, Schedule) :-
    tasks(Tasks),
    precedences(Precs),
    machines(Machines),
    assign_starts(Tasks, Horizon, Schedule),
    respects_precedences(Precs, Schedule),
    respects_machines(Machines, Schedule).

% Assign a start time to each task within the horizon.
assign_starts([], _, []).
assign_starts([task(Name, Dur)|Tasks], Horizon, [start(Name, S, Dur)|Schedule]) :-
    Latest is Horizon - Dur,
    choose_time(0, Latest, S),
    assign_starts(Tasks, Horizon, Schedule).

choose_time(T, Latest, T) :- T =< Latest.
choose_time(T, Latest, S) :-
    T < Latest,
    T1 is T + 1,
    choose_time(T1, Latest, S).

% Precedence constraints: A finishes before B starts.
respects_precedences([], _).
respects_precedences([before(A, B)|Precs], Schedule) :-
    lookup_start(A, Schedule, SA, DA),
    lookup_start(B, Schedule, SB, _),
    EndA is SA + DA,
    EndA =< SB,
    respects_precedences(Precs, Schedule).

% Disjunctive machine constraints: tasks sharing a machine must not
% overlap — either A before B or B before A.
respects_machines([], _).
respects_machines([machine(_, Ts)|Machines], Schedule) :-
    pairwise_disjoint(Ts, Schedule),
    respects_machines(Machines, Schedule).

pairwise_disjoint([], _).
pairwise_disjoint([T|Ts], Schedule) :-
    disjoint_with_all(T, Ts, Schedule),
    pairwise_disjoint(Ts, Schedule).

disjoint_with_all(_, [], _).
disjoint_with_all(A, [B|Bs], Schedule) :-
    disjoint_pair(A, B, Schedule),
    disjoint_with_all(A, Bs, Schedule).

disjoint_pair(A, B, Schedule) :-
    lookup_start(A, Schedule, SA, DA),
    lookup_start(B, Schedule, SB, DB),
    ( EndA is SA + DA, EndA =< SB
    ; EndB is SB + DB, EndB =< SA
    ).

lookup_start(Name, [start(Name, S, D)|_], S, D).
lookup_start(Name, [start(Other, _, _)|Schedule], S, D) :-
    Name \== Other,
    lookup_start(Name, Schedule, S, D).

% Makespan of a schedule.
makespan([], 0).
makespan([start(_, S, D)|Schedule], M) :-
    makespan(Schedule, M1),
    End is S + D,
    max_of(End, M1, M).

max_of(A, B, A) :- A >= B.
max_of(A, B, B) :- A < B.

% Optimal search: find any schedule within Horizon, then try to shrink.
optimize(Horizon, Best) :-
    schedule_test(Horizon, Schedule),
    makespan(Schedule, M),
    try_improve(M, Schedule, Best).

try_improve(M, _, Best) :-
    M > 0,
    M1 is M - 1,
    optimize(M1, Best).
try_improve(M, Schedule, span(M, Schedule)) :-
    M1 is M - 1,
    \+ optimize_possible(M1).

optimize_possible(Horizon) :-
    Horizon > 0,
    schedule_test(Horizon, _).

% Slack analysis used by the original to prune: earliest/latest starts.
earliest_start(Name, Precs, E) :-
    incoming(Name, Precs, Preds),
    earliest_from(Preds, Precs, E).

earliest_from([], _, 0).
earliest_from([P|Ps], Precs, E) :-
    task_duration(P, D),
    earliest_start(P, Precs, EP),
    earliest_from(Ps, Precs, E1),
    Sum is EP + D,
    max_of(Sum, E1, E).

incoming(_, [], []).
incoming(Name, [before(A, Name)|Precs], [A|Preds]) :-
    incoming(Name, Precs, Preds).
incoming(Name, [before(_, Other)|Precs], Preds) :-
    Name \== Other,
    incoming(Name, Precs, Preds).

task_duration(Name, D) :-
    tasks(Tasks),
    member_task(task(Name, D), Tasks).

member_task(T, [T|_]).
member_task(T, [_|Ts]) :- member_task(T, Ts).

% --- Problem instance ----------------------------------------------------
tasks([task(a, 2), task(b, 3), task(c, 2), task(d, 1), task(e, 2)]).

precedences([before(a, c), before(b, d), before(c, e)]).

machines([machine(m1, [a, b]), machine(m2, [c, d]), machine(m3, [e])]).

main(S) :- schedule_test(8, S).
