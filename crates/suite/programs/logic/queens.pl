% queens -- N-queens via permutation generation and safety checking.
% Entry: queens(g, f).

queens(N, Qs) :-
    range(1, N, Ns),
    queens3(Ns, [], Qs).

queens3([], Qs, Qs).
queens3(UnplacedQs, SafeQs, Qs) :-
    selectq(Q, UnplacedQs, UnplacedQs1),
    \+ attack(Q, SafeQs),
    queens3(UnplacedQs1, [Q|SafeQs], Qs).

attack(X, Xs) :- attack3(X, 1, Xs).

attack3(X, N, [Y|_]) :- X is Y + N.
attack3(X, N, [Y|_]) :- X is Y - N.
attack3(X, N, [_|Ys]) :-
    N1 is N + 1,
    attack3(X, N1, Ys).

selectq(X, [X|Xs], Xs).
selectq(X, [Y|Ys], [Y|Zs]) :- selectq(X, Ys, Zs).

range(N, N, [N]).
range(M, N, [M|Ns]) :-
    M < N,
    M1 is M + 1,
    range(M1, N, Ns).

main(Qs) :- queens(8, Qs).
