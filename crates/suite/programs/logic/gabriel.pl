% gabriel -- the "browse" kernel from the Gabriel benchmark suite
% (reconstruction): pattern matching over property-list databases.
% Entry: browse_test(f).

browse_test(Count) :-
    init_database(Db),
    patterns(Patterns),
    investigate(Db, Patterns, 0, Count).

investigate([], _, Count, Count).
investigate([Unit|Units], Patterns, Acc, Count) :-
    properties(Unit, Props),
    try_patterns(Props, Patterns, Acc, Acc1),
    investigate(Units, Patterns, Acc1, Count).

try_patterns(_, [], Count, Count).
try_patterns(Props, [Pat|Pats], Acc, Count) :-
    ( match_props(Props, Pat) -> Acc1 is Acc + 1 ; Acc1 = Acc ),
    try_patterns(Props, Pats, Acc1, Count).

match_props([], []).
match_props([P|Ps], [Q|Qs]) :-
    match_one(P, Q),
    match_props(Ps, Qs).

match_one(prop(K, V), prop(K, Pat)) :- match_term(V, Pat).

match_term(_, star).
match_term(X, X1) :- atomic(X), X = X1.
match_term([], []).
match_term([X|Xs], [P|Ps]) :-
    match_term(X, P),
    match_term(Xs, Ps).
match_term(f(X, Y), f(P, Q)) :-
    match_term(X, P),
    match_term(Y, Q).

properties(unit(_, Props), Props).

init_database([
    unit(u1, [prop(kind, [a, b, star_item]), prop(size, f(1, 2))]),
    unit(u2, [prop(kind, [a, c, d]), prop(size, f(2, 2))]),
    unit(u3, [prop(kind, [b, b, e]), prop(size, f(3, 1))]),
    unit(u4, [prop(kind, [c, a, a]), prop(size, f(1, 1))]),
    unit(u5, [prop(kind, [d, e, b]), prop(size, f(2, 3))]),
    unit(u6, [prop(kind, [e, a, c]), prop(size, f(3, 3))]),
    unit(u7, [prop(kind, [a, a, a]), prop(size, f(2, 1))]),
    unit(u8, [prop(kind, [b, c, d]), prop(size, f(1, 3))])
]).

patterns([
    [prop(kind, [a, star, star]), prop(size, f(star, 2))],
    [prop(kind, [star, b, star]), prop(size, star)],
    [prop(kind, [a, a, a]), prop(size, f(2, star))],
    [prop(kind, star), prop(size, f(1, star))],
    [prop(kind, [star, star, d]), prop(size, f(star, star))]
]).

% A little list library, as the original carries its own.
app([], Ys, Ys).
app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).

len([], 0).
len([_|Xs], N) :- len(Xs, N0), N is N0 + 1.

rev([], []).
rev([X|Xs], Ys) :- rev(Xs, Zs), app(Zs, [X], Ys).

main(C) :- browse_test(C).
