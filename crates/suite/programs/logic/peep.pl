% peep -- a PDP-11 style peephole optimizer (reconstruction of the
% SB-Prolog benchmark): rewrite rules over instruction sequences,
% driven by a pattern table.
% Entry: peep_test(g, f).

peep_test(Code, Optimized) :-
    peephole(Code, Optimized).

peephole(Code, Optimized) :-
    opt_pass(Code, Code1, Changed),
    continue_opt(Changed, Code1, Optimized).

continue_opt(no, Code, Code).
continue_opt(yes, Code, Optimized) :- peephole(Code, Optimized).

opt_pass([], [], no).
opt_pass(Code, Optimized, yes) :-
    opt_rule(Code, Code1),
    opt_pass(Code1, Optimized, _).
opt_pass([Instr|Code], [Instr|Optimized], Changed) :-
    \+ opt_rule([Instr|Code], _),
    opt_pass(Code, Optimized, Changed).

% --- Redundant move elimination -------------------------------------
opt_rule([move(R, R)|Rest], Rest).
opt_rule([move(A, B), move(B, A)|Rest], [move(A, B)|Rest]).
opt_rule([move(A, B), move(A, B)|Rest], [move(A, B)|Rest]).
opt_rule([store(R, M), load(M, R)|Rest], [store(R, M)|Rest]).
opt_rule([load(M, R), store(R, M)|Rest], [load(M, R)|Rest]).

% --- Strength reduction ---------------------------------------------
opt_rule([mul(R, 2)|Rest], [asl(R, 1)|Rest]).
opt_rule([mul(R, 4)|Rest], [asl(R, 2)|Rest]).
opt_rule([mul(R, 8)|Rest], [asl(R, 3)|Rest]).
opt_rule([div(R, 2)|Rest], [asr(R, 1)|Rest]).
opt_rule([div(R, 4)|Rest], [asr(R, 2)|Rest]).
opt_rule([add(R, 0)|Rest], Rest).
opt_rule([sub(R, 0)|Rest], Rest).
opt_rule([mul(R, 1)|Rest], Rest).
opt_rule([div(R, 1)|Rest], Rest).
opt_rule([add(R, 1)|Rest], [inc(R)|Rest]).
opt_rule([sub(R, 1)|Rest], [dec(R)|Rest]).
opt_rule([mul(_, 0)|Rest], [clr(acc)|Rest]).

% --- Constant folding through the accumulator -----------------------
opt_rule([loadi(A), loadi(_)|Rest], [loadi(A)|Rest]) :- useless_first(Rest).
opt_rule([loadi(A), addi(B)|Rest], [loadi(C)|Rest]) :- C is A + B.
opt_rule([loadi(A), subi(B)|Rest], [loadi(C)|Rest]) :- C is A - B.
opt_rule([loadi(A), muli(B)|Rest], [loadi(C)|Rest]) :- C is A * B.
opt_rule([addi(0)|Rest], Rest).
opt_rule([subi(0)|Rest], Rest).
opt_rule([muli(1)|Rest], Rest).
opt_rule([clr(R), inc(R)|Rest], [loadi_r(R, 1)|Rest]).
opt_rule([inc(R), dec(R)|Rest], Rest).
opt_rule([dec(R), inc(R)|Rest], Rest).

% --- Jump simplification --------------------------------------------
opt_rule([jmp(L), label(L)|Rest], [label(L)|Rest]).
opt_rule([jz(L), label(L)|Rest], [label(L)|Rest]).
opt_rule([jnz(L), label(L)|Rest], [label(L)|Rest]).
opt_rule([jmp(L1), jmp(_)|Rest], [jmp(L1)|Rest]).
opt_rule([cmp(A, A), jnz(_)|Rest], Rest).
opt_rule([cmp(A, A), jz(L)|Rest], [jmp(L)|Rest]).
opt_rule([test(R), test(R)|Rest], [test(R)|Rest]).
opt_rule([push(R), pop(R)|Rest], Rest).
opt_rule([pop(R), push(R)|Rest], Rest).
opt_rule([neg(R), neg(R)|Rest], Rest).
opt_rule([com(R), com(R)|Rest], Rest).
opt_rule([swap(A, B), swap(A, B)|Rest], Rest).

useless_first([]).
useless_first([store(_, _)|_]).
useless_first([move(_, _)|_]).

% --- Addressing-mode simplification ----------------------------------
opt_rule([lea(R, addr(B, 0))|Rest], [move(B, R)|Rest]).
opt_rule([lea(R, addr(B, D)), load_ind(R, T)|Rest], [load_disp(B, D, T)|Rest]).
opt_rule([load_disp(B, 0, T)|Rest], [load_ind2(B, T)|Rest]).
opt_rule([move(A, B), use_ind(B)|Rest], [use_ind(A), move(A, B)|Rest]).
opt_rule([index(R, 1)|Rest], [move(R, R1)|Rest]) :- scratch(R1).
opt_rule([index(R, 0)|Rest], [clr(R1)|Rest]) :- scratch(R1).

scratch(t0).

% --- Condition-code tracking ------------------------------------------
opt_rule([cmp(A, B), cmp(A, B)|Rest], [cmp(A, B)|Rest]).
opt_rule([test(R), cmp(R, 0)|Rest], [test(R)|Rest]).
opt_rule([sub(R, K), test(R)|Rest], [sub(R, K)|Rest]) :- sets_cc(sub(R, K)).
opt_rule([add(R, K), test(R)|Rest], [add(R, K)|Rest]) :- sets_cc(add(R, K)).

sets_cc(sub(_, _)).
sets_cc(add(_, _)).
sets_cc(inc(_)).
sets_cc(dec(_)).
sets_cc(neg(_)).
sets_cc(com(_)).
sets_cc(test(_)).
sets_cc(cmp(_, _)).

% --- Branch chaining: a conditional jump over an unconditional one ----
opt_rule([jz(L1), jmp(L2), label(L1)|Rest], [jnz(L2), label(L1)|Rest]).
opt_rule([jnz(L1), jmp(L2), label(L1)|Rest], [jz(L2), label(L1)|Rest]).
opt_rule([jlt(L1), jmp(L2), label(L1)|Rest], [jge(L2), label(L1)|Rest]).
opt_rule([jge(L1), jmp(L2), label(L1)|Rest], [jlt(L2), label(L1)|Rest]).

negate_branch(jz(L), jnz(L)).
negate_branch(jnz(L), jz(L)).
negate_branch(jlt(L), jge(L)).
negate_branch(jge(L), jlt(L)).
negate_branch(jgt(L), jle(L)).
negate_branch(jle(L), jgt(L)).

% --- Flow analysis helpers used by larger rules ---------------------
reaches_label([label(L)|_], L).
reaches_label([I|Rest], L) :-
    \+ is_label(I, L),
    reaches_label(Rest, L).

is_label(label(L), L).

dead_after_jump([jmp(_)|Rest], Dead) :- collect_dead(Rest, Dead).

collect_dead([], []).
collect_dead([label(L)|_], [stop(L)]).
collect_dead([I|Rest], [I|Dead]) :-
    \+ is_label(I, _),
    collect_dead(Rest, Dead).

% --- Register usage bookkeeping -------------------------------------
uses(move(A, _), A).
uses(add(R, _), R).
uses(sub(R, _), R).
uses(mul(R, _), R).
uses(div(R, _), R).
uses(inc(R), R).
uses(dec(R), R).
uses(test(R), R).
uses(push(R), R).
uses(neg(R), R).
uses(com(R), R).
uses(store(R, _), R).
uses(cmp(A, _), A).
uses(cmp(_, B), B).

defines(move(_, B), B).
defines(load(_, R), R).
defines(loadi_r(R, _), R).
defines(pop(R), R).
defines(clr(R), R).
defines(inc(R), R).
defines(dec(R), R).
defines(neg(R), R).
defines(com(R), R).

dead_store([store(R, M)|Rest], M) :-
    \+ referenced(Rest, M),
    uses(store(R, M), R).

referenced([load(M, _)|_], M).
referenced([I|Rest], M) :-
    \+ loads_from(I, M),
    referenced(Rest, M).

loads_from(load(M, _), M).

% --- Test inputs ------------------------------------------------------
sample(1, [move(r1, r1), loadi(3), addi(4), store(acc, x),
           load(x, acc), mul(r2, 2), jmp(l1), label(l1), halt]).
sample(2, [push(r1), pop(r1), add(r3, 0), cmp(r2, r2), jz(l2),
           mul(r4, 8), label(l2), sub(r5, 1), inc(r5), dec(r5), halt]).
sample(3, [loadi(5), muli(1), subi(0), clr(r1), inc(r1),
           neg(r2), neg(r2), swap(a, b), swap(a, b), halt]).
sample(4, [move(r1, r2), move(r2, r1), store(r3, m1), load(m1, r3),
           jmp(l3), move(r9, r9), label(l3), div(r7, 4), halt]).
sample(5, [jz(l4), jmp(l5), label(l4), test(r1), cmp(r1, 0),
           sub(r2, 3), test(r2), halt]).
sample(6, [lea(r1, addr(r2, 0)), index(r3, 1), cmp(r4, r4),
           jz(l6), label(l6), push(r5), pop(r5), halt]).

main(O) :- sample(1, C), peep_test(C, O).
