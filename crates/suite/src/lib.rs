//! The benchmark suite of the PLDI'96 reproduction.
//!
//! The paper evaluates its analyzers on two program sets:
//!
//! * **Logic programs** (Tables 1, 2 and 4): the classic abstract-
//!   interpretation benchmarks used by GAIA/Van Hentenryck et al. —
//!   `cs`, `disj`, `gabriel`, `kalah`, `peep`, `pg`, `plan`, `press1`,
//!   `press2`, `qsort`, `queens`, `read`.
//! * **Functional programs** (Table 3): the EQUALS benchmarks, several of
//!   them translations of the Hartel–Langendoen lazy-language suite —
//!   `eu`, `event`, `fft`, `listcompr`, `mergesort`, `nq`, `odprove`,
//!   `pcprove`, `quicksort`, `strassen`.
//!
//! The original sources are not distributable, so this crate ships
//! **reconstructions**: programs with the same names, the same algorithmic
//! content (quicksort, the PRESS equation-solver kernel, a kalah
//! alpha-beta player, a Prolog reader in Prolog, an FFT, a sequent
//! prover, …) and broadly similar sizes, written against this repository's
//! Prolog subset and mini functional language. See `DESIGN.md` for the
//! substitution rationale. Each logic benchmark carries the entry point
//! used for goal-directed analysis.
//!
//! # Example
//!
//! ```
//! use tablog_suite::{logic_benchmarks, fun_benchmarks};
//! assert_eq!(logic_benchmarks().len(), 12);
//! assert_eq!(fun_benchmarks().len(), 10);
//! let qsort = tablog_suite::logic_benchmark("qsort").unwrap();
//! assert!(qsort.source.contains("partition"));
//! ```

/// A logic-program benchmark (Tables 1, 2 and 4).
#[derive(Clone, Copy, Debug)]
pub struct LogicBenchmark {
    /// Benchmark name as the paper spells it (lowercased).
    pub name: &'static str,
    /// Prolog source text.
    pub source: &'static str,
    /// Entry point in `pred(g, f, …)` notation for goal-directed analysis.
    pub entry: &'static str,
    /// `true` if the paper's Table 4 (depth-k analysis) includes it.
    pub in_table4: bool,
}

impl LogicBenchmark {
    /// Number of source lines (the paper's "Program size" column).
    pub fn lines(&self) -> usize {
        self.source.lines().count()
    }
}

/// A functional-program benchmark (Table 3).
#[derive(Clone, Copy, Debug)]
pub struct FunBenchmark {
    /// Benchmark name as the paper spells it.
    pub name: &'static str,
    /// Mini-language source text.
    pub source: &'static str,
}

impl FunBenchmark {
    /// Number of source lines.
    pub fn lines(&self) -> usize {
        self.source.lines().count()
    }
}

macro_rules! logic {
    ($name:literal, $file:literal, $entry:literal, $t4:expr) => {
        LogicBenchmark {
            name: $name,
            source: include_str!(concat!("../programs/logic/", $file)),
            entry: $entry,
            in_table4: $t4,
        }
    };
}

macro_rules! fun {
    ($name:literal, $file:literal) => {
        FunBenchmark {
            name: $name,
            source: include_str!(concat!("../programs/fun/", $file)),
        }
    };
}

/// The twelve logic-program benchmarks of Table 1, in the paper's order.
pub fn logic_benchmarks() -> Vec<LogicBenchmark> {
    vec![
        logic!("cs", "cs.pl", "solve_instance(g, f)", true),
        logic!("disj", "disj.pl", "schedule_test(g, f)", true),
        logic!("gabriel", "gabriel.pl", "browse_test(f)", false),
        logic!("kalah", "kalah.pl", "play_test(f)", true),
        logic!("peep", "peep.pl", "peep_test(g, f)", true),
        logic!("pg", "pg.pl", "pg_test(f)", true),
        logic!("plan", "plan.pl", "plan_test(g, f)", true),
        logic!("press1", "press1.pl", "solve_test(g, f)", false),
        logic!("press2", "press2.pl", "solve_test(g, f)", false),
        logic!("qsort", "qsort.pl", "qsort(g, f)", true),
        logic!("queens", "queens.pl", "queens(g, f)", true),
        logic!("read", "read.pl", "read_test(g, f)", true),
    ]
}

/// The nine benchmarks the paper's Table 4 (depth-k analysis) uses.
pub fn depthk_benchmarks() -> Vec<LogicBenchmark> {
    logic_benchmarks()
        .into_iter()
        .filter(|b| b.in_table4)
        .collect()
}

/// The ten functional-program benchmarks of Table 3, in the paper's order.
pub fn fun_benchmarks() -> Vec<FunBenchmark> {
    vec![
        fun!("eu", "eu.eq"),
        fun!("event", "event.eq"),
        fun!("fft", "fft.eq"),
        fun!("listcompr", "listcompr.eq"),
        fun!("mergesort", "mergesort.eq"),
        fun!("nq", "nq.eq"),
        fun!("odprove", "odprove.eq"),
        fun!("pcprove", "pcprove.eq"),
        fun!("quicksort", "quicksort.eq"),
        fun!("strassen", "strassen.eq"),
    ]
}

/// Looks up a logic benchmark by name.
pub fn logic_benchmark(name: &str) -> Option<LogicBenchmark> {
    logic_benchmarks().into_iter().find(|b| b.name == name)
}

/// Looks up a functional benchmark by name.
pub fn fun_benchmark(name: &str) -> Option<FunBenchmark> {
    fun_benchmarks().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_logic_benchmarks_parse() {
        for b in logic_benchmarks() {
            let p = tablog_syntax::parse_program(b.source)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(!p.is_empty(), "{} has no clauses", b.name);
        }
    }

    #[test]
    fn all_fun_benchmarks_parse() {
        for b in fun_benchmarks() {
            let p = tablog_funlang::parse_fun_program(b.source)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(!p.is_empty(), "{} has no equations", b.name);
        }
    }

    #[test]
    fn entry_points_name_defined_predicates() {
        for b in logic_benchmarks() {
            let p = tablog_syntax::parse_program(b.source).unwrap();
            let mut bi = tablog_term::Bindings::new();
            let (t, _) = tablog_syntax::parse_term(b.entry, &mut bi).unwrap();
            let f = t.functor().unwrap();
            let found = p.clauses.iter().any(|c| c.head.functor() == Some(f));
            assert!(found, "{}: entry {} not defined", b.name, b.entry);
        }
    }

    #[test]
    fn fun_benchmarks_have_main() {
        for b in fun_benchmarks() {
            let p = tablog_funlang::parse_fun_program(b.source).unwrap();
            assert_eq!(p.arity("main"), Some(0), "{} lacks main", b.name);
        }
    }

    #[test]
    fn benchmark_sets_have_papers_sizes() {
        assert_eq!(logic_benchmarks().len(), 12);
        assert_eq!(fun_benchmarks().len(), 10);
        assert_eq!(depthk_benchmarks().len(), 9);
    }

    #[test]
    fn lookup_by_name() {
        assert!(logic_benchmark("read").is_some());
        assert!(logic_benchmark("nope").is_none());
        assert!(fun_benchmark("fft").is_some());
    }

    #[test]
    fn several_fun_benchmarks_run_under_the_interpreter() {
        // The heavier ones (event, pcprove) are exercised by examples;
        // here the quick ones prove the reconstructions actually compute.
        for name in ["mergesort", "quicksort", "nq", "eu", "strassen", "odprove"] {
            let b = fun_benchmark(name).unwrap();
            let p = tablog_funlang::parse_fun_program(b.source).unwrap();
            let out = tablog_funlang::eval_main(&p).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!out.to_string().is_empty(), "{name}");
        }
    }
}
