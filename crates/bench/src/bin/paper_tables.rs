//! Regenerates every table of the paper in the same row/column layout.
//!
//! Usage: `paper_tables [--table N] [--profile] [--json] [--check FILE]`
//! (default: all four tables). With `--profile`, each row is followed by
//! the engine's per-evaluation counters (subgoals, answers, duplicates,
//! resolutions, and the hook counts where the analysis uses truncation).
//! With `--json`, the whole suite is emitted as one machine-readable JSON
//! document instead of text. With `--check FILE`, the run is compared
//! against a committed baseline JSON (same format): table-space
//! regressions beyond 20% fail the process, wall-clock regressions only
//! warn on stderr.

use std::process::ExitCode;
use tablog_bench::{
    check_against_baseline, ms, suite_json, table1_rows_with, table2_rows, table3_rows_with,
    table4_rows_with, Row, TABLE4_K,
};

fn print_row_table(title: &str, rows: &[Row]) {
    println!("\n{title}");
    println!(
        "{:<12} {:>6} {:>10} {:>10} {:>10} {:>10} {:>9} {:>12}",
        "Program", "lines", "Preproc", "Analysis", "Collect", "Total", "Comp.%", "Table(bytes)"
    );
    for r in rows {
        println!(
            "{:<12} {:>6} {:>8}ms {:>8}ms {:>8}ms {:>8}ms {:>8.1} {:>12}",
            r.program,
            r.lines,
            ms(r.preprocess),
            ms(r.analysis),
            ms(r.collection),
            ms(r.total()),
            r.compile_increase_pct(),
            r.table_bytes
        );
        if let Some(m) = &r.metrics {
            let t = m.totals();
            let mut line = format!(
                "{:<12}   subgoals={} answers={} dups={} resolutions={}",
                "", t.subgoals, t.answers, t.duplicate_answers, t.clause_resolutions
            );
            if t.calls_abstracted + t.answers_widened > 0 {
                line.push_str(&format!(
                    " abstracted={} widened={}",
                    t.calls_abstracted, t.answers_widened
                ));
            }
            println!("{line}");
        }
    }
}

/// The fractional regression tolerance the baseline check allows.
const TOLERANCE: f64 = 0.20;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let which: Option<u32> = args
        .iter()
        .position(|a| a == "--table")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    let want = |n| which.is_none() || which == Some(n);
    let profile = args.iter().any(|a| a == "--profile");
    let json = args.iter().any(|a| a == "--json");
    let check: Option<&String> = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1));

    if json || check.is_some() {
        let doc = suite_json(
            &table1_rows_with(false),
            &table2_rows(),
            &table3_rows_with(false),
            &table4_rows_with(false),
        );
        if json {
            println!("{doc}");
        }
        if let Some(path) = check {
            let baseline = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("paper_tables: cannot read baseline {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let cur = tablog_trace::json::parse(&doc).expect("suite_json is valid JSON");
            let base = match tablog_trace::json::parse(&baseline) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("paper_tables: bad baseline JSON in {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let (failures, warnings) = check_against_baseline(&cur, &base, TOLERANCE);
            for w in &warnings {
                eprintln!("warning: {w}");
            }
            for f in &failures {
                eprintln!("FAIL: {f}");
            }
            if !failures.is_empty() {
                return ExitCode::FAILURE;
            }
            eprintln!("baseline check passed ({} warnings)", warnings.len());
        }
        return ExitCode::SUCCESS;
    }

    if want(1) {
        print_row_table(
            "Table 1: Performance of Prop-based groundness analysis (tabled engine)",
            &table1_rows_with(profile),
        );
    }
    if want(2) {
        let rows = table2_rows();
        println!(
            "\nTable 2: Total analysis time, tabled engine vs. direct analyzer (GAIA stand-in)"
        );
        println!(
            "{:<12} {:>12} {:>12} {:>8}",
            "Program", "tabled", "direct", "ratio"
        );
        for r in &rows {
            println!(
                "{:<12} {:>10}ms {:>10}ms {:>8.2}",
                r.program,
                ms(r.tabled),
                ms(r.direct),
                r.tabled.as_secs_f64() / r.direct.as_secs_f64().max(1e-9)
            );
        }
    }
    if want(3) {
        print_row_table(
            "Table 3: Performance of strictness analysis",
            &table3_rows_with(profile),
        );
    }
    if want(4) {
        print_row_table(
            &format!("Table 4: Groundness analysis with term-depth abstraction (k = {TABLE4_K})"),
            &table4_rows_with(profile),
        );
    }
    ExitCode::SUCCESS
}
