//! Regenerates every table of the paper in the same row/column layout.
//!
//! Usage: `paper_tables [--table N] [--profile]` (default: all four
//! tables). With `--profile`, each row is followed by the engine's
//! per-evaluation counters (subgoals, answers, duplicates, resolutions,
//! and the hook counts where the analysis uses truncation).

use tablog_bench::{
    ms, table1_rows_with, table2_rows, table3_rows_with, table4_rows_with, Row, TABLE4_K,
};

fn print_row_table(title: &str, rows: &[Row]) {
    println!("\n{title}");
    println!(
        "{:<12} {:>6} {:>10} {:>10} {:>10} {:>10} {:>9} {:>12}",
        "Program", "lines", "Preproc", "Analysis", "Collect", "Total", "Comp.%", "Table(bytes)"
    );
    for r in rows {
        println!(
            "{:<12} {:>6} {:>8}ms {:>8}ms {:>8}ms {:>8}ms {:>8.1} {:>12}",
            r.program,
            r.lines,
            ms(r.preprocess),
            ms(r.analysis),
            ms(r.collection),
            ms(r.total()),
            r.compile_increase_pct(),
            r.table_bytes
        );
        if let Some(m) = &r.metrics {
            let t = m.totals();
            let mut line = format!(
                "{:<12}   subgoals={} answers={} dups={} resolutions={}",
                "", t.subgoals, t.answers, t.duplicate_answers, t.clause_resolutions
            );
            if t.calls_abstracted + t.answers_widened > 0 {
                line.push_str(&format!(
                    " abstracted={} widened={}",
                    t.calls_abstracted, t.answers_widened
                ));
            }
            println!("{line}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which: Option<u32> = args
        .iter()
        .position(|a| a == "--table")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    let want = |n| which.is_none() || which == Some(n);
    let profile = args.iter().any(|a| a == "--profile");

    if want(1) {
        print_row_table(
            "Table 1: Performance of Prop-based groundness analysis (tabled engine)",
            &table1_rows_with(profile),
        );
    }
    if want(2) {
        let rows = table2_rows();
        println!(
            "\nTable 2: Total analysis time, tabled engine vs. direct analyzer (GAIA stand-in)"
        );
        println!(
            "{:<12} {:>12} {:>12} {:>8}",
            "Program", "tabled", "direct", "ratio"
        );
        for r in &rows {
            println!(
                "{:<12} {:>10}ms {:>10}ms {:>8.2}",
                r.program,
                ms(r.tabled),
                ms(r.direct),
                r.tabled.as_secs_f64() / r.direct.as_secs_f64().max(1e-9)
            );
        }
    }
    if want(3) {
        print_row_table(
            "Table 3: Performance of strictness analysis",
            &table3_rows_with(profile),
        );
    }
    if want(4) {
        print_row_table(
            &format!("Table 4: Groundness analysis with term-depth abstraction (k = {TABLE4_K})"),
            &table4_rows_with(profile),
        );
    }
}
