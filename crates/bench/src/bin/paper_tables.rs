//! Regenerates every table of the paper in the same row/column layout.
//!
//! Usage: `paper_tables [--table N] [--profile] [--json] [--check FILE]
//! [--jobs N] [--schedulers] [--scheduler parallel] [--threads N]
//! [--domain bdd]`
//! (default: all four tables). With
//! `--profile`, each row is followed by the engine's per-evaluation
//! counters (subgoals, answers, duplicates, resolutions, and the hook
//! counts where the analysis uses truncation). With `--json`, the whole
//! suite is emitted as one machine-readable JSON document instead of text.
//! With `--check FILE`, the run is compared against a committed baseline
//! JSON (same format): table-space regressions beyond 20% fail the
//! process, wall-clock regressions only warn on stderr.
//!
//! With `--jobs N` (N > 1), the suite is first run sequentially and then
//! on N worker threads — one isolated engine session per benchmark — and
//! the two runs' deterministic fields (programs, line counts, table bytes)
//! are compared. Any divergence fails the process; the speedup is reported
//! and, under `--json`, recorded in a `"parallel"` object. `--schedulers`
//! (implied by `--json` with `--jobs`) additionally re-runs the groundness
//! workload under each worklist scheduling strategy and reports the engine
//! counters side by side.
//!
//! With `--scheduler parallel` (worker count from `--threads N`, default
//! 4), each groundness query is additionally evaluated under the engine's
//! intra-query parallel scheduler and compared against the sequential
//! fixpoint: any answer-set divergence fails the process, and the
//! per-query `{threads, sequential_us, parallel_us, speedup}` rows are
//! recorded under `"slg_parallel"` in the `--json` document. `--threads N`
//! alone implies `--scheduler parallel`.
//!
//! With `--domain bdd`, the Table 1/2 groundness workloads are re-run under
//! both Prop-domain backends — enumerative truth tables and hash-consed
//! BDDs, on the tabled engine and the direct analyzer alike — and each
//! benchmark's answer sets are cross-checked between backends: any
//! divergence fails the process. The per-query `{domain, time_us,
//! direct_us, table_bytes, bdd_nodes, identical}` rows are printed as a
//! comparison table and recorded under `"pos_domain"` in the `--json`
//! document. `--domain table` is accepted and a no-op (the default
//! backend already produced every other table).

use std::process::ExitCode;
use tablog_bench::{
    check_against_baseline, host_meta, measure_parallel, ms, parallel_slg_rows, pos_domain_rows,
    pr9_json, run_suite, scheduler_rows, DomainRow, ParSlgRow, Row, SuiteTables, TABLE4_K,
};

// With --features track-alloc the binary runs under the tracking global
// allocator, and sequential rows gain peak_heap_bytes columns (see
// tablog_alloc and Row::heap).
#[cfg(feature = "track-alloc")]
#[global_allocator]
static ALLOC: tablog_alloc::TrackingAlloc = tablog_alloc::TrackingAlloc;

fn print_row_table(title: &str, rows: &[Row]) {
    println!("\n{title}");
    println!(
        "{:<12} {:>6} {:>10} {:>10} {:>10} {:>10} {:>9} {:>12}",
        "Program", "lines", "Preproc", "Analysis", "Collect", "Total", "Comp.%", "Table(bytes)"
    );
    for r in rows {
        println!(
            "{:<12} {:>6} {:>8}ms {:>8}ms {:>8}ms {:>8}ms {:>8.1} {:>12}",
            r.program,
            r.lines,
            ms(r.preprocess),
            ms(r.analysis),
            ms(r.collection),
            ms(r.total()),
            r.compile_increase_pct(),
            r.table_bytes
        );
        if let Some(m) = &r.metrics {
            let t = m.totals();
            let mut line = format!(
                "{:<12}   subgoals={} answers={} dups={} resolutions={}",
                "", t.subgoals, t.answers, t.duplicate_answers, t.clause_resolutions
            );
            if t.calls_abstracted + t.answers_widened > 0 {
                line.push_str(&format!(
                    " abstracted={} widened={}",
                    t.calls_abstracted, t.answers_widened
                ));
            }
            println!("{line}");
        }
    }
}

/// The fractional regression tolerance the baseline check allows.
const TOLERANCE: f64 = 0.20;

/// Worker count `--scheduler parallel` uses when `--threads` is absent.
const DEFAULT_THREADS: usize = 4;

/// Runs the intra-query parallel-vs-sequential comparison and prints its
/// verdict. `Err` means at least one query's answer sets diverged — an
/// engine bug the caller must turn into a nonzero exit.
fn run_slg_comparison(threads: usize) -> Result<Vec<ParSlgRow>, String> {
    let rows = parallel_slg_rows(threads);
    if let Some(bad) = rows.iter().find(|r| !r.identical) {
        return Err(format!(
            "parallel SLG answer sets diverged from sequential on {} (--threads {})",
            bad.program, bad.threads
        ));
    }
    eprintln!(
        "parallel SLG check passed: {} queries identical at {threads} worker(s)",
        rows.len()
    );
    Ok(rows)
}

/// Runs the two-backend Prop-domain comparison and prints its verdict.
/// `Err` means a benchmark's groundness results differed between the table
/// and BDD backends — a domain-layer bug the caller must turn into a
/// nonzero exit.
fn run_domain_comparison() -> Result<Vec<DomainRow>, String> {
    let rows = pos_domain_rows();
    if let Some(bad) = rows.iter().find(|r| !r.identical) {
        return Err(format!(
            "Prop-domain groundness results diverged from the table backend on {}",
            bad.program
        ));
    }
    eprintln!(
        "domain check passed: {} rows identical across the table and bdd backends",
        rows.len()
    );
    Ok(rows)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let which: Option<u32> = args
        .iter()
        .position(|a| a == "--table")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    let want = |n| which.is_none() || which == Some(n);
    let profile = args.iter().any(|a| a == "--profile");
    let json = args.iter().any(|a| a == "--json");
    let want_sched = args.iter().any(|a| a == "--schedulers");
    let jobs: usize = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1);
    let check: Option<&String> = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1));
    let threads: Option<usize> = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0);
    let scheduler: Option<&String> = args
        .iter()
        .position(|a| a == "--scheduler")
        .and_then(|i| args.get(i + 1));
    let slg_threads: Option<usize> = match scheduler.map(String::as_str) {
        Some("parallel") => Some(threads.unwrap_or(DEFAULT_THREADS)),
        Some(other) => {
            eprintln!(
                "paper_tables: --scheduler only supports 'parallel' (got {other}); \
                 the sequential strategies are already covered by --schedulers"
            );
            return ExitCode::FAILURE;
        }
        None => threads,
    };
    let domain: Option<&String> = args
        .iter()
        .position(|a| a == "--domain")
        .and_then(|i| args.get(i + 1));
    let want_domains = match domain.map(String::as_str) {
        Some("bdd") => true,
        Some("table") | None => false,
        Some(other) => {
            eprintln!("paper_tables: unknown --domain {other} (expected table or bdd)");
            return ExitCode::FAILURE;
        }
    };

    if json || check.is_some() {
        // With --jobs > 1, measure_parallel runs the suite both ways and
        // verifies the deterministic fields agree; the parallel tables are
        // what the JSON document and baseline check then see.
        let (parallel, tables): (Option<tablog_bench::ParallelMeasurement>, SuiteTables) =
            if jobs > 1 {
                let (m, t) = measure_parallel(jobs);
                (Some(m), t)
            } else {
                (None, run_suite(false, 1))
            };
        if let Some(p) = &parallel {
            if !p.identical {
                eprintln!(
                    "FAIL: parallel suite run (--jobs {}) diverged from the sequential run",
                    p.jobs
                );
                return ExitCode::FAILURE;
            }
            eprintln!(
                "parallel check passed: --jobs {} identical to sequential, \
                 {:.2}x speedup ({}ms -> {}ms, {} cpu(s) available)",
                p.jobs,
                p.speedup(),
                ms(p.sequential),
                ms(p.parallel),
                p.cpus,
            );
        }
        let sched = if want_sched || (json && jobs > 1) {
            scheduler_rows()
        } else {
            Vec::new()
        };
        let slg = match slg_threads.map(run_slg_comparison) {
            Some(Ok(rows)) => rows,
            Some(Err(e)) => {
                eprintln!("FAIL: {e}");
                return ExitCode::FAILURE;
            }
            None => Vec::new(),
        };
        let domains = if want_domains {
            match run_domain_comparison() {
                Ok(rows) => rows,
                Err(e) => {
                    eprintln!("FAIL: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            Vec::new()
        };
        let doc = pr9_json(
            &tables,
            &sched,
            parallel.as_ref(),
            &host_meta(),
            &slg,
            &domains,
        );
        if json {
            println!("{doc}");
        }
        if let Some(path) = check {
            let baseline = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("paper_tables: cannot read baseline {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let cur = tablog_trace::json::parse(&doc).expect("pr5_json is valid JSON");
            let base = match tablog_trace::json::parse(&baseline) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("paper_tables: bad baseline JSON in {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let (failures, warnings) = check_against_baseline(&cur, &base, TOLERANCE);
            for w in &warnings {
                eprintln!("warning: {w}");
            }
            for f in &failures {
                eprintln!("FAIL: {f}");
            }
            if !failures.is_empty() {
                return ExitCode::FAILURE;
            }
            eprintln!("baseline check passed ({} warnings)", warnings.len());
        }
        return ExitCode::SUCCESS;
    }

    if want(1) {
        print_row_table(
            "Table 1: Performance of Prop-based groundness analysis (tabled engine)",
            &tablog_bench::table1_rows_jobs(profile, jobs),
        );
    }
    if want(2) {
        let rows = tablog_bench::table2_rows_jobs(jobs);
        println!(
            "\nTable 2: Total analysis time, tabled engine vs. direct analyzer (GAIA stand-in)"
        );
        println!(
            "{:<12} {:>12} {:>12} {:>8}",
            "Program", "tabled", "direct", "ratio"
        );
        for r in &rows {
            println!(
                "{:<12} {:>10}ms {:>10}ms {:>8.2}",
                r.program,
                ms(r.tabled),
                ms(r.direct),
                r.tabled.as_secs_f64() / r.direct.as_secs_f64().max(1e-9)
            );
        }
    }
    if want(3) {
        print_row_table(
            "Table 3: Performance of strictness analysis",
            &tablog_bench::table3_rows_jobs(profile, jobs),
        );
    }
    if want(4) {
        print_row_table(
            &format!("Table 4: Groundness analysis with term-depth abstraction (k = {TABLE4_K})"),
            &tablog_bench::table4_rows_jobs(profile, jobs),
        );
    }
    if let Some(n) = slg_threads {
        let rows = match run_slg_comparison(n) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("FAIL: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("\nParallel SLG: single-query fixpoint time at {n} worker(s) vs. sequential");
        println!(
            "{:<12} {:>8} {:>12} {:>12} {:>8} {:>10} {:>6} {:>7}",
            "Program", "threads", "sequential", "parallel", "speedup", "imbalance", "msgs", "idle%"
        );
        for r in &rows {
            println!(
                "{:<12} {:>8} {:>10}ms {:>10}ms {:>8.2} {:>10.2} {:>6} {:>7.1}",
                r.program,
                r.threads,
                ms(r.sequential),
                ms(r.parallel),
                r.speedup(),
                r.imbalance,
                r.msgs_sent,
                r.idle_pct
            );
        }
    }
    if want_domains {
        let rows = match run_domain_comparison() {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("FAIL: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "\nProp domain comparison: Table 1/2 groundness under each backend \
             (identical results enforced)"
        );
        println!(
            "{:<20} {:<8} {:>12} {:>12} {:>12} {:>10}",
            "Program", "domain", "tabled", "direct", "Table(bytes)", "BDD nodes"
        );
        for r in &rows {
            println!(
                "{:<20} {:<8} {:>10}ms {:>10}ms {:>12} {:>10}",
                r.program,
                r.domain.name(),
                ms(r.tabled),
                ms(r.direct),
                r.table_bytes,
                r.bdd_nodes
            );
        }
    }
    if want_sched {
        println!("\nScheduler comparison: groundness workload under each worklist strategy");
        println!(
            "{:<12} {:<12} {:>8} {:>8} {:>8} {:>12}",
            "Program", "strategy", "steps", "answers", "dups", "Table(bytes)"
        );
        for r in scheduler_rows() {
            println!(
                "{:<12} {:<12} {:>8} {:>8} {:>8} {:>12}",
                r.program, r.strategy, r.steps, r.answers, r.duplicates, r.table_bytes
            );
        }
    }
    ExitCode::SUCCESS
}
