//! Per-benchmark timing smoke test: runs each analyzer over each suite
//! program and prints wall times, to spot blowups before benchmarking.

use std::time::Instant;
use tablog_core::depthk::DepthKAnalyzer;
use tablog_core::direct::DirectAnalyzer;
use tablog_core::groundness::GroundnessAnalyzer;
use tablog_core::strictness::StrictnessAnalyzer;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    if which == "all" || which == "ground" {
        for b in tablog_suite::logic_benchmarks() {
            let t = Instant::now();
            let r = GroundnessAnalyzer::new().analyze_source(b.source);
            println!(
                "ground  {:10} {:>10.1?} {}",
                b.name,
                t.elapsed(),
                r.as_ref().map(|x| x.stats.answers).unwrap_or(0)
            );
        }
    }
    if which == "all" || which == "direct" {
        for b in tablog_suite::logic_benchmarks() {
            let t = Instant::now();
            let r = DirectAnalyzer::new().analyze_source(b.source);
            println!(
                "direct  {:10} {:>10.1?} ok={}",
                b.name,
                t.elapsed(),
                r.is_ok()
            );
        }
    }
    if which == "all" || which == "strict" {
        for b in tablog_suite::fun_benchmarks() {
            let t = Instant::now();
            let r = StrictnessAnalyzer::new().analyze_source(b.source);
            println!(
                "strict  {:10} {:>10.1?} ok={}",
                b.name,
                t.elapsed(),
                r.is_ok()
            );
        }
    }
    if which == "all" || which == "depthk" {
        let k: usize = std::env::args()
            .nth(2)
            .and_then(|s| s.parse().ok())
            .unwrap_or(2);
        for b in tablog_suite::depthk_benchmarks() {
            let t = Instant::now();
            let r = DepthKAnalyzer::new(k).analyze_source(b.source);
            println!(
                "depthk  {:10} {:>10.1?} ok={}",
                b.name,
                t.elapsed(),
                r.is_ok()
            );
        }
    }
}
