//! Table 4: groundness analysis with term-depth abstraction (Section 5)
//! on the nine benchmarks the paper's Table 4 lists, goal-directed, k = 1.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tablog_bench::TABLE4_K;
use tablog_core::depthk::DepthKAnalyzer;
use tablog_core::groundness::EntryPoint;
use tablog_syntax::parse_program;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_depthk");
    g.sample_size(10);
    for b in tablog_suite::depthk_benchmarks() {
        let program = parse_program(b.source).expect("suite parses");
        let entry = EntryPoint::parse(b.entry).expect("entry parses");
        g.bench_function(b.name, |bench| {
            bench.iter(|| {
                let report = DepthKAnalyzer::new(TABLE4_K)
                    .analyze_with_entries(black_box(&program), std::slice::from_ref(&entry))
                    .expect("analyzes");
                black_box(report.table_bytes())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
