//! Table 2: the declarative analysis on the general-purpose tabled engine
//! vs. the hand-coded special-purpose analyzer (the GAIA stand-in), same
//! analysis, same entry points.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tablog_core::direct::DirectAnalyzer;
use tablog_core::groundness::{EntryPoint, GroundnessAnalyzer};
use tablog_syntax::parse_program;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_vs_direct");
    g.sample_size(10);
    for b in tablog_suite::logic_benchmarks() {
        let program = parse_program(b.source).expect("suite parses");
        let entry = EntryPoint::parse(b.entry).expect("entry parses");
        g.bench_function(format!("tabled/{}", b.name), |bench| {
            bench.iter(|| {
                black_box(
                    GroundnessAnalyzer::new()
                        .analyze_with_entries(black_box(&program), std::slice::from_ref(&entry))
                        .expect("analyzes")
                        .stats
                        .answers,
                )
            })
        });
        g.bench_function(format!("direct/{}", b.name), |bench| {
            bench.iter(|| {
                black_box(
                    DirectAnalyzer::new()
                        .analyze_with_entries(black_box(&program), std::slice::from_ref(&entry))
                        .expect("analyzes")
                        .pairs,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
