//! Table 3: demand-propagation strictness analysis on the ten functional
//! benchmarks, end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tablog_core::strictness::StrictnessAnalyzer;
use tablog_funlang::parse_fun_program;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_strictness");
    g.sample_size(10);
    for b in tablog_suite::fun_benchmarks() {
        let program = parse_fun_program(b.source).expect("suite parses");
        g.bench_function(b.name, |bench| {
            bench.iter(|| {
                let report = StrictnessAnalyzer::new()
                    .analyze_program(black_box(&program))
                    .expect("analyzes");
                black_box(report.table_bytes())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
