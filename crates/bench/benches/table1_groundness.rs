//! Table 1: Prop-based groundness analysis on the twelve logic-program
//! benchmarks, end to end (preprocess + analysis + collection), exactly
//! the workload `paper_tables --table 1` reports.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tablog_core::groundness::{EntryPoint, GroundnessAnalyzer};
use tablog_syntax::parse_program;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_groundness");
    g.sample_size(10);
    for b in tablog_suite::logic_benchmarks() {
        let program = parse_program(b.source).expect("suite parses");
        let entry = EntryPoint::parse(b.entry).expect("entry parses");
        g.bench_function(b.name, |bench| {
            bench.iter(|| {
                let report = GroundnessAnalyzer::new()
                    .analyze_with_entries(black_box(&program), std::slice::from_ref(&entry))
                    .expect("analyzes");
                black_box(report.table_bytes())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
