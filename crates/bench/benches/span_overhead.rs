//! Measures the cost of span instrumentation on a table-heavy workload:
//! left-recursive transitive closure over a 64-node edge chain (~2k
//! answers, thousands of dispatch/resolution/return events). Four
//! configurations:
//!
//! * `spans_off` — no trace sink at all: the shipping default. Every span
//!   site is gated on `Machine.spans.is_some()`, and counter sampling on
//!   `Machine.counters_on`, so this path takes no timestamps and mints no
//!   ids. The combined overhead budget for spans *and* counters both off
//!   (relative to a build without the instrumentation) is <3%; this config
//!   is the evidence — the only residue is a handful of `Option`/bool
//!   branches per task.
//! * `noop_sink` — a [`NoopSink`] attached but `record_spans` off: the
//!   cost of event tracing alone, for reference.
//! * `noop_sink_spans` — [`NoopSink`] plus `record_spans`: the full span
//!   path (timestamp + id per enter/exit) minus serialization. The PR 5
//!   budget is <3% over `noop_sink`.
//! * `noop_sink_spans_counters` — spans plus `record_counters`: adds one
//!   [`tablog_engine::CounterSample`] (timestamp + six counter reads) per
//!   worklist task, the full PR 6 timeline-recording cost minus retention.
//! * `budgets_health` — generous resource budgets (never tripping) plus
//!   per-step health snapshots into a [`NoopSink`]: the PR 7 budgeted-run
//!   cost — per task, two limit comparisons plus one clock read against
//!   the precomputed deadline cutoff, and snapshot assembly at the
//!   configured cadence. Note `spans_off` above also covers budgets-off:
//!   the unset `Option` limits share its dispatch-boundary branch budget.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use tablog_engine::{Engine, EngineOptions, HealthConfig, LoadMode, NoopSink};

fn chain_program(n: usize) -> String {
    let mut src = String::from(
        ":- table path/2.\n\
         path(X, Y) :- edge(X, Y).\n\
         path(X, Y) :- path(X, Z), edge(Z, Y).\n",
    );
    for i in 0..n {
        src.push_str(&format!("edge(n{}, n{}).\n", i, i + 1));
    }
    src
}

fn engine_with(src: &str, opts: EngineOptions) -> Engine {
    Engine::from_source_with(src, LoadMode::Dynamic, opts).expect("chain program loads")
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("span_overhead");
    g.sample_size(30);
    let src = chain_program(64);

    let plain = engine_with(&src, EngineOptions::default());
    g.bench_function("spans_off", |b| {
        b.iter(|| {
            let sols = plain.solve(black_box("path(X, Y)")).expect("solves");
            black_box(sols.len())
        })
    });

    let traced_opts = EngineOptions {
        trace: Some(Arc::new(NoopSink)),
        ..EngineOptions::default()
    };
    let traced = engine_with(&src, traced_opts);
    g.bench_function("noop_sink", |b| {
        b.iter(|| {
            let sols = traced.solve(black_box("path(X, Y)")).expect("solves");
            black_box(sols.len())
        })
    });

    let span_opts = EngineOptions {
        trace: Some(Arc::new(NoopSink)),
        record_spans: true,
        ..EngineOptions::default()
    };
    let spanned = engine_with(&src, span_opts);
    g.bench_function("noop_sink_spans", |b| {
        b.iter(|| {
            let sols = spanned.solve(black_box("path(X, Y)")).expect("solves");
            black_box(sols.len())
        })
    });

    let counter_opts = EngineOptions {
        trace: Some(Arc::new(NoopSink)),
        record_spans: true,
        record_counters: true,
        ..EngineOptions::default()
    };
    let counted = engine_with(&src, counter_opts);
    g.bench_function("noop_sink_spans_counters", |b| {
        b.iter(|| {
            let sols = counted.solve(black_box("path(X, Y)")).expect("solves");
            black_box(sols.len())
        })
    });

    let budget_opts = EngineOptions {
        trace: Some(Arc::new(NoopSink)),
        max_steps: Some(usize::MAX),
        deadline: Some(std::time::Duration::from_secs(86_400)),
        max_table_bytes: Some(usize::MAX),
        health: Some(HealthConfig::every_steps(64)),
        ..EngineOptions::default()
    };
    let budgeted = engine_with(&src, budget_opts);
    g.bench_function("budgets_health", |b| {
        b.iter(|| {
            let sols = budgeted.solve(black_box("path(X, Y)")).expect("solves");
            assert!(!sols.is_truncated(), "generous budgets must not trip");
            black_box(sols.len())
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
