//! Microbenchmarks for the table primitives the engine leans on:
//! canonicalization, answer insertion with duplicate detection, and call
//! lookup. Each operation is measured twice — once over the hash-consed
//! arena representation (`CanonicalTerm` = interned id, O(1) hash/eq) and
//! once over the seed representation it replaced (materialized `Vec<Term>`
//! tuples with structural hash/eq in a `Vec` + `HashSet` double store).
//! The `*_interned` variants are the engine's hot path; the `*_naive`
//! variants exist only as the comparison baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashSet;
use std::hint::black_box;
use tablog_term::{atom, canonical_key, int, structure, var, CanonicalTerm, Term, TermId, Var};

fn wrap(mut t: Term, depth: usize) -> Term {
    for _ in 0..depth {
        t = structure("s", vec![t]);
    }
    t
}

/// 256 answer-tuple-shaped terms: deep ground stems that recur across
/// entries (so the arena actually shares), a sprinkle of variables (so
/// canonicalization renames), and ~25% variant duplicates (so insertion
/// exercises the duplicate check, as real answer streams do).
fn workload() -> Vec<Term> {
    let atoms = ["a", "b", "c", "d"];
    let mut out = Vec::with_capacity(256);
    for i in 0..256usize {
        let j = i % 192;
        let stem = wrap(atom(atoms[j % 4]), j % 9);
        out.push(structure(
            "p",
            vec![
                stem.clone(),
                structure("g", vec![int((j % 7) as i64), stem, var(Var(0))]),
                var(Var((j % 3) as u32)),
            ],
        ));
    }
    out
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table_ops");
    g.sample_size(200);
    let terms = workload();

    // Canonicalization alone: the interned path returns a Copy id; the
    // naive path additionally materializes the renamed tuple, which is
    // what the seed's canonicalizer produced (and stored) per call.
    g.bench_function("canonicalize_interned", |b| {
        b.iter(|| {
            let mut h = 0u64;
            for t in &terms {
                h ^= canonical_key(black_box(t)).root_id().index() as u64;
            }
            h
        })
    });
    g.bench_function("canonicalize_naive", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for t in &terms {
                n += canonical_key(black_box(t)).terms().len();
            }
            n
        })
    });

    // Canonicalize + insert with duplicate detection: the operation
    // `Machine::add_answer` performs per derived answer.
    g.bench_function("insert_interned", |b| {
        b.iter(|| {
            let mut order: Vec<CanonicalTerm> = Vec::new();
            let mut seen: HashSet<TermId> = HashSet::new();
            for t in &terms {
                let c = canonical_key(black_box(t));
                if seen.insert(c.root_id()) {
                    order.push(c);
                }
            }
            black_box(order.len())
        })
    });
    g.bench_function("insert_naive", |b| {
        b.iter(|| {
            let mut order: Vec<Vec<Term>> = Vec::new();
            let mut seen: HashSet<Vec<Term>> = HashSet::new();
            for t in &terms {
                let tuple = canonical_key(black_box(t)).terms();
                if !seen.contains(&tuple) {
                    seen.insert(tuple.clone());
                    order.push(tuple);
                }
            }
            black_box(order.len())
        })
    });

    // Call-table lookup: probing a populated table with every key, the
    // operation `find_or_create_subgoal` performs per tabled call.
    let keys: Vec<CanonicalTerm> = terms.iter().map(canonical_key).collect();
    let id_table: HashSet<TermId> = keys.iter().map(|c| c.root_id()).collect();
    let tuple_keys: Vec<Vec<Term>> = keys.iter().map(|c| c.terms()).collect();
    let tuple_table: HashSet<Vec<Term>> = tuple_keys.iter().cloned().collect();
    g.bench_function("lookup_interned", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for c in &keys {
                hits += usize::from(id_table.contains(&black_box(c).root_id()));
            }
            hits
        })
    });
    g.bench_function("lookup_naive", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for t in &tuple_keys {
                hits += usize::from(tuple_table.contains(black_box(t)));
            }
            hits
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
