//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **A** — dynamic (asserted) vs. compiled (first-arg-indexed) clause
//!   loading: the paper's central preprocessing trade-off (Section 4).
//! * **B** — `iff` as a native lazy builtin vs. explicit fact relations
//!   vs. BDD-based boolean operations (Sections 3.1, 5 discussion).
//! * **C** — tabled top-down vs. magic-sets bottom-up evaluation
//!   (Sections 3.1 and 7, the XSB vs. Coral comparison).
//! * **D** — variant tabling vs. forward subsumption through the open
//!   call (Section 6.2).
//! * **E** — depth-first vs. breadth-first scheduling (Section 6.2).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tablog_bdd::BddManager;
use tablog_core::groundness::{transform_program, EntryPoint, GroundnessAnalyzer, IffMode};
use tablog_core::prop::PropTable;
use tablog_engine::{Engine, EngineOptions, LoadMode, Scheduling};
use tablog_magic::{magic_transform, BottomUp, Rule};
use tablog_syntax::{parse_program, parse_term};
use tablog_term::Bindings;

/// A medium-size, representative subset of the suite for the ablations.
const ABLATION_SET: &[&str] = &["qsort", "queens", "plan", "cs", "press1"];

fn analyzer(load: LoadMode, iff: IffMode, opts: EngineOptions) -> GroundnessAnalyzer {
    let mut a = GroundnessAnalyzer::new();
    a.load_mode = load;
    a.iff_mode = iff;
    a.options = opts;
    a
}

fn run_suite(a: &GroundnessAnalyzer) -> usize {
    let mut acc = 0;
    for name in ABLATION_SET {
        let b = tablog_suite::logic_benchmark(name).expect("benchmark exists");
        let program = parse_program(b.source).expect("parses");
        let entry = EntryPoint::parse(b.entry).expect("entry parses");
        let r = a
            .analyze_with_entries(&program, std::slice::from_ref(&entry))
            .expect("analyzes");
        acc += r.stats.answers;
    }
    acc
}

fn ablation_dynamic_vs_compiled(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_dynamic_vs_compiled");
    g.sample_size(10);
    g.bench_function("dynamic", |b| {
        let a = analyzer(
            LoadMode::Dynamic,
            IffMode::Builtin,
            EngineOptions::default(),
        );
        b.iter(|| black_box(run_suite(&a)))
    });
    g.bench_function("compiled", |b| {
        let a = analyzer(
            LoadMode::Compiled,
            IffMode::Builtin,
            EngineOptions::default(),
        );
        b.iter(|| black_box(run_suite(&a)))
    });
    g.finish();
}

fn ablation_iff_repr(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_iff_repr");
    g.sample_size(10);
    g.bench_function("builtin", |b| {
        let a = analyzer(
            LoadMode::Dynamic,
            IffMode::Builtin,
            EngineOptions::default(),
        );
        b.iter(|| black_box(run_suite(&a)))
    });
    g.bench_function("facts", |b| {
        let a = analyzer(LoadMode::Dynamic, IffMode::Facts, EngineOptions::default());
        b.iter(|| black_box(run_suite(&a)))
    });
    // The BDD side: the same iff-constraint workload as raw boolean ops,
    // truth tables vs. BDDs (the representation contrast of Section 4).
    g.bench_function("prop_table_ops", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for n in 2..=10usize {
                let t = PropTable::top(n)
                    .constrain_iff(0, &[1, n - 1])
                    .constrain_iff(1, &[2 % n]);
                acc += t.or(&PropTable::top(n).constrain_iff(n - 1, &[0])).count();
            }
            black_box(acc)
        })
    });
    g.bench_function("bdd_ops", |b| {
        b.iter(|| {
            let mut acc = 0u128;
            for n in 2..=10u32 {
                let mut m = BddManager::new();
                let x0 = m.var(0);
                let ys = m.var_conj(&[1, n - 1]);
                let f = m.iff(x0, ys);
                let x1 = m.var(1);
                let y2 = m.var(2 % n);
                let g2 = m.iff(x1, y2);
                let fg = m.and(f, g2);
                let xl = m.var(n - 1);
                let h = m.iff(xl, x0);
                let out = m.or(fg, h);
                acc += m.sat_count(out, n);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn ablation_tabled_vs_magic(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_tabled_vs_magic");
    g.sample_size(10);
    g.bench_function("tabled_top_down", |b| {
        let a = analyzer(
            LoadMode::Dynamic,
            IffMode::Builtin,
            EngineOptions::default(),
        );
        b.iter(|| black_box(run_suite(&a)))
    });
    g.bench_function("magic_bottom_up", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for name in ABLATION_SET {
                let bench = tablog_suite::logic_benchmark(name).expect("exists");
                let program = parse_program(bench.source).expect("parses");
                let (rules, _) = transform_program(&program, IffMode::Builtin).expect("transforms");
                let mut eval = BottomUp::new(rules);
                eval.run().expect("evaluates");
                acc += eval.derivations();
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn ablation_subsumption_and_scheduling(c: &mut Criterion) {
    // A transitive-closure workload with many specific calls — the shape
    // where forward subsumption through the open call pays off.
    let n = 60;
    let mut src = String::from(
        ":- table path/2.\npath(X,Y) :- edge(X,Y).\npath(X,Y) :- edge(X,Z), path(Z,Y).\n",
    );
    for i in 0..n {
        src.push_str(&format!("edge(n{}, n{}).\n", i, (i + 1) % n));
    }
    let goal_src: Vec<String> = (0..6).map(|i| format!("path(n{i}, n0)")).collect();
    let goals = goal_src.join(", ");

    let run = |opts: EngineOptions| {
        let program = parse_program(&src).expect("parses");
        let mut db = tablog_engine::Database::new(LoadMode::Dynamic);
        db.load(&program).expect("loads");
        let engine = Engine::new(db, opts);
        let mut b = Bindings::new();
        let (t, _) = parse_term(&goals, &mut b).expect("goal parses");
        let mut gs = Vec::new();
        flatten(&t, &mut gs);
        let eval = engine.evaluate(&gs, &[], &b).expect("evaluates");
        eval.stats().answers
    };

    let mut g = c.benchmark_group("ablation_subsumption");
    g.sample_size(10);
    g.bench_function("variant_tabling", |b| {
        b.iter(|| black_box(run(EngineOptions::default())))
    });
    g.bench_function("forward_subsumption", |b| {
        b.iter(|| {
            let o = EngineOptions {
                forward_subsumption: true,
                ..Default::default()
            };
            black_box(run(o))
        })
    });
    g.finish();

    let mut g = c.benchmark_group("ablation_scheduling");
    g.sample_size(10);
    g.bench_function("depth_first", |b| {
        b.iter(|| black_box(run(EngineOptions::default())))
    });
    g.bench_function("breadth_first", |b| {
        b.iter(|| {
            let o = EngineOptions {
                scheduling: Scheduling::BreadthFirst,
                ..Default::default()
            };
            black_box(run(o))
        })
    });
    g.finish();
}

fn ablation_magic_query(c: &mut Criterion) {
    // Goal-directed single query: tabled engine vs. magic transform, the
    // same-generation style comparison of Section 7.
    let mut src = String::from(
        ":- table sg/2.\nsg(X, X) :- node(X).\nsg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).\n",
    );
    for i in 0..40 {
        src.push_str(&format!("par(a{i}, b{}).\n", i / 2));
        src.push_str(&format!("node(a{i}).\n"));
    }
    for i in 0..20 {
        src.push_str(&format!("node(b{i}).\n"));
        src.push_str(&format!("par(b{i}, c{}).\n", i / 2));
    }
    for i in 0..10 {
        src.push_str(&format!("node(c{i}).\n"));
    }

    let mut g = c.benchmark_group("ablation_magic_query");
    g.sample_size(10);
    g.bench_function("tabled", |b| {
        let engine = Engine::from_source(&src).expect("loads");
        b.iter(|| black_box(engine.solve("sg(a0, W)").expect("solves").len()))
    });
    g.bench_function("magic", |b| {
        let program = parse_program(&src).expect("parses");
        let rules: Vec<Rule> = program
            .clauses
            .iter()
            .map(|c| Rule::new(c.head.clone(), c.body.clone()))
            .collect();
        b.iter(|| {
            let mut bi = Bindings::new();
            let (q, _) = parse_term("sg(a0, W)", &mut bi).expect("parses");
            let m = magic_transform(&rules, &q, &bi);
            let mut eval = BottomUp::new(m.rules.clone());
            eval.run().expect("evaluates");
            black_box(m.answers(&eval, &q, &bi).len())
        })
    });
    g.finish();
}

fn flatten(t: &tablog_term::Term, out: &mut Vec<tablog_term::Term>) {
    if let tablog_term::Term::Struct(s, args) = t {
        if args.len() == 2 && tablog_term::sym_name(*s) == "," {
            flatten(&args[0], out);
            flatten(&args[1], out);
            return;
        }
    }
    out.push(t.clone());
}

criterion_group!(
    benches,
    ablation_dynamic_vs_compiled,
    ablation_iff_repr,
    ablation_tabled_vs_magic,
    ablation_subsumption_and_scheduling,
    ablation_magic_query
);
criterion_main!(benches);
