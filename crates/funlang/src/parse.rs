//! Parser for the mini functional language.

use crate::ast::{Equation, Expr, FunProgram, Pattern, PrimOp};
use std::collections::BTreeMap;
use std::fmt;

/// A parse failure, with a line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FunParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
}

impl fmt::Display for FunParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for FunParseError {}

#[derive(Clone, PartialEq, Debug)]
enum Tok {
    Ident(String),
    Int(i64),
    Sym(&'static str),
}

const SYMBOLS: &[&str] = &[
    "==", "/=", "<=", ">=", "(", ")", "[", "]", ",", ";", "|", "=", ":", "+", "-", "*", "/", "<",
    ">",
];

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, FunParseError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '-' && i + 1 < bytes.len() && bytes[i + 1] == b'-' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
        } else if c == '{' && i + 1 < bytes.len() && bytes[i + 1] == b'-' {
            let start_line = line;
            while i + 1 < bytes.len() && !(bytes[i] == b'-' && bytes[i + 1] == b'}') {
                if bytes[i] == b'\n' {
                    line += 1;
                }
                i += 1;
            }
            if i + 1 >= bytes.len() {
                return Err(FunParseError {
                    message: "unterminated block comment".into(),
                    line: start_line,
                });
            }
            i += 2;
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric()
                    || bytes[i] == b'_'
                    || bytes[i] == b'\'')
            {
                i += 1;
            }
            out.push((Tok::Ident(src[start..i].to_owned()), line));
        } else if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let n = src[start..i].parse().map_err(|_| FunParseError {
                message: format!("integer overflow: {}", &src[start..i]),
                line,
            })?;
            out.push((Tok::Int(n), line));
        } else {
            let rest = &src[i..];
            let sym = SYMBOLS.iter().find(|s| rest.starts_with(**s));
            match sym {
                Some(s) => {
                    out.push((Tok::Sym(s), line));
                    i += s.len();
                }
                None => {
                    return Err(FunParseError {
                        message: format!("unexpected character {c:?}"),
                        line,
                    })
                }
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    ctors: BTreeMap<String, usize>,
    ctor_datatype: BTreeMap<String, String>,
}

const DEFAULT_CTORS: &[(&str, usize)] = &[
    ("nil", 0),
    ("cons", 2),
    ("true", 0),
    ("false", 0),
    ("pair", 2),
    ("triple", 3),
    ("zero", 0),
    ("succ", 1),
    ("leaf", 0),
    ("node", 3),
];

impl Parser {
    fn err(&self, msg: impl Into<String>) -> FunParseError {
        let line = self
            .toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|(_, l)| *l)
            .unwrap_or(0);
        FunParseError {
            message: msg.into(),
            line,
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if self.peek() == Some(&Tok::Sym(unsafe_static(s))) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), FunParseError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}, found {:?}", self.peek().cloned())))
        }
    }

    fn ident(&mut self) -> Result<String, FunParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn program(&mut self) -> Result<FunProgram, FunParseError> {
        let mut equations = Vec::new();
        while self.peek().is_some() {
            if self.peek() == Some(&Tok::Ident("data".into())) {
                self.data_decl()?;
            } else {
                equations.push(self.equation()?);
            }
        }
        let mut functions = BTreeMap::new();
        for e in &equations {
            let prev = functions.insert(e.fname.clone(), e.lhs.len());
            if let Some(a) = prev {
                if a != e.lhs.len() {
                    return Err(FunParseError {
                        message: format!("function {} defined at two arities", e.fname),
                        line: 0,
                    });
                }
            }
        }
        Ok(FunProgram {
            equations,
            constructors: self.ctors.clone(),
            functions,
            ctor_datatype: self.ctor_datatype.clone(),
        })
    }

    /// `data list = nil | cons(2);` — declares constructors with arities.
    fn data_decl(&mut self) -> Result<(), FunParseError> {
        self.bump(); // data
        let tyname = self.ident()?;
        self.expect_sym("=")?;
        loop {
            let cname = self.ident()?;
            let arity = if self.eat_sym("(") {
                let n = match self.bump() {
                    Some(Tok::Int(n)) if n >= 0 => n as usize,
                    other => return Err(self.err(format!("expected arity, found {other:?}"))),
                };
                self.expect_sym(")")?;
                n
            } else {
                0
            };
            self.ctor_datatype.insert(cname.clone(), tyname.clone());
            self.ctors.insert(cname, arity);
            if !self.eat_sym("|") {
                break;
            }
        }
        self.expect_sym(";")
    }

    fn equation(&mut self) -> Result<Equation, FunParseError> {
        let fname = self.ident()?;
        let mut lhs = Vec::new();
        if self.eat_sym("(") {
            loop {
                lhs.push(self.pattern()?);
                if self.eat_sym(",") {
                    continue;
                }
                self.expect_sym(")")?;
                break;
            }
        }
        self.expect_sym("=")?;
        let rhs = self.expr()?;
        self.expect_sym(";")?;
        Ok(Equation { fname, lhs, rhs })
    }

    fn pattern(&mut self) -> Result<Pattern, FunParseError> {
        let p = self.pattern_atom()?;
        if self.eat_sym(":") {
            let tail = self.pattern()?; // right associative
            Ok(Pattern::Ctor("cons".into(), vec![p, tail]))
        } else {
            Ok(p)
        }
    }

    fn pattern_atom(&mut self) -> Result<Pattern, FunParseError> {
        match self.bump() {
            Some(Tok::Int(n)) => Ok(Pattern::Int(n)),
            Some(Tok::Sym("(")) => {
                let p = self.pattern()?;
                self.expect_sym(")")?;
                Ok(p)
            }
            Some(Tok::Sym("[")) => {
                if self.eat_sym("]") {
                    return Ok(Pattern::Ctor("nil".into(), vec![]));
                }
                let mut items = vec![self.pattern()?];
                let mut tail = None;
                loop {
                    if self.eat_sym(",") {
                        items.push(self.pattern()?);
                    } else if self.eat_sym("|") {
                        tail = Some(self.pattern()?);
                        self.expect_sym("]")?;
                        break;
                    } else {
                        self.expect_sym("]")?;
                        break;
                    }
                }
                let mut p = tail.unwrap_or(Pattern::Ctor("nil".into(), vec![]));
                for it in items.into_iter().rev() {
                    p = Pattern::Ctor("cons".into(), vec![it, p]);
                }
                Ok(p)
            }
            Some(Tok::Ident(name)) => {
                if let Some(&arity) = self.ctors.get(&name) {
                    let mut args = Vec::new();
                    if arity > 0 {
                        self.expect_sym("(")?;
                        loop {
                            args.push(self.pattern()?);
                            if self.eat_sym(",") {
                                continue;
                            }
                            self.expect_sym(")")?;
                            break;
                        }
                    }
                    if args.len() != arity {
                        return Err(self.err(format!(
                            "constructor {name} expects {arity} arguments, got {}",
                            args.len()
                        )));
                    }
                    Ok(Pattern::Ctor(name, args))
                } else {
                    Ok(Pattern::Var(name))
                }
            }
            other => Err(self.err(format!("expected pattern, found {other:?}"))),
        }
    }

    fn expr(&mut self) -> Result<Expr, FunParseError> {
        // Comparison level (non-associative, lowest).
        let lhs = self.expr_cons()?;
        let op = match self.peek() {
            Some(Tok::Sym("==")) => Some(PrimOp::Eq),
            Some(Tok::Sym("/=")) => Some(PrimOp::Ne),
            Some(Tok::Sym("<")) => Some(PrimOp::Lt),
            Some(Tok::Sym("<=")) => Some(PrimOp::Le),
            Some(Tok::Sym(">")) => Some(PrimOp::Gt),
            Some(Tok::Sym(">=")) => Some(PrimOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.expr_cons()?;
            Ok(Expr::Prim(op, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    /// `:` — right-associative list cons, binds looser than arithmetic.
    fn expr_cons(&mut self) -> Result<Expr, FunParseError> {
        let head = self.expr_add()?;
        if self.eat_sym(":") {
            let tail = self.expr_cons()?;
            Ok(Expr::Ctor("cons".into(), vec![head, tail]))
        } else {
            Ok(head)
        }
    }

    fn expr_add(&mut self) -> Result<Expr, FunParseError> {
        let mut lhs = self.expr_mul()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Sym("+")) => PrimOp::Add,
                Some(Tok::Sym("-")) => PrimOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.expr_mul()?;
            lhs = Expr::Prim(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn expr_mul(&mut self) -> Result<Expr, FunParseError> {
        let mut lhs = self.expr_atom()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Sym("*")) => PrimOp::Mul,
                Some(Tok::Sym("/")) => PrimOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.expr_atom()?;
            lhs = Expr::Prim(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn expr_atom(&mut self) -> Result<Expr, FunParseError> {
        match self.bump() {
            Some(Tok::Int(n)) => Ok(Expr::Int(n)),
            Some(Tok::Sym("-")) => match self.bump() {
                Some(Tok::Int(n)) => Ok(Expr::Int(-n)),
                other => Err(self.err(format!("expected integer after unary -, found {other:?}"))),
            },
            Some(Tok::Sym("(")) => {
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Some(Tok::Sym("[")) => {
                if self.eat_sym("]") {
                    return Ok(Expr::Ctor("nil".into(), vec![]));
                }
                let mut items = vec![self.expr()?];
                let mut tail = None;
                loop {
                    if self.eat_sym(",") {
                        items.push(self.expr()?);
                    } else if self.eat_sym("|") {
                        tail = Some(self.expr()?);
                        self.expect_sym("]")?;
                        break;
                    } else {
                        self.expect_sym("]")?;
                        break;
                    }
                }
                let mut e = tail.unwrap_or(Expr::Ctor("nil".into(), vec![]));
                for it in items.into_iter().rev() {
                    e = Expr::Ctor("cons".into(), vec![it, e]);
                }
                Ok(e)
            }
            Some(Tok::Ident(name)) if name == "if" => {
                let c = self.expr()?;
                match self.bump() {
                    Some(Tok::Ident(t)) if t == "then" => {}
                    other => return Err(self.err(format!("expected 'then', found {other:?}"))),
                }
                let t = self.expr()?;
                match self.bump() {
                    Some(Tok::Ident(e)) if e == "else" => {}
                    other => return Err(self.err(format!("expected 'else', found {other:?}"))),
                }
                let e = self.expr()?;
                Ok(Expr::If(Box::new(c), Box::new(t), Box::new(e)))
            }
            Some(Tok::Ident(name)) => {
                let mut args = Vec::new();
                if self.eat_sym("(") {
                    loop {
                        args.push(self.expr()?);
                        if self.eat_sym(",") {
                            continue;
                        }
                        self.expect_sym(")")?;
                        break;
                    }
                }
                if let Some(&arity) = self.ctors.get(&name) {
                    if args.len() != arity {
                        return Err(self.err(format!(
                            "constructor {name} expects {arity} arguments, got {}",
                            args.len()
                        )));
                    }
                    Ok(Expr::Ctor(name, args))
                } else {
                    // Function application (arity checked at program level)
                    // or a plain variable when argument-free.
                    if args.is_empty() {
                        Ok(Expr::Var(name))
                    } else {
                        Ok(Expr::App(name, args))
                    }
                }
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

// `Tok::Sym` stores `&'static str`; comparing against a dynamic `&str`
// requires finding the canonical static symbol.
fn unsafe_static(s: &str) -> &'static str {
    SYMBOLS.iter().find(|x| **x == s).copied().unwrap_or("")
}

/// Resolves `Expr::Var` occurrences that actually name 0-ary functions
/// (e.g. `main = helper;`) into `Expr::App`.
fn resolve_zero_ary(e: &Expr, prog: &FunProgram) -> Expr {
    match e {
        Expr::Var(v) => {
            if prog.functions.get(v) == Some(&0) {
                Expr::App(v.clone(), vec![])
            } else {
                e.clone()
            }
        }
        Expr::Int(_) => e.clone(),
        Expr::Ctor(c, args) => Expr::Ctor(
            c.clone(),
            args.iter().map(|a| resolve_zero_ary(a, prog)).collect(),
        ),
        Expr::App(f, args) => Expr::App(
            f.clone(),
            args.iter().map(|a| resolve_zero_ary(a, prog)).collect(),
        ),
        Expr::Prim(op, a, b) => Expr::Prim(
            *op,
            Box::new(resolve_zero_ary(a, prog)),
            Box::new(resolve_zero_ary(b, prog)),
        ),
        Expr::If(c, t, f) => Expr::If(
            Box::new(resolve_zero_ary(c, prog)),
            Box::new(resolve_zero_ary(t, prog)),
            Box::new(resolve_zero_ary(f, prog)),
        ),
    }
}

/// Parses a program: a sequence of `data` declarations and equations.
///
/// # Errors
///
/// Returns the first lexical or syntactic error, with its line number.
pub fn parse_fun_program(src: &str) -> Result<FunProgram, FunParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        ctors: DEFAULT_CTORS
            .iter()
            .map(|(n, a)| (n.to_string(), *a))
            .collect(),
        ctor_datatype: BTreeMap::new(),
    };
    let mut prog = p.program()?;
    let resolved: Vec<Equation> = prog
        .equations
        .iter()
        .map(|e| Equation {
            fname: e.fname.clone(),
            lhs: e.lhs.clone(),
            rhs: resolve_zero_ary(&e.rhs, &prog),
        })
        .collect();
    prog.equations = resolved;
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_append() {
        let p = parse_fun_program("ap(nil, ys) = ys;\nap(x : xs, ys) = x : ap(xs, ys);").unwrap();
        assert_eq!(p.arity("ap"), Some(2));
        assert_eq!(p.equations_of("ap").len(), 2);
        let e2 = &p.equations[1];
        assert!(matches!(&e2.lhs[0], Pattern::Ctor(c, _) if c == "cons"));
        assert!(matches!(&e2.rhs, Expr::Ctor(c, _) if c == "cons"));
    }

    #[test]
    fn list_sugar_in_patterns_and_exprs() {
        let p = parse_fun_program("f([]) = [1, 2]; f([x | xs]) = xs;").unwrap();
        let e1 = &p.equations[0];
        assert_eq!(e1.lhs[0], Pattern::Ctor("nil".into(), vec![]));
        match &e1.rhs {
            Expr::Ctor(c, args) => {
                assert_eq!(c, "cons");
                assert_eq!(args[0], Expr::Int(1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_arith_vs_cons_vs_compare() {
        let p = parse_fun_program("f(x, y) = x + 1 : y; g(x) = x + 1 == 2 * 3;").unwrap();
        // x + 1 : y parses as (x+1) : y
        assert!(matches!(&p.equations[0].rhs, Expr::Ctor(c, _) if c == "cons"));
        assert!(matches!(&p.equations[1].rhs, Expr::Prim(PrimOp::Eq, _, _)));
    }

    #[test]
    fn if_then_else() {
        let p = parse_fun_program("max(x, y) = if x < y then y else x;").unwrap();
        assert!(matches!(&p.equations[0].rhs, Expr::If(_, _, _)));
    }

    #[test]
    fn data_declaration_introduces_constructors() {
        let p = parse_fun_program(
            "data tree = tip | branch(2);\nmirror(tip) = tip;\nmirror(branch(l, r)) = branch(mirror(r), mirror(l));",
        )
        .unwrap();
        assert!(p.is_constructor("branch"));
        assert_eq!(p.constructors["branch"], 2);
    }

    #[test]
    fn zero_ary_function_resolution() {
        let p = parse_fun_program("main = helper; helper = 42;").unwrap();
        assert_eq!(p.equations[0].rhs, Expr::App("helper".into(), vec![]));
    }

    #[test]
    fn comments_are_skipped() {
        let p =
            parse_fun_program("-- a comment\nf(x) = x; {- block\ncomment -} g(y) = y;").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn arity_mismatch_is_error() {
        assert!(parse_fun_program("f(x) = x; f(x, y) = x;").is_err());
        assert!(parse_fun_program("f(x) = cons(x);").is_err());
    }

    #[test]
    fn error_reports_line() {
        let e = parse_fun_program("f(x) = x;\ng(y) = @;").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn negative_literals() {
        let p = parse_fun_program("f = -5;").unwrap();
        assert_eq!(p.equations[0].rhs, Expr::Int(-5));
    }

    #[test]
    fn nested_patterns() {
        let p = parse_fun_program("f(x : (y : ys)) = ys;").unwrap();
        match &p.equations[0].lhs[0] {
            Pattern::Ctor(c, args) => {
                assert_eq!(c, "cons");
                assert!(matches!(&args[1], Pattern::Ctor(c2, _) if c2 == "cons"));
            }
            other => panic!("{other:?}"),
        }
    }
}
