//! Abstract syntax of the mini functional language.

use std::collections::BTreeMap;
use std::fmt;

/// A strict binary primitive.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PrimOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division)
    Div,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `/=`
    Ne,
}

impl PrimOp {
    /// Surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            PrimOp::Add => "+",
            PrimOp::Sub => "-",
            PrimOp::Mul => "*",
            PrimOp::Div => "/",
            PrimOp::Lt => "<",
            PrimOp::Le => "<=",
            PrimOp::Gt => ">",
            PrimOp::Ge => ">=",
            PrimOp::Eq => "==",
            PrimOp::Ne => "/=",
        }
    }

    /// A name usable inside generated predicate names.
    pub fn mangled(self) -> &'static str {
        match self {
            PrimOp::Add => "add",
            PrimOp::Sub => "sub",
            PrimOp::Mul => "mul",
            PrimOp::Div => "div",
            PrimOp::Lt => "lt",
            PrimOp::Le => "le",
            PrimOp::Gt => "gt",
            PrimOp::Ge => "ge",
            PrimOp::Eq => "eq",
            PrimOp::Ne => "ne",
        }
    }
}

/// An expression.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A variable bound by the equation's patterns.
    Var(String),
    /// An integer literal (a 0-ary constructor for analysis purposes).
    Int(i64),
    /// A saturated constructor application.
    Ctor(String, Vec<Expr>),
    /// A saturated call of a user-defined function.
    App(String, Vec<Expr>),
    /// A strict binary primitive.
    Prim(PrimOp, Box<Expr>, Box<Expr>),
    /// `if c then t else e` — strict in the condition.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
}

/// A pattern on an equation's left-hand side.
#[derive(Clone, PartialEq, Debug)]
pub enum Pattern {
    /// A variable (matches anything, binds).
    Var(String),
    /// An integer literal.
    Int(i64),
    /// A constructor pattern.
    Ctor(String, Vec<Pattern>),
}

impl Pattern {
    /// Variables bound by the pattern, in left-to-right order.
    pub fn vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Pattern::Var(v) => out.push(v.clone()),
            Pattern::Int(_) => {}
            Pattern::Ctor(_, ps) => {
                for p in ps {
                    p.collect_vars(out);
                }
            }
        }
    }
}

/// One defining equation `f(p1, …, pn) = rhs`.
#[derive(Clone, PartialEq, Debug)]
pub struct Equation {
    /// The function being defined.
    pub fname: String,
    /// The argument patterns.
    pub lhs: Vec<Pattern>,
    /// The right-hand side.
    pub rhs: Expr,
}

/// A parsed program: equations grouped by function, plus the constructor
/// table.
#[derive(Clone, Debug, Default)]
pub struct FunProgram {
    /// All equations in source order.
    pub equations: Vec<Equation>,
    /// Constructor name → arity. Includes the built-in constructors
    /// `nil/0`, `cons/2`, `true/0`, `false/0`, `pair/2`, `triple/3`,
    /// `zero/0`, `succ/1`, `leaf/0`, `node/3`.
    pub constructors: BTreeMap<String, usize>,
    /// Function name → arity.
    pub functions: BTreeMap<String, usize>,
    /// Constructor name → owning `data` declaration name (user
    /// declarations only; built-in constructors are absent).
    pub ctor_datatype: BTreeMap<String, String>,
}

impl FunProgram {
    /// The `data` declaration a constructor belongs to, if user-declared.
    pub fn datatype_of(&self, ctor: &str) -> Option<&str> {
        self.ctor_datatype.get(ctor).map(String::as_str)
    }

    /// Arity of a defined function.
    pub fn arity(&self, f: &str) -> Option<usize> {
        self.functions.get(f).copied()
    }

    /// The equations defining `f`, in source order.
    pub fn equations_of(&self, f: &str) -> Vec<&Equation> {
        self.equations.iter().filter(|e| e.fname == f).collect()
    }

    /// `true` if `name` is a known constructor.
    pub fn is_constructor(&self, name: &str) -> bool {
        self.constructors.contains_key(name)
    }

    /// Source-level size: number of equations.
    pub fn len(&self) -> usize {
        self.equations.len()
    }

    /// `true` if the program has no equations.
    pub fn is_empty(&self) -> bool {
        self.equations.is_empty()
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(v) => f.write_str(v),
            Expr::Int(i) => write!(f, "{i}"),
            Expr::Ctor(c, args) if c == "cons" && args.len() == 2 => {
                write!(f, "({} : {})", args[0], args[1])
            }
            Expr::Ctor(c, args) | Expr::App(c, args) => {
                f.write_str(c)?;
                if !args.is_empty() {
                    f.write_str("(")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    f.write_str(")")?;
                }
                Ok(())
            }
            Expr::Prim(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::If(c, t, e) => write!(f, "if {c} then {t} else {e}"),
        }
    }
}
