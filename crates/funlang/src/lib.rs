//! A mini lazy functional language — the frontend for strictness analysis.
//!
//! The PLDI'96 paper analyzes lazy functional programs written for EQUALS
//! (Kaser, Ramakrishnan, Ramakrishnan & Sekar's parallel lazy language). This
//! crate provides the reproduction's equivalent: a small first-order, lazy,
//! equational language with constructor patterns — exactly the shape the
//! paper's Figure 4(a) uses:
//!
//! ```text
//! ap(nil, ys) = ys;
//! ap(x : xs, ys) = x : ap(xs, ys);
//! ```
//!
//! The crate contains the AST ([`FunProgram`], [`Equation`], [`Expr`],
//! [`Pattern`]), a parser ([`parse_fun_program`]), and a call-by-need
//! interpreter ([`eval_main`]) used by examples and tests. The translation
//! to demand-propagation logic rules (the paper's Figure 3) lives in
//! `tablog-core`, which consumes this AST.
//!
//! # Example
//!
//! ```
//! use tablog_funlang::{parse_fun_program, eval_main};
//!
//! let src = "
//!     ap(nil, ys) = ys;
//!     ap(x : xs, ys) = x : ap(xs, ys);
//!     main = ap([1, 2], [3]);
//! ";
//! let prog = parse_fun_program(src)?;
//! assert_eq!(prog.arity("ap"), Some(2));
//! assert_eq!(eval_main(&prog)?.to_string(), "[1,2,3]");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod ast;
mod eval;
mod parse;

pub use ast::{Equation, Expr, FunProgram, Pattern, PrimOp};
pub use eval::{eval_call, eval_main, EvalError, Shown, Value};
pub use parse::{parse_fun_program, FunParseError};
