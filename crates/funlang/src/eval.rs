//! A call-by-need interpreter for the mini functional language.
//!
//! The analyses never *run* programs — strictness analysis is static — but
//! an interpreter makes examples concrete and lets tests cross-check
//! analysis verdicts (a function the analysis calls strict really does force
//! its argument). Evaluation is lazy with memoized thunks; a fuel counter
//! turns divergence into [`EvalError::OutOfFuel`].

use crate::ast::{Equation, Expr, FunProgram, Pattern, PrimOp};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// An evaluation failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EvalError {
    /// No equation of the function matched the arguments.
    MatchFailure(String),
    /// A call to an undefined function.
    Undefined(String),
    /// The fuel budget was exhausted (likely divergence).
    OutOfFuel,
    /// A primitive was applied to non-numeric or non-boolean values.
    TypeError(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::MatchFailure(fun) => write!(f, "no equation of {fun} matched"),
            EvalError::Undefined(fun) => write!(f, "undefined function {fun}"),
            EvalError::OutOfFuel => f.write_str("out of fuel (non-termination?)"),
            EvalError::TypeError(m) => write!(f, "type error: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// A weak-head-normal-form value.
#[derive(Clone, Debug)]
pub enum Value {
    /// A machine integer.
    Int(i64),
    /// A constructor cell with (lazy) fields.
    Ctor(String, Vec<Thunk>),
}

type Env = Rc<HashMap<String, Thunk>>;

#[derive(Clone, Debug)]
enum ThunkState {
    Suspended(Expr, Env),
    Forced(Value),
}

/// A lazily evaluated, memoized expression.
#[derive(Clone, Debug)]
pub struct Thunk(Rc<RefCell<ThunkState>>);

impl Thunk {
    fn suspend(e: Expr, env: Env) -> Self {
        Thunk(Rc::new(RefCell::new(ThunkState::Suspended(e, env))))
    }
}

/// Interpreter state: the program plus a fuel budget.
struct Interp<'p> {
    prog: &'p FunProgram,
    fuel: usize,
    depth: usize,
}

/// Recursion ceiling: converts deep (likely divergent) evaluation into
/// [`EvalError::OutOfFuel`] before the host stack overflows.
const MAX_DEPTH: usize = 20_000;

impl<'p> Interp<'p> {
    fn force(&mut self, t: &Thunk) -> Result<Value, EvalError> {
        let state = t.0.borrow().clone();
        match state {
            ThunkState::Forced(v) => Ok(v),
            ThunkState::Suspended(e, env) => {
                let v = self.eval(&e, &env)?;
                *t.0.borrow_mut() = ThunkState::Forced(v.clone());
                Ok(v)
            }
        }
    }

    fn eval(&mut self, e: &Expr, env: &Env) -> Result<Value, EvalError> {
        if self.fuel == 0 || self.depth >= MAX_DEPTH {
            return Err(EvalError::OutOfFuel);
        }
        self.fuel -= 1;
        self.depth += 1;
        let r = self.eval_inner(e, env);
        self.depth -= 1;
        r
    }

    fn eval_inner(&mut self, e: &Expr, env: &Env) -> Result<Value, EvalError> {
        match e {
            Expr::Int(i) => Ok(Value::Int(*i)),
            Expr::Var(v) => {
                let t = env
                    .get(v)
                    .cloned()
                    .ok_or_else(|| EvalError::Undefined(v.clone()))?;
                self.force(&t)
            }
            Expr::Ctor(c, args) => Ok(Value::Ctor(
                c.clone(),
                args.iter()
                    .map(|a| Thunk::suspend(a.clone(), env.clone()))
                    .collect(),
            )),
            Expr::App(f, args) => {
                let thunks: Vec<Thunk> = args
                    .iter()
                    .map(|a| Thunk::suspend(a.clone(), env.clone()))
                    .collect();
                self.apply(f, thunks)
            }
            Expr::Prim(op, a, b) => {
                let va = self.eval(a, env)?;
                let vb = self.eval(b, env)?;
                self.prim(*op, va, vb)
            }
            Expr::If(c, t, f) => {
                let vc = self.eval(c, env)?;
                match vc {
                    Value::Ctor(name, _) if name == "true" => self.eval(t, env),
                    Value::Ctor(name, _) if name == "false" => self.eval(f, env),
                    other => Err(EvalError::TypeError(format!(
                        "if condition evaluated to {other:?}"
                    ))),
                }
            }
        }
    }

    fn apply(&mut self, f: &str, args: Vec<Thunk>) -> Result<Value, EvalError> {
        let eqs: Vec<&Equation> = self.prog.equations_of(f);
        if eqs.is_empty() {
            return Err(EvalError::Undefined(f.to_owned()));
        }
        'eqs: for eq in eqs {
            let mut bindings = HashMap::new();
            for (p, a) in eq.lhs.iter().zip(&args) {
                if !self.matches(p, a, &mut bindings)? {
                    continue 'eqs;
                }
            }
            let env: Env = Rc::new(bindings);
            return self.eval(&eq.rhs, &env);
        }
        Err(EvalError::MatchFailure(f.to_owned()))
    }

    /// Pattern matching; forces the scrutinee only as deep as the pattern.
    fn matches(
        &mut self,
        p: &Pattern,
        t: &Thunk,
        out: &mut HashMap<String, Thunk>,
    ) -> Result<bool, EvalError> {
        match p {
            Pattern::Var(v) => {
                out.insert(v.clone(), t.clone());
                Ok(true)
            }
            Pattern::Int(i) => match self.force(t)? {
                Value::Int(j) => Ok(*i == j),
                _ => Ok(false),
            },
            Pattern::Ctor(c, ps) => match self.force(t)? {
                Value::Ctor(name, fields) if name == *c && fields.len() == ps.len() => {
                    for (sub, field) in ps.iter().zip(&fields) {
                        if !self.matches(sub, field, out)? {
                            return Ok(false);
                        }
                    }
                    Ok(true)
                }
                _ => Ok(false),
            },
        }
    }

    fn prim(&mut self, op: PrimOp, a: Value, b: Value) -> Result<Value, EvalError> {
        let (x, y) = match (a, b) {
            (Value::Int(x), Value::Int(y)) => (x, y),
            (a, b) => {
                return Err(EvalError::TypeError(format!(
                    "{} applied to {a:?} and {b:?}",
                    op.symbol()
                )))
            }
        };
        let boolv = |b: bool| Value::Ctor(if b { "true" } else { "false" }.into(), vec![]);
        Ok(match op {
            PrimOp::Add => Value::Int(x.wrapping_add(y)),
            PrimOp::Sub => Value::Int(x.wrapping_sub(y)),
            PrimOp::Mul => Value::Int(x.wrapping_mul(y)),
            PrimOp::Div => {
                if y == 0 {
                    return Err(EvalError::TypeError("division by zero".into()));
                }
                Value::Int(x / y)
            }
            PrimOp::Lt => boolv(x < y),
            PrimOp::Le => boolv(x <= y),
            PrimOp::Gt => boolv(x > y),
            PrimOp::Ge => boolv(x >= y),
            PrimOp::Eq => boolv(x == y),
            PrimOp::Ne => boolv(x != y),
        })
    }

    /// Deep-forces a value for printing.
    fn show(&mut self, v: &Value) -> Result<String, EvalError> {
        match v {
            Value::Int(i) => Ok(i.to_string()),
            Value::Ctor(c, fields) if c == "nil" => {
                let _ = fields;
                Ok("[]".into())
            }
            Value::Ctor(c, fields) if c == "cons" => {
                let mut parts = Vec::new();
                let mut improper = None;
                let mut head = fields[0].clone();
                let mut tail = fields[1].clone();
                loop {
                    let hv = self.force(&head)?;
                    parts.push(self.show(&hv)?);
                    match self.force(&tail)? {
                        Value::Ctor(c, _) if c == "nil" => break,
                        Value::Ctor(c, fs) if c == "cons" => {
                            head = fs[0].clone();
                            tail = fs[1].clone();
                        }
                        other => {
                            improper = Some(self.show(&other)?);
                            break;
                        }
                    }
                }
                match improper {
                    Some(t) => Ok(format!("[{}|{t}]", parts.join(","))),
                    None => Ok(format!("[{}]", parts.join(","))),
                }
            }
            Value::Ctor(c, fields) => {
                if fields.is_empty() {
                    Ok(c.clone())
                } else {
                    let args: Result<Vec<String>, EvalError> = fields
                        .iter()
                        .map(|t| {
                            let tv = self.force(&t.clone())?;
                            self.show(&tv)
                        })
                        .collect();
                    Ok(format!("{c}({})", args?.join(",")))
                }
            }
        }
    }
}

/// The result of [`eval_main`]: a deep-forced value rendering.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Shown(String);

impl fmt::Display for Shown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Evaluates the 0-ary function `main` to a deep-forced printable value
/// with a default fuel budget of one million steps.
///
/// # Errors
///
/// Returns [`EvalError::Undefined`] when `main` is missing, and any error
/// evaluation raises.
pub fn eval_main(prog: &FunProgram) -> Result<Shown, EvalError> {
    eval_call(prog, "main", 1_000_000)
}

/// Evaluates a 0-ary function by name with an explicit fuel budget.
///
/// # Errors
///
/// As [`eval_main`].
pub fn eval_call(prog: &FunProgram, f: &str, fuel: usize) -> Result<Shown, EvalError> {
    // Deep lazy evaluation nests Rust frames proportionally to the depth
    // guard, so run on a dedicated thread with a generous stack.
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .stack_size(64 * 1024 * 1024)
            .spawn_scoped(scope, move || {
                let mut interp = Interp {
                    prog,
                    fuel,
                    depth: 0,
                };
                let v = interp.apply(f, Vec::new())?;
                interp.show(&v).map(Shown)
            })
            .expect("spawn evaluator thread")
            .join()
            .expect("evaluator thread panicked")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_fun_program;

    fn run(src: &str) -> String {
        eval_main(&parse_fun_program(src).unwrap())
            .unwrap()
            .to_string()
    }

    #[test]
    fn append_runs() {
        assert_eq!(
            run("ap(nil, ys) = ys; ap(x : xs, ys) = x : ap(xs, ys); main = ap([1,2],[3]);"),
            "[1,2,3]"
        );
    }

    #[test]
    fn arithmetic_and_if() {
        assert_eq!(
            run("fac(n) = if n == 0 then 1 else n * fac(n - 1); main = fac(5);"),
            "120"
        );
    }

    #[test]
    fn laziness_ignores_divergent_argument() {
        // k is lazy in its second argument: passing ⊥ is fine.
        let src = "k(x, y) = x; bot = bot; main = k(7, bot);";
        assert_eq!(run(src), "7");
    }

    #[test]
    fn strict_position_diverges() {
        let src = "hd(x : xs) = x; bot = bot; main = hd(bot);";
        let e = eval_main(&parse_fun_program(src).unwrap()).unwrap_err();
        assert_eq!(e, EvalError::OutOfFuel);
    }

    #[test]
    fn infinite_list_with_lazy_take() {
        let src = "
            from(n) = n : from(n + 1);
            take(0, xs) = nil;
            take(n, x : xs) = x : take(n - 1, xs);
            main = take(4, from(10));
        ";
        assert_eq!(run(src), "[10,11,12,13]");
    }

    #[test]
    fn call_by_need_memoizes() {
        // With call-by-name this would still finish, but call-by-need keeps
        // the doubling linear; 2^20 forcings would exhaust default fuel.
        let src = "
            dbl(x) = x + x;
            tower(n, x) = if n == 0 then x else tower(n - 1, dbl(x));
            main = tower(20, 1);
        ";
        assert_eq!(run(src), "1048576");
    }

    #[test]
    fn match_failure_reported() {
        let src = "f(1) = 1; main = f(2);";
        let e = eval_main(&parse_fun_program(src).unwrap()).unwrap_err();
        assert_eq!(e, EvalError::MatchFailure("f".into()));
    }

    #[test]
    fn undefined_function_reported() {
        let src = "main = ghost(1);";
        let e = eval_main(&parse_fun_program(src).unwrap()).unwrap_err();
        assert_eq!(e, EvalError::Undefined("ghost".into()));
    }

    #[test]
    fn custom_data_constructors() {
        let src = "
            data tree = tip | branch(2);
            sum(tip) = 0;
            sum(branch(l, r)) = sum(l) + sum(r) + 1;
            main = sum(branch(branch(tip, tip), tip));
        ";
        assert_eq!(run(src), "2");
    }

    #[test]
    fn improper_list_display() {
        let src = "main = 1 : 2;";
        assert_eq!(run(src), "[1|2]");
    }
}
