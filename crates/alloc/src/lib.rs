//! A tracking global allocator for per-phase heap measurement.
//!
//! The paper's space story is table bytes — the engine's own accounting of
//! what lives in call and answer tables. That number deliberately excludes
//! everything else the process allocates: parser ASTs, arenas, worklists,
//! report strings. [`TrackingAlloc`] closes the gap: a zero-dependency
//! wrapper over [`std::alloc::System`] that counts live bytes, peak live
//! bytes, and cumulative allocations with relaxed atomics, so a benchmark
//! row can report *process heap* next to *table bytes*.
//!
//! The allocator is opt-in. Nothing in the workspace installs it by
//! default; a binary that wants tracking declares
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: tablog_alloc::TrackingAlloc = tablog_alloc::TrackingAlloc;
//! ```
//!
//! (`tablog-bench` gates exactly this behind its `track-alloc` feature for
//! the `paper_tables` binary). Code that *measures* uses [`HeapScope`]:
//! `begin` resets the peak to the current live level, `measure` reports the
//! delta. When the tracking allocator is not installed every counter stays
//! zero, [`is_tracking`] reports `false`, and `measure` returns `None` — so
//! measurement sites need no feature gates of their own.
//!
//! Caveats, by construction:
//!
//! * **Scopes do not nest.** The peak is a single process-global watermark;
//!   `begin` resets it. Sequential, non-overlapping phases measure
//!   correctly; interleaved scopes see each other's allocations.
//! * **Parallel work contaminates.** The counters are process-wide, so a
//!   scope around one analysis measures every thread's traffic. The bench
//!   harness only records heap when running sequentially (`--jobs 1`).
//! * **Numbers are requested bytes**, not allocator-internal footprint:
//!   `size` as passed to `alloc`, excluding fragmentation and metadata.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Bytes currently live (allocated minus deallocated).
static LIVE: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of [`LIVE`] since the last [`reset_peak`].
static PEAK: AtomicUsize = AtomicUsize::new(0);
/// Cumulative bytes ever allocated.
static TOTAL_ALLOCATED: AtomicU64 = AtomicU64::new(0);
/// Cumulative allocation calls.
static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] forwarding to [`System`] while maintaining the live /
/// peak / cumulative counters. Install with `#[global_allocator]`.
pub struct TrackingAlloc;

impl TrackingAlloc {
    #[inline]
    fn on_alloc(size: usize) {
        TOTAL_ALLOCATED.fetch_add(size as u64, Ordering::Relaxed);
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    #[inline]
    fn on_dealloc(size: usize) {
        LIVE.fetch_sub(size, Ordering::Relaxed);
    }
}

// SAFETY: delegates every allocation verbatim to `System`; the counter
// updates are lock-free atomics and never allocate themselves.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        Self::on_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            // Count the grow/shrink as one alloc of the new size plus a
            // free of the old: LIVE moves by the delta, PEAK sees the new
            // level, TOTAL_ALLOCATED accrues the new block.
            Self::on_alloc(new_size);
            Self::on_dealloc(layout.size());
        }
        p
    }
}

/// A point-in-time reading of the allocator counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Bytes currently live.
    pub live_bytes: usize,
    /// Peak live bytes since the last [`reset_peak`].
    pub peak_bytes: usize,
    /// Cumulative bytes ever allocated.
    pub total_allocated: u64,
    /// Cumulative allocation calls.
    pub allocations: u64,
}

/// Reads the counters. All zeros unless [`TrackingAlloc`] is installed.
pub fn stats() -> HeapStats {
    HeapStats {
        live_bytes: LIVE.load(Ordering::Relaxed),
        peak_bytes: PEAK.load(Ordering::Relaxed),
        total_allocated: TOTAL_ALLOCATED.load(Ordering::Relaxed),
        allocations: ALLOCS.load(Ordering::Relaxed),
    }
}

/// Whether [`TrackingAlloc`] is installed as the global allocator, judged
/// by whether it has ever observed an allocation (any running program
/// allocates long before measurement code runs).
pub fn is_tracking() -> bool {
    TOTAL_ALLOCATED.load(Ordering::Relaxed) > 0
}

/// Resets the peak watermark to the current live level, starting a new
/// peak-measurement window.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// The heap cost of one measured phase, from [`HeapScope::measure`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapDelta {
    /// Bytes allocated during the phase (cumulative, counting frees).
    pub allocated_bytes: u64,
    /// Allocation calls during the phase.
    pub allocations: u64,
    /// Peak live bytes observed during the phase — the process-heap
    /// analogue of the paper's table-space columns. Absolute, not relative
    /// to the phase start: it is the high-water mark the process needed
    /// while the phase ran.
    pub peak_bytes: usize,
}

/// Scope guard for one sequential measurement phase: [`HeapScope::begin`]
/// resets the peak window and snapshots the cumulative counters,
/// [`HeapScope::measure`] reports the deltas. Phases must not nest or
/// overlap (see the crate docs).
#[derive(Clone, Copy, Debug)]
pub struct HeapScope {
    start: HeapStats,
}

impl HeapScope {
    /// Opens a measurement window at the current heap state.
    pub fn begin() -> Self {
        reset_peak();
        HeapScope { start: stats() }
    }

    /// Closes the window: `Some(delta)` when the tracking allocator is
    /// installed, `None` otherwise (so callers can skip reporting).
    pub fn measure(&self) -> Option<HeapDelta> {
        if !is_tracking() {
            return None;
        }
        let now = stats();
        Some(HeapDelta {
            allocated_bytes: now.total_allocated - self.start.total_allocated,
            allocations: now.allocations - self.start.allocations,
            peak_bytes: now.peak_bytes,
        })
    }
}

// Install the allocator for this crate's own test binary, giving the
// counters real traffic to observe without imposing tracking on any other
// crate's tests.
#[cfg(test)]
#[global_allocator]
static TEST_ALLOC: TrackingAlloc = TrackingAlloc;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracking_is_detected_and_counters_move() {
        // The test harness itself has long since allocated.
        assert!(is_tracking());
        let before = stats();
        let v: Vec<u8> = Vec::with_capacity(1 << 16);
        let after = stats();
        drop(v);
        assert!(after.total_allocated >= before.total_allocated + (1 << 16) as u64);
        assert!(after.allocations > before.allocations);
        assert!(after.live_bytes >= before.live_bytes + (1 << 16));
    }

    #[test]
    fn scope_measures_a_phase_and_its_peak() {
        let scope = HeapScope::begin();
        let v: Vec<u8> = vec![0; 1 << 20];
        drop(v);
        let delta = scope.measure().expect("tracking allocator installed");
        assert!(delta.allocated_bytes >= (1 << 20) as u64);
        assert!(delta.allocations >= 1);
        // The megabyte was live at some point inside the window, so the
        // peak must have reached at least that far above the start.
        assert!(delta.peak_bytes >= (1 << 20));
    }

    #[test]
    fn reset_peak_starts_a_fresh_window() {
        let v: Vec<u8> = vec![0; 1 << 18];
        drop(v);
        reset_peak();
        // After the reset the peak equals live (no traffic in between
        // beyond what the assertion machinery itself allocates).
        let s = stats();
        assert!(s.peak_bytes <= s.live_bytes + (1 << 16));
    }

    #[test]
    fn live_bytes_fall_when_memory_is_freed() {
        let scope_live = stats().live_bytes;
        let v: Vec<u8> = vec![0; 1 << 20];
        let held = stats().live_bytes;
        drop(v);
        let released = stats().live_bytes;
        assert!(held >= scope_live + (1 << 20));
        assert!(released < held);
    }
}
