//! Global symbol interner.
//!
//! Atom and functor names are interned once into a process-wide table and
//! thereafter handled as the `Copy` index type [`Sym`]. Interning keeps the
//! hot paths of the engine (clause indexing, unification, variant checks)
//! free of string comparisons, exactly as a WAM-based system like XSB keeps
//! an atom table.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned symbol: a cheap, `Copy` handle for an atom or functor name.
///
/// Two `Sym`s compare equal iff they were interned from the same string.
/// Obtain one with [`intern`] and recover the text with [`sym_name`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub(crate) u32);

impl Sym {
    /// Raw index of this symbol in the interner, useful as a dense map key.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({:?})", sym_name(*self))
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&sym_name(*self))
    }
}

#[derive(Default)]
struct Interner {
    names: Vec<String>,
    map: HashMap<String, u32>,
}

fn table() -> &'static RwLock<Interner> {
    static TABLE: OnceLock<RwLock<Interner>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(Interner::default()))
}

/// Interns `name`, returning its unique [`Sym`].
///
/// Interning the same string twice returns the same symbol.
///
/// ```
/// use tablog_term::intern;
/// assert_eq!(intern("append"), intern("append"));
/// assert_ne!(intern("append"), intern("member"));
/// ```
pub fn intern(name: &str) -> Sym {
    {
        let t = table().read().expect("symbol table poisoned");
        if let Some(&i) = t.map.get(name) {
            return Sym(i);
        }
    }
    let mut t = table().write().expect("symbol table poisoned");
    if let Some(&i) = t.map.get(name) {
        return Sym(i);
    }
    let i = t.names.len() as u32;
    t.names.push(name.to_owned());
    t.map.insert(name.to_owned(), i);
    Sym(i)
}

/// Returns the text of an interned symbol.
///
/// ```
/// use tablog_term::{intern, sym_name};
/// assert_eq!(sym_name(intern("foo")), "foo");
/// ```
pub fn sym_name(sym: Sym) -> String {
    table().read().expect("symbol table poisoned").names[sym.0 as usize].clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = intern("hello");
        let b = intern("hello");
        assert_eq!(a, b);
        assert_eq!(sym_name(a), "hello");
    }

    #[test]
    fn distinct_names_get_distinct_syms() {
        assert_ne!(intern("x1"), intern("x2"));
    }

    #[test]
    fn empty_name_is_valid() {
        assert_eq!(sym_name(intern("")), "");
    }

    #[test]
    fn unicode_names_round_trip() {
        assert_eq!(sym_name(intern("λ-calc")), "λ-calc");
    }

    #[test]
    fn sym_debug_shows_name() {
        let s = intern("dbg_sym");
        assert!(format!("{s:?}").contains("dbg_sym"));
    }

    #[test]
    fn many_symbols_stay_distinct() {
        let syms: Vec<Sym> = (0..1000).map(|i| intern(&format!("s{i}"))).collect();
        for (i, s) in syms.iter().enumerate() {
            assert_eq!(sym_name(*s), format!("s{i}"));
        }
    }
}
