//! First-order terms for the `tablog` system.
//!
//! This crate provides the Herbrand-term infrastructure shared by every other
//! layer of the system: interned [`Sym`]bols, the [`Term`] representation,
//! a [`Bindings`] store with a backtrackable trail, [`unify`]cation (with and
//! without occur check), and *variant* canonicalization — the operation at
//! the heart of XSB-style tabling, where a call or answer is looked up in a
//! table modulo consistent renaming of variables.
//!
//! # Example
//!
//! ```
//! use tablog_term::{atom, var, structure, Bindings, unify};
//!
//! let mut b = Bindings::new();
//! let x = b.fresh_var();
//! let y = b.fresh_var();
//! // f(X, a)  ~  f(b, Y)
//! let t1 = structure("f", vec![var(x), atom("a")]);
//! let t2 = structure("f", vec![atom("b"), var(y)]);
//! assert!(unify(&mut b, &t1, &t2));
//! assert_eq!(b.resolve(&var(x)), atom("b"));
//! assert_eq!(b.resolve(&var(y)), atom("a"));
//! ```

mod arena;
mod bindings;
mod symbol;
mod term;
mod unify;
mod variant;

pub use arena::{arena_stats, charge_shared_bytes, ArenaStats, TermArena, TermId};
pub use bindings::{Bindings, TrailMark};
pub use symbol::{intern, sym_name, Sym};
pub use term::{atom, int, structure, var, Functor, Term, Var};
pub use unify::{unify, unify_occurs};
pub use variant::{canonical_key, canonicalize, canonicalize2, is_variant, CanonicalTerm};
