//! The term representation.

use crate::symbol::{intern, sym_name, Sym};
use std::fmt;
use std::sync::Arc;

/// A logic variable, identified by its index into a [`crate::Bindings`] store
/// (or, inside stored clauses, by its position in the clause's own numbering).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Var(pub u32);

impl Var {
    /// The variable's numeric index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A predicate or function symbol together with its arity.
///
/// `p/2` and `p/3` are distinct functors, as in Prolog.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Functor {
    /// The interned name.
    pub name: Sym,
    /// Number of arguments.
    pub arity: usize,
}

impl Functor {
    /// Creates a functor from a name and arity.
    pub fn new(name: &str, arity: usize) -> Self {
        Functor {
            name: intern(name),
            arity,
        }
    }
}

impl fmt::Debug for Functor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", sym_name(self.name), self.arity)
    }
}

impl fmt::Display for Functor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", sym_name(self.name), self.arity)
    }
}

/// A first-order term: variable, atom (0-ary symbol), integer, or compound.
///
/// Compound arguments are stored behind an [`Arc`] slice so that cloning a
/// term — which the derivation-forest engine does when copying resolvents —
/// is cheap and structure-sharing, and terms (hence engine sessions) are
/// `Send`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// An unbound (or bindable) logic variable.
    Var(Var),
    /// A 0-ary symbol such as `foo` or `[]`.
    Atom(Sym),
    /// A machine integer.
    Int(i64),
    /// A compound term `f(t1, …, tn)` with `n ≥ 1`.
    Struct(Sym, Arc<[Term]>),
}

impl Term {
    /// The functor of this term, if it is an atom or compound term.
    pub fn functor(&self) -> Option<Functor> {
        match self {
            Term::Atom(s) => Some(Functor { name: *s, arity: 0 }),
            Term::Struct(s, args) => Some(Functor {
                name: *s,
                arity: args.len(),
            }),
            _ => None,
        }
    }

    /// Arguments of a compound term, or an empty slice otherwise.
    pub fn args(&self) -> &[Term] {
        match self {
            Term::Struct(_, args) => args,
            _ => &[],
        }
    }

    /// `true` if the term contains no variables at all.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Atom(_) | Term::Int(_) => true,
            Term::Struct(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// `true` if the term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Collects the variables of the term in first-occurrence order.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            Term::Var(v) if !out.contains(v) => out.push(*v),
            Term::Struct(_, args) => {
                for a in args.iter() {
                    a.collect_vars(out);
                }
            }
            _ => {}
        }
    }

    /// Number of symbol/variable/integer nodes in the term.
    pub fn size(&self) -> usize {
        match self {
            Term::Struct(_, args) => 1 + args.iter().map(Term::size).sum::<usize>(),
            _ => 1,
        }
    }

    /// Maximum nesting depth; atoms, integers and variables have depth 1.
    pub fn depth(&self) -> usize {
        match self {
            Term::Struct(_, args) => 1 + args.iter().map(Term::depth).max().unwrap_or(0),
            _ => 1,
        }
    }

    /// Estimated heap footprint in bytes, used for the paper's
    /// "table space" statistic.
    pub fn heap_bytes(&self) -> usize {
        match self {
            Term::Struct(_, args) => {
                std::mem::size_of::<Term>() + args.iter().map(Term::heap_bytes).sum::<usize>()
            }
            _ => std::mem::size_of::<Term>(),
        }
    }

    /// Rewrites every variable through `f`, sharing unchanged subtrees where
    /// possible.
    pub fn map_vars(&self, f: &mut impl FnMut(Var) -> Term) -> Term {
        match self {
            Term::Var(v) => f(*v),
            Term::Atom(_) | Term::Int(_) => self.clone(),
            Term::Struct(s, args) => {
                let new: Vec<Term> = args.iter().map(|a| a.map_vars(f)).collect();
                Term::Struct(*s, new.into())
            }
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "_{}", v.0),
            Term::Atom(s) => f.write_str(&sym_name(*s)),
            Term::Int(i) => write!(f, "{i}"),
            Term::Struct(s, args) => {
                f.write_str(&sym_name(*s))?;
                f.write_str("(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{a:?}")?;
                }
                f.write_str(")")
            }
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Builds an atom term from a name.
///
/// ```
/// use tablog_term::atom;
/// assert!(atom("nil").is_ground());
/// ```
pub fn atom(name: &str) -> Term {
    Term::Atom(intern(name))
}

/// Builds an integer term.
pub fn int(value: i64) -> Term {
    Term::Int(value)
}

/// Builds a variable term from a [`Var`] handle.
pub fn var(v: Var) -> Term {
    Term::Var(v)
}

/// Builds a compound term; with no arguments this degenerates to an atom.
///
/// ```
/// use tablog_term::{structure, atom};
/// let t = structure("point", vec![atom("a"), atom("b")]);
/// assert_eq!(t.args().len(), 2);
/// assert_eq!(structure("nil", vec![]), atom("nil"));
/// ```
pub fn structure(name: &str, args: Vec<Term>) -> Term {
    if args.is_empty() {
        atom(name)
    } else {
        Term::Struct(intern(name), args.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functor_distinguishes_arity() {
        let t2 = structure("p", vec![atom("a"), atom("b")]);
        let t1 = structure("p", vec![atom("a")]);
        assert_ne!(t2.functor(), t1.functor());
        assert_eq!(t2.functor().unwrap().arity, 2);
    }

    #[test]
    fn groundness() {
        let g = structure("f", vec![atom("a"), int(3)]);
        assert!(g.is_ground());
        let ng = structure("f", vec![var(Var(0))]);
        assert!(!ng.is_ground());
    }

    #[test]
    fn vars_in_first_occurrence_order() {
        let t = structure(
            "f",
            vec![
                var(Var(3)),
                structure("g", vec![var(Var(1)), var(Var(3))]),
                var(Var(2)),
            ],
        );
        assert_eq!(t.vars(), vec![Var(3), Var(1), Var(2)]);
    }

    #[test]
    fn size_and_depth() {
        let t = structure("f", vec![structure("g", vec![atom("a")]), int(1)]);
        assert_eq!(t.size(), 4);
        assert_eq!(t.depth(), 3);
        assert_eq!(atom("a").depth(), 1);
    }

    #[test]
    fn map_vars_substitutes() {
        let t = structure("f", vec![var(Var(0)), atom("k")]);
        let r = t.map_vars(&mut |_| atom("x"));
        assert_eq!(r, structure("f", vec![atom("x"), atom("k")]));
    }

    #[test]
    fn zero_arity_structure_is_atom() {
        assert_eq!(structure("a", vec![]), atom("a"));
    }

    #[test]
    fn display_renders_nested_terms() {
        let t = structure("f", vec![atom("a"), structure("g", vec![var(Var(7))])]);
        assert_eq!(format!("{t}"), "f(a,g(_7))");
    }

    #[test]
    fn heap_bytes_monotone_in_size() {
        let small = atom("a");
        let big = structure("f", vec![atom("a"), atom("b"), atom("c")]);
        assert!(big.heap_bytes() > small.heap_bytes());
    }
}
