//! Syntactic unification over a [`Bindings`] store.

use crate::bindings::Bindings;
use crate::term::Term;

/// Unifies `t1` and `t2` destructively in `b` (bindings are trailed).
///
/// Returns `true` on success. On failure, bindings made during the attempt
/// are **not** rolled back — callers should capture a [`Bindings::mark`]
/// beforehand and [`Bindings::undo_to`] it, which is what the engine's
/// clause-resolution loop does.
///
/// No occur check is performed (standard Prolog behaviour); see
/// [`unify_occurs`] for the checked version required by, e.g., the
/// Hindley–Milner-style analyses discussed in Section 6 of the paper.
pub fn unify(b: &mut Bindings, t1: &Term, t2: &Term) -> bool {
    unify_inner(b, t1, t2, false)
}

/// Unification with occur check: binding a variable to a term containing it
/// fails rather than building a cyclic term.
pub fn unify_occurs(b: &mut Bindings, t1: &Term, t2: &Term) -> bool {
    unify_inner(b, t1, t2, true)
}

fn unify_inner(b: &mut Bindings, t1: &Term, t2: &Term, occurs: bool) -> bool {
    let w1 = b.walk(t1).clone();
    let w2 = b.walk(t2).clone();
    match (&w1, &w2) {
        (Term::Var(v1), Term::Var(v2)) if v1 == v2 => true,
        (Term::Var(v), _) => {
            if occurs && b.occurs(*v, &w2) {
                return false;
            }
            b.bind(*v, w2);
            true
        }
        (_, Term::Var(v)) => {
            if occurs && b.occurs(*v, &w1) {
                return false;
            }
            b.bind(*v, w1);
            true
        }
        (Term::Atom(a), Term::Atom(c)) => a == c,
        (Term::Int(i), Term::Int(j)) => i == j,
        (Term::Struct(f, xs), Term::Struct(g, ys)) => {
            if f != g || xs.len() != ys.len() {
                return false;
            }
            xs.iter()
                .zip(ys.iter())
                .all(|(x, y)| unify_inner(b, x, y, occurs))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{atom, int, structure, var};

    #[test]
    fn atoms_unify_iff_equal() {
        let mut b = Bindings::new();
        assert!(unify(&mut b, &atom("a"), &atom("a")));
        assert!(!unify(&mut b, &atom("a"), &atom("b")));
    }

    #[test]
    fn ints_unify_iff_equal() {
        let mut b = Bindings::new();
        assert!(unify(&mut b, &int(42), &int(42)));
        assert!(!unify(&mut b, &int(42), &int(43)));
        assert!(!unify(&mut b, &int(42), &atom("42")));
    }

    #[test]
    fn var_binds_to_structure() {
        let mut b = Bindings::new();
        let v = b.fresh_var();
        let t = structure("f", vec![atom("a")]);
        assert!(unify(&mut b, &var(v), &t));
        assert_eq!(b.resolve(&var(v)), t);
    }

    #[test]
    fn shared_var_propagates() {
        // f(X, X) ~ f(a, Y)  =>  X = a, Y = a
        let mut b = Bindings::new();
        let x = b.fresh_var();
        let y = b.fresh_var();
        let t1 = structure("f", vec![var(x), var(x)]);
        let t2 = structure("f", vec![atom("a"), var(y)]);
        assert!(unify(&mut b, &t1, &t2));
        assert_eq!(b.resolve(&var(y)), atom("a"));
    }

    #[test]
    fn arity_mismatch_fails() {
        let mut b = Bindings::new();
        let t1 = structure("f", vec![atom("a")]);
        let t2 = structure("f", vec![atom("a"), atom("b")]);
        assert!(!unify(&mut b, &t1, &t2));
    }

    #[test]
    fn failure_after_partial_binding_is_recoverable_via_mark() {
        let mut b = Bindings::new();
        let x = b.fresh_var();
        let m = b.mark();
        let t1 = structure("f", vec![var(x), atom("a")]);
        let t2 = structure("f", vec![atom("c"), atom("b")]);
        assert!(!unify(&mut b, &t1, &t2));
        b.undo_to(m);
        assert!(b.lookup(x).is_none());
    }

    #[test]
    fn occur_check_rejects_cycle() {
        let mut b = Bindings::new();
        let x = b.fresh_var();
        let t = structure("f", vec![var(x)]);
        assert!(!unify_occurs(&mut b, &var(x), &t));
        // Plain unify builds the (representationally finite) binding.
        let mut b2 = Bindings::new();
        let y = b2.fresh_var();
        let t2 = structure("f", vec![var(y)]);
        assert!(unify(&mut b2, &var(y), &t2));
    }

    #[test]
    fn occur_check_through_chain() {
        // X = g(Y), then Y ~ f(X) must fail under occur check.
        let mut b = Bindings::new();
        let x = b.fresh_var();
        let y = b.fresh_var();
        b.bind(x, structure("g", vec![var(y)]));
        assert!(!unify_occurs(
            &mut b,
            &var(y),
            &structure("f", vec![var(x)])
        ));
    }

    #[test]
    fn unify_same_var_succeeds_without_binding() {
        let mut b = Bindings::new();
        let v = b.fresh_var();
        assert!(unify(&mut b, &var(v), &var(v)));
        assert!(b.lookup(v).is_none());
    }

    #[test]
    fn deep_nested_unification() {
        let mut b = Bindings::new();
        let x = b.fresh_var();
        let mk = |leaf: Term| {
            let mut t = leaf;
            for _ in 0..50 {
                t = structure("s", vec![t]);
            }
            t
        };
        assert!(unify(&mut b, &mk(var(x)), &mk(atom("z"))));
        assert_eq!(b.resolve(&var(x)), atom("z"));
    }
}
