//! Variant canonicalization — the table-lookup discipline of XSB.
//!
//! Two terms are *variants* if they are identical up to a consistent
//! renaming of variables. XSB's tables are keyed on variants: a tabled call
//! is looked up by variant, and an answer is entered only if no variant of
//! it is already present (footnote 1 of the paper). We realize this by
//! mapping every term to a [`CanonicalTerm`] in which variables are numbered
//! `0, 1, 2, …` in first-occurrence order; two terms are variants iff their
//! canonical forms are equal.
//!
//! Since PR 3, canonical forms live in a hash-consing arena
//! ([`crate::arena`]): a `CanonicalTerm` is a `Copy` handle (root [`TermId`],
//! variable count, cached hash, owning-arena id) rather than an owned term
//! vector. Equality is an id comparison and hashing reads the cached hash —
//! both O(1) — so canonical forms are cheap table keys no matter how large
//! the term is. Since PR 4 arenas are session-scoped
//! ([`crate::TermArena`]); the free functions in this module intern into the
//! process-wide shared arena for callers without a session.

use crate::arena::{self, TermId, GLOBAL_ARENA_ID};
use crate::bindings::Bindings;
use crate::term::Term;
use std::fmt;

/// A term (or term tuple) whose variables have been renumbered into
/// first-occurrence order, interned in an arena. Equality on
/// `CanonicalTerm` is variant equality on the originals, decided by a single
/// id comparison.
///
/// `CanonicalTerm` is `Copy` and `Send`: a handle travels freely between
/// threads, but is only meaningful together with the arena that minted it
/// (arena accessors `debug_assert` the pairing via the stored arena id).
#[derive(Clone, Copy)]
pub struct CanonicalTerm {
    root: TermId,
    nvars: u32,
    hash: u64,
    /// Id of the minting arena (0 = the process-wide shared arena).
    arena: u32,
}

impl PartialEq for CanonicalTerm {
    fn eq(&self, other: &Self) -> bool {
        debug_assert_eq!(
            self.arena, other.arena,
            "comparing CanonicalTerms from different arenas"
        );
        self.root == other.root
    }
}

impl Eq for CanonicalTerm {}

impl std::hash::Hash for CanonicalTerm {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl fmt::Debug for CanonicalTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("CanonicalTerm");
        if self.arena == GLOBAL_ARENA_ID {
            d.field("terms", &self.terms());
        } else {
            d.field("arena", &self.arena).field("root", &self.root);
        }
        d.field("nvars", &self.nvars).finish()
    }
}

impl CanonicalTerm {
    pub(crate) fn from_parts(root: TermId, nvars: u32, hash: u64, arena: u32) -> Self {
        CanonicalTerm {
            root,
            nvars,
            hash,
            arena,
        }
    }

    /// The arena id of the canonical tuple. Equal ids (within one arena) ⇔
    /// variant-equal originals; useful as a compact table key.
    pub fn root_id(&self) -> TermId {
        self.root
    }

    /// Id of the arena that minted this handle (0 = shared arena).
    pub(crate) fn arena_id(&self) -> u32 {
        self.arena
    }

    /// Number of member terms in the canonical tuple, without materializing.
    ///
    /// Shared-arena handles only; session handles go through
    /// [`crate::TermArena::tuple_len`].
    pub fn len(&self) -> usize {
        arena::tuple_len(self)
    }

    /// `true` if the canonical tuple has no members.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The canonicalized terms, materialized from the arena's cached
    /// subterms (a handful of `Arc` clones, not a rebuild).
    ///
    /// Shared-arena handles only; session handles go through
    /// [`crate::TermArena::terms`].
    pub fn terms(&self) -> Vec<Term> {
        arena::tuple_terms(self)
    }

    /// The single canonicalized term.
    ///
    /// # Panics
    ///
    /// Panics if this canonical form holds more than one term.
    pub fn term(&self) -> Term {
        let mut ts = self.terms();
        assert_eq!(ts.len(), 1, "canonical form holds {} terms", ts.len());
        ts.pop().expect("length checked above")
    }

    /// Number of distinct variables in the canonical form.
    pub fn num_vars(&self) -> usize {
        self.nvars as usize
    }

    /// Instantiates the canonical form with fresh variables from `b`,
    /// producing terms renamed apart from everything else in `b`. Ground
    /// subterms are shared with the arena's cache instead of copied.
    ///
    /// Shared-arena handles only; session handles go through
    /// [`crate::TermArena::instantiate`].
    pub fn instantiate(&self, b: &mut Bindings) -> Vec<Term> {
        arena::tuple_instantiate(self, b)
    }

    /// Estimated heap footprint in bytes of an *unshared* copy, matching
    /// [`Term::heap_bytes`]. For the substitution-factored charge that
    /// counts shared structure once, see [`crate::charge_shared_bytes`].
    pub fn heap_bytes(&self) -> usize {
        arena::tree_bytes(self)
    }
}

/// Canonicalizes a tuple of terms *after resolving them* through `b`:
/// all bound variables are substituted out, and the remaining free variables
/// are renumbered in first-occurrence order across the whole tuple. The
/// result is interned in the process-wide shared arena — engine sessions use
/// [`crate::TermArena::canonicalize`] on their own arena instead.
pub fn canonicalize(b: &Bindings, ts: &[Term]) -> CanonicalTerm {
    arena::canonicalize_in(b, ts)
}

/// Canonicalizes the concatenation of two tuples without allocating the
/// concatenated slice. Equivalent to `canonicalize(b, [xs ++ ys])`; used on
/// the engine's node-key hot path (via the session arena's
/// [`crate::TermArena::canonicalize2`]).
pub fn canonicalize2(b: &Bindings, xs: &[Term], ys: &[Term]) -> CanonicalTerm {
    arena::canonicalize2_in(b, xs, ys)
}

/// Canonicalizes a single already-resolved term (no binding store needed).
pub fn canonical_key(t: &Term) -> CanonicalTerm {
    let empty = Bindings::new();
    canonicalize(&empty, std::slice::from_ref(t))
}

/// `true` if `t1` and `t2` are variants of each other (identical up to
/// variable renaming).
///
/// ```
/// use tablog_term::{is_variant, structure, var, atom, Var};
/// let a = structure("f", vec![var(Var(3)), var(Var(3)), var(Var(9))]);
/// let b = structure("f", vec![var(Var(0)), var(Var(0)), var(Var(1))]);
/// let c = structure("f", vec![var(Var(0)), var(Var(1)), var(Var(1))]);
/// assert!(is_variant(&a, &b));
/// assert!(!is_variant(&a, &c));
/// ```
pub fn is_variant(t1: &Term, t2: &Term) -> bool {
    canonical_key(t1) == canonical_key(t2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{atom, structure, var, Var};
    use std::sync::Arc;

    #[test]
    fn canonical_renumbers_first_occurrence() {
        let t = structure("f", vec![var(Var(7)), var(Var(2)), var(Var(7))]);
        let c = canonical_key(&t);
        assert_eq!(
            c.term(),
            structure("f", vec![var(Var(0)), var(Var(1)), var(Var(0))])
        );
        assert_eq!(c.num_vars(), 2);
    }

    #[test]
    fn canonicalize_resolves_bindings_first() {
        let mut b = Bindings::new();
        let x = b.fresh_var();
        let y = b.fresh_var();
        b.bind(x, atom("a"));
        let t = structure("f", vec![var(x), var(y)]);
        let c = canonicalize(&b, &[t]);
        assert_eq!(c.term(), structure("f", vec![atom("a"), var(Var(0))]));
    }

    #[test]
    fn variant_is_reflexive_and_respects_sharing() {
        let t = structure("f", vec![var(Var(5)), var(Var(5))]);
        assert!(is_variant(&t, &t));
        let u = structure("f", vec![var(Var(1)), var(Var(2))]);
        assert!(!is_variant(&t, &u));
    }

    #[test]
    fn tuple_canonicalization_shares_numbering() {
        let b = Bindings::new();
        let c = canonicalize(
            &b,
            &[var(Var(9)), structure("g", vec![var(Var(9)), var(Var(4))])],
        );
        assert_eq!(c.terms()[0], var(Var(0)));
        assert_eq!(c.terms()[1], structure("g", vec![var(Var(0)), var(Var(1))]));
    }

    #[test]
    fn canonicalize2_matches_concatenation() {
        let b = Bindings::new();
        let xs = [var(Var(3)), atom("a")];
        let ys = [structure("g", vec![var(Var(3))])];
        let joined: Vec<Term> = xs.iter().chain(ys.iter()).cloned().collect();
        assert_eq!(canonicalize2(&b, &xs, &ys), canonicalize(&b, &joined));
        assert_eq!(canonicalize2(&b, &xs, &[]), canonicalize(&b, &xs));
    }

    #[test]
    fn instantiate_renames_apart() {
        let t = structure("f", vec![var(Var(0)), var(Var(1))]);
        let c = canonical_key(&t);
        let mut b = Bindings::new();
        let _ = b.fresh_var(); // occupy index 0
        let out = c.instantiate(&mut b);
        let vs = out[0].vars();
        assert_eq!(vs.len(), 2);
        assert!(vs.iter().all(|v| v.index() >= 1));
    }

    #[test]
    fn instantiate_shares_ground_subterms() {
        let t = structure("f", vec![structure("g", vec![atom("a")]), var(Var(0))]);
        let c = canonical_key(&t);
        let mut b = Bindings::new();
        let o1 = c.instantiate(&mut b);
        let o2 = c.instantiate(&mut b);
        // Ground args come from the arena cache: same Arc allocation.
        match (&o1[0], &o2[0]) {
            (Term::Struct(_, a1), Term::Struct(_, a2)) => {
                match (&a1[0], &a2[0]) {
                    (Term::Struct(_, g1), Term::Struct(_, g2)) => {
                        assert!(Arc::ptr_eq(g1, g2));
                    }
                    other => panic!("unexpected shape {other:?}"),
                }
                // Non-ground parts are renamed apart per instantiation.
                assert_ne!(a1[1], a2[1]);
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn ground_terms_canonicalize_to_themselves() {
        let t = structure("f", vec![atom("a"), atom("b")]);
        let c = canonical_key(&t);
        assert_eq!(c.term(), t);
        assert_eq!(c.num_vars(), 0);
    }

    #[test]
    fn heap_bytes_match_unshared_term_estimate() {
        let t = structure("f", vec![atom("a"), structure("g", vec![var(Var(1))])]);
        let c = canonical_key(&t);
        assert_eq!(c.heap_bytes(), t.heap_bytes());
    }

    #[test]
    fn canonical_forms_work_as_hash_keys() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(canonical_key(&structure("f", vec![var(Var(3))])));
        assert!(set.contains(&canonical_key(&structure("f", vec![var(Var(8))]))));
        assert!(!set.contains(&canonical_key(&structure("f", vec![atom("a")]))));
    }

    #[test]
    fn copy_handles_compare_in_constant_size() {
        // The handle itself is small regardless of term size.
        assert!(std::mem::size_of::<CanonicalTerm>() <= 24);
        let c = canonical_key(&structure("f", vec![atom("a")]));
        let d = c; // Copy, no clone needed
        assert_eq!(c, d);
    }
}
