//! Variant canonicalization — the table-lookup discipline of XSB.
//!
//! Two terms are *variants* if they are identical up to a consistent
//! renaming of variables. XSB's tables are keyed on variants: a tabled call
//! is looked up by variant, and an answer is entered only if no variant of
//! it is already present (footnote 1 of the paper). We realize this by
//! mapping every term to a [`CanonicalTerm`] in which variables are numbered
//! `0, 1, 2, …` in first-occurrence order; two terms are variants iff their
//! canonical forms are equal, so canonical forms serve directly as hash keys.

use crate::bindings::Bindings;
use crate::term::{Term, Var};
use std::collections::HashMap;

/// A term (or term tuple) whose variables have been renumbered into
/// first-occurrence order. Equality on `CanonicalTerm` is variant equality
/// on the originals.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CanonicalTerm {
    terms: Vec<Term>,
    nvars: u32,
}

impl CanonicalTerm {
    /// The canonicalized terms.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// The single canonicalized term.
    ///
    /// # Panics
    ///
    /// Panics if this canonical form holds more than one term.
    pub fn term(&self) -> &Term {
        assert_eq!(
            self.terms.len(),
            1,
            "canonical form holds {} terms",
            self.terms.len()
        );
        &self.terms[0]
    }

    /// Number of distinct variables in the canonical form.
    pub fn num_vars(&self) -> usize {
        self.nvars as usize
    }

    /// Instantiates the canonical form with fresh variables from `b`,
    /// producing terms renamed apart from everything else in `b`.
    pub fn instantiate(&self, b: &mut Bindings) -> Vec<Term> {
        let base = b.fresh_block(self.nvars as usize);
        self.terms
            .iter()
            .map(|t| t.map_vars(&mut |v| Term::Var(Var(base.0 + v.0))))
            .collect()
    }

    /// Estimated heap footprint in bytes (for the table-space statistic).
    pub fn heap_bytes(&self) -> usize {
        self.terms.iter().map(Term::heap_bytes).sum()
    }
}

/// Canonicalizes a tuple of terms *after resolving them* through `b`:
/// all bound variables are substituted out, and the remaining free variables
/// are renumbered in first-occurrence order across the whole tuple.
pub fn canonicalize(b: &Bindings, ts: &[Term]) -> CanonicalTerm {
    let mut map: HashMap<Var, u32> = HashMap::new();
    let terms = ts
        .iter()
        .map(|t| {
            let r = b.resolve(t);
            r.map_vars(&mut |v| {
                let n = map.len() as u32;
                Term::Var(Var(*map.entry(v).or_insert(n)))
            })
        })
        .collect();
    CanonicalTerm {
        terms,
        nvars: map.len() as u32,
    }
}

/// Canonicalizes a single already-resolved term (no binding store needed).
pub fn canonical_key(t: &Term) -> CanonicalTerm {
    let empty = Bindings::new();
    canonicalize(&empty, std::slice::from_ref(t))
}

/// `true` if `t1` and `t2` are variants of each other (identical up to
/// variable renaming).
///
/// ```
/// use tablog_term::{is_variant, structure, var, atom, Var};
/// let a = structure("f", vec![var(Var(3)), var(Var(3)), var(Var(9))]);
/// let b = structure("f", vec![var(Var(0)), var(Var(0)), var(Var(1))]);
/// let c = structure("f", vec![var(Var(0)), var(Var(1)), var(Var(1))]);
/// assert!(is_variant(&a, &b));
/// assert!(!is_variant(&a, &c));
/// ```
pub fn is_variant(t1: &Term, t2: &Term) -> bool {
    canonical_key(t1) == canonical_key(t2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{atom, structure, var};

    #[test]
    fn canonical_renumbers_first_occurrence() {
        let t = structure("f", vec![var(Var(7)), var(Var(2)), var(Var(7))]);
        let c = canonical_key(&t);
        assert_eq!(
            c.term(),
            &structure("f", vec![var(Var(0)), var(Var(1)), var(Var(0))])
        );
        assert_eq!(c.num_vars(), 2);
    }

    #[test]
    fn canonicalize_resolves_bindings_first() {
        let mut b = Bindings::new();
        let x = b.fresh_var();
        let y = b.fresh_var();
        b.bind(x, atom("a"));
        let t = structure("f", vec![var(x), var(y)]);
        let c = canonicalize(&b, &[t]);
        assert_eq!(c.term(), &structure("f", vec![atom("a"), var(Var(0))]));
    }

    #[test]
    fn variant_is_reflexive_and_respects_sharing() {
        let t = structure("f", vec![var(Var(5)), var(Var(5))]);
        assert!(is_variant(&t, &t));
        let u = structure("f", vec![var(Var(1)), var(Var(2))]);
        assert!(!is_variant(&t, &u));
    }

    #[test]
    fn tuple_canonicalization_shares_numbering() {
        let b = Bindings::new();
        let c = canonicalize(
            &b,
            &[var(Var(9)), structure("g", vec![var(Var(9)), var(Var(4))])],
        );
        assert_eq!(c.terms()[0], var(Var(0)));
        assert_eq!(c.terms()[1], structure("g", vec![var(Var(0)), var(Var(1))]));
    }

    #[test]
    fn instantiate_renames_apart() {
        let t = structure("f", vec![var(Var(0)), var(Var(1))]);
        let c = canonical_key(&t);
        let mut b = Bindings::new();
        let _ = b.fresh_var(); // occupy index 0
        let out = c.instantiate(&mut b);
        let vs = out[0].vars();
        assert_eq!(vs.len(), 2);
        assert!(vs.iter().all(|v| v.index() >= 1));
    }

    #[test]
    fn ground_terms_canonicalize_to_themselves() {
        let t = structure("f", vec![atom("a"), atom("b")]);
        let c = canonical_key(&t);
        assert_eq!(c.term(), &t);
        assert_eq!(c.num_vars(), 0);
    }

    #[test]
    fn canonical_forms_work_as_hash_keys() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(canonical_key(&structure("f", vec![var(Var(3))])));
        assert!(set.contains(&canonical_key(&structure("f", vec![var(Var(8))]))));
        assert!(!set.contains(&canonical_key(&structure("f", vec![atom("a")]))));
    }
}
