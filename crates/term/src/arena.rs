//! A hash-consing arena for canonical terms — substitution factoring.
//!
//! XSB's tables owe much of their speed to *substitution factoring*: calls
//! and answers are stored in tries so that common prefixes (and, with
//! hash-consing, common subterms) are represented once, duplicate checks are
//! pointer comparisons, and table space is charged per shared node rather
//! than per copy (Swift & Warren, PAPERS.md). This module is our equivalent:
//! every canonical subterm is interned exactly once and identified by a
//! [`TermId`] — a `Copy` handle with O(1) equality and hashing. Interning is
//! *bottom-up*: a node is only created after its children, so structural
//! equality of subtrees collapses to id equality of children, and the
//! hash-cons lookup for a node costs one hash-map probe plus a shallow
//! comparison.
//!
//! Each node caches, at intern time:
//!
//! * its structural **hash** (deterministic across runs — it feeds golden
//!   traces and benchmark keys, so it must not depend on `RandomState`),
//! * its **tree bytes** — the footprint an unshared copy would occupy,
//!   matching [`Term::heap_bytes`], used by the table-space accounting,
//! * whether it is **ground**, and
//! * a materialized [`Term`] for the node, so converting back to ordinary
//!   terms is a handful of `Arc` clones rather than a rebuild.
//!
//! Arenas are *session-scoped*: each engine run owns a [`TermArena`], so the
//! interned forest is dropped with the session instead of accumulating for
//! the life of the thread (the pre-PR-4 `thread_local!` design leaked every
//! term ever interned across successive analyses in one process). Every
//! [`CanonicalTerm`](crate::CanonicalTerm) handle remembers which arena
//! minted it, and arena accessors `debug_assert` that handles are presented
//! back to their own arena. A process-wide shared arena (id 0) backs the
//! convenience free functions ([`crate::canonicalize`],
//! [`crate::canonical_key`], …) for callers that don't carry a session.

use crate::bindings::Bindings;
use crate::symbol::Sym;
use crate::term::{Term, Var};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Handle to an interned canonical (sub)term. Two ids from the same arena
/// are equal iff the terms they denote are structurally identical, so
/// equality and hashing are O(1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TermId(u32);

impl TermId {
    /// The id's index into the arena (dense, allocation order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The shape of an interned node. Children are ids, never inline terms.
#[derive(Clone, PartialEq, Eq)]
enum NodeKind {
    /// Canonical variable `_n` (first-occurrence numbering).
    Var(u32),
    /// 0-ary symbol.
    Atom(Sym),
    /// Machine integer.
    Int(i64),
    /// Compound term `f(c1, …, cn)`, `n ≥ 1`.
    Struct(Sym, Box<[TermId]>),
    /// Root of a canonical *tuple* (a call or answer). Tuples appear only
    /// as roots, never as children of other nodes.
    Tuple(Box<[TermId]>),
}

#[derive(Clone)]
struct Node {
    kind: NodeKind,
    /// Structural hash, cached so `CanonicalTerm` hashing never walks.
    hash: u64,
    /// Bytes an *unshared* copy of this subtree would occupy; matches
    /// [`Term::heap_bytes`] so accounting is comparable across PRs.
    tree_bytes: usize,
    /// `true` if no variable occurs below this node.
    ground: bool,
    /// Materialized term with canonical variable numbering. `None` only for
    /// `Tuple` nodes, which have no single-term reading.
    term: Option<Term>,
}

/// Counters describing one arena, for observability.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ArenaStats {
    /// Number of distinct interned nodes.
    pub nodes: usize,
    /// Total bytes of the interned (fully shared) forest: one node's worth
    /// per distinct subterm.
    pub interned_bytes: usize,
}

#[derive(Clone, Default)]
struct Arena {
    nodes: Vec<Node>,
    /// Hash-cons index: structural hash → candidate ids. Collisions are
    /// resolved by a shallow `NodeKind` comparison (children by id).
    buckets: HashMap<u64, Vec<u32>>,
}

/// Arena id of the process-wide shared arena backing the free functions.
pub(crate) const GLOBAL_ARENA_ID: u32 = 0;

/// Session arena ids start at 1; 0 is the shared arena.
static NEXT_ARENA_ID: AtomicU32 = AtomicU32::new(1);

fn global() -> &'static Mutex<Arena> {
    static GLOBAL: OnceLock<Mutex<Arena>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(Arena::default()))
}

fn with_global<R>(f: impl FnOnce(&mut Arena) -> R) -> R {
    let mut a = global().lock().unwrap_or_else(PoisonError::into_inner);
    f(&mut a)
}

/// Cost of one term node, shared with [`Term::heap_bytes`].
pub(crate) const fn node_bytes() -> usize {
    std::mem::size_of::<Term>()
}

/// splitmix64 finalizer — a cheap, deterministic bit mixer.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

fn combine(h: u64, w: u64) -> u64 {
    mix(h ^ w.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

impl Arena {
    fn node(&self, id: TermId) -> &Node {
        &self.nodes[id.index()]
    }

    fn hash_kind(&self, kind: &NodeKind) -> u64 {
        match kind {
            NodeKind::Var(n) => combine(1, u64::from(*n)),
            NodeKind::Atom(s) => combine(2, s.index() as u64),
            NodeKind::Int(i) => combine(3, *i as u64),
            NodeKind::Struct(s, kids) => {
                let mut h = combine(4, s.index() as u64);
                h = combine(h, kids.len() as u64);
                for k in kids.iter() {
                    h = combine(h, self.node(*k).hash);
                }
                h
            }
            NodeKind::Tuple(kids) => {
                let mut h = combine(5, kids.len() as u64);
                for k in kids.iter() {
                    h = combine(h, self.node(*k).hash);
                }
                h
            }
        }
    }

    fn intern(&mut self, kind: NodeKind) -> TermId {
        let hash = self.hash_kind(&kind);
        if let Some(bucket) = self.buckets.get(&hash) {
            for &i in bucket {
                if self.nodes[i as usize].kind == kind {
                    return TermId(i);
                }
            }
        }
        let (tree_bytes, ground, term) = match &kind {
            NodeKind::Var(n) => (node_bytes(), false, Some(Term::Var(Var(*n)))),
            NodeKind::Atom(s) => (node_bytes(), true, Some(Term::Atom(*s))),
            NodeKind::Int(i) => (node_bytes(), true, Some(Term::Int(*i))),
            NodeKind::Struct(s, kids) => {
                let mut bytes = node_bytes();
                let mut ground = true;
                let mut args = Vec::with_capacity(kids.len());
                for k in kids.iter() {
                    let n = self.node(*k);
                    bytes += n.tree_bytes;
                    ground &= n.ground;
                    args.push(n.term.clone().expect("tuple node nested under struct"));
                }
                (bytes, ground, Some(Term::Struct(*s, args.into())))
            }
            NodeKind::Tuple(kids) => {
                // The tuple wrapper itself is free: the seed accounting
                // summed the member terms' heap bytes with no container cost.
                let mut bytes = 0;
                let mut ground = true;
                for k in kids.iter() {
                    let n = self.node(*k);
                    bytes += n.tree_bytes;
                    ground &= n.ground;
                }
                (bytes, ground, None)
            }
        };
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            kind,
            hash,
            tree_bytes,
            ground,
            term,
        });
        self.buckets.entry(hash).or_default().push(id);
        TermId(id)
    }

    /// Interns the canonical form of `t` as seen through `b`, numbering free
    /// variables in first-occurrence order via `map`. No intermediate `Term`
    /// is allocated: the walk resolves bindings and interns bottom-up.
    fn canon(&mut self, b: &Bindings, t: &Term, map: &mut HashMap<Var, u32>) -> TermId {
        let w = b.walk(t);
        match w {
            Term::Var(v) => {
                let next = map.len() as u32;
                let n = *map.entry(*v).or_insert(next);
                self.intern(NodeKind::Var(n))
            }
            Term::Atom(s) => self.intern(NodeKind::Atom(*s)),
            Term::Int(i) => self.intern(NodeKind::Int(*i)),
            Term::Struct(s, args) => {
                let kids: Vec<TermId> = args.iter().map(|x| self.canon(b, x, map)).collect();
                self.intern(NodeKind::Struct(*s, kids.into()))
            }
        }
    }

    /// Materializes `id` with canonical variables shifted by `base`,
    /// reusing cached ground subterms wholesale.
    fn instantiate_node(&self, id: TermId, base: u32) -> Term {
        let n = self.node(id);
        if n.ground {
            return n.term.clone().expect("ground non-tuple node has a term");
        }
        match &n.kind {
            NodeKind::Var(k) => Term::Var(Var(base + *k)),
            NodeKind::Struct(s, kids) => {
                let args: Vec<Term> = kids
                    .iter()
                    .map(|&k| self.instantiate_node(k, base))
                    .collect();
                Term::Struct(*s, args.into())
            }
            // Atom/Int are ground (handled above); tuples never nest.
            _ => unreachable!("non-ground leaf in arena"),
        }
    }

    fn tuple_children(&self, root: TermId) -> &[TermId] {
        match &self.node(root).kind {
            NodeKind::Tuple(kids) => kids,
            _ => unreachable!("canonical root is always a tuple node"),
        }
    }

    fn tuple_terms(&self, root: TermId) -> Vec<Term> {
        self.tuple_children(root)
            .iter()
            .map(|&k| {
                self.node(k)
                    .term
                    .clone()
                    .expect("tuple members are non-tuple nodes")
            })
            .collect()
    }

    fn tuple_instantiate(&self, root: TermId, nvars: u32, b: &mut Bindings) -> Vec<Term> {
        let base = b.fresh_block(nvars as usize).0;
        self.tuple_children(root)
            .iter()
            .map(|&k| self.instantiate_node(k, base))
            .collect()
    }

    fn charge(&self, id: TermId, seen: &mut HashSet<TermId>) -> usize {
        if !seen.insert(id) {
            return 0;
        }
        let n = self.node(id);
        match &n.kind {
            NodeKind::Tuple(kids) => {
                let mut sum = 0;
                for &k in kids.iter() {
                    sum += self.charge(k, seen);
                }
                sum
            }
            NodeKind::Struct(_, kids) => {
                let mut sum = node_bytes();
                for &k in kids.iter() {
                    sum += self.charge(k, seen);
                }
                sum
            }
            _ => node_bytes(),
        }
    }

    fn stats(&self) -> ArenaStats {
        ArenaStats {
            nodes: self.nodes.len(),
            interned_bytes: self
                .nodes
                .iter()
                .map(|n| match n.kind {
                    NodeKind::Tuple(_) => 0,
                    _ => node_bytes(),
                })
                .sum(),
        }
    }

    fn canonicalize(&mut self, arena_id: u32, b: &Bindings, ts: &[Term]) -> CanonicalTerm {
        let mut map: HashMap<Var, u32> = HashMap::new();
        let ids: Vec<TermId> = ts.iter().map(|t| self.canon(b, t, &mut map)).collect();
        self.finish(arena_id, ids, map.len() as u32)
    }

    fn canonicalize2(
        &mut self,
        arena_id: u32,
        b: &Bindings,
        xs: &[Term],
        ys: &[Term],
    ) -> CanonicalTerm {
        let mut map: HashMap<Var, u32> = HashMap::new();
        let ids: Vec<TermId> = xs
            .iter()
            .chain(ys.iter())
            .map(|t| self.canon(b, t, &mut map))
            .collect();
        self.finish(arena_id, ids, map.len() as u32)
    }

    /// Interns a tuple of already-canonicalized member ids, returns the root.
    fn finish(&mut self, arena_id: u32, ids: Vec<TermId>, nvars: u32) -> CanonicalTerm {
        let root = self.intern(NodeKind::Tuple(ids.into()));
        let hash = self.node(root).hash;
        CanonicalTerm::from_parts(root, nvars, hash, arena_id)
    }
}

use super::variant::CanonicalTerm;

/// A session-scoped hash-consing term arena.
///
/// Every engine session owns one: canonical calls, answers, and node keys
/// are interned here, and the whole forest is released when the session's
/// [`Evaluation`](../tablog_engine) (or the arena itself) is dropped —
/// unlike the pre-PR-4 `thread_local!` interner, which retained every term
/// ever canonicalized for the life of the thread. The arena is `Send`, so a
/// session can migrate across threads and sessions on different threads
/// never contend.
///
/// Handles ([`CanonicalTerm`], [`TermId`]) are only meaningful with the
/// arena that minted them; accessors `debug_assert` this. Cloning an arena
/// snapshots the forest — handles stay valid against both copies.
#[derive(Clone)]
pub struct TermArena {
    id: u32,
    inner: Arena,
}

impl Default for TermArena {
    fn default() -> Self {
        TermArena::new()
    }
}

impl std::fmt::Debug for TermArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.inner.stats();
        f.debug_struct("TermArena")
            .field("id", &self.id)
            .field("nodes", &s.nodes)
            .field("interned_bytes", &s.interned_bytes)
            .finish()
    }
}

impl TermArena {
    /// A fresh, empty arena with a process-unique id.
    pub fn new() -> Self {
        TermArena {
            id: NEXT_ARENA_ID.fetch_add(1, Ordering::Relaxed),
            inner: Arena::default(),
        }
    }

    #[inline]
    fn check(&self, c: &CanonicalTerm) {
        debug_assert_eq!(
            c.arena_id(),
            self.id,
            "CanonicalTerm from arena {} used with arena {}",
            c.arena_id(),
            self.id
        );
    }

    /// Canonicalizes a tuple of terms after resolving them through `b`;
    /// see [`crate::canonicalize`].
    pub fn canonicalize(&mut self, b: &Bindings, ts: &[Term]) -> CanonicalTerm {
        self.inner.canonicalize(self.id, b, ts)
    }

    /// Canonicalizes the concatenation of two tuples without allocating the
    /// concatenated slice; see [`crate::canonicalize2`].
    pub fn canonicalize2(&mut self, b: &Bindings, xs: &[Term], ys: &[Term]) -> CanonicalTerm {
        self.inner.canonicalize2(self.id, b, xs, ys)
    }

    /// Canonicalizes a single already-resolved term.
    pub fn canonical_key(&mut self, t: &Term) -> CanonicalTerm {
        let empty = Bindings::new();
        self.canonicalize(&empty, std::slice::from_ref(t))
    }

    /// Number of member terms in `c`'s canonical tuple.
    pub fn tuple_len(&self, c: &CanonicalTerm) -> usize {
        self.check(c);
        self.inner.tuple_children(c.root_id()).len()
    }

    /// The canonicalized terms of `c`, materialized from cached subterms.
    pub fn terms(&self, c: &CanonicalTerm) -> Vec<Term> {
        self.check(c);
        self.inner.tuple_terms(c.root_id())
    }

    /// The single canonicalized term of `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` holds more than one term.
    pub fn term(&self, c: &CanonicalTerm) -> Term {
        let mut ts = self.terms(c);
        assert_eq!(ts.len(), 1, "canonical form holds {} terms", ts.len());
        ts.pop().expect("length checked above")
    }

    /// Instantiates `c` with fresh variables from `b`; ground subterms are
    /// shared with the arena's cache instead of copied.
    pub fn instantiate(&self, c: &CanonicalTerm, b: &mut Bindings) -> Vec<Term> {
        self.check(c);
        self.inner
            .tuple_instantiate(c.root_id(), c.num_vars() as u32, b)
    }

    /// Estimated heap footprint in bytes of an *unshared* copy of `c`,
    /// matching [`Term::heap_bytes`].
    pub fn heap_bytes(&self, c: &CanonicalTerm) -> usize {
        self.check(c);
        self.inner.node(c.root_id()).tree_bytes
    }

    /// Charges the bytes of every node reachable from `c` that is not
    /// already in `seen`, inserting as it goes — the substitution-factoring
    /// accounting: within one `seen` scope (a subgoal's table), shared
    /// structure is charged exactly once, at [`Term::heap_bytes`]'s
    /// per-node rate.
    pub fn charge_shared_bytes(&self, c: &CanonicalTerm, seen: &mut HashSet<TermId>) -> usize {
        self.check(c);
        self.inner.charge(c.root_id(), seen)
    }

    /// Snapshot of this arena's counters.
    pub fn stats(&self) -> ArenaStats {
        self.inner.stats()
    }
}

// --- Compat shim: the process-wide shared arena (id 0). -------------------
//
// The free functions below (and the convenience methods on `CanonicalTerm`)
// operate on a single shared arena behind a mutex. Engine sessions never
// touch it — they own a `TermArena` — so it only grows with what
// out-of-session callers (tests, CLI glue, analyzers' key construction)
// intern, and repeated analyses no longer accumulate state here.

pub(crate) fn canonicalize_in(b: &Bindings, ts: &[Term]) -> CanonicalTerm {
    with_global(|a| a.canonicalize(GLOBAL_ARENA_ID, b, ts))
}

pub(crate) fn canonicalize2_in(b: &Bindings, xs: &[Term], ys: &[Term]) -> CanonicalTerm {
    with_global(|a| a.canonicalize2(GLOBAL_ARENA_ID, b, xs, ys))
}

#[inline]
fn check_global(c: &CanonicalTerm) {
    debug_assert_eq!(
        c.arena_id(),
        GLOBAL_ARENA_ID,
        "session-arena CanonicalTerm used with the shared-arena free functions; \
         go through the owning TermArena instead"
    );
}

pub(crate) fn tuple_len(c: &CanonicalTerm) -> usize {
    check_global(c);
    with_global(|a| a.tuple_children(c.root_id()).len())
}

pub(crate) fn tuple_terms(c: &CanonicalTerm) -> Vec<Term> {
    check_global(c);
    with_global(|a| a.tuple_terms(c.root_id()))
}

pub(crate) fn tuple_instantiate(c: &CanonicalTerm, b: &mut Bindings) -> Vec<Term> {
    check_global(c);
    with_global(|a| a.tuple_instantiate(c.root_id(), c.num_vars() as u32, b))
}

pub(crate) fn tree_bytes(c: &CanonicalTerm) -> usize {
    check_global(c);
    with_global(|a| a.node(c.root_id()).tree_bytes)
}

/// Charges the bytes of every node reachable from `c` that is not already in
/// `seen`, against the process-wide shared arena. Engine tables use
/// [`TermArena::charge_shared_bytes`] on their session arena instead.
pub fn charge_shared_bytes(c: &CanonicalTerm, seen: &mut HashSet<TermId>) -> usize {
    check_global(c);
    with_global(|a| a.charge(c.root_id(), seen))
}

/// Snapshot of the process-wide shared arena's counters. Session arenas
/// report through [`TermArena::stats`]; this only reflects what the
/// convenience free functions have interned.
pub fn arena_stats() -> ArenaStats {
    with_global(|a| a.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{atom, int, structure, var};
    use crate::variant::{canonical_key, canonicalize};

    #[test]
    fn interning_is_idempotent() {
        let t = structure("f", vec![atom("a"), int(3)]);
        let c1 = canonical_key(&t);
        let c2 = canonical_key(&t);
        assert_eq!(c1.root_id(), c2.root_id());
    }

    #[test]
    fn distinct_terms_get_distinct_ids() {
        let c1 = canonical_key(&structure("f", vec![atom("a")]));
        let c2 = canonical_key(&structure("f", vec![atom("b")]));
        assert_ne!(c1.root_id(), c2.root_id());
    }

    #[test]
    fn variants_share_an_id() {
        let b = Bindings::new();
        let c1 = canonicalize(&b, &[structure("f", vec![var(Var(7)), var(Var(7))])]);
        let c2 = canonicalize(&b, &[structure("f", vec![var(Var(2)), var(Var(2))])]);
        assert_eq!(c1.root_id(), c2.root_id());
        let c3 = canonicalize(&b, &[structure("f", vec![var(Var(1)), var(Var(2))])]);
        assert_ne!(c1.root_id(), c3.root_id());
    }

    #[test]
    fn shared_structure_is_charged_once() {
        let sub = structure("g", vec![atom("a"), atom("b")]);
        let t = structure("f", vec![sub.clone(), sub.clone()]);
        let c = canonical_key(&t);
        // Unshared estimate counts the g-subtree twice…
        assert_eq!(c.heap_bytes(), t.heap_bytes());
        // …but the factored charge counts it once.
        let mut seen = HashSet::new();
        let charged = charge_shared_bytes(&c, &mut seen);
        let per_node = std::mem::size_of::<Term>();
        assert_eq!(charged, 4 * per_node); // f, g, a, b — not 7 nodes
                                           // Re-charging within the same scope is free.
        assert_eq!(charge_shared_bytes(&c, &mut seen), 0);
    }

    #[test]
    fn charge_matches_heap_bytes_without_sharing() {
        let t = structure("f", vec![atom("a"), structure("h", vec![int(1)])]);
        let c = canonical_key(&t);
        let mut seen = HashSet::new();
        assert_eq!(charge_shared_bytes(&c, &mut seen), t.heap_bytes());
    }

    #[test]
    fn arena_stats_grow_monotonically() {
        let before = arena_stats();
        // A fresh, never-before-interned atom must add at least one node.
        let _ = canonical_key(&structure(
            "arena_stats_probe",
            vec![atom("arena_stats_probe_leaf")],
        ));
        let after = arena_stats();
        assert!(after.nodes > before.nodes);
        assert!(after.interned_bytes > before.interned_bytes);
    }

    #[test]
    fn session_arena_round_trips_terms() {
        let mut a = TermArena::new();
        let t = structure("f", vec![atom("a"), structure("g", vec![var(Var(4))])]);
        let b = Bindings::new();
        let c = a.canonicalize(&b, std::slice::from_ref(&t));
        assert_eq!(
            a.terms(&c),
            vec![structure(
                "f",
                vec![atom("a"), structure("g", vec![var(Var(0))])]
            )]
        );
        assert_eq!(a.tuple_len(&c), 1);
        assert_eq!(a.heap_bytes(&c), t.heap_bytes());
        let mut seen = HashSet::new();
        assert_eq!(a.charge_shared_bytes(&c, &mut seen), t.heap_bytes());
    }

    #[test]
    fn session_arenas_are_independent_and_do_not_touch_the_shared_arena() {
        let global_before = arena_stats();
        let mut a1 = TermArena::new();
        let mut a2 = TermArena::new();
        let t = structure("session_probe", vec![int(1), int(2)]);
        let c1 = a1.canonical_key(&t);
        let c2 = a2.canonical_key(&t);
        // Both arenas start empty and intern the same shape: same dense ids,
        // but different owners.
        assert_eq!(c1.root_id(), c2.root_id());
        assert!(a1.stats().nodes > 0);
        // Session interning leaves the shared arena untouched.
        assert_eq!(arena_stats(), global_before);
    }

    #[test]
    fn dropping_a_session_arena_releases_its_forest() {
        let global_before = arena_stats();
        for _ in 0..8 {
            let mut a = TermArena::new();
            let c = a.canonical_key(&structure("leak_probe", vec![atom("x"), int(7)]));
            assert!(a.stats().interned_bytes > 0);
            let mut b = Bindings::new();
            assert_eq!(a.instantiate(&c, &mut b).len(), 1);
            // `a` dropped here: its forest goes with it.
        }
        assert_eq!(arena_stats(), global_before);
    }

    #[test]
    fn arena_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<TermArena>();
        assert_send::<CanonicalTerm>();
    }
}
