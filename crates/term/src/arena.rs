//! A hash-consing arena for canonical terms — substitution factoring.
//!
//! XSB's tables owe much of their speed to *substitution factoring*: calls
//! and answers are stored in tries so that common prefixes (and, with
//! hash-consing, common subterms) are represented once, duplicate checks are
//! pointer comparisons, and table space is charged per shared node rather
//! than per copy (Swift & Warren, PAPERS.md). This module is our equivalent:
//! every canonical subterm is interned exactly once and identified by a
//! [`TermId`] — a `Copy` handle with O(1) equality and hashing. Interning is
//! *bottom-up*: a node is only created after its children, so structural
//! equality of subtrees collapses to id equality of children, and the
//! hash-cons lookup for a node costs one hash-map probe plus a shallow
//! comparison.
//!
//! Each node caches, at intern time:
//!
//! * its structural **hash** (deterministic across runs — it feeds golden
//!   traces and benchmark keys, so it must not depend on `RandomState`),
//! * its **tree bytes** — the footprint an unshared copy would occupy,
//!   matching [`Term::heap_bytes`], used by the table-space accounting,
//! * whether it is **ground**, and
//! * a materialized [`Term`] for the node, so converting back to ordinary
//!   terms is a handful of `Rc` clones rather than a rebuild.
//!
//! The arena is thread-local: materialized terms hold [`Rc`]s (the crate's
//! terms are deliberately `!Send`), so ids are only meaningful on the thread
//! that interned them. [`CanonicalTerm`](crate::CanonicalTerm) is likewise
//! `!Send`, which makes cross-thread misuse unrepresentable rather than
//! merely discouraged.

use crate::bindings::Bindings;
use crate::symbol::Sym;
use crate::term::{Term, Var};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

/// Handle to an interned canonical (sub)term. Two ids are equal iff the
/// terms they denote are structurally identical, so equality and hashing
/// are O(1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TermId(u32);

impl TermId {
    /// The id's index into the arena (dense, allocation order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The shape of an interned node. Children are ids, never inline terms.
#[derive(Clone, PartialEq, Eq)]
enum NodeKind {
    /// Canonical variable `_n` (first-occurrence numbering).
    Var(u32),
    /// 0-ary symbol.
    Atom(Sym),
    /// Machine integer.
    Int(i64),
    /// Compound term `f(c1, …, cn)`, `n ≥ 1`.
    Struct(Sym, Box<[TermId]>),
    /// Root of a canonical *tuple* (a call or answer). Tuples appear only
    /// as roots, never as children of other nodes.
    Tuple(Box<[TermId]>),
}

struct Node {
    kind: NodeKind,
    /// Structural hash, cached so `CanonicalTerm` hashing never walks.
    hash: u64,
    /// Bytes an *unshared* copy of this subtree would occupy; matches
    /// [`Term::heap_bytes`] so accounting is comparable across PRs.
    tree_bytes: usize,
    /// `true` if no variable occurs below this node.
    ground: bool,
    /// Materialized term with canonical variable numbering. `None` only for
    /// `Tuple` nodes, which have no single-term reading.
    term: Option<Term>,
}

/// Counters describing the current thread's arena, for observability.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ArenaStats {
    /// Number of distinct interned nodes.
    pub nodes: usize,
    /// Total bytes of the interned (fully shared) forest: one node's worth
    /// per distinct subterm.
    pub interned_bytes: usize,
}

#[derive(Default)]
struct Arena {
    nodes: Vec<Node>,
    /// Hash-cons index: structural hash → candidate ids. Collisions are
    /// resolved by a shallow `NodeKind` comparison (children by id).
    buckets: HashMap<u64, Vec<u32>>,
}

thread_local! {
    static ARENA: RefCell<Arena> = RefCell::new(Arena::default());
}

fn with_arena<R>(f: impl FnOnce(&mut Arena) -> R) -> R {
    ARENA.with(|a| f(&mut a.borrow_mut()))
}

/// Cost of one term node, shared with [`Term::heap_bytes`].
pub(crate) const fn node_bytes() -> usize {
    std::mem::size_of::<Term>()
}

/// splitmix64 finalizer — a cheap, deterministic bit mixer.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

fn combine(h: u64, w: u64) -> u64 {
    mix(h ^ w.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

impl Arena {
    fn node(&self, id: TermId) -> &Node {
        &self.nodes[id.index()]
    }

    fn hash_kind(&self, kind: &NodeKind) -> u64 {
        match kind {
            NodeKind::Var(n) => combine(1, u64::from(*n)),
            NodeKind::Atom(s) => combine(2, s.index() as u64),
            NodeKind::Int(i) => combine(3, *i as u64),
            NodeKind::Struct(s, kids) => {
                let mut h = combine(4, s.index() as u64);
                h = combine(h, kids.len() as u64);
                for k in kids.iter() {
                    h = combine(h, self.node(*k).hash);
                }
                h
            }
            NodeKind::Tuple(kids) => {
                let mut h = combine(5, kids.len() as u64);
                for k in kids.iter() {
                    h = combine(h, self.node(*k).hash);
                }
                h
            }
        }
    }

    fn intern(&mut self, kind: NodeKind) -> TermId {
        let hash = self.hash_kind(&kind);
        if let Some(bucket) = self.buckets.get(&hash) {
            for &i in bucket {
                if self.nodes[i as usize].kind == kind {
                    return TermId(i);
                }
            }
        }
        let (tree_bytes, ground, term) = match &kind {
            NodeKind::Var(n) => (node_bytes(), false, Some(Term::Var(Var(*n)))),
            NodeKind::Atom(s) => (node_bytes(), true, Some(Term::Atom(*s))),
            NodeKind::Int(i) => (node_bytes(), true, Some(Term::Int(*i))),
            NodeKind::Struct(s, kids) => {
                let mut bytes = node_bytes();
                let mut ground = true;
                let mut args = Vec::with_capacity(kids.len());
                for k in kids.iter() {
                    let n = self.node(*k);
                    bytes += n.tree_bytes;
                    ground &= n.ground;
                    args.push(n.term.clone().expect("tuple node nested under struct"));
                }
                (bytes, ground, Some(Term::Struct(*s, args.into())))
            }
            NodeKind::Tuple(kids) => {
                // The tuple wrapper itself is free: the seed accounting
                // summed the member terms' heap bytes with no container cost.
                let mut bytes = 0;
                let mut ground = true;
                for k in kids.iter() {
                    let n = self.node(*k);
                    bytes += n.tree_bytes;
                    ground &= n.ground;
                }
                (bytes, ground, None)
            }
        };
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            kind,
            hash,
            tree_bytes,
            ground,
            term,
        });
        self.buckets.entry(hash).or_default().push(id);
        TermId(id)
    }

    /// Interns the canonical form of `t` as seen through `b`, numbering free
    /// variables in first-occurrence order via `map`. No intermediate `Term`
    /// is allocated: the walk resolves bindings and interns bottom-up.
    fn canon(&mut self, b: &Bindings, t: &Term, map: &mut HashMap<Var, u32>) -> TermId {
        let w = b.walk(t);
        match w {
            Term::Var(v) => {
                let next = map.len() as u32;
                let n = *map.entry(*v).or_insert(next);
                self.intern(NodeKind::Var(n))
            }
            Term::Atom(s) => self.intern(NodeKind::Atom(*s)),
            Term::Int(i) => self.intern(NodeKind::Int(*i)),
            Term::Struct(s, args) => {
                let kids: Vec<TermId> = args.iter().map(|x| self.canon(b, x, map)).collect();
                self.intern(NodeKind::Struct(*s, kids.into()))
            }
        }
    }

    /// Materializes `id` with canonical variables shifted by `base`,
    /// reusing cached ground subterms wholesale.
    fn instantiate_node(&self, id: TermId, base: u32) -> Term {
        let n = self.node(id);
        if n.ground {
            return n.term.clone().expect("ground non-tuple node has a term");
        }
        match &n.kind {
            NodeKind::Var(k) => Term::Var(Var(base + *k)),
            NodeKind::Struct(s, kids) => {
                let args: Vec<Term> = kids
                    .iter()
                    .map(|&k| self.instantiate_node(k, base))
                    .collect();
                Term::Struct(*s, args.into())
            }
            // Atom/Int are ground (handled above); tuples never nest.
            _ => unreachable!("non-ground leaf in arena"),
        }
    }

    fn tuple_children(&self, root: TermId) -> &[TermId] {
        match &self.node(root).kind {
            NodeKind::Tuple(kids) => kids,
            _ => unreachable!("canonical root is always a tuple node"),
        }
    }

    fn charge(&self, id: TermId, seen: &mut HashSet<TermId>) -> usize {
        if !seen.insert(id) {
            return 0;
        }
        let n = self.node(id);
        match &n.kind {
            NodeKind::Tuple(kids) => {
                let mut sum = 0;
                for &k in kids.iter() {
                    sum += self.charge(k, seen);
                }
                sum
            }
            NodeKind::Struct(_, kids) => {
                let mut sum = node_bytes();
                for &k in kids.iter() {
                    sum += self.charge(k, seen);
                }
                sum
            }
            _ => node_bytes(),
        }
    }
}

/// Interns a tuple of already-canonicalized member ids and returns the root.
fn finish(a: &mut Arena, ids: Vec<TermId>, nvars: u32) -> super::variant::CanonicalTerm {
    let root = a.intern(NodeKind::Tuple(ids.into()));
    let hash = a.node(root).hash;
    super::variant::CanonicalTerm::from_parts(root, nvars, hash)
}

pub(crate) fn canonicalize_in(b: &Bindings, ts: &[Term]) -> super::variant::CanonicalTerm {
    with_arena(|a| {
        let mut map: HashMap<Var, u32> = HashMap::new();
        let ids: Vec<TermId> = ts.iter().map(|t| a.canon(b, t, &mut map)).collect();
        finish(a, ids, map.len() as u32)
    })
}

pub(crate) fn canonicalize2_in(
    b: &Bindings,
    xs: &[Term],
    ys: &[Term],
) -> super::variant::CanonicalTerm {
    with_arena(|a| {
        let mut map: HashMap<Var, u32> = HashMap::new();
        let ids: Vec<TermId> = xs
            .iter()
            .chain(ys.iter())
            .map(|t| a.canon(b, t, &mut map))
            .collect();
        finish(a, ids, map.len() as u32)
    })
}

pub(crate) fn tuple_len(root: TermId) -> usize {
    with_arena(|a| a.tuple_children(root).len())
}

pub(crate) fn tuple_terms(root: TermId) -> Vec<Term> {
    with_arena(|a| {
        a.tuple_children(root)
            .iter()
            .map(|&k| {
                a.node(k)
                    .term
                    .clone()
                    .expect("tuple members are non-tuple nodes")
            })
            .collect()
    })
}

pub(crate) fn tuple_instantiate(root: TermId, nvars: u32, b: &mut Bindings) -> Vec<Term> {
    let base = b.fresh_block(nvars as usize).0;
    with_arena(|a| {
        a.tuple_children(root)
            .iter()
            .map(|&k| a.instantiate_node(k, base))
            .collect()
    })
}

pub(crate) fn tree_bytes(root: TermId) -> usize {
    with_arena(|a| a.node(root).tree_bytes)
}

/// Charges the bytes of every node reachable from `c` that is not already in
/// `seen`, inserting as it goes. This is the substitution-factoring
/// accounting: within one `seen` scope (a subgoal's table), shared structure
/// is charged exactly once, at [`Term::heap_bytes`]'s per-node rate.
pub fn charge_shared_bytes(c: &super::variant::CanonicalTerm, seen: &mut HashSet<TermId>) -> usize {
    with_arena(|a| a.charge(c.root_id(), seen))
}

/// Snapshot of this thread's arena counters.
pub fn arena_stats() -> ArenaStats {
    with_arena(|a| ArenaStats {
        nodes: a.nodes.len(),
        interned_bytes: a
            .nodes
            .iter()
            .map(|n| match n.kind {
                NodeKind::Tuple(_) => 0,
                _ => node_bytes(),
            })
            .sum(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{atom, int, structure, var};
    use crate::variant::{canonical_key, canonicalize};

    #[test]
    fn interning_is_idempotent() {
        let t = structure("f", vec![atom("a"), int(3)]);
        let c1 = canonical_key(&t);
        let c2 = canonical_key(&t);
        assert_eq!(c1.root_id(), c2.root_id());
    }

    #[test]
    fn distinct_terms_get_distinct_ids() {
        let c1 = canonical_key(&structure("f", vec![atom("a")]));
        let c2 = canonical_key(&structure("f", vec![atom("b")]));
        assert_ne!(c1.root_id(), c2.root_id());
    }

    #[test]
    fn variants_share_an_id() {
        let b = Bindings::new();
        let c1 = canonicalize(&b, &[structure("f", vec![var(Var(7)), var(Var(7))])]);
        let c2 = canonicalize(&b, &[structure("f", vec![var(Var(2)), var(Var(2))])]);
        assert_eq!(c1.root_id(), c2.root_id());
        let c3 = canonicalize(&b, &[structure("f", vec![var(Var(1)), var(Var(2))])]);
        assert_ne!(c1.root_id(), c3.root_id());
    }

    #[test]
    fn shared_structure_is_charged_once() {
        let sub = structure("g", vec![atom("a"), atom("b")]);
        let t = structure("f", vec![sub.clone(), sub.clone()]);
        let c = canonical_key(&t);
        // Unshared estimate counts the g-subtree twice…
        assert_eq!(c.heap_bytes(), t.heap_bytes());
        // …but the factored charge counts it once.
        let mut seen = HashSet::new();
        let charged = charge_shared_bytes(&c, &mut seen);
        let per_node = std::mem::size_of::<Term>();
        assert_eq!(charged, 4 * per_node); // f, g, a, b — not 7 nodes
                                           // Re-charging within the same scope is free.
        assert_eq!(charge_shared_bytes(&c, &mut seen), 0);
    }

    #[test]
    fn charge_matches_heap_bytes_without_sharing() {
        let t = structure("f", vec![atom("a"), structure("h", vec![int(1)])]);
        let c = canonical_key(&t);
        let mut seen = HashSet::new();
        assert_eq!(charge_shared_bytes(&c, &mut seen), t.heap_bytes());
    }

    #[test]
    fn arena_stats_grow_monotonically() {
        let before = arena_stats();
        // A fresh, never-before-interned atom must add at least one node.
        let _ = canonical_key(&structure(
            "arena_stats_probe",
            vec![atom("arena_stats_probe_leaf")],
        ));
        let after = arena_stats();
        assert!(after.nodes > before.nodes);
        assert!(after.interned_bytes > before.interned_bytes);
    }
}
