//! The binding store: a growable array of variable cells plus a trail.
//!
//! The engine allocates fresh variables out of a single `Bindings` store per
//! evaluation and records every destructive bind on a trail so that
//! alternative clauses can be tried after [`Bindings::undo_to`] — the same
//! discipline a WAM uses, minus the structure-copying heap.

use crate::term::{Term, Var};

/// A position in the trail, captured before a unification attempt and used
/// to roll back on failure. See [`Bindings::mark`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TrailMark(usize);

/// A store of variable bindings with a backtracking trail.
#[derive(Clone, Debug, Default)]
pub struct Bindings {
    cells: Vec<Option<Term>>,
    trail: Vec<Var>,
}

impl Bindings {
    /// Creates an empty store.
    pub fn new() -> Self {
        Bindings::default()
    }

    /// Number of variables ever allocated.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if no variable has been allocated.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Allocates a fresh, unbound variable.
    pub fn fresh_var(&mut self) -> Var {
        let v = Var(self.cells.len() as u32);
        self.cells.push(None);
        v
    }

    /// Allocates `n` fresh variables and returns the first; the rest follow
    /// consecutively. Used to rename a stored clause apart in O(1) cells.
    pub fn fresh_block(&mut self, n: usize) -> Var {
        let first = Var(self.cells.len() as u32);
        self.cells.resize(self.cells.len() + n, None);
        first
    }

    /// The binding of `v`, if any. Does not follow chains; see
    /// [`Bindings::walk`].
    pub fn lookup(&self, v: Var) -> Option<&Term> {
        self.cells.get(v.index()).and_then(|c| c.as_ref())
    }

    /// Binds `v` to `t`, recording the bind on the trail.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `v` is already bound — rebinding without
    /// undoing indicates an engine bug.
    pub fn bind(&mut self, v: Var, t: Term) {
        debug_assert!(
            self.cells[v.index()].is_none(),
            "variable _{} bound twice",
            v.0
        );
        self.cells[v.index()] = Some(t);
        self.trail.push(v);
    }

    /// Captures the current trail position.
    pub fn mark(&self) -> TrailMark {
        TrailMark(self.trail.len())
    }

    /// Unbinds every variable bound since `mark`.
    pub fn undo_to(&mut self, mark: TrailMark) {
        while self.trail.len() > mark.0 {
            let v = self.trail.pop().expect("trail underflow");
            self.cells[v.index()] = None;
        }
    }

    /// Follows binding chains until an unbound variable or a non-variable
    /// term is reached. Returns the final term shallowly (arguments are not
    /// resolved).
    pub fn walk<'a>(&'a self, t: &'a Term) -> &'a Term {
        let mut cur = t;
        while let Term::Var(v) = cur {
            match self.lookup(*v) {
                Some(next) => cur = next,
                None => break,
            }
        }
        cur
    }

    /// Returns a copy of `t` with all bindings applied recursively; the
    /// result mentions only unbound variables.
    pub fn resolve(&self, t: &Term) -> Term {
        let w = self.walk(t);
        match w {
            Term::Struct(s, args) => {
                let new: Vec<Term> = args.iter().map(|a| self.resolve(a)).collect();
                Term::Struct(*s, new.into())
            }
            other => other.clone(),
        }
    }

    /// Resolves a slice of terms; convenience over [`Bindings::resolve`].
    pub fn resolve_all(&self, ts: &[Term]) -> Vec<Term> {
        ts.iter().map(|t| self.resolve(t)).collect()
    }

    /// `true` if applying the current bindings to `t` would not terminate:
    /// some variable reachable from `t` is bound, directly or through other
    /// bindings, to a structure containing itself. Only [`crate::unify`]
    /// (no occur check) can create such bindings; [`Bindings::resolve`]
    /// diverges on them, so check first when cyclic bindings are possible.
    pub fn is_cyclic(&self, t: &Term) -> bool {
        fn go(b: &Bindings, t: &Term, path: &mut Vec<Var>) -> bool {
            match t {
                Term::Var(v) => {
                    if path.contains(v) {
                        return true;
                    }
                    match b.lookup(*v) {
                        Some(bound) => {
                            path.push(*v);
                            let cyclic = go(b, bound, path);
                            path.pop();
                            cyclic
                        }
                        None => false,
                    }
                }
                Term::Struct(_, args) => args.iter().any(|a| go(b, a, path)),
                _ => false,
            }
        }
        go(self, t, &mut Vec::new())
    }

    /// `true` if `v` occurs in `t` after applying current bindings.
    /// This is the occur check used by [`crate::unify_occurs`].
    pub fn occurs(&self, v: Var, t: &Term) -> bool {
        match self.walk(t) {
            Term::Var(w) => *w == v,
            Term::Struct(_, args) => args.iter().any(|a| self.occurs(v, a)),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{atom, structure, var};

    #[test]
    fn fresh_vars_are_distinct_and_unbound() {
        let mut b = Bindings::new();
        let v1 = b.fresh_var();
        let v2 = b.fresh_var();
        assert_ne!(v1, v2);
        assert!(b.lookup(v1).is_none());
    }

    #[test]
    fn bind_and_walk_follow_chains() {
        let mut b = Bindings::new();
        let v1 = b.fresh_var();
        let v2 = b.fresh_var();
        b.bind(v1, var(v2));
        b.bind(v2, atom("end"));
        assert_eq!(b.walk(&var(v1)), &atom("end"));
    }

    #[test]
    fn undo_restores_unbound_state() {
        let mut b = Bindings::new();
        let v = b.fresh_var();
        let m = b.mark();
        b.bind(v, atom("x"));
        assert!(b.lookup(v).is_some());
        b.undo_to(m);
        assert!(b.lookup(v).is_none());
    }

    #[test]
    fn undo_is_selective() {
        let mut b = Bindings::new();
        let v1 = b.fresh_var();
        let v2 = b.fresh_var();
        b.bind(v1, atom("keep"));
        let m = b.mark();
        b.bind(v2, atom("drop"));
        b.undo_to(m);
        assert_eq!(b.lookup(v1), Some(&atom("keep")));
        assert!(b.lookup(v2).is_none());
    }

    #[test]
    fn resolve_substitutes_deeply() {
        let mut b = Bindings::new();
        let v = b.fresh_var();
        b.bind(v, atom("a"));
        let t = structure("f", vec![structure("g", vec![var(v)])]);
        assert_eq!(
            b.resolve(&t),
            structure("f", vec![structure("g", vec![atom("a")])])
        );
    }

    #[test]
    fn fresh_block_allocates_consecutively() {
        let mut b = Bindings::new();
        let _ = b.fresh_var();
        let first = b.fresh_block(3);
        assert_eq!(first, Var(1));
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn occurs_sees_through_bindings() {
        let mut b = Bindings::new();
        let v = b.fresh_var();
        let w = b.fresh_var();
        b.bind(w, structure("f", vec![var(v)]));
        assert!(b.occurs(v, &var(w)));
        assert!(!b.occurs(v, &atom("a")));
    }

    #[test]
    fn is_cyclic_detects_self_reference_but_not_sharing() {
        let mut b = Bindings::new();
        let v = b.fresh_var();
        let w = b.fresh_var();
        // Sharing: both arguments mention the same (acyclic) variable.
        b.bind(w, atom("a"));
        let shared = structure("f", vec![var(w), var(w)]);
        assert!(!b.is_cyclic(&shared));
        // Cycle through a chain: v -> f(v).
        b.bind(v, structure("f", vec![var(v)]));
        assert!(b.is_cyclic(&var(v)));
        assert!(b.is_cyclic(&structure("g", vec![var(v)])));
        assert!(!b.is_cyclic(&var(w)));
    }
}
