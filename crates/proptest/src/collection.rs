//! Collection strategies (`prop::collection::vec`).

use crate::strategy::{BoxedStrategy, Strategy};
use std::ops::Range;
use std::rc::Rc;

/// Generates a `Vec` whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S>(element: S, size: Range<usize>) -> BoxedStrategy<Vec<S::Value>>
where
    S: Strategy + 'static,
    S::Value: 'static,
{
    assert!(
        size.start < size.end,
        "empty size range for collection::vec"
    );
    let element = Rc::new(element);
    let elem = element.clone();
    crate::strategy::from_fn(move |rng| {
        let len = size.generate(rng);
        (0..len).map(|_| elem.generate(rng)).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_respects_size_and_element_bounds() {
        let s = vec(0u8..4, 2..6);
        let mut rng = TestRng::deterministic("collection-tests");
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }
}
