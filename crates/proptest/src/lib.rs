//! An offline, dependency-free stand-in for the `proptest` crate.
//!
//! The workspace's property tests were written against the real proptest
//! API, but this build environment has no access to crates.io. This crate
//! re-implements the subset of that API the tests use — `Strategy` with
//! `prop_map`/`prop_recursive`, `Just`, ranges and tuples as strategies,
//! `prop::collection::vec`, and the `proptest!`/`prop_oneof!`/`prop_assert*`
//! macros — on top of a small deterministic PRNG.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the assertion message instead of a minimized counterexample.
//! * **Deterministic seeding.** Every test derives its seed from its own
//!   name, so runs are reproducible and `proptest-regressions` files are
//!   not consulted.
//! * **Fixed-size generation.** `prop_recursive` decays geometrically
//!   toward leaves rather than targeting a desired node count.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Mirror of proptest's `prop` path alias (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// `prop_assert!` — no shrinking here, so it is a plain `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!` — plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `prop_assert_ne!` — plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        let arms = vec![$($crate::strategy::Strategy::boxed($s)),+];
        $crate::strategy::one_of(arms)
    }};
}

/// The test harness macro: each `fn name(x in strat, …) { body }` becomes a
/// `#[test]` that generates `cases` inputs and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                // Property bodies may recurse deeply over generated
                // structures; give them a generous stack like proptest's
                // own fork mode does.
                ::std::thread::Builder::new()
                    .stack_size(64 * 1024 * 1024)
                    .spawn(|| {
                        let config: $crate::test_runner::ProptestConfig = $cfg;
                        let mut rng = $crate::test_runner::TestRng::deterministic(
                            concat!(file!(), "::", stringify!($name)),
                        );
                        for case in 0..config.cases {
                            $(let $arg =
                                $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                            let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                                (move || {
                                    $body
                                    #[allow(unreachable_code)]
                                    Ok(())
                                })();
                            if let ::std::result::Result::Err(e) = outcome {
                                panic!("proptest case {case} rejected: {e:?}");
                            }
                        }
                    })
                    .expect("spawn proptest worker thread")
                    .join()
                    .unwrap_or_else(|e| ::std::panic::resume_unwind(e));
            }
        )*
    };
}
