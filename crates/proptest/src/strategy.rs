//! Strategies: composable random-value generators.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// A generator of values of type `Self::Value`, composable with
/// `prop_map`/`prop_recursive` and boxable for heterogeneous choice.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases the strategy behind an `Rc`, enabling `clone()` and
    /// storage in homogeneous collections.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = Rc::new(self);
        BoxedStrategy(Rc::new(move |rng| inner.generate(rng)))
    }

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> U + 'static,
        U: 'static,
    {
        let inner = self.boxed();
        BoxedStrategy(Rc::new(move |rng| f(inner.generate(rng))))
    }

    /// Builds a recursive strategy: `recurse` wraps the strategy for one
    /// more level of structure, nested up to `depth` levels, with the
    /// generator decaying toward `self` (the leaf distribution) so terms
    /// stay small. The `_desired_size`/`_expected_branch` hints of the real
    /// API are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            let leaf = leaf.clone();
            current = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                // One leaf in three keeps expected size finite and shallow.
                if rng.below(3) == 0 {
                    leaf.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            }));
        }
        current
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }

    fn boxed(self) -> BoxedStrategy<T> {
        self
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Wraps a generator closure as a strategy.
pub(crate) fn from_fn<T, F>(f: F) -> BoxedStrategy<T>
where
    F: Fn(&mut TestRng) -> T + 'static,
{
    BoxedStrategy(Rc::new(f))
}

/// Uniform choice between type-erased strategies (`prop_oneof!`).
pub fn one_of<T: 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    BoxedStrategy(Rc::new(move |rng| {
        let i = rng.below(arms.len() as u64) as usize;
        arms[i].generate(rng)
    }))
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3usize..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let n = (-5i64..5).generate(&mut r);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn just_and_map_compose() {
        let mut r = rng();
        let s = Just(21u32).prop_map(|x| x * 2);
        assert_eq!(s.generate(&mut r), 42);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b) = (0u32..4, Just("x")).generate(&mut r);
        assert!(a < 4);
        assert_eq!(b, "x");
    }

    #[test]
    fn one_of_picks_every_arm_eventually() {
        let mut r = rng();
        let s = crate::prop_oneof![Just(0usize), Just(1usize), Just(2usize)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.generate(&mut r)] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn recursive_terminates_and_respects_depth() {
        #[derive(Debug)]
        enum T {
            Leaf,
            Node(Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf => 0,
                T::Node(i) => 1 + depth(i),
            }
        }
        let s = Just(0u8)
            .prop_map(|_| T::Leaf)
            .prop_recursive(4, 16, 1, |inner| inner.prop_map(|t| T::Node(Box::new(t))));
        let mut r = rng();
        for _ in 0..300 {
            assert!(depth(&s.generate(&mut r)) <= 4);
        }
    }
}
