//! Test configuration and the deterministic PRNG behind generation.

/// Per-test configuration; only `cases` is meaningful here.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to generate per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Error type test bodies may early-return with `return Ok(());` /
/// `Err(...)`. Carried for API compatibility; failures normally panic.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

/// A small xorshift* PRNG, seeded deterministically from the test's name so
/// every run generates the same inputs.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary label (the harness passes `file::test_name`).
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label, avoiding the zero state xorshift forbids.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("y");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::deterministic("bound");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
