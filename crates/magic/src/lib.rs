//! Magic-sets transformation and semi-naive bottom-up evaluation.
//!
//! This crate is the reproduction's stand-in for the *other* complete
//! evaluation strategy the paper discusses: bottom-up evaluation as used by
//! deductive database systems such as Coral, and the magic-set formulation
//! of goal-directed groundness analysis from Codish & Demoen (\[8\] in the
//! paper). The tabled engine gets call patterns for free from its call
//! table; a bottom-up system must *transform* the program with magic sets to
//! recover the same goal-directedness. Running both on the same abstract
//! program and checking the results coincide is one of the reproduction's
//! integration tests; timing them against each other is ablation C.
//!
//! The evaluator handles Datalog with builtins (every predicate the engine
//! knows, including the Prop-domain `$iff/N` family). All derived tuples are
//! ground — which the Prop and adorned-magic programs guarantee by
//! construction.
//!
//! # Example
//!
//! ```
//! use tablog_magic::{magic_transform, BottomUp, Rule};
//! use tablog_syntax::parse_program;
//!
//! let prog = parse_program(
//!     "path(X, Y) :- edge(X, Y).
//!      path(X, Y) :- edge(X, Z), path(Z, Y).
//!      edge(a, b). edge(b, c).")?;
//! let rules: Vec<Rule> = prog.clauses.iter()
//!     .map(|c| Rule { head: c.head.clone(), body: c.body.clone() })
//!     .collect();
//! // Query path(a, Y): first argument bound.
//! let mut b = tablog_term::Bindings::new();
//! let (query, _) = tablog_syntax::parse_term("path(a, Y)", &mut b)?;
//! let magic = magic_transform(&rules, &query, &b);
//! let mut eval = BottomUp::new(magic.rules.clone());
//! eval.run()?;
//! assert_eq!(magic.answers(&eval, &query, &b).len(), 2); // b and c
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::{HashMap, HashSet, VecDeque};
use tablog_engine::{lookup_builtin, BuiltinImpl, EngineError};
use tablog_term::{canonicalize, intern, sym_name, unify, Bindings, Functor, Term, Var};

/// A Horn rule `head :- body` (a fact when `body` is empty).
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// The head literal.
    pub head: Term,
    /// The body literals, in evaluation order.
    pub body: Vec<Term>,
}

impl Rule {
    /// Builds a rule, renumbering its variables compactly.
    pub fn new(head: Term, body: Vec<Term>) -> Self {
        Rule { head, body }
    }
}

/// An argument adornment: which arguments of a call are bound.
pub type Adornment = Vec<bool>;

fn adorned_name(f: Functor, a: &Adornment) -> Functor {
    let suffix: String = a.iter().map(|&b| if b { 'b' } else { 'f' }).collect();
    Functor {
        name: intern(&format!("{}^{}", sym_name(f.name), suffix)),
        arity: f.arity,
    }
}

fn magic_name(f: Functor, a: &Adornment) -> Functor {
    let suffix: String = a.iter().map(|&b| if b { 'b' } else { 'f' }).collect();
    let arity = a.iter().filter(|&&b| b).count();
    Functor {
        name: intern(&format!("m${}^{}", sym_name(f.name), suffix)),
        arity,
    }
}

fn rebuild(f: Functor, args: Vec<Term>) -> Term {
    if args.is_empty() {
        Term::Atom(f.name)
    } else {
        Term::Struct(f.name, args.into())
    }
}

/// Output of [`magic_transform`]: the adorned + magic rules, the seed fact,
/// and the adorned functor under which the query's answers will appear.
#[derive(Clone, Debug)]
pub struct MagicProgram {
    /// Transformed rules, including the magic seed (a bodyless rule).
    pub rules: Vec<Rule>,
    /// The adorned functor holding the query's answers.
    pub query: Functor,
    /// The magic functor holding the recorded call patterns of the query
    /// predicate (input patterns, cf. the paper's input groundness).
    pub magic_query: Functor,
}

impl MagicProgram {
    /// The answers to the original query: tuples of the adorned query
    /// relation that unify with the query goal (the relation also holds
    /// answers to magic-generated subqueries).
    pub fn answers(&self, eval: &BottomUp, query: &Term, b: &Bindings) -> Vec<Vec<Term>> {
        let q = b.resolve(query);
        eval.relation(self.query)
            .iter()
            .filter(|tuple| {
                let mut probe = Bindings::new();
                let n = q.vars().iter().map(|v| v.index() + 1).max().unwrap_or(0);
                probe.fresh_block(n);
                q.args()
                    .iter()
                    .zip(tuple.iter())
                    .all(|(x, y)| unify(&mut probe, x, y))
            })
            .cloned()
            .collect()
    }
}

/// Applies the magic-sets transformation (left-to-right sideways
/// information passing) to `rules` for the given `query` goal, whose bound
/// arguments are those ground under `b`.
///
/// Predicates with no rules are treated as builtins/EDB and left unadorned.
pub fn magic_transform(rules: &[Rule], query: &Term, b: &Bindings) -> MagicProgram {
    let idb: HashSet<Functor> = rules.iter().filter_map(|r| r.head.functor()).collect();
    let by_pred: HashMap<Functor, Vec<&Rule>> = {
        let mut m: HashMap<Functor, Vec<&Rule>> = HashMap::new();
        for r in rules {
            if let Some(f) = r.head.functor() {
                m.entry(f).or_default().push(r);
            }
        }
        m
    };

    let qf = query.functor().expect("query must be a callable term");
    let q_adornment: Adornment = query
        .args()
        .iter()
        .map(|t| b.resolve(t).is_ground())
        .collect();

    let mut out = Vec::new();
    let mut done: HashSet<(Functor, Adornment)> = HashSet::new();
    let mut queue: VecDeque<(Functor, Adornment)> = VecDeque::new();
    queue.push_back((qf, q_adornment.clone()));
    done.insert((qf, q_adornment.clone()));

    while let Some((f, adornment)) = queue.pop_front() {
        let af = adorned_name(f, &adornment);
        let mf = magic_name(f, &adornment);
        for rule in by_pred.get(&f).into_iter().flatten() {
            // Bound head variables under this adornment.
            let mut bound: HashSet<Var> = HashSet::new();
            let head_args = rule.head.args();
            for (arg, &is_b) in head_args.iter().zip(&adornment) {
                if is_b {
                    bound.extend(arg.vars());
                }
            }
            let magic_head_args: Vec<Term> = head_args
                .iter()
                .zip(&adornment)
                .filter(|(_, &is_b)| is_b)
                .map(|(t, _)| t.clone())
                .collect();
            let magic_lit = rebuild(mf, magic_head_args);

            let mut new_body = vec![magic_lit.clone()];
            for lit in &rule.body {
                let lf = match lit.functor() {
                    Some(lf) => lf,
                    None => {
                        new_body.push(lit.clone());
                        continue;
                    }
                };
                if idb.contains(&lf) {
                    let lit_adornment: Adornment = lit
                        .args()
                        .iter()
                        .map(|t| t.vars().iter().all(|v| bound.contains(v)))
                        .collect();
                    // Magic rule for this call site.
                    let m_lit_f = magic_name(lf, &lit_adornment);
                    let m_args: Vec<Term> = lit
                        .args()
                        .iter()
                        .zip(&lit_adornment)
                        .filter(|(_, &is_b)| is_b)
                        .map(|(t, _)| t.clone())
                        .collect();
                    out.push(Rule::new(rebuild(m_lit_f, m_args), new_body.clone()));
                    if done.insert((lf, lit_adornment.clone())) {
                        queue.push_back((lf, lit_adornment.clone()));
                    }
                    let a_lit = rebuild(adorned_name(lf, &lit_adornment), lit.args().to_vec());
                    new_body.push(a_lit);
                } else {
                    new_body.push(lit.clone());
                }
                bound.extend(lit.vars());
            }
            out.push(Rule::new(rebuild(af, rule.head.args().to_vec()), new_body));
        }
    }

    // Seed: the query's bound arguments.
    let seed_args: Vec<Term> = query
        .args()
        .iter()
        .zip(&q_adornment)
        .filter(|(_, &is_b)| is_b)
        .map(|(t, _)| b.resolve(t))
        .collect();
    let mqf = magic_name(qf, &q_adornment);
    out.push(Rule::new(rebuild(mqf, seed_args), Vec::new()));

    MagicProgram {
        rules: out,
        query: adorned_name(qf, &q_adornment),
        magic_query: mqf,
    }
}

/// A ground relation: the extension of one predicate.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    tuples: Vec<Vec<Term>>,
    set: HashSet<Vec<Term>>,
}

impl Relation {
    /// Tuples in insertion order.
    pub fn tuples(&self) -> &[Vec<Term>] {
        &self.tuples
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` if the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// `true` if the tuple is present.
    pub fn contains(&self, t: &[Term]) -> bool {
        self.set.contains(t)
    }

    fn insert(&mut self, t: Vec<Term>) -> bool {
        if self.set.insert(t.clone()) {
            self.tuples.push(t);
            true
        } else {
            false
        }
    }
}

/// Semi-naive bottom-up evaluator for Datalog-with-builtins.
///
/// Derived tuples must be ground; deriving a non-ground tuple is an error
/// (the magic/Prop programs never do).
#[derive(Clone, Debug)]
pub struct BottomUp {
    rules: Vec<Rule>,
    idb: HashSet<Functor>,
    relations: HashMap<Functor, Relation>,
    last_delta: HashMap<Functor, Relation>,
    /// Number of naive iterations performed.
    iterations: usize,
    /// Derivation attempts (join combinations tried).
    derivations: usize,
}

impl BottomUp {
    /// Creates an evaluator over `rules` (facts included as bodyless rules).
    pub fn new(rules: Vec<Rule>) -> Self {
        let idb = rules.iter().filter_map(|r| r.head.functor()).collect();
        BottomUp {
            rules,
            idb,
            relations: HashMap::new(),
            last_delta: HashMap::new(),
            iterations: 0,
            derivations: 0,
        }
    }

    /// The computed extension of `f` (empty if never derived).
    pub fn relation(&self, f: Functor) -> &[Vec<Term>] {
        self.relations.get(&f).map(|r| r.tuples()).unwrap_or(&[])
    }

    /// All functors with a non-empty extension.
    pub fn functors(&self) -> impl Iterator<Item = Functor> + '_ {
        self.relations.keys().copied()
    }

    /// Number of fixpoint iterations taken.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Number of derivation attempts (a proxy for join work).
    pub fn derivations(&self) -> usize {
        self.derivations
    }

    /// Runs to fixpoint.
    ///
    /// # Errors
    ///
    /// Propagates builtin errors, and reports non-ground derived tuples and
    /// unknown (undefined, non-builtin) body predicates.
    pub fn run(&mut self) -> Result<(), EngineError> {
        // Iteration 0: facts and rules whose bodies hold no IDB literal
        // (builtin-only bodies fire exactly once).
        let mut delta: HashMap<Functor, Relation> = HashMap::new();
        let rules = self.rules.clone();
        let no_delta = HashMap::new();
        for r in &rules {
            if self.idb_positions(r).is_empty() {
                let mut b = Bindings::new();
                let base = b.fresh_block(rule_nvars(r));
                let head = offset(&r.head, base);
                let body: Vec<Term> = r.body.iter().map(|l| offset(l, base)).collect();
                self.join(&head, &body, 0, usize::MAX, &no_delta, &mut b, &mut delta)?;
            }
        }
        self.promote(&mut delta);
        // Semi-naive loop.
        loop {
            self.iterations += 1;
            let mut new_delta: HashMap<Functor, Relation> = HashMap::new();
            let prev_delta = std::mem::take(&mut self.last_delta);
            for r in &rules {
                // One evaluation per IDB body position taking the delta.
                let idb_positions = self.idb_positions(r);
                for &dpos in &idb_positions {
                    let mut b = Bindings::new();
                    let base = b.fresh_block(rule_nvars(r));
                    let head = offset(&r.head, base);
                    let body: Vec<Term> = r.body.iter().map(|l| offset(l, base)).collect();
                    self.join(&head, &body, 0, dpos, &prev_delta, &mut b, &mut new_delta)?;
                }
            }
            let grew = self.promote(&mut new_delta);
            if !grew {
                break;
            }
        }
        Ok(())
    }

    fn idb_positions(&self, r: &Rule) -> Vec<usize> {
        r.body
            .iter()
            .enumerate()
            .filter(|(_, l)| l.functor().map(|f| self.idb.contains(&f)).unwrap_or(false))
            .map(|(i, _)| i)
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn join(
        &mut self,
        head: &Term,
        body: &[Term],
        pos: usize,
        dpos: usize,
        prev_delta: &HashMap<Functor, Relation>,
        b: &mut Bindings,
        out: &mut HashMap<Functor, Relation>,
    ) -> Result<(), EngineError> {
        if pos == body.len() {
            self.derivations += 1;
            let f = head
                .functor()
                .ok_or_else(|| EngineError::BadGoal(format!("{head}")))?;
            let args = b.resolve_all(head.args());
            if !args.iter().all(Term::is_ground) {
                return Err(EngineError::BadGoal(format!(
                    "bottom-up derived non-ground tuple {}",
                    rebuild(f, args)
                )));
            }
            let known = self
                .relations
                .get(&f)
                .map(|r| r.contains(&args))
                .unwrap_or(false);
            if !known {
                out.entry(f).or_default().insert(args);
            }
            return Ok(());
        }
        let lit = &body[pos];
        let f = lit
            .functor()
            .ok_or_else(|| EngineError::BadGoal(format!("{lit}")))?;
        if self.idb.contains(&f) {
            // Choose the source: delta at dpos, full otherwise.
            let source: Vec<Vec<Term>> = if pos == dpos {
                prev_delta
                    .get(&f)
                    .map(|r| r.tuples().to_vec())
                    .unwrap_or_default()
            } else {
                self.relations
                    .get(&f)
                    .map(|r| r.tuples().to_vec())
                    .unwrap_or_default()
            };
            for tuple in source {
                let m = b.mark();
                let ok = lit
                    .args()
                    .iter()
                    .zip(tuple.iter())
                    .all(|(x, y)| unify(b, x, y));
                if ok {
                    self.join(head, body, pos + 1, dpos, prev_delta, b, out)?;
                }
                b.undo_to(m);
            }
            Ok(())
        } else if let Some(imp) = lookup_builtin(f) {
            match imp {
                BuiltinImpl::Det(func) => {
                    let m = b.mark();
                    if func(b, lit.args())? {
                        self.join(head, body, pos + 1, dpos, prev_delta, b, out)?;
                    }
                    b.undo_to(m);
                    Ok(())
                }
                BuiltinImpl::NonDet(func) => {
                    for tuple in func(b, lit.args())? {
                        let m = b.mark();
                        let ok = lit
                            .args()
                            .iter()
                            .zip(tuple.iter())
                            .all(|(x, y)| unify(b, x, y));
                        if ok {
                            self.join(head, body, pos + 1, dpos, prev_delta, b, out)?;
                        }
                        b.undo_to(m);
                    }
                    Ok(())
                }
            }
        } else {
            Err(EngineError::UnknownPredicate(f))
        }
    }

    fn promote(&mut self, delta: &mut HashMap<Functor, Relation>) -> bool {
        let mut grew = false;
        for (f, rel) in delta.iter() {
            for t in rel.tuples() {
                if self.relations.entry(*f).or_default().insert(t.clone()) {
                    grew = true;
                }
            }
        }
        self.last_delta = std::mem::take(delta);
        grew
    }
}

fn rule_nvars(r: &Rule) -> usize {
    let mut vars = r.head.vars();
    for l in &r.body {
        for v in l.vars() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
    }
    // Rules may arrive with sparse numbering; allocate up to max index + 1.
    vars.iter().map(|v| v.index() + 1).max().unwrap_or(0)
}

fn offset(t: &Term, base: Var) -> Term {
    t.map_vars(&mut |v| Term::Var(Var(base.0 + v.0)))
}

/// Convenience: canonicalizes a tuple for set comparisons across engines.
pub fn canonical_tuple(ts: &[Term]) -> tablog_term::CanonicalTerm {
    let b = Bindings::new();
    canonicalize(&b, ts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tablog_syntax::{parse_program, parse_term};

    fn rules_of(src: &str) -> Vec<Rule> {
        parse_program(src)
            .unwrap()
            .clauses
            .iter()
            .map(|c| Rule::new(c.head.clone(), c.body.clone()))
            .collect()
    }

    const GRAPH: &str = "
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- edge(X, Z), path(Z, Y).
        edge(a, b). edge(b, c). edge(c, d).
    ";

    #[test]
    fn naive_bottom_up_computes_closure() {
        let mut e = BottomUp::new(rules_of(GRAPH));
        e.run().unwrap();
        assert_eq!(e.relation(Functor::new("path", 2)).len(), 6);
        assert_eq!(e.relation(Functor::new("edge", 2)).len(), 3);
        assert!(e.iterations() >= 3);
    }

    #[test]
    fn magic_restricts_computation() {
        let rules = rules_of(GRAPH);
        let mut b = Bindings::new();
        let (q, _) = parse_term("path(b, Y)", &mut b).unwrap();
        let magic = magic_transform(&rules, &q, &b);
        let mut e = BottomUp::new(magic.rules.clone());
        e.run().unwrap();
        // Answers to the query itself: path(b, c), path(b, d); the adorned
        // relation also holds answers to magic subqueries (from c and d).
        let answers = magic.answers(&e, &q, &b);
        assert_eq!(answers.len(), 2);
        assert!(answers.iter().all(|t| t[0] == tablog_term::atom("b")));
        // Nothing reachable from a was computed.
        assert!(e
            .relation(magic.query)
            .iter()
            .all(|t| t[0] != tablog_term::atom("a")));
        // Call patterns recorded in the magic relation: b, c, d reached.
        let calls = e.relation(magic.magic_query);
        assert_eq!(calls.len(), 3);
    }

    #[test]
    fn magic_with_open_query_falls_back_to_full() {
        let rules = rules_of(GRAPH);
        let mut b = Bindings::new();
        let (q, _) = parse_term("path(X, Y)", &mut b).unwrap();
        let magic = magic_transform(&rules, &q, &b);
        let mut e = BottomUp::new(magic.rules.clone());
        e.run().unwrap();
        assert_eq!(e.relation(magic.query).len(), 6);
    }

    #[test]
    fn builtins_in_rule_bodies() {
        let src = "
            num(1). num(2). num(3).
            big(X) :- num(X), X > 1.
            double(Y) :- num(X), Y is X * 2.
        ";
        let mut e = BottomUp::new(rules_of(src));
        e.run().unwrap();
        assert_eq!(e.relation(Functor::new("big", 1)).len(), 2);
        assert_eq!(e.relation(Functor::new("double", 1)).len(), 3);
    }

    #[test]
    fn iff_builtin_bottom_up() {
        // gp_ap as a bottom-up Datalog program.
        let src = "
            gp_ap(X1, X2, X3) :- '$iff'(X1), '$iff'(X2, X3).
            gp_ap(X1, X2, X3) :- '$iff'(X1, X, Xs), '$iff'(X3, X, Zs), gp_ap(Xs, X2, Zs).
        ";
        let mut e = BottomUp::new(rules_of(src));
        e.run().unwrap();
        let rel = e.relation(Functor::new("gp_ap", 3));
        assert_eq!(rel.len(), 4);
        let t = tablog_term::atom("true");
        let f = tablog_term::atom("false");
        assert!(rel.contains(&vec![t.clone(), t.clone(), t.clone()]));
        assert!(rel.contains(&vec![t.clone(), f.clone(), f.clone()]));
        assert!(!rel.contains(&vec![t.clone(), t.clone(), f.clone()]));
    }

    #[test]
    fn non_ground_derivation_is_reported() {
        let src = "p(X) :- q. q.";
        let mut e = BottomUp::new(rules_of(src));
        assert!(e.run().is_err());
    }

    #[test]
    fn unknown_predicate_is_reported() {
        let src = "p(X) :- mystery(X).";
        let mut e = BottomUp::new(rules_of(src));
        assert!(matches!(e.run(), Err(EngineError::UnknownPredicate(_))));
    }

    #[test]
    fn linear_and_nonlinear_recursion_agree() {
        let nonlinear = "
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- path(X, Z), path(Z, Y).
            edge(a, b). edge(b, c). edge(c, d).
        ";
        let mut e1 = BottomUp::new(rules_of(GRAPH));
        e1.run().unwrap();
        let mut e2 = BottomUp::new(rules_of(nonlinear));
        e2.run().unwrap();
        let f = Functor::new("path", 2);
        let s1: HashSet<_> = e1.relation(f).iter().cloned().collect();
        let s2: HashSet<_> = e2.relation(f).iter().cloned().collect();
        assert_eq!(s1, s2);
    }

    #[test]
    fn magic_agrees_with_tabled_engine() {
        let rules = rules_of(GRAPH);
        let mut b = Bindings::new();
        let (q, _) = parse_term("path(a, Y)", &mut b).unwrap();
        let magic = magic_transform(&rules, &q, &b);
        let mut e = BottomUp::new(magic.rules.clone());
        e.run().unwrap();
        let magic_answers: HashSet<Term> = magic
            .answers(&e, &q, &b)
            .iter()
            .map(|t| t[1].clone())
            .collect();

        let engine =
            tablog_engine::Engine::from_source(&format!(":- table path/2.\n{GRAPH}")).unwrap();
        let sols = engine.solve("path(a, Y)").unwrap();
        let tabled_answers: HashSet<Term> = sols.rows().iter().map(|r| r[0].clone()).collect();
        assert_eq!(magic_answers, tabled_answers);
    }
}
