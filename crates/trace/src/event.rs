//! Typed SLG trace events.
//!
//! [`TraceEvent`] is the borrowed form the engine constructs on its trace
//! path — it borrows term slices the engine materializes from its session
//! arena only when a sink is attached, so the untraced hot path never
//! allocates. Sinks that outlive the emission (ring buffers, determinism
//! tests) call [`TraceEvent::to_owned`] to get an [`OwnedEvent`].

use crate::json::escape;
use std::fmt::Write as _;
use tablog_term::{Functor, Term};

/// One SLG engine transition, borrowed from the engine's tables.
///
/// Every variant carries the predicate (`pred`) it concerns; byte counts
/// use the same heap-footprint estimate as `TableStats::table_bytes`. Term
/// payloads are canonical tuples (variables numbered `_0, _1, …` in
/// first-occurrence order), materialized by the engine from its arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent<'a> {
    /// A call created a fresh subgoal table entry.
    NewSubgoal {
        pred: Functor,
        call: &'a [Term],
        /// Heap bytes charged to the table for this call key.
        bytes: usize,
    },
    /// A program clause was resolved against a subgoal.
    ClauseResolution { pred: Functor },
    /// A new answer entered a subgoal's answer table.
    AnswerInsert {
        pred: Functor,
        answer: &'a [Term],
        /// Heap bytes charged to the table for this answer.
        bytes: usize,
    },
    /// An answer was derived again and rejected as a variant duplicate.
    DuplicateAnswer { pred: Functor, answer: &'a [Term] },
    /// An answer was returned to a consumer node.
    AnswerReturn { pred: Functor },
    /// The call-abstraction hook replaced a call key (e.g. depth-k).
    CallAbstracted {
        pred: Functor,
        original: &'a [Term],
        abstracted: &'a [Term],
    },
    /// The answer-widening hook replaced an answer (e.g. depth-k).
    AnswerWidened {
        pred: Functor,
        original: &'a [Term],
        widened: &'a [Term],
    },
    /// Forward subsumption reused an existing table for a new call.
    SubsumedCall {
        pred: Functor,
        call: &'a [Term],
        subsumer: &'a [Term],
    },
    /// A subgoal was marked complete.
    SubgoalComplete {
        pred: Functor,
        /// Answers in the completed table.
        answers: usize,
        /// Total heap bytes of the completed table.
        bytes: usize,
    },
}

impl TraceEvent<'_> {
    /// The snake_case event name used in the JSON schema.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::NewSubgoal { .. } => "new_subgoal",
            TraceEvent::ClauseResolution { .. } => "clause_resolution",
            TraceEvent::AnswerInsert { .. } => "answer_insert",
            TraceEvent::DuplicateAnswer { .. } => "duplicate_answer",
            TraceEvent::AnswerReturn { .. } => "answer_return",
            TraceEvent::CallAbstracted { .. } => "call_abstracted",
            TraceEvent::AnswerWidened { .. } => "answer_widened",
            TraceEvent::SubsumedCall { .. } => "subsumed_call",
            TraceEvent::SubgoalComplete { .. } => "subgoal_complete",
        }
    }

    /// The predicate this event concerns.
    pub fn pred(&self) -> Functor {
        match *self {
            TraceEvent::NewSubgoal { pred, .. }
            | TraceEvent::ClauseResolution { pred }
            | TraceEvent::AnswerInsert { pred, .. }
            | TraceEvent::DuplicateAnswer { pred, .. }
            | TraceEvent::AnswerReturn { pred }
            | TraceEvent::CallAbstracted { pred, .. }
            | TraceEvent::AnswerWidened { pred, .. }
            | TraceEvent::SubsumedCall { pred, .. }
            | TraceEvent::SubgoalComplete { pred, .. } => pred,
        }
    }

    /// Converts to the owned mirror, cloning any borrowed terms.
    pub fn to_owned(&self) -> OwnedEvent {
        match *self {
            TraceEvent::NewSubgoal { pred, call, bytes } => OwnedEvent::NewSubgoal {
                pred,
                call: call.to_vec(),
                bytes,
            },
            TraceEvent::ClauseResolution { pred } => OwnedEvent::ClauseResolution { pred },
            TraceEvent::AnswerInsert {
                pred,
                answer,
                bytes,
            } => OwnedEvent::AnswerInsert {
                pred,
                answer: answer.to_vec(),
                bytes,
            },
            TraceEvent::DuplicateAnswer { pred, answer } => OwnedEvent::DuplicateAnswer {
                pred,
                answer: answer.to_vec(),
            },
            TraceEvent::AnswerReturn { pred } => OwnedEvent::AnswerReturn { pred },
            TraceEvent::CallAbstracted {
                pred,
                original,
                abstracted,
            } => OwnedEvent::CallAbstracted {
                pred,
                original: original.to_vec(),
                abstracted: abstracted.to_vec(),
            },
            TraceEvent::AnswerWidened {
                pred,
                original,
                widened,
            } => OwnedEvent::AnswerWidened {
                pred,
                original: original.to_vec(),
                widened: widened.to_vec(),
            },
            TraceEvent::SubsumedCall {
                pred,
                call,
                subsumer,
            } => OwnedEvent::SubsumedCall {
                pred,
                call: call.to_vec(),
                subsumer: subsumer.to_vec(),
            },
            TraceEvent::SubgoalComplete {
                pred,
                answers,
                bytes,
            } => OwnedEvent::SubgoalComplete {
                pred,
                answers,
                bytes,
            },
        }
    }

    /// Renders the event as one JSON object (no trailing newline).
    ///
    /// Schema: `{"event": <kind>, "pred": "name/arity", ...}` with
    /// variant-specific fields; terms are rendered in canonical notation
    /// with variables numbered `_0, _1, …`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(64);
        let _ = write!(
            s,
            "{{\"event\":\"{}\",\"pred\":\"{}\"",
            self.kind(),
            escape(&self.pred().to_string())
        );
        match *self {
            TraceEvent::NewSubgoal { call, bytes, .. } => {
                let _ = write!(
                    s,
                    ",\"call\":\"{}\",\"bytes\":{bytes}",
                    escape(&render(call))
                );
            }
            TraceEvent::ClauseResolution { .. } | TraceEvent::AnswerReturn { .. } => {}
            TraceEvent::AnswerInsert { answer, bytes, .. } => {
                let _ = write!(
                    s,
                    ",\"answer\":\"{}\",\"bytes\":{bytes}",
                    escape(&render(answer))
                );
            }
            TraceEvent::DuplicateAnswer { answer, .. } => {
                let _ = write!(s, ",\"answer\":\"{}\"", escape(&render(answer)));
            }
            TraceEvent::CallAbstracted {
                original,
                abstracted,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"original\":\"{}\",\"abstracted\":\"{}\"",
                    escape(&render(original)),
                    escape(&render(abstracted))
                );
            }
            TraceEvent::AnswerWidened {
                original, widened, ..
            } => {
                let _ = write!(
                    s,
                    ",\"original\":\"{}\",\"widened\":\"{}\"",
                    escape(&render(original)),
                    escape(&render(widened))
                );
            }
            TraceEvent::SubsumedCall { call, subsumer, .. } => {
                let _ = write!(
                    s,
                    ",\"call\":\"{}\",\"subsumer\":\"{}\"",
                    escape(&render(call)),
                    escape(&render(subsumer))
                );
            }
            TraceEvent::SubgoalComplete { answers, bytes, .. } => {
                let _ = write!(s, ",\"answers\":{answers},\"bytes\":{bytes}");
            }
        }
        s.push('}');
        s
    }
}

/// Renders a canonical term tuple for the trace (comma-joined).
fn render(ts: &[Term]) -> String {
    let mut out = String::new();
    for (i, t) in ts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{t:?}");
    }
    out
}

/// The owned mirror of [`TraceEvent`], for sinks that retain events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OwnedEvent {
    NewSubgoal {
        pred: Functor,
        call: Vec<Term>,
        bytes: usize,
    },
    ClauseResolution {
        pred: Functor,
    },
    AnswerInsert {
        pred: Functor,
        answer: Vec<Term>,
        bytes: usize,
    },
    DuplicateAnswer {
        pred: Functor,
        answer: Vec<Term>,
    },
    AnswerReturn {
        pred: Functor,
    },
    CallAbstracted {
        pred: Functor,
        original: Vec<Term>,
        abstracted: Vec<Term>,
    },
    AnswerWidened {
        pred: Functor,
        original: Vec<Term>,
        widened: Vec<Term>,
    },
    SubsumedCall {
        pred: Functor,
        call: Vec<Term>,
        subsumer: Vec<Term>,
    },
    SubgoalComplete {
        pred: Functor,
        answers: usize,
        bytes: usize,
    },
}

impl OwnedEvent {
    /// Borrows back into the event form used for rendering.
    pub fn as_event(&self) -> TraceEvent<'_> {
        match self {
            OwnedEvent::NewSubgoal { pred, call, bytes } => TraceEvent::NewSubgoal {
                pred: *pred,
                call,
                bytes: *bytes,
            },
            OwnedEvent::ClauseResolution { pred } => TraceEvent::ClauseResolution { pred: *pred },
            OwnedEvent::AnswerInsert {
                pred,
                answer,
                bytes,
            } => TraceEvent::AnswerInsert {
                pred: *pred,
                answer,
                bytes: *bytes,
            },
            OwnedEvent::DuplicateAnswer { pred, answer } => TraceEvent::DuplicateAnswer {
                pred: *pred,
                answer,
            },
            OwnedEvent::AnswerReturn { pred } => TraceEvent::AnswerReturn { pred: *pred },
            OwnedEvent::CallAbstracted {
                pred,
                original,
                abstracted,
            } => TraceEvent::CallAbstracted {
                pred: *pred,
                original,
                abstracted,
            },
            OwnedEvent::AnswerWidened {
                pred,
                original,
                widened,
            } => TraceEvent::AnswerWidened {
                pred: *pred,
                original,
                widened,
            },
            OwnedEvent::SubsumedCall {
                pred,
                call,
                subsumer,
            } => TraceEvent::SubsumedCall {
                pred: *pred,
                call,
                subsumer,
            },
            OwnedEvent::SubgoalComplete {
                pred,
                answers,
                bytes,
            } => TraceEvent::SubgoalComplete {
                pred: *pred,
                answers: *answers,
                bytes: *bytes,
            },
        }
    }

    /// The snake_case event name.
    pub fn kind(&self) -> &'static str {
        self.as_event().kind()
    }

    /// The predicate this event concerns.
    pub fn pred(&self) -> Functor {
        self.as_event().pred()
    }

    /// JSON rendering, identical to the borrowed form's.
    pub fn to_json(&self) -> String {
        self.as_event().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tablog_term::{atom, structure, var, Var};

    fn key() -> Vec<Term> {
        // A canonical tuple as the engine would materialize it: variables
        // already numbered in first-occurrence order.
        vec![structure("p", vec![var(Var(0)), atom("a")])]
    }

    #[test]
    fn kind_and_pred_cover_all_variants() {
        let k = key();
        let p = Functor::new("p", 2);
        let events = [
            TraceEvent::NewSubgoal {
                pred: p,
                call: &k,
                bytes: 10,
            },
            TraceEvent::ClauseResolution { pred: p },
            TraceEvent::AnswerInsert {
                pred: p,
                answer: &k,
                bytes: 10,
            },
            TraceEvent::DuplicateAnswer {
                pred: p,
                answer: &k,
            },
            TraceEvent::AnswerReturn { pred: p },
            TraceEvent::CallAbstracted {
                pred: p,
                original: &k,
                abstracted: &k,
            },
            TraceEvent::AnswerWidened {
                pred: p,
                original: &k,
                widened: &k,
            },
            TraceEvent::SubsumedCall {
                pred: p,
                call: &k,
                subsumer: &k,
            },
            TraceEvent::SubgoalComplete {
                pred: p,
                answers: 1,
                bytes: 10,
            },
        ];
        let kinds: Vec<_> = events.iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            [
                "new_subgoal",
                "clause_resolution",
                "answer_insert",
                "duplicate_answer",
                "answer_return",
                "call_abstracted",
                "answer_widened",
                "subsumed_call",
                "subgoal_complete"
            ]
        );
        assert!(events.iter().all(|e| e.pred() == p));
    }

    #[test]
    fn owned_round_trips_through_json() {
        let k = key();
        let e = TraceEvent::NewSubgoal {
            pred: Functor::new("p", 2),
            call: &k,
            bytes: 48,
        };
        let owned = e.to_owned();
        assert_eq!(owned.to_json(), e.to_json());
        assert_eq!(owned.as_event(), e);
    }

    #[test]
    fn json_lines_parse_and_carry_fields() {
        let k = key();
        let e = TraceEvent::AnswerInsert {
            pred: Functor::new("q", 1),
            answer: &k,
            bytes: 32,
        };
        let v = crate::json::parse(&e.to_json()).expect("valid JSON");
        assert_eq!(
            v.get("event").and_then(|x| x.as_str()),
            Some("answer_insert")
        );
        assert_eq!(v.get("pred").and_then(|x| x.as_str()), Some("q/1"));
        assert_eq!(v.get("bytes").and_then(|x| x.as_f64()), Some(32.0));
    }

    #[test]
    fn canonical_rendering_numbers_vars_in_occurrence_order() {
        let k = key();
        let e = TraceEvent::DuplicateAnswer {
            pred: Functor::new("p", 2),
            answer: &k,
        };
        assert!(e.to_json().contains("p(_0,a)"), "got: {}", e.to_json());
    }

    #[test]
    fn events_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<OwnedEvent>();
        assert_send::<TraceEvent<'static>>();
    }
}
