//! Minimal JSON support: string escaping for the writers and a small
//! recursive-descent parser used by tests and consumers of `--json` output
//! to validate what the writers produce. No external dependencies.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a complete JSON document, rejecting trailing garbage.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar, not one byte.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, -2.5, "x\"y"], "b": {"c": true, "d": null}}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(-2.5)
        );
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_str(),
            Some("x\"y")
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Null));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "p(\"X\",\t[a\\b])\nrest";
        let doc = format!("{{\"s\":\"{}\"}}", escape(original));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(original));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("nul").is_err());
    }
}
