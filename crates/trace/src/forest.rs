//! Derivation-forest export: the call/answer-table graph as data, DOT, and
//! JSON.
//!
//! The engine's `Evaluation::forest()` flattens its tables into a
//! [`Forest`] — plain strings and indices, so this crate stays independent
//! of the term representation. A forest records every tabled subgoal, its
//! answers, and (when the evaluation recorded provenance) each answer's
//! supporting clauses and the answer-level dependency edges.
//!
//! Renderings are deterministic: nodes are emitted in subgoal/answer index
//! order (the engine's creation order), never in hash order, so the same
//! evaluation always produces byte-identical output — a property the test
//! suite pins down.

use crate::json::{escape, JsonValue};
use std::fmt::Write as _;

/// One answer of a subgoal table, with optional provenance.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ForestAnswer {
    /// The answer rendered as a term, `p(t1,…,tn)`.
    pub term: String,
    /// Supporting clause ids (`pred/arity#index`); empty when provenance
    /// was not recorded or the answer needed no program clause.
    pub clauses: Vec<String>,
    /// Consumed table answers as `(subgoal id, answer index)` pairs; empty
    /// when provenance was not recorded or the answer consumed none.
    pub premises: Vec<(usize, usize)>,
}

/// One subgoal table: call pattern plus answers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ForestSubgoal {
    /// Subgoal id — its index in the evaluation's creation order.
    pub id: usize,
    /// The subgoal's predicate, `name/arity`.
    pub pred: String,
    /// The call pattern rendered as a term.
    pub call: String,
    /// `true` once the table is complete (always true after evaluation).
    pub complete: bool,
    /// The table's answers, in insertion order.
    pub answers: Vec<ForestAnswer>,
}

/// A complete derivation forest: every subgoal table of one evaluation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Forest {
    /// Subgoal tables in creation order; `subgoals[i].id == i`.
    pub subgoals: Vec<ForestSubgoal>,
}

impl Forest {
    /// Total number of answers across all tables.
    pub fn num_answers(&self) -> usize {
        self.subgoals.iter().map(|s| s.answers.len()).sum()
    }

    /// Renders the forest as a Graphviz DOT digraph.
    ///
    /// Subgoal nodes (`s0`, `s1`, …) are boxes labeled with the call
    /// pattern; answer nodes (`s0a0`, …) are ellipses labeled with the
    /// answer term (plus its supporting clause ids when present). Edges run
    /// subgoal → its answers, and answer → each consumed premise answer.
    /// Output is deterministic: everything is emitted in index order.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph forest {\n  rankdir=TB;\n");
        for s in &self.subgoals {
            let _ = writeln!(
                out,
                "  s{} [shape=box,label=\"{}\"];",
                s.id,
                dot_escape(&s.call)
            );
            for (ai, a) in s.answers.iter().enumerate() {
                let label = if a.clauses.is_empty() {
                    a.term.clone()
                } else {
                    format!("{}\\nvia {}", dot_escape(&a.term), a.clauses.join(", "))
                };
                let _ = writeln!(
                    out,
                    "  s{}a{} [shape=ellipse,label=\"{}\"];",
                    s.id,
                    ai,
                    if a.clauses.is_empty() {
                        dot_escape(&label)
                    } else {
                        label
                    }
                );
                let _ = writeln!(out, "  s{} -> s{}a{};", s.id, s.id, ai);
                for &(ps, pa) in &a.premises {
                    let _ = writeln!(out, "  s{}a{} -> s{}a{};", s.id, ai, ps, pa);
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// Renders the forest as one JSON object, matching the crate's other
    /// hand-rolled writers. Round-trips through [`Forest::from_json`].
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"subgoals\":[");
        for (i, s) in self.subgoals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"pred\":\"{}\",\"call\":\"{}\",\"complete\":{},\"answers\":[",
                s.id,
                escape(&s.pred),
                escape(&s.call),
                s.complete
            );
            for (j, a) in s.answers.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"term\":\"{}\",\"clauses\":[", escape(&a.term));
                for (k, c) in a.clauses.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\"", escape(c));
                }
                out.push_str("],\"premises\":[");
                for (k, &(ps, pa)) in a.premises.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "[{ps},{pa}]");
                }
                out.push_str("]}");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Parses a forest back from its [`Forest::to_json`] rendering.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntactic or structural problem.
    pub fn from_json(input: &str) -> Result<Forest, String> {
        let doc = crate::json::parse(input)?;
        let subgoals = doc
            .get("subgoals")
            .and_then(JsonValue::as_arr)
            .ok_or("missing \"subgoals\" array")?;
        let mut out = Forest::default();
        for s in subgoals {
            let id = field_usize(s, "id")?;
            let pred = field_str(s, "pred")?.to_owned();
            let call = field_str(s, "call")?.to_owned();
            let complete = matches!(s.get("complete"), Some(JsonValue::Bool(true)));
            let mut answers = Vec::new();
            for a in s
                .get("answers")
                .and_then(JsonValue::as_arr)
                .ok_or("missing \"answers\" array")?
            {
                let term = field_str(a, "term")?.to_owned();
                let clauses = a
                    .get("clauses")
                    .and_then(JsonValue::as_arr)
                    .ok_or("missing \"clauses\" array")?
                    .iter()
                    .map(|c| c.as_str().map(str::to_owned).ok_or("clause not a string"))
                    .collect::<Result<Vec<_>, _>>()?;
                let mut premises = Vec::new();
                for p in a
                    .get("premises")
                    .and_then(JsonValue::as_arr)
                    .ok_or("missing \"premises\" array")?
                {
                    let pair = p.as_arr().ok_or("premise not a pair")?;
                    match pair {
                        [JsonValue::Num(s), JsonValue::Num(a)] => {
                            premises.push((*s as usize, *a as usize));
                        }
                        _ => return Err("premise not a pair of numbers".into()),
                    }
                }
                answers.push(ForestAnswer {
                    term,
                    clauses,
                    premises,
                });
            }
            out.subgoals.push(ForestSubgoal {
                id,
                pred,
                call,
                complete,
                answers,
            });
        }
        Ok(out)
    }
}

fn field_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing string field \"{key}\""))
}

fn field_usize(v: &JsonValue, key: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .map(|n| n as usize)
        .ok_or_else(|| format!("missing numeric field \"{key}\""))
}

/// Escapes a string for a double-quoted DOT label.
fn dot_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Forest {
        Forest {
            subgoals: vec![
                ForestSubgoal {
                    id: 0,
                    pred: "$query/1".into(),
                    call: "$query(A)".into(),
                    complete: true,
                    answers: vec![ForestAnswer {
                        term: "$query(a)".into(),
                        clauses: vec![],
                        premises: vec![(1, 0)],
                    }],
                },
                ForestSubgoal {
                    id: 1,
                    pred: "p/1".into(),
                    call: "p(A)".into(),
                    complete: true,
                    answers: vec![ForestAnswer {
                        term: "p(a)".into(),
                        clauses: vec!["p/1#0".into()],
                        premises: vec![],
                    }],
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let f = sample();
        let back = Forest::from_json(&f.to_json()).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let dot = sample().to_dot();
        assert!(dot.starts_with("digraph forest {"));
        assert!(dot.contains("s1 [shape=box,label=\"p(A)\"];"));
        assert!(dot.contains("s1a0 [shape=ellipse"));
        assert!(dot.contains("s0a0 -> s1a0;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_is_deterministic() {
        let f = sample();
        assert_eq!(f.to_dot(), f.to_dot());
        assert_eq!(f.to_json(), f.to_json());
    }

    #[test]
    fn dot_escapes_quotes_in_labels() {
        let mut f = sample();
        f.subgoals[1].call = "p(\"x\")".into();
        assert!(f.to_dot().contains("label=\"p(\\\"x\\\")\""));
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(Forest::from_json("{}").is_err());
        assert!(Forest::from_json("{\"subgoals\":[{}]}").is_err());
        assert!(Forest::from_json("not json").is_err());
    }
}
