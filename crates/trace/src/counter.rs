//! Counter time-series: periodic samples of the engine's evolving state,
//! taken at worklist dispatch boundaries.
//!
//! Aggregate counters (steps, answers, table bytes) say what an evaluation
//! cost in total; a *time series* of the same quantities says how the cost
//! evolved — whether the worklist drained steadily or ballooned, when the
//! table space cliff happened, which phase created the tables. Samples ride
//! the [`TraceSink`] channel through a dedicated default-no-op method
//! ([`TraceSink::counter_sample`]), mirroring the span design: sinks that
//! do not care are unaffected, and the engine only constructs samples when
//! `EngineOptions::record_counters` is set *and* a sink is installed, so
//! the disabled path costs one branch per worklist task and nothing else.
//!
//! [`CounterTrack`] is the retaining sink: a recorder that keeps every
//! sample for later export (the Chrome-trace `ph:"C"` counter tracks of
//! [`crate::chrome`], or direct inspection in tests).

use crate::sink::TraceSink;
use std::sync::{Mutex, MutexGuard, PoisonError};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One observation of the engine's state, taken at a dispatch boundary
/// (after a worklist task completes, plus one initial sample before the
/// first task). All quantities are exact, not estimates, and deterministic
/// for a given program, goal, and scheduling strategy — only `t_ns` varies
/// between runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSample {
    /// Monotonic timestamp from [`crate::span::now_ns`], sharing the span
    /// timeline so counters and spans align in a trace viewer.
    pub t_ns: u64,
    /// Pending worklist tasks (all classes), per `Scheduler::len`.
    pub worklist: usize,
    /// Pending expansion tasks, per `Scheduler::class_len`.
    pub expands: usize,
    /// Pending answer-return tasks, per `Scheduler::class_len`.
    pub returns: usize,
    /// Live call tables (tabled subgoals created so far).
    pub tables: usize,
    /// Cumulative unique answers admitted into tables.
    pub answers: usize,
    /// Current table space in bytes (the engine's incremental accounting).
    pub table_bytes: usize,
    /// Cumulative cross-worker messages sent by the sampling worker
    /// (always 0 for sequential runs).
    pub msgs_sent: usize,
    /// Parallel worker the sample was taken on; `None` for sequential
    /// evaluations, where there is exactly one (anonymous) sampler.
    pub worker: Option<usize>,
}

impl CounterSample {
    /// Renders the sample as a JSON object (the `JsonLinesSink` line body).
    /// `worker` is emitted only when the sample is worker-tagged, keeping
    /// sequential trace lines unchanged.
    pub fn to_json(&self) -> String {
        let worker = match self.worker {
            Some(w) => format!(",\"worker\":{w}"),
            None => String::new(),
        };
        format!(
            "{{\"t_ns\":{},\"worklist\":{},\"expands\":{},\"returns\":{},\
             \"tables\":{},\"answers\":{},\"table_bytes\":{},\"msgs_sent\":{}{}}}",
            self.t_ns,
            self.worklist,
            self.expands,
            self.returns,
            self.tables,
            self.answers,
            self.table_bytes,
            self.msgs_sent,
            worker
        )
    }
}

/// A [`TraceSink`] retaining every counter sample, in emission order —
/// the sampler the engine feeds and the exporters read.
#[derive(Debug, Default)]
pub struct CounterTrack {
    samples: Mutex<Vec<CounterSample>>,
}

impl CounterTrack {
    /// An empty track.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of samples recorded so far.
    pub fn len(&self) -> usize {
        lock(&self.samples).len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        lock(&self.samples).is_empty()
    }

    /// Records one sample (also reachable through the sink interface).
    pub fn record(&self, s: &CounterSample) {
        lock(&self.samples).push(*s);
    }

    /// The recorded samples, in emission order.
    pub fn samples(&self) -> Vec<CounterSample> {
        lock(&self.samples).clone()
    }

    /// The most recent sample, if any — the end-of-run state.
    pub fn last(&self) -> Option<CounterSample> {
        lock(&self.samples).last().copied()
    }
}

impl TraceSink for CounterTrack {
    fn event(&self, _e: &crate::event::TraceEvent<'_>) {}

    fn counter_sample(&self, s: &CounterSample) {
        self.record(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t_ns: u64, answers: usize) -> CounterSample {
        CounterSample {
            t_ns,
            worklist: 3,
            expands: 2,
            returns: 1,
            tables: 4,
            answers,
            table_bytes: 128,
            msgs_sent: 6,
            worker: None,
        }
    }

    #[test]
    fn track_retains_samples_in_order() {
        let track = CounterTrack::new();
        assert!(track.is_empty());
        TraceSink::counter_sample(&track, &sample(10, 1));
        track.record(&sample(20, 2));
        assert_eq!(track.len(), 2);
        let got = track.samples();
        assert_eq!(got[0].t_ns, 10);
        assert_eq!(got[1].answers, 2);
        assert_eq!(track.last(), Some(sample(20, 2)));
    }

    #[test]
    fn sample_json_parses_with_every_field() {
        let v = crate::json::parse(&sample(7, 5).to_json()).expect("valid JSON");
        for (key, want) in [
            ("t_ns", 7.0),
            ("worklist", 3.0),
            ("expands", 2.0),
            ("returns", 1.0),
            ("tables", 4.0),
            ("answers", 5.0),
            ("table_bytes", 128.0),
            ("msgs_sent", 6.0),
        ] {
            assert_eq!(v.get(key).and_then(|x| x.as_f64()), Some(want), "{key}");
        }
        // Untagged samples keep the sequential shape: no worker key.
        assert!(v.get("worker").is_none());
        let tagged = CounterSample {
            worker: Some(2),
            ..sample(7, 5)
        };
        let v = crate::json::parse(&tagged.to_json()).expect("valid JSON");
        assert_eq!(v.get("worker").and_then(|x| x.as_f64()), Some(2.0));
    }

    #[test]
    fn default_sink_ignores_counter_samples() {
        // A sink that predates counters compiles and ignores them.
        let sink = crate::sink::CountingSink::new();
        sink.counter_sample(&sample(1, 1));
        assert_eq!(sink.total(), 0);
    }
}
