//! Cross-worker message-flow records: one [`FlowEvent`] per traced
//! `Msg::Call` / `Msg::Answer` crossing between parallel workers.
//!
//! The parallel engine stamps each traced message with a process-unique
//! flow id and a send timestamp on the sending worker; the receiving
//! worker completes the record with its own receive timestamp and the
//! re-canonicalized payload size. The Chrome exporter turns each record
//! into a `ph:"s"` / `ph:"f"` flow-event pair, drawing an arrow from the
//! sender's lane to the receiver's in a trace viewer.
//!
//! Flow tracing is gated exactly like spans (`record_spans` plus an
//! installed sink): when off, messages carry no flow metadata and no
//! timestamps are taken.

use std::fmt;

/// Which kind of cross-worker message a flow record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MsgKind {
    /// A remote subgoal call forwarded to the owning worker.
    Call,
    /// An answer delivered back to a parked remote consumer.
    Answer,
}

impl fmt::Display for MsgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MsgKind::Call => "call",
            MsgKind::Answer => "answer",
        })
    }
}

/// One completed cross-worker message flow, recorded on the receiving
/// worker (which holds both endpoints' timestamps).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowEvent {
    /// Process-unique flow id, shared by the Chrome `s`/`f` pair.
    pub id: u64,
    /// Message kind.
    pub kind: MsgKind,
    /// Sending worker.
    pub from: usize,
    /// Receiving worker.
    pub to: usize,
    /// Send timestamp on the [`crate::span::now_ns`] timeline.
    pub send_ns: u64,
    /// Receive timestamp on the same timeline.
    pub recv_ns: u64,
    /// Payload size: canonical bytes of the call or answer terms as
    /// re-interned in the receiver's arena.
    pub bytes: usize,
}

impl FlowEvent {
    /// Renders the flow as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"id\":{},\"kind\":\"{}\",\"from\":{},\"to\":{},\
             \"send_ns\":{},\"recv_ns\":{},\"bytes\":{}}}",
            self.id, self.kind, self.from, self.to, self.send_ns, self.recv_ns, self.bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_json_parses_with_every_field() {
        let f = FlowEvent {
            id: 9,
            kind: MsgKind::Answer,
            from: 1,
            to: 0,
            send_ns: 100,
            recv_ns: 250,
            bytes: 48,
        };
        let v = crate::json::parse(&f.to_json()).expect("valid JSON");
        assert_eq!(v.get("id").and_then(|x| x.as_f64()), Some(9.0));
        assert_eq!(v.get("kind").and_then(|x| x.as_str()), Some("answer"));
        assert_eq!(v.get("from").and_then(|x| x.as_f64()), Some(1.0));
        assert_eq!(v.get("to").and_then(|x| x.as_f64()), Some(0.0));
        assert_eq!(v.get("send_ns").and_then(|x| x.as_f64()), Some(100.0));
        assert_eq!(v.get("recv_ns").and_then(|x| x.as_f64()), Some(250.0));
        assert_eq!(v.get("bytes").and_then(|x| x.as_f64()), Some(48.0));
        assert_eq!(MsgKind::Call.to_string(), "call");
    }
}
