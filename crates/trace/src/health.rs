//! Run-health snapshots: the engine's vital signs while an evaluation is
//! still running, plus the stall watchdog reading them.
//!
//! The counter time-series of [`crate::counter`] records *every* dispatch
//! boundary — perfect for offline timeline reconstruction, far too chatty
//! for a supervisor watching a long-lived query. A [`HealthSnapshot`] is
//! the coarse periodic companion: emitted every N tasks or T milliseconds
//! through a dedicated default-no-op [`TraceSink::health`] method, it
//! carries the same exact counters plus the derived quantities a monitor
//! wants precomputed (completed-table count, answer derivation rate, peak
//! heap when the tracking allocator is installed) and the verdict of the
//! [`StallWatchdog`]: whether the run looks like productive work or like
//! the table-growth-only signature of divergence.
//!
//! [`HealthTrack`] is the retaining sink, mirroring
//! [`crate::counter::CounterTrack`]; the OpenMetrics exporter in
//! [`mod@crate::openmetrics`] renders its samples for scraping.

use crate::sink::TraceSink;
use std::sync::{Mutex, MutexGuard, PoisonError};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One periodic observation of a running evaluation's health, taken at a
/// worklist dispatch boundary. Counter fields are exact and deterministic
/// for a given program/goal/strategy; `t_ns`, `answer_rate`, `stalled`,
/// and `peak_heap_bytes` depend on wall-clock time and the host.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HealthSnapshot {
    /// Monotonic timestamp from [`crate::span::now_ns`], sharing the span
    /// and counter timeline.
    pub t_ns: u64,
    /// Worklist tasks executed so far (the engine's step counter).
    pub steps: usize,
    /// Pending worklist tasks (all classes).
    pub worklist: usize,
    /// Pending expansion tasks.
    pub expands: usize,
    /// Pending answer-return tasks.
    pub returns: usize,
    /// Call tables created so far (live, whether or not complete).
    pub tables: usize,
    /// Call tables already marked complete.
    pub completed_tables: usize,
    /// Cumulative unique answers admitted into tables.
    pub answers: usize,
    /// Cumulative duplicate answers rejected by tables.
    pub duplicate_answers: usize,
    /// Current table space in bytes (incremental accounting).
    pub table_bytes: usize,
    /// Unique answers per second over the window since the previous
    /// snapshot (whole-run average for the first and final snapshots).
    pub answer_rate: f64,
    /// Peak process heap in bytes, when the `tablog-alloc` tracking
    /// allocator is installed; `None` otherwise.
    pub peak_heap_bytes: Option<usize>,
    /// Stall-watchdog verdict: the last few windows derived no new
    /// answers while table space kept growing — the signature of a
    /// divergent tabled query (new subgoals forever, no productive work).
    pub stalled: bool,
}

impl HealthSnapshot {
    /// Renders the snapshot as a JSON object (the `JsonLinesSink` line
    /// body and the `tablog watch --json` payload).
    pub fn to_json(&self) -> String {
        let peak = match self.peak_heap_bytes {
            Some(b) => b.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"t_ns\":{},\"steps\":{},\"worklist\":{},\"expands\":{},\
             \"returns\":{},\"tables\":{},\"completed_tables\":{},\
             \"answers\":{},\"duplicate_answers\":{},\"table_bytes\":{},\
             \"answer_rate\":{:.3},\"peak_heap_bytes\":{},\"stalled\":{}}}",
            self.t_ns,
            self.steps,
            self.worklist,
            self.expands,
            self.returns,
            self.tables,
            self.completed_tables,
            self.answers,
            self.duplicate_answers,
            self.table_bytes,
            self.answer_rate,
            peak,
            self.stalled
        )
    }
}

/// A [`TraceSink`] retaining every health snapshot, in emission order —
/// what `tablog watch` and the OpenMetrics exporter read.
#[derive(Debug, Default)]
pub struct HealthTrack {
    samples: Mutex<Vec<HealthSnapshot>>,
}

impl HealthTrack {
    /// An empty track.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of snapshots recorded so far.
    pub fn len(&self) -> usize {
        lock(&self.samples).len()
    }

    /// Whether no snapshots were recorded.
    pub fn is_empty(&self) -> bool {
        lock(&self.samples).is_empty()
    }

    /// Records one snapshot (also reachable through the sink interface).
    pub fn record(&self, s: &HealthSnapshot) {
        lock(&self.samples).push(*s);
    }

    /// The recorded snapshots, in emission order.
    pub fn samples(&self) -> Vec<HealthSnapshot> {
        lock(&self.samples).clone()
    }

    /// The most recent snapshot, if any — the end-of-run state.
    pub fn last(&self) -> Option<HealthSnapshot> {
        lock(&self.samples).last().copied()
    }
}

impl TraceSink for HealthTrack {
    fn event(&self, _e: &crate::event::TraceEvent<'_>) {}

    fn health(&self, s: &HealthSnapshot) {
        self.record(s);
    }
}

/// Divergence heuristic over successive snapshot windows.
///
/// A healthy tabled evaluation keeps admitting answers; the classic
/// divergent one (unbounded call abstraction off, e.g. `q(X) :- q(f(X))`)
/// creates fresh subgoal tables forever without ever completing an answer.
/// The watchdog counts consecutive windows that derived **zero new
/// answers while table space still grew** and declares a stall once
/// `window` of them pass back to back. Any new answer resets the count,
/// so slow-but-productive runs are never flagged; a merely *idle* pattern
/// (no answers, no growth) is not counted either, since bounded workloads
/// finish rather than idle.
#[derive(Clone, Debug)]
pub struct StallWatchdog {
    window: usize,
    quiet: usize,
    last_answers: usize,
    last_bytes: usize,
    primed: bool,
}

impl StallWatchdog {
    /// A watchdog declaring a stall after `window` consecutive
    /// answer-free, table-growing observation windows (`window == 0`
    /// never flags).
    pub fn new(window: usize) -> Self {
        StallWatchdog {
            window,
            quiet: 0,
            last_answers: 0,
            last_bytes: 0,
            primed: false,
        }
    }

    /// Feeds one window's end state; returns the current stall verdict.
    pub fn observe(&mut self, answers: usize, table_bytes: usize) -> bool {
        if !self.primed {
            // The first observation establishes the baseline; deltas only
            // exist from the second window on.
            self.primed = true;
        } else if answers > self.last_answers {
            self.quiet = 0;
        } else if table_bytes > self.last_bytes {
            self.quiet += 1;
        }
        self.last_answers = answers;
        self.last_bytes = table_bytes;
        self.stalled()
    }

    /// Whether the last `window` observations all looked divergent.
    pub fn stalled(&self) -> bool {
        self.window > 0 && self.quiet >= self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(t_ns: u64, answers: usize) -> HealthSnapshot {
        HealthSnapshot {
            t_ns,
            steps: 10,
            worklist: 3,
            expands: 2,
            returns: 1,
            tables: 4,
            completed_tables: 2,
            answers,
            duplicate_answers: 1,
            table_bytes: 256,
            answer_rate: 12.5,
            peak_heap_bytes: None,
            stalled: false,
        }
    }

    #[test]
    fn track_retains_snapshots_in_order() {
        let track = HealthTrack::new();
        assert!(track.is_empty());
        TraceSink::health(&track, &snap(10, 1));
        track.record(&snap(20, 2));
        assert_eq!(track.len(), 2);
        let got = track.samples();
        assert_eq!(got[0].t_ns, 10);
        assert_eq!(got[1].answers, 2);
        assert_eq!(track.last(), Some(snap(20, 2)));
    }

    #[test]
    fn snapshot_json_parses_with_every_field() {
        let mut s = snap(7, 5);
        s.peak_heap_bytes = Some(4096);
        s.stalled = true;
        let v = crate::json::parse(&s.to_json()).expect("valid JSON");
        for (key, want) in [
            ("t_ns", 7.0),
            ("steps", 10.0),
            ("worklist", 3.0),
            ("expands", 2.0),
            ("returns", 1.0),
            ("tables", 4.0),
            ("completed_tables", 2.0),
            ("answers", 5.0),
            ("duplicate_answers", 1.0),
            ("table_bytes", 256.0),
            ("answer_rate", 12.5),
            ("peak_heap_bytes", 4096.0),
        ] {
            assert_eq!(v.get(key).and_then(|x| x.as_f64()), Some(want), "{key}");
        }
        assert_eq!(v.get("stalled"), Some(&crate::json::JsonValue::Bool(true)));
        // Absent heap tracking renders as null, still valid JSON.
        let v = crate::json::parse(&snap(1, 1).to_json()).expect("valid JSON");
        assert_eq!(
            v.get("peak_heap_bytes"),
            Some(&crate::json::JsonValue::Null)
        );
    }

    #[test]
    fn default_sink_ignores_health() {
        let sink = crate::sink::CountingSink::new();
        sink.health(&snap(1, 1));
        assert_eq!(sink.total(), 0);
    }

    #[test]
    fn watchdog_flags_table_growth_without_answers() {
        let mut dog = StallWatchdog::new(3);
        assert!(!dog.observe(0, 100)); // baseline
        assert!(!dog.observe(0, 200)); // quiet 1
        assert!(!dog.observe(0, 300)); // quiet 2
        assert!(dog.observe(0, 400)); // quiet 3 -> stalled
        assert!(dog.stalled());
    }

    #[test]
    fn watchdog_resets_on_new_answers() {
        let mut dog = StallWatchdog::new(2);
        dog.observe(0, 100);
        dog.observe(0, 200);
        assert!(!dog.observe(1, 300)); // an answer arrived: reset
        assert!(!dog.observe(1, 400)); // quiet 1
        assert!(dog.observe(1, 500)); // quiet 2 -> stalled
    }

    #[test]
    fn watchdog_ignores_idle_windows_and_zero_window() {
        let mut dog = StallWatchdog::new(1);
        dog.observe(0, 100);
        // No growth, no answers: not the divergence signature.
        assert!(!dog.observe(0, 100));
        assert!(!dog.observe(0, 100));
        let mut never = StallWatchdog::new(0);
        never.observe(0, 100);
        assert!(!never.observe(0, 200));
        assert!(!never.observe(0, 300));
    }
}
